//! # mltc — Multi-Level Texture Caching for 3D Graphics Hardware
//!
//! A full reproduction of Cox, Bhandari & Shantz, *"Multi-Level Texture
//! Caching for 3D Graphics Hardware"*, ISCA 1998: a trace-driven study of
//! inserting a virtual-memory-style **L2 texture cache** between a graphics
//! accelerator's on-chip L1 texture cache and host memory.
//!
//! This umbrella crate re-exports every sub-crate of the workspace:
//!
//! * [`math`] — vectors, matrices, frustum culling.
//! * [`texture`] — tiled, mip-mapped textures with hierarchical virtual
//!   addresses ⟨tid, L2, L1⟩ (paper §2.2).
//! * [`raster`] — perspective-correct scanline software rasterizer with
//!   point/bilinear/trilinear mip-mapped sampling (paper §2.1).
//! * [`scene`] — the procedural *Village* and *City* workloads with scripted
//!   camera animations (paper §3.1).
//! * [`cache`] — generic cache substrate (set-associative arrays, clock
//!   lists, sector maps, TLBs).
//! * [`core`] — the paper's contribution: the L2 texture cache built from a
//!   texture page table + block replacement list (paper §5), the L1 cache,
//!   push/pull baselines and the analytic models (§4.1, §5.4).
//! * [`trace`] — texture access tracing and per-frame statistics (§3.2, §4).
//! * [`telemetry`] — opt-in spans, counters, log2 histograms and per-frame
//!   time-series export; one not-taken branch per texel when disabled.
//! * [`experiments`] — the harness that regenerates every table and figure.
//!
//! # Quickstart
//!
//! ```
//! use mltc::scene::{Workload, WorkloadParams};
//! use mltc::raster::FilterMode;
//! use mltc::core::{EngineConfig, L1Config, L2Config, SimEngine};
//!
//! // Build a tiny Village and render one frame into a texture-access trace.
//! let params = WorkloadParams::tiny();
//! let workload = Workload::village(&params);
//! let trace = workload.trace_frame(0, FilterMode::Bilinear);
//!
//! // Replay the trace through a 2 KB L1 + 2 MB L2 multi-level cache.
//! let cfg = EngineConfig {
//!     l1: L1Config::kb(2),
//!     l2: Some(L2Config::mb(2)),
//!     ..EngineConfig::default()
//! };
//! let mut engine = SimEngine::new(cfg, workload.scene().registry());
//! engine.run_frame(&trace);
//! let stats = engine.frame_stats();
//! assert!(stats.l1_accesses > 0);
//! ```

pub use mltc_cache as cache;
pub use mltc_core as core;
pub use mltc_experiments as experiments;
pub use mltc_math as math;
pub use mltc_raster as raster;
pub use mltc_scene as scene;
pub use mltc_telemetry as telemetry;
pub use mltc_texture as texture;
pub use mltc_trace as trace;
