//! Offline stand-in for the subset of the [`rand`] crate this workspace
//! uses: a deterministic seedable generator ([`rngs::StdRng`]), the
//! [`Rng::gen_range`] method over integer and float ranges, and
//! [`SeedableRng::seed_from_u64`].
//!
//! The build environment has no access to crates.io, so this crate keeps
//! the workspace hermetic. The generator is xoshiro256++ seeded through
//! SplitMix64 — high-quality and fully deterministic, which is all the
//! workload builders require (they never need cryptographic randomness or
//! value-compatibility with upstream `rand`).
//!
//! [`rand`]: https://crates.io/crates/rand

use std::ops::{Range, RangeInclusive};

/// A source of random `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it internally.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Types a uniform sample can be drawn for. Mirrors `rand`'s trait of the
/// same name; the single blanket [`SampleRange`] impl below is what lets
/// unsuffixed literals (`rng.gen_range(0.0..2.0)` in an `f32` context)
/// infer their type from the call site, exactly as with upstream `rand`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_uniform<R: RngCore>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

/// Ranges a value can be uniformly sampled from.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_uniform(lo, hi, true, rng)
    }
}

/// Rejection-free-enough uniform integer in `[0, n)` via 128-bit multiply.
#[inline]
fn uniform_u64<R: RngCore>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Lemire's multiply-shift; the tiny modulo bias (< 2^-64 * n) is
    // irrelevant for workload synthesis.
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_uniform<R: RngCore>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self {
                // Full-width inclusive ranges never occur in this workspace.
                let span = (hi as i128 - lo as i128 + inclusive as i128) as u64;
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_uniform<R: RngCore>(lo: Self, hi: Self, _inclusive: bool, rng: &mut R) -> Self {
                // 53 uniform mantissa bits scaled into the range.
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                lo + ((hi - lo) as f64 * unit) as $t
            }
        }
    )*};
}

impl_float_uniform!(f32, f64);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let equal = (0..100).all(|_| a.gen_range(0u32..1000) == c.gen_range(0u32..1000));
        assert!(!equal, "different seeds should diverge");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(90..220u32);
            assert!((90..220).contains(&v));
            let f = r.gen_range(5.5..8.0f64);
            assert!((5.5..8.0).contains(&f));
            let i = r.gen_range(0u8..=255);
            let _ = i; // full u8 range: any value is fine
            let n = r.gen_range(-3i32..3);
            assert!((-3..3).contains(&n));
            let u = r.gen_range(0usize..7);
            assert!(u < 7);
        }
    }

    #[test]
    fn floats_cover_the_range() {
        let mut r = StdRng::seed_from_u64(2);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..1000 {
            let f = r.gen_range(0.0f32..1.0);
            lo |= f < 0.25;
            hi |= f > 0.75;
        }
        assert!(lo && hi, "samples should spread over the range");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_rejected() {
        let mut r = StdRng::seed_from_u64(3);
        let _ = r.gen_range(5u32..5);
    }
}
