//! Offline stand-in for the subset of the [`bytes`] crate this workspace
//! uses: [`Bytes`], [`BytesMut`], and the little-endian accessors of
//! [`Buf`]/[`BufMut`] that the trace codec relies on.
//!
//! The build environment has no access to crates.io; this keeps the
//! workspace hermetic. Unlike upstream `bytes` there is no zero-copy
//! reference counting — [`Bytes`] owns a `Vec<u8>` and tracks a read
//! cursor — which is fully sufficient for encoding and decoding trace
//! frames.
//!
//! [`bytes`]: https://crates.io/crates/bytes

use std::ops::Deref;

/// Read access to a byte cursor, little-endian helpers included.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes out, advancing the cursor.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Advances the cursor by `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `cnt` bytes remain.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        *self = &self[cnt..];
    }
}

/// Write access for building byte buffers, little-endian helpers included.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// An owned, cheaply cloneable byte buffer with a read cursor.
///
/// Dereferences to the *unread* portion, so slicing (`&b[..n]`), `len()`,
/// `to_vec()` and `as_ref()` all observe what is left to read, exactly as
/// upstream `bytes::Bytes` views do.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies a slice into an owned buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self {
            data: data.to_vec(),
            pos: 0,
        }
    }

    /// Unread length.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether nothing is left to read.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The unread bytes as a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data, pos: 0 }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "buffer underflow");
        dst.copy_from_slice(&self.data[self.pos..self.pos + dst.len()]);
        self.pos += dst.len();
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        self.pos += cnt;
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u32_le(0xdead_beef);
        b.put_u8(7);
        b.put_u64_le(u64::MAX - 1);
        b.put_f32_le(1.5);
        let mut frozen = b.freeze();
        assert_eq!(frozen.len(), 17);
        assert_eq!(frozen.get_u32_le(), 0xdead_beef);
        assert_eq!(frozen.get_u8(), 7);
        assert_eq!(frozen.get_u64_le(), u64::MAX - 1);
        assert_eq!(frozen.get_f32_le(), 1.5);
        assert!(frozen.is_empty());
    }

    #[test]
    fn slice_buf_advances() {
        let data = [1u8, 2, 3, 4, 5];
        let mut buf = &data[..];
        assert_eq!(buf.get_u8(), 1);
        buf.advance(2);
        assert_eq!(buf.remaining(), 2);
        assert_eq!(buf.get_u8(), 4);
    }

    #[test]
    fn bytes_deref_tracks_cursor() {
        let mut b = Bytes::from(vec![9u8, 8, 7, 6]);
        assert_eq!(&b[..2], &[9, 8]);
        let _ = b.get_u8();
        assert_eq!(b.as_ref(), &[8, 7, 6]);
        assert_eq!(b.to_vec(), vec![8, 7, 6]);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let data = [1u8];
        let mut buf = &data[..];
        let _ = buf.get_u32_le();
    }
}
