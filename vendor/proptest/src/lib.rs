//! Offline stand-in for the subset of the [`proptest`] crate this workspace
//! uses: the [`Strategy`] trait over ranges, tuples, [`Just`] and
//! [`collection::vec`]; the [`prop_oneof!`], [`proptest!`],
//! [`prop_assert!`] and [`prop_assert_eq!`] macros; and
//! [`ProptestConfig::with_cases`].
//!
//! The build environment has no access to crates.io; this keeps the
//! workspace hermetic while preserving genuine randomised property
//! testing. Differences from upstream: no shrinking (a failing case
//! reports its generated inputs verbatim) and the run seed is derived
//! deterministically from the test name, so failures always reproduce.
//!
//! [`proptest`]: https://crates.io/crates/proptest

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x5bf0_3635_deca_f000,
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform value in `[0, 1)` with 53 bits of precision.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: fmt::Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keeps only values for which `f` returns `Some`, retrying otherwise.
    /// `reason` labels the filter in the give-up panic message.
    fn prop_filter_map<U: fmt::Debug, F: Fn(Self::Value) -> Option<U>>(
        self,
        reason: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap {
            inner: self,
            f,
            reason,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: fmt::Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter_map`].
#[derive(Debug, Clone)]
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, U: fmt::Debug, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        for _ in 0..1000 {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!(
            "prop_filter_map gave up after 1000 rejections: {}",
            self.reason
        );
    }
}

/// Types with a full-domain strategy, mirroring `proptest::Arbitrary` for
/// the primitives the workspace generates.
pub trait Arbitrary: Sized + fmt::Debug {
    /// Draws one unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The full-domain strategy for `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + ((self.end - self.start) as f64 * rng.unit()) as $t
            }
        }
    )*};
}

impl_float_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt;
    use std::ops::Range;

    /// A strategy for `Vec`s whose length is drawn from `len` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// A type-erased strategy, as produced by [`prop_oneof!`].
pub struct Union<T> {
    choices: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T: fmt::Debug> Union<T> {
    /// Uniform choice between the given strategies.
    pub fn new(choices: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one choice");
        Self { choices }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.choices.len() as u64) as usize;
        self.choices[i].generate(rng)
    }
}

/// Uniform choice between strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let choices: ::std::vec::Vec<::std::boxed::Box<dyn $crate::Strategy<Value = _>>> =
            ::std::vec![$(::std::boxed::Box::new($strategy)),+];
        $crate::Union::new(choices)
    }};
}

/// A failed property case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Stable 64-bit FNV-1a hash of the test name, used as the run seed so
/// failures reproduce across runs.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)*)),
            ));
        }
    };
}

/// Fails the current property case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {} == {}\n  left: {:?}\n right: {:?}\n {}",
                    stringify!($left), stringify!($right), l, r, format!($($fmt)*)),
            ));
        }
    }};
}

/// Fails the current property case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Declares property tests: each `fn` runs its body against many random
/// draws of its `arg in strategy` parameters.
#[macro_export]
macro_rules! proptest {
    // The internal @cfg arm must precede the catch-all arm below, which
    // would otherwise re-match (and re-wrap) the recursive call forever.
    (@cfg ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::new($crate::seed_for(concat!(
                    module_path!(), "::", stringify!($name))));
                // Instantiate each strategy once; draws reuse it.
                $(let $arg = $strategy;)+
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&$arg, &mut rng);)+
                    let dump = format!(concat!($("  ", stringify!($arg), " = {:?}\n"),+), $(&$arg),+);
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!("proptest case {}/{} failed: {}\ninputs:\n{}",
                            case + 1, config.cases, e, dump);
                    }
                }
            }
        )*
    };
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest! { @cfg ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Tri {
        A,
        B,
        C,
    }

    fn tris() -> impl Strategy<Value = Tri> {
        prop_oneof![Just(Tri::A), Just(Tri::B), Just(Tri::C)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3u32..17, f in -2.0f32..2.0, b in 0u8..=255) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f), "f = {}", f);
            let _ = b;
        }

        #[test]
        fn tuples_and_maps(v in (0u32..10, 0u32..10).prop_map(|(a, b)| a + b)) {
            prop_assert!(v < 19);
        }

        #[test]
        fn oneof_hits_every_choice(picks in crate::collection::vec(tris(), 50..60)) {
            prop_assert!(picks.len() >= 50 && picks.len() < 60);
        }

        #[test]
        fn filter_map_respects_filter(
            odd in (0u32..1000).prop_filter_map("odd", |v| (v % 2 == 1).then_some(v)),
        ) {
            prop_assert_eq!(odd % 2, 1);
        }
    }

    #[test]
    fn failing_case_reports_inputs() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(10))]
                fn always_fails(x in 0u32..10) { prop_assert!(x > 100, "x was {}", x); }
            }
            always_fails();
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("inputs"), "{msg}");
        assert!(msg.contains("x ="), "{msg}");
    }

    #[test]
    fn seeds_are_stable() {
        assert_eq!(crate::seed_for("a::b"), crate::seed_for("a::b"));
        assert_ne!(crate::seed_for("a::b"), crate::seed_for("a::c"));
    }
}
