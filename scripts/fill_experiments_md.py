#!/usr/bin/env python3
"""Fill EXPERIMENTS.md placeholders from the results/ CSVs.

Regenerate with:
    cargo run --release -p mltc-experiments --bin experiments -- all --default
    python3 scripts/fill_experiments_md.py
"""
import csv
import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS = ROOT / "results"
MD = ROOT / "EXPERIMENTS.md"


def rows(name):
    with open(RESULTS / f"{name}.csv") as f:
        return list(csv.reader(f))


def main():
    text = MD.read_text()
    subs = {}

    # Table 2: L1 size,BL,TL
    t2 = {r[0]: (r[1], r[2]) for r in rows("table2")[1:]}
    for kb in (2, 4, 8, 16, 32):
        bl, tl = t2[f"{kb} KB"]
        subs[f"T2_BL_{kb}"] = bl
        subs[f"T2_TL_{kb}"] = tl

    # Fig 9 peaks (2 KB row of both filters)
    peaks = []
    for filt in ("bilinear", "trilinear"):
        r = {x[0]: x[2] for x in rows(f"fig9_{filt}")[1:]}
        peaks.append(f"{r['2 KB']} % ({filt}, 2 KB)")
    subs["FIG9_PEAKS"] = "; ".join(peaks)

    # Table 3: workload,architecture,BL,TL
    t3 = {(r[0], r[1]): (r[2], r[3]) for r in rows("table3")[1:]}
    arch = {
        "PULL2": "2 KB L1, no L2",
        "PULL16": "16 KB L1, no L2",
        "L2_2": "2 KB L1, 2 MB L2",
        "L2_4": "2 KB L1, 4 MB L2",
        "L2_8": "2 KB L1, 8 MB L2",
    }
    for wl, tag in (("village", "V"), ("city", "C")):
        for k, label in arch.items():
            subs[f"T3_{tag}_{k}"] = t3[(wl, label)][1]  # trilinear column
    v_pull = float(t3[("village", arch["PULL2"])][1])
    v_l2 = float(t3[("village", arch["L2_2"])][1])
    c_pull = float(t3[("city", arch["PULL2"])][1])
    c_l2 = float(t3[("city", arch["L2_2"])][1])
    subs["V_PULL2_SCALED"] = f"{v_pull * (1024 * 768) / (640 * 480):.0f}"
    subs["V_SAVE_2MB"] = f"{v_pull / v_l2:.0f}"
    subs["C_SAVE_2MB"] = f"{c_pull / c_l2:.0f}"

    # Tables 5-6: workload,filter,L1,L2full,L2partial
    for r in rows("table5_6")[1:]:
        tag = f"T56_{'V' if r[0] == 'village' else 'C'}_{'BL' if r[1] == 'bilinear' else 'TL'}"
        subs[tag] = f"{r[2]} | {r[3]} | {r[4]}"

    # Table 7: workload,filter,f(c=2),f(c=4),f(c=8),f(c=16)
    for r in rows("table7")[1:]:
        tag = f"T7_{'V' if r[0] == 'village' else 'C'}_{'BL' if r[1] == 'bilinear' else 'TL'}"
        subs[tag] = r[4]

    # Table 8: entries,village,city,paper...
    for r in rows("table8")[1:]:
        subs[f"T8_{r[0]}V"] = f"{r[1]} %"
        subs[f"T8_{r[0]}C"] = f"{r[2]} %"

    # Clock search stats from the replacement ablation.
    clock_rows = [r for r in rows("ablate_replacement")[1:] if r[1] == "clock"]
    subs["CLOCK_SEARCH"] = max(int(r[4]) for r in clock_rows)
    subs["CLOCK_CYCLES"] = max(int(r[5]) for r in clock_rows)

    missing = []
    for key, val in subs.items():
        token = f"«{key}»"
        if token not in text:
            missing.append(key)
        text = text.replace(token, str(val))
    leftovers = re.findall(r"«[A-Z0-9_]+»", text)
    MD.write_text(text)
    if missing:
        print(f"warning: placeholders not found in md: {missing}")
    if leftovers:
        print(f"warning: unfilled placeholders remain: {leftovers}")
        sys.exit(1)
    print("EXPERIMENTS.md filled")


if __name__ == "__main__":
    main()
