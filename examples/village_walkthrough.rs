//! The Village walk-through end-to-end: working-set statistics (paper §4)
//! plus the architecture bandwidth comparison of Fig. 10, on one run.
//!
//! ```text
//! cargo run --release --example village_walkthrough [--default|--quick]
//! ```

use mltc::core::{EngineConfig, L1Config, L2Config};
use mltc::experiments::{engine_run_all, stats_run, TraceStore};
use mltc::scene::{Workload, WorkloadParams};
use mltc::trace::{FilterMode, TileClass};

fn main() {
    let params = if std::env::args().any(|a| a == "--default") {
        WorkloadParams::default_scale()
    } else {
        WorkloadParams::quick()
    };
    let village = Workload::village(&params);
    let store = TraceStore::in_memory();
    println!(
        "Village walk-through: {}x{}, {} frames",
        village.width, village.height, village.frame_count
    );

    // Section 4 statistics (point-sampled).
    let bundle = stats_run(&store, &village);
    let (frames, summary) = (&bundle.frames, &bundle.summary);
    println!("\n-- locality and working sets (paper §4) --");
    println!(
        "depth complexity d       : {:.2}   (paper: 3.8)",
        summary.depth_complexity
    );
    println!(
        "block utilization (16x16): {:.2}   (paper: 4.7)",
        summary.utilization_16
    );
    println!(
        "expected working set W   : {:.2} MB (paper: 2.43 MB at 1024x768)",
        summary.expected_working_set / (1 << 20) as f64
    );
    let mean_push = frames.iter().map(|f| f.push_min_bytes).sum::<u64>() as f64
        / frames.len() as f64
        / (1 << 20) as f64;
    println!(
        "push minimum             : {:.2} MB mean | L2 16x16 minimum: {:.2} MB mean",
        mean_push,
        summary.mean_total_bytes[TileClass::L2x16.idx()] / (1 << 20) as f64
    );

    // Section 5.3 bandwidth comparison (trilinear).
    println!("\n-- download bandwidth (paper Fig. 10, trilinear) --");
    let base = EngineConfig::default();
    let configs = vec![
        EngineConfig {
            l1: L1Config::kb(2),
            ..base
        },
        EngineConfig {
            l1: L1Config::kb(16),
            ..base
        },
        EngineConfig {
            l1: L1Config::kb(2),
            l2: Some(L2Config::mb(2)),
            ..base
        },
        EngineConfig {
            l1: L1Config::kb(2),
            l2: Some(L2Config::mb(4)),
            ..base
        },
        EngineConfig {
            l1: L1Config::kb(2),
            l2: Some(L2Config::mb(8)),
            ..base
        },
    ];
    let engines = engine_run_all(&store, &village, FilterMode::Trilinear, &configs, false)
        .expect("all walkthrough configurations are valid");
    println!(
        "{:<22} {:>12} {:>12}",
        "architecture", "MB/frame", "MB/s @30Hz"
    );
    for e in &engines {
        let mbf = e.totals().host_mb() / village.frame_count as f64;
        println!(
            "{:<22} {:>12.2} {:>12.0}",
            e.config().label(),
            mbf,
            mbf * 30.0
        );
    }
    let pull = engines[0].totals().host_bytes as f64;
    let ml = engines[2].totals().host_bytes as f64;
    println!(
        "\n2 MB L2 saves {:.1}x bandwidth over the vanilla pull architecture",
        pull / ml
    );
}
