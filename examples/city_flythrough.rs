//! The City fly-through end-to-end, with the texture page-table TLB study
//! of paper §5.4.3 on top of the bandwidth comparison.
//!
//! ```text
//! cargo run --release --example city_flythrough [--default|--quick]
//! ```

use mltc::core::{EngineConfig, L1Config, L2Config};
use mltc::experiments::{engine_run_all, stats_run, TraceStore};
use mltc::scene::{Workload, WorkloadParams};
use mltc::trace::FilterMode;

fn main() {
    let params = if std::env::args().any(|a| a == "--default") {
        WorkloadParams::default_scale()
    } else {
        WorkloadParams::quick()
    };
    let city = Workload::city(&params);
    let store = TraceStore::in_memory();
    println!(
        "City fly-through: {}x{}, {} frames, {} textures ({} buildings with unique facades)",
        city.width,
        city.height,
        city.frame_count,
        city.registry().live_count(),
        city.registry().live_count() - 3,
    );

    let summary = &stats_run(&store, &city).summary;
    println!(
        "\ndepth complexity d: {:.2} (paper: 1.9)",
        summary.depth_complexity
    );
    println!(
        "block utilization : {:.2} (paper: 7.8 at 1024x768)",
        summary.utilization_16
    );

    // Bandwidth with and without an L2 (bilinear).
    let base = EngineConfig::default();
    let configs = vec![
        EngineConfig {
            l1: L1Config::kb(2),
            ..base
        },
        EngineConfig {
            l1: L1Config::kb(2),
            l2: Some(L2Config::mb(2)),
            ..base
        },
    ];
    let engines = engine_run_all(&store, &city, FilterMode::Bilinear, &configs, false)
        .expect("all fly-through configurations are valid");
    println!("\n-- download traffic (bilinear) --");
    for e in &engines {
        println!(
            "{:<18} {:>8.2} MB/frame",
            e.config().label(),
            e.totals().host_mb() / city.frame_count as f64
        );
    }

    // TLB sweep (paper Fig. 11 / Table 8): how many page-table entries must
    // be cached on chip to hide translation latency?
    println!("\n-- texture page-table TLB (round robin, paper §5.4.3) --");
    let tlb_configs: Vec<EngineConfig> = [1usize, 2, 4, 8, 16]
        .iter()
        .map(|&n| EngineConfig {
            l1: L1Config::kb(2),
            l2: Some(L2Config::mb(2)),
            tlb_entries: n,
            ..base
        })
        .collect();
    let engines = engine_run_all(&store, &city, FilterMode::Bilinear, &tlb_configs, false)
        .expect("all TLB configurations are valid");
    println!("{:<12} {:>10}", "TLB entries", "hit rate");
    for e in &engines {
        println!(
            "{:<12} {:>9.1}%",
            e.config().tlb_entries,
            e.totals().tlb_hit_rate() * 100.0
        );
    }
    println!("(paper: 36% with 1 entry rising to ~92% with 16)");
}
