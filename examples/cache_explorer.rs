//! Interactive parameter explorer: sweep any combination of L1/L2/tiling/
//! filter on either workload from the command line.
//!
//! ```text
//! cargo run --release --example cache_explorer -- \
//!     [--workload village|city] [--l1-kb 2,4,16] [--l2-mb 0,2,8] \
//!     [--filter point|bilinear|trilinear] [--l2-tile 8|16|32] [--frames N]
//! ```
//!
//! `--l2-mb 0` means "no L2" (the pull architecture).

use mltc::core::{EngineConfig, L1Config, L2Config};
use mltc::experiments::{engine_run_all, TraceStore};
use mltc::scene::{Workload, WorkloadParams};
use mltc::texture::{TileSize, TilingConfig};
use mltc::trace::FilterMode;

fn parse_list(s: &str) -> Vec<usize> {
    s.split(',')
        .map(|v| v.trim().parse().expect("numeric list"))
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str, default: &str| -> String {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
            .unwrap_or_else(|| default.to_string())
    };

    let workload_name = get("--workload", "village");
    let l1_list = parse_list(&get("--l1-kb", "2,16"));
    let l2_list = parse_list(&get("--l2-mb", "0,2,8"));
    let frames: u32 = get("--frames", "24").parse().expect("frame count");
    let filter = match get("--filter", "trilinear").as_str() {
        "point" => FilterMode::Point,
        "bilinear" => FilterMode::Bilinear,
        _ => FilterMode::Trilinear,
    };
    let l2_tile = match get("--l2-tile", "16").as_str() {
        "8" => TileSize::X8,
        "32" => TileSize::X32,
        _ => TileSize::X16,
    };
    let tiling = TilingConfig::new(l2_tile, TileSize::X4).expect("valid tiling");

    let params = WorkloadParams {
        frames,
        ..WorkloadParams::quick()
    };
    let w = if workload_name == "city" {
        Workload::city(&params)
    } else {
        Workload::village(&params)
    };
    println!(
        "{} | {}x{} x {} frames | {} | L2 tiles {}",
        w.name, w.width, w.height, w.frame_count, filter, l2_tile
    );

    let mut configs = Vec::new();
    for &kb in &l1_list {
        for &mb in &l2_list {
            configs.push(EngineConfig {
                l1: L1Config::kb(kb),
                l2: (mb > 0).then(|| L2Config {
                    size_bytes: mb << 20,
                    ..L2Config::mb(2)
                }),
                tiling,
                ..EngineConfig::default()
            });
        }
    }

    let engines = engine_run_all(&TraceStore::in_memory(), &w, filter, &configs, false)
        .expect("all explorer configurations are valid");
    println!(
        "\n{:<22} {:>9} {:>9} {:>9} {:>9} {:>10}",
        "architecture", "L1 hit%", "L2 full%", "L2 part%", "MB/frame", "MB/s@30Hz"
    );
    for e in &engines {
        let t = e.totals();
        let mbf = t.host_mb() / w.frame_count as f64;
        println!(
            "{:<22} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>10.0}",
            e.config().label(),
            t.l1_hit_rate() * 100.0,
            t.l2_full_hit_rate() * 100.0,
            t.l2_partial_hit_rate() * 100.0,
            mbf,
            mbf * 30.0
        );
    }
}
