//! Timing probe: fast vs traced replay throughput, min-of-7 per variant
//! so scheduler/multi-tenant interference doesn't drown the comparison
//! (see DESIGN.md §8). Run with
//! `cargo run --release --example replay_timing`.
use mltc_core::{EngineConfig, L1Config, L2Config, SimEngine};
use mltc_scene::{Workload, WorkloadParams};
use mltc_trace::{FilterMode, FrameTrace};
use std::time::Instant;

fn main() {
    let w = Workload::village(&WorkloadParams::quick());
    let mut frames: Vec<FrameTrace> = Vec::new();
    w.render_animation(FilterMode::Point, false, |t| frames.push(t));
    let ml = EngineConfig {
        l1: L1Config::kb(2),
        l2: Some(L2Config::mb(2)),
        tlb_entries: 16,
        ..EngineConfig::default()
    };
    let pull = EngineConfig {
        l1: L1Config::kb(2),
        ..EngineConfig::default()
    };
    for (cname, cfg) in [("ml  ", ml), ("pull", pull)] {
        for filter in [FilterMode::Bilinear, FilterMode::Trilinear] {
            for (label, traced) in [("fast  ", false), ("traced", true)] {
                let mut best = f64::MAX;
                let mut taps = 0u64;
                for _ in 0..7 {
                    let mut e = SimEngine::try_new(cfg, w.registry()).unwrap();
                    let t0 = Instant::now();
                    for f in &frames {
                        if traced {
                            e.try_run_frame_as_traced(f, filter).unwrap();
                        } else {
                            e.try_run_frame_as(f, filter).unwrap();
                        }
                    }
                    best = best.min(t0.elapsed().as_secs_f64());
                    taps = e.totals().l1_accesses;
                }
                println!(
                    "{cname} {filter:?} {label}: best {best:6.3}s  {:.1} Mtaps/s",
                    taps as f64 / best / 1e6
                );
            }
        }
    }
}
