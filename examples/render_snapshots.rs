//! Renders Fig.-12-style shaded snapshots of both workloads to PPM files.
//!
//! ```text
//! cargo run --release --example render_snapshots -- [out_dir]
//! ```

use mltc::scene::{Workload, WorkloadParams};
use mltc::trace::FilterMode;
use std::path::PathBuf;

fn main() {
    let out: PathBuf = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "snapshots".to_string())
        .into();
    std::fs::create_dir_all(&out).expect("create output directory");

    let params = WorkloadParams {
        width: 640,
        height: 480,
        ..WorkloadParams::quick()
    };
    for w in [Workload::village(&params), Workload::city(&params)] {
        for q in 0..3u32 {
            let frame = (w.frame_count - 1) * q / 2;
            let fb = w.render_snapshot(frame, FilterMode::Bilinear);
            let path = out.join(format!("{}_{frame:04}.ppm", w.name));
            fb.save_ppm(&path).expect("write snapshot");
            println!("wrote {}", path.display());
        }
    }
    println!("\nview with any PPM-capable viewer, e.g. `magick display` or GIMP");
}
