//! Record a workload's texture-access traces to a binary file, then replay
//! them through several cache configurations without re-rendering — the
//! paper's trace-driven methodology as a workflow.
//!
//! ```text
//! cargo run --release --example record_replay -- [trace_file]
//! ```

use mltc::core::{EngineConfig, L1Config, L2Config, SimEngine};
use mltc::scene::{Workload, WorkloadParams};
use mltc::trace::codec::{TraceReader, TraceWriter};
use mltc::trace::FilterMode;
use std::fs::File;
use std::io::{BufReader, BufWriter};

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "village.trace".to_string());
    let params = WorkloadParams::quick();
    let village = Workload::village(&params);

    // Record: render once, stream every frame to disk.
    let t0 = std::time::Instant::now();
    {
        let mut writer = TraceWriter::new(BufWriter::new(File::create(&path).expect("create")));
        village.render_animation(FilterMode::Trilinear, false, |t| {
            writer.write_frame(&t).expect("write frame");
        });
    }
    let size = std::fs::metadata(&path).expect("stat").len();
    println!(
        "recorded {} frames to {path} ({:.1} MB) in {:.1}s",
        village.frame_count,
        size as f64 / (1 << 20) as f64,
        t0.elapsed().as_secs_f64()
    );

    // Replay: sweep architectures from the file, no rasterization at all.
    let t1 = std::time::Instant::now();
    println!("\n{:<22} {:>10}", "architecture", "MB/frame");
    for l2_mb in [0usize, 2, 8] {
        let cfg = EngineConfig {
            l1: L1Config::kb(2),
            l2: (l2_mb > 0).then(|| L2Config::mb(l2_mb)),
            ..EngineConfig::default()
        };
        let mut engine = SimEngine::new(cfg, village.registry());
        let mut reader = TraceReader::new(BufReader::new(File::open(&path).expect("open")));
        while let Some(t) = reader.read_frame().expect("read frame") {
            engine.run_frame(&t);
        }
        println!(
            "{:<22} {:>10.2}",
            cfg.label(),
            engine.totals().host_mb() / village.frame_count as f64
        );
    }
    println!(
        "\nreplayed 3 architectures in {:.1}s",
        t1.elapsed().as_secs_f64()
    );
    println!("inspect the trace with: cargo run --release -p mltc-trace --bin tracetool -- {path}");
}
