//! Quickstart: build a workload, trace a few frames, and compare the pull
//! architecture against 2-level texture caching.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mltc::core::{EngineConfig, L1Config, L2Config, SimEngine};
use mltc::scene::{Workload, WorkloadParams};
use mltc::trace::FilterMode;

fn main() {
    // A small Village: 256x192 screen, 24 frames, quarter-size textures.
    let params = WorkloadParams::quick();
    let village = Workload::village(&params);
    println!(
        "built '{}': {} objects, {} triangles, {} textures ({:.1} MB host memory)",
        village.name,
        village.scene().objects().len(),
        village.scene().triangle_count(),
        village.registry().live_count(),
        village.registry().host_byte_size() as f64 / (1 << 20) as f64,
    );

    // Two architectures fed from the same traces:
    //   pull  = 2 KB on-chip L1 only, every miss downloads over AGP;
    //   multi = the paper's proposal, a 2 MB L2 in local memory under the L1.
    let mut pull = SimEngine::new(
        EngineConfig {
            l1: L1Config::kb(2),
            ..EngineConfig::default()
        },
        village.registry(),
    );
    let mut multi = SimEngine::new(
        EngineConfig {
            l1: L1Config::kb(2),
            l2: Some(L2Config::mb(2)),
            ..EngineConfig::default()
        },
        village.registry(),
    );

    village.render_animation(FilterMode::Trilinear, false, |trace| {
        pull.run_frame(&trace);
        multi.run_frame(&trace);
    });

    println!("\nframe  pull MB  multi-level MB");
    for (i, (p, m)) in pull.frames().iter().zip(multi.frames()).enumerate() {
        if i % 4 == 0 {
            println!("{i:>5}  {:>7.2}  {:>14.2}", p.host_mb(), m.host_mb());
        }
    }

    let (pt, mt) = (pull.totals(), multi.totals());
    println!("\nL1 hit rate: {:.2}%", pt.l1_hit_rate() * 100.0);
    println!(
        "L2 (conditional on L1 miss): {:.1}% full hits, {:.1}% partial hits",
        mt.l2_full_hit_rate() * 100.0,
        mt.l2_partial_hit_rate() * 100.0
    );
    println!(
        "host download traffic: pull {:.1} MB vs multi-level {:.1} MB  ({:.1}x saved)",
        pt.host_mb(),
        mt.host_mb(),
        pt.host_bytes as f64 / mt.host_bytes.max(1) as f64
    );
}
