//! Cross-crate telemetry guarantees: the JSONL export is a faithful view
//! of what the engine reports, and a detached recorder costs (next to)
//! nothing on the texel path.

use mltc::core::{EngineConfig, L1Config, L2Config, SimEngine, FRAME_SERIES_COLUMNS};
use mltc::raster::FilterMode;
use mltc::scene::{Workload, WorkloadParams};
use mltc::telemetry::{export, Recorder};

fn tiny_village() -> Workload {
    Workload::village(&WorkloadParams::tiny())
}

fn cfg() -> EngineConfig {
    EngineConfig {
        l1: L1Config::kb(2),
        l2: Some(L2Config::mb(2)),
        ..EngineConfig::default()
    }
}

fn run_animation(engine: &mut SimEngine, w: &Workload, filter: FilterMode) {
    for i in 0..w.frame_count {
        let trace = w.trace_frame(i, filter);
        engine.run_frame(&trace);
    }
}

/// Pulls `"key":<int>` out of one JSONL line.
fn field(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Golden round-trip: export the per-frame series as JSONL, parse it back,
/// and check the column sums equal the totals the engine itself reports.
#[test]
fn jsonl_export_round_trips_engine_totals() {
    let w = tiny_village();
    let rec = Recorder::enabled();
    let mut engine = SimEngine::new(cfg(), w.scene().registry());
    engine.attach_telemetry(&rec, "golden-run", "village");
    run_animation(&mut engine, &w, FilterMode::Bilinear);
    let totals = engine.totals();

    let snap = rec.snapshot();
    let mut jsonl = Vec::new();
    export::write_series_jsonl(&snap.series, &mut jsonl).unwrap();
    let jsonl = String::from_utf8(jsonl).unwrap();

    let rows: Vec<&str> = jsonl
        .lines()
        .filter(|l| l.contains("\"series\":\"golden-run\""))
        .collect();
    assert_eq!(rows.len(), w.frame_count as usize, "one line per frame");

    let sum = |key: &str| -> u64 {
        rows.iter()
            .map(|l| field(l, key).unwrap_or_else(|| panic!("no {key} in {l}")))
            .sum()
    };
    assert_eq!(sum("l1_accesses"), totals.l1_accesses);
    assert_eq!(sum("l1_hits"), totals.l1_hits);
    assert_eq!(sum("l2_full_hits"), totals.l2_full_hits);
    assert_eq!(sum("l2_partial_hits"), totals.l2_partial_hits);
    assert_eq!(sum("l2_full_misses"), totals.l2_full_misses);
    assert_eq!(sum("host_bytes"), totals.host_bytes);
    assert_eq!(sum("l2_local_bytes"), totals.l2_local_bytes);
    // Frame numbers come through in order, and every declared column is
    // present on every line.
    for (i, line) in rows.iter().enumerate() {
        assert_eq!(field(line, "frame"), Some(i as u64));
        for col in FRAME_SERIES_COLUMNS {
            assert!(field(line, col).is_some(), "line {i} lacks {col}");
        }
    }
}

/// The CSV exporter agrees with the JSONL exporter on the same snapshot.
#[test]
fn csv_export_matches_engine_row_count() {
    let w = tiny_village();
    let rec = Recorder::enabled();
    let mut engine = SimEngine::new(cfg(), w.scene().registry());
    engine.attach_telemetry(&rec, "csv-run", "village");
    run_animation(&mut engine, &w, FilterMode::Bilinear);

    let snap = rec.snapshot();
    let mut csv = Vec::new();
    export::write_series_csv(&snap.series, &mut csv).unwrap();
    let csv = String::from_utf8(csv).unwrap();
    let data_rows = csv.lines().skip(1).filter(|l| !l.is_empty()).count();
    assert_eq!(data_rows, w.frame_count as usize);
    let header = csv.lines().next().unwrap();
    for col in FRAME_SERIES_COLUMNS {
        assert!(header.contains(col), "CSV header lacks {col}");
    }
}

/// The overhead contract, as an assertion: a detached engine and one whose
/// attach was refused by a disabled recorder run the same code, produce
/// bit-identical counters, and stay within a (very generous) factor of
/// each other in wall time. A real regression here — say an unconditional
/// format! or lock on the texel path — blows past 4x immediately.
#[test]
fn disabled_recorder_costs_nothing_measurable() {
    let w = tiny_village();
    let filter = FilterMode::Bilinear;
    // Warm up: render all traces once so timing measures simulation only.
    let traces: Vec<_> = (0..w.frame_count)
        .map(|i| w.trace_frame(i, filter))
        .collect();

    let mut plain = SimEngine::new(cfg(), w.scene().registry());
    let t0 = std::time::Instant::now();
    for t in &traces {
        plain.run_frame(t);
    }
    let plain_time = t0.elapsed();

    let disabled = Recorder::disabled();
    let mut gated = SimEngine::new(cfg(), w.scene().registry());
    gated.attach_telemetry(&disabled, "unused", "village");
    assert!(
        !gated.telemetry_attached(),
        "a disabled recorder must refuse attachment"
    );
    let t1 = std::time::Instant::now();
    for t in &traces {
        gated.run_frame(t);
    }
    let gated_time = t1.elapsed();

    assert_eq!(plain.totals(), gated.totals(), "identical counters");
    assert_eq!(plain.frames(), gated.frames());
    assert!(
        gated_time < plain_time * 4 + std::time::Duration::from_millis(50),
        "disabled-telemetry run took {gated_time:?} vs {plain_time:?} plain"
    );
    // And the disabled recorder itself gathered nothing.
    let snap = disabled.snapshot();
    assert!(snap.counters.is_empty());
    assert!(snap.series.is_empty());
    assert!(snap.spans.is_empty());
}

/// Counters are bit-identical whether telemetry observes the run or not —
/// the integration-level version of the core crate's equivalence test.
#[test]
fn enabled_recorder_only_observes() {
    let w = tiny_village();
    let mut plain = SimEngine::new(cfg(), w.scene().registry());
    run_animation(&mut plain, &w, FilterMode::Trilinear);

    let rec = Recorder::enabled();
    let mut observed = SimEngine::new(cfg(), w.scene().registry());
    observed.attach_telemetry(&rec, "observed", "village");
    run_animation(&mut observed, &w, FilterMode::Trilinear);

    assert_eq!(plain.totals(), observed.totals());
    assert_eq!(plain.frames(), observed.frames());
    let snap = rec.snapshot();
    assert_eq!(
        snap.counters["engine/village/l1_hits"],
        plain.totals().l1_hits
    );
}
