//! Golden tests for the persisted trace store: a trace written to disk and
//! reloaded by a fresh store must drive the simulator to bit-identical
//! counters, and damaged files — truncated, corrupted, or written by a
//! different format version — must be rejected with a re-render, never a
//! panic.

use mltc::core::{EngineConfig, FrameCounters, L1Config, L2Config};
use mltc::experiments::{engine_run_all, TraceStore};
use mltc::scene::{Workload, WorkloadParams};
use mltc::trace::FilterMode;
use std::path::{Path, PathBuf};

fn tiny_village() -> Workload {
    Workload::village(&WorkloadParams::tiny())
}

fn configs() -> Vec<EngineConfig> {
    vec![
        EngineConfig {
            l1: L1Config::kb(2),
            ..EngineConfig::default()
        },
        EngineConfig {
            l1: L1Config::kb(2),
            l2: Some(L2Config::mb(2)),
            ..EngineConfig::default()
        },
    ]
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mltc_golden_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs the full pipeline against a fresh store over `dir` and returns the
/// per-configuration totals plus the store's counters.
fn run_totals(dir: &Path, w: &Workload) -> (Vec<FrameCounters>, mltc::experiments::StoreStats) {
    let store = TraceStore::persistent(dir);
    let engines = engine_run_all(&store, w, FilterMode::Trilinear, &configs(), false)
        .expect("valid configurations");
    (
        engines.iter().map(|e| e.totals()).collect(),
        store.snapshot(),
    )
}

fn trace_files(dir: &Path) -> Vec<PathBuf> {
    std::fs::read_dir(dir)
        .expect("trace dir exists after a cold run")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "mltct"))
        .collect()
}

#[test]
fn persisted_and_reloaded_trace_is_bit_identical() {
    let dir = temp_dir("roundtrip");
    let w = tiny_village();

    let (cold, cold_stats) = run_totals(&dir, &w);
    assert_eq!(cold_stats.renders, 1, "cold run rasterizes once");
    assert!(!trace_files(&dir).is_empty(), "cold run persisted a file");

    // A brand-new store over the same directory: zero rasterization, and
    // every counter of every configuration matches the cold run exactly.
    let (warm, warm_stats) = run_totals(&dir, &w);
    assert_eq!(warm_stats.renders, 0, "warm run must not rasterize");
    assert!(warm_stats.disk_hits >= 1);
    assert_eq!(cold, warm, "replay from disk must be bit-identical");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_file_is_rejected_and_healed_by_a_rerender() {
    let dir = temp_dir("truncate");
    let w = tiny_village();
    let (cold, _) = run_totals(&dir, &w);

    for f in trace_files(&dir) {
        let len = std::fs::metadata(&f).unwrap().len();
        let file = std::fs::OpenOptions::new().write(true).open(&f).unwrap();
        file.set_len(len / 2).unwrap();
    }

    let (healed, stats) = run_totals(&dir, &w);
    assert!(stats.corrupt_files >= 1, "truncation must be detected");
    assert_eq!(stats.renders, 1, "the damaged trace re-renders");
    assert_eq!(cold, healed, "results survive the corruption");

    // The re-render rewrote the file: a third store loads it cleanly.
    let (reloaded, stats) = run_totals(&dir, &w);
    assert_eq!(stats.renders, 0, "healed file loads without rasterizing");
    assert_eq!(stats.corrupt_files, 0);
    assert_eq!(cold, reloaded);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn garbage_bytes_are_rejected_not_a_panic() {
    let dir = temp_dir("garbage");
    let w = tiny_village();
    let (cold, _) = run_totals(&dir, &w);

    for f in trace_files(&dir) {
        // Keep the length plausible but destroy the content entirely.
        let len = std::fs::metadata(&f).unwrap().len() as usize;
        std::fs::write(&f, vec![0xA5u8; len]).unwrap();
    }

    let (healed, stats) = run_totals(&dir, &w);
    assert!(stats.corrupt_files >= 1);
    assert_eq!(stats.renders, 1);
    assert_eq!(cold, healed);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wrong_format_version_is_rejected_not_a_panic() {
    let dir = temp_dir("version");
    let w = tiny_village();
    let (cold, _) = run_totals(&dir, &w);

    for f in trace_files(&dir) {
        // The container header is magic (4 bytes) then a little-endian
        // format version; stamp a version from the future.
        let mut bytes = std::fs::read(&f).unwrap();
        bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
        std::fs::write(&f, bytes).unwrap();
    }

    let (healed, stats) = run_totals(&dir, &w);
    assert!(stats.corrupt_files >= 1, "future versions must be rejected");
    assert_eq!(stats.renders, 1);
    assert_eq!(cold, healed);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn foreign_key_in_the_right_file_name_is_stale_not_wrong() {
    let dir = temp_dir("stale");
    let v = tiny_village();
    let c = Workload::city(&WorkloadParams::tiny());
    let (cold_v, _) = run_totals(&dir, &v);
    {
        let store = TraceStore::persistent(&dir);
        engine_run_all(&store, &c, FilterMode::Trilinear, &configs(), false).unwrap();
    }

    // Swap the two files: each now holds a well-formed trace whose embedded
    // key disagrees with the name the store will look it up under.
    let files = trace_files(&dir);
    assert_eq!(files.len(), 2);
    let tmp = dir.join("swap.tmp");
    std::fs::rename(&files[0], &tmp).unwrap();
    std::fs::rename(&files[1], &files[0]).unwrap();
    std::fs::rename(&tmp, &files[1]).unwrap();

    let (healed, stats) = run_totals(&dir, &v);
    assert!(stats.stale_files >= 1, "key mismatch must be detected");
    assert_eq!(stats.renders, 1, "the mismatched trace re-renders");
    assert_eq!(cold_v, healed, "village results are unaffected");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crashed_writer_leftovers_are_swept_and_torn_files_healed() {
    let dir = temp_dir("crash");
    let w = tiny_village();
    let (cold, _) = run_totals(&dir, &w);

    // Simulate a writer that died mid-flight: a stale partial `.tmp` next
    // to the container (from a PID that is long gone), plus a torn tail on
    // the container itself — the on-disk shape an unclean shutdown leaves.
    let files = trace_files(&dir);
    assert!(!files.is_empty());
    let mut tmp_paths = Vec::new();
    for f in &files {
        let mut name = f.file_name().unwrap().to_os_string();
        name.push(".tmp.424242");
        let tmp = f.with_file_name(name);
        std::fs::write(&tmp, b"partial bytes from a dead writer").unwrap();
        tmp_paths.push(tmp);

        let bytes = std::fs::read(f).unwrap();
        std::fs::write(f, &bytes[..bytes.len() - 7]).unwrap();
    }

    let (healed, stats) = run_totals(&dir, &w);
    for tmp in &tmp_paths {
        assert!(!tmp.exists(), "stale tmp files are swept at store startup");
    }
    assert!(stats.corrupt_files >= 1, "the torn container is Damaged");
    assert_eq!(stats.renders, 1, "damage forces exactly one re-render");
    assert!(
        stats.healed_files >= 1,
        "the re-render re-persists the file"
    );
    assert_eq!(cold, healed, "results survive the crash damage");

    // After healing, a brand-new store over the directory is pristine.
    let (reloaded, stats) = run_totals(&dir, &w);
    assert_eq!(stats.renders, 0, "healed file loads without rasterizing");
    assert_eq!(stats.corrupt_files, 0);
    assert_eq!(stats.healed_files, 0);
    assert_eq!(cold, reloaded);

    let _ = std::fs::remove_dir_all(&dir);
}
