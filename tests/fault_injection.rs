//! Fault-injection integration: determinism guarantees of the faulty host
//! link and per-configuration failure isolation in the parallel harness,
//! all through the public API.

use mltc::core::{EngineConfig, EngineError, FaultPlan, L1Config, L2Config};
use mltc::experiments::{engine_run, engine_run_all, RunError, TraceStore};
use mltc::scene::{Workload, WorkloadParams};
use mltc::trace::FilterMode;

fn tiny_village() -> Workload {
    Workload::village(&WorkloadParams::tiny())
}

fn store() -> TraceStore {
    TraceStore::in_memory()
}

#[test]
fn zero_rate_plan_is_identical_to_no_plan() {
    // FaultPlan::none() must be a guaranteed no-op: every counter of every
    // frame matches an engine built without any fault configuration.
    let w = tiny_village();
    let base = EngineConfig {
        l1: L1Config::kb(2),
        l2: Some(L2Config::mb(2)),
        ..EngineConfig::default()
    };
    let configs = [
        base,
        EngineConfig {
            fault: FaultPlan::none(),
            ..base
        },
        // A nonzero seed alone changes nothing: with no failure modes
        // enabled the link never draws from it.
        EngineConfig {
            fault: FaultPlan {
                seed: 77,
                ..FaultPlan::none()
            },
            ..base
        },
    ];
    let engines = engine_run_all(&store(), &w, FilterMode::Trilinear, &configs, false).unwrap();
    assert_eq!(
        engines[0].frames(),
        engines[1].frames(),
        "explicit none() must be bit-identical"
    );
    assert_eq!(
        engines[0].frames(),
        engines[2].frames(),
        "an unused seed must change nothing"
    );
    let t = engines[0].totals();
    assert_eq!(t.retries, 0);
    assert_eq!(t.failed_transfers, 0);
    assert_eq!(t.degraded_taps + t.dropped_taps, 0);
}

#[test]
fn same_seed_and_rate_reproduce_identical_counters() {
    let w = tiny_village();
    let faulty = EngineConfig {
        l1: L1Config::kb(2),
        l2: Some(L2Config::mb(2)),
        fault: FaultPlan::with_rate(123, 50_000), // 5 % per attempt
        ..EngineConfig::default()
    };
    let st = store();
    let a = engine_run_all(&st, &w, FilterMode::Trilinear, &[faulty], false).unwrap();
    let b = engine_run_all(&st, &w, FilterMode::Trilinear, &[faulty], false).unwrap();
    assert_eq!(
        a[0].frames(),
        b[0].frames(),
        "same seed + rate must replay identically"
    );
    let t = a[0].totals();
    assert!(
        t.retries > 0 || t.failed_transfers > 0,
        "5 % must actually fire: {t:?}"
    );
    // The degradation invariant holds across the whole animation.
    assert_eq!(t.degraded_taps + t.dropped_taps, t.failed_transfers);
}

#[test]
fn architectures_degrade_differently_under_the_same_faults() {
    let w = tiny_village();
    let fault = FaultPlan::with_rate(9, 200_000).attempts(1); // 20 %, no retries
    let configs = [
        EngineConfig {
            l1: L1Config::kb(2),
            fault,
            ..EngineConfig::default()
        },
        EngineConfig {
            l1: L1Config::kb(2),
            l2: Some(L2Config::mb(2)),
            fault,
            ..EngineConfig::default()
        },
    ];
    let engines = engine_run_all(&store(), &w, FilterMode::Trilinear, &configs, false).unwrap();
    let pull = engines[0].totals();
    let ml = engines[1].totals();
    // Pull has no fallback: every failed transfer is a dropped tap.
    assert!(pull.failed_transfers > 0);
    assert_eq!(pull.dropped_taps, pull.failed_transfers);
    assert_eq!(pull.degraded_taps, 0);
    // The multi-level design serves at least some failures from coarser
    // mips already resident in L2.
    assert!(ml.failed_transfers > 0);
    assert_eq!(ml.degraded_taps + ml.dropped_taps, ml.failed_transfers);
    assert!(
        ml.degraded_taps > 0,
        "an L2 should degrade rather than drop: {ml:?}"
    );
}

#[test]
fn one_bad_config_does_not_poison_the_batch() {
    let w = tiny_village();
    let good = EngineConfig {
        l1: L1Config::kb(2),
        ..EngineConfig::default()
    };
    let bad = EngineConfig {
        l1: L1Config {
            size_bytes: 3072,
            ..L1Config::kb(2)
        }, // 24 sets: not a power of two
        ..EngineConfig::default()
    };
    let st = store();
    let results = engine_run(&st, &w, FilterMode::Bilinear, &[good, bad, good], false);
    assert!(results[0].is_ok() && results[2].is_ok());
    assert!(matches!(
        &results[1],
        Err(RunError::Engine(EngineError::InvalidGeometry(_)))
    ));
    for idx in [0, 2] {
        let e = results[idx].as_ref().unwrap();
        assert_eq!(
            e.frames().len(),
            w.frame_count as usize,
            "survivor {idx} saw every frame"
        );
    }
    // The surviving runs match a clean solo run exactly.
    let solo = engine_run_all(&st, &w, FilterMode::Bilinear, &[good], false).unwrap();
    assert_eq!(results[0].as_ref().unwrap().frames(), solo[0].frames());
}
