//! Golden bit-identity: every committed trace, replayed through the
//! monomorphized batch fast path and through the canonical per-tap traced
//! path, must produce identical per-frame counters, identical cache/host
//! end state, and identical telemetry — across every specialization the
//! fast path monomorphizes over (L2 on/off, TLB on/off, telemetry on/off,
//! all three filters).

use mltc_core::{EngineConfig, L1Config, L2Config, ReplacementPolicy, SimEngine};
use mltc_oracle::TraceKey;
use mltc_telemetry::Recorder;
use mltc_trace::codec::TraceFileReader;
use mltc_trace::{FilterMode, FrameTrace};
use std::fs::File;
use std::io::BufReader;
use std::path::PathBuf;

fn traces_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("results/traces")
}

/// Every committed trace, decoded in full, with its rebuilt workload
/// (which owns the registry the engines need).
fn committed_traces() -> Vec<(String, mltc_scene::Workload, Vec<FrameTrace>)> {
    let mut out = Vec::new();
    let mut names: Vec<_> = std::fs::read_dir(traces_dir())
        .expect("committed traces directory exists")
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "mltct"))
        .collect();
    names.sort();
    assert!(!names.is_empty(), "no committed .mltct traces found");
    for path in names {
        let mut reader = TraceFileReader::new(BufReader::new(
            File::open(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display())),
        ))
        .expect("committed trace is a valid container");
        let key = TraceKey::parse(reader.key()).expect("committed trace has a parseable key");
        let workload = key.workload();
        let frames: Vec<FrameTrace> = (0..reader.frame_count())
            .map(|_| reader.read_frame().expect("committed trace decodes"))
            .collect();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        out.push((name, workload, frames));
    }
    out
}

/// The specialization matrix: one configuration per fast-path arm shape.
fn matrix() -> Vec<(&'static str, EngineConfig)> {
    let base = EngineConfig {
        l1: L1Config::kb(2),
        ..EngineConfig::default()
    };
    vec![
        // No L2: the pull-architecture arm.
        ("pull", base),
        // L2 + TLB, small enough that replacement and the TLB both churn.
        (
            "ml-tlb",
            EngineConfig {
                l2: Some(L2Config {
                    size_bytes: 64 * 1024,
                    ..L2Config::mb(1)
                }),
                tlb_entries: 4,
                ..base
            },
        ),
        // L2 without a TLB, clock replacement, sector mapping on.
        (
            "ml-sector",
            EngineConfig {
                l2: Some(L2Config {
                    size_bytes: 64 * 1024,
                    policy: ReplacementPolicy::Clock,
                    ..L2Config::mb(1)
                }),
                tlb_entries: 0,
                ..base
            },
        ),
    ]
}

fn replay(
    cfg: EngineConfig,
    workload: &mltc_scene::Workload,
    frames: &[FrameTrace],
    filter: FilterMode,
    traced: bool,
    rec: &Recorder,
) -> SimEngine {
    let registry = workload.scene().registry();
    let mut engine = SimEngine::try_new(cfg, registry).expect("matrix configs are valid");
    if rec.is_enabled() {
        engine.attach_telemetry(rec, "golden", "golden");
    }
    for t in frames {
        if traced {
            engine.try_run_frame_as_traced(t, filter).expect("replay");
        } else {
            engine.try_run_frame_as(t, filter).expect("replay");
        }
    }
    engine
}

#[test]
fn fast_path_is_bit_identical_to_traced_path_on_every_committed_trace() {
    for (name, workload, frames) in committed_traces() {
        for (label, cfg) in matrix() {
            for filter in [
                FilterMode::Point,
                FilterMode::Bilinear,
                FilterMode::Trilinear,
            ] {
                for telemetry in [false, true] {
                    let (rec_fast, rec_traced) = if telemetry {
                        (Recorder::enabled(), Recorder::enabled())
                    } else {
                        (Recorder::disabled(), Recorder::disabled())
                    };
                    let fast = replay(cfg, &workload, &frames, filter, false, &rec_fast);
                    let slow = replay(cfg, &workload, &frames, filter, true, &rec_traced);
                    let ctx = format!("{name} / {label} / {filter:?} / telemetry={telemetry}");
                    assert_eq!(fast.frames(), slow.frames(), "{ctx}: frame counters");
                    assert_eq!(fast.totals(), slow.totals(), "{ctx}: totals");
                    assert_eq!(
                        fast.l2().and_then(|l2| l2.clock_hand()),
                        slow.l2().and_then(|l2| l2.clock_hand()),
                        "{ctx}: clock hand"
                    );
                    assert_eq!(
                        fast.host().transfers(),
                        slow.host().transfers(),
                        "{ctx}: host transfer draws"
                    );
                    let (sf, st) = (rec_fast.snapshot(), rec_traced.snapshot());
                    assert_eq!(sf.counters, st.counters, "{ctx}: telemetry counters");
                    assert_eq!(sf.hists, st.hists, "{ctx}: telemetry histograms");
                }
            }
        }
    }
}

#[test]
fn fast_path_totals_are_nonzero_on_committed_traces() {
    // Guard against the golden test passing vacuously (empty traces or a
    // replay that silently does nothing).
    let (_, workload, frames) = committed_traces().remove(0);
    let (_, cfg) = matrix().remove(1);
    let fast = replay(
        cfg,
        &workload,
        &frames,
        FilterMode::Bilinear,
        false,
        &Recorder::disabled(),
    );
    assert!(fast.totals().l1_accesses > 0);
    assert!(fast.frames().len() == frames.len());
}
