//! End-to-end conformance: the committed tiny traces replayed through the
//! differential oracle, plus the divergence/shrink/repro pipeline driven
//! with a deliberately mismatched model pair.

use mltc_core::{EngineConfig, L1Config, L2Config, ReplacementPolicy, SimEngine};
use mltc_oracle::{
    expand_frame, replay_pair, DiffHarness, OracleEngine, Repro, TexelAccess, TraceKey,
};
use mltc_trace::codec::TraceFileReader;
use std::fs::File;
use std::io::BufReader;
use std::path::PathBuf;

fn traces_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("results/traces")
}

/// Loads a committed trace and expands it to a texel stream, returning the
/// rebuilt workload alongside (it owns the registry).
fn load(name: &str) -> (mltc_scene::Workload, Vec<TexelAccess>) {
    let path = traces_dir().join(name);
    let mut reader = TraceFileReader::new(BufReader::new(
        File::open(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display())),
    ))
    .expect("committed trace is a valid container");
    let key = TraceKey::parse(reader.key()).expect("committed trace has a parseable key");
    let workload = key.workload();
    let mut stream = Vec::new();
    for _ in 0..reader.frame_count() {
        let frame = reader.read_frame().expect("committed trace decodes");
        expand_frame(
            &frame,
            frame.filter,
            workload.scene().registry(),
            &mut stream,
        )
        .expect("trace tids exist in the rebuilt workload");
    }
    assert!(
        !stream.is_empty(),
        "tiny trace expands to a nonempty stream"
    );
    (workload, stream)
}

fn stress_cfg(policy: ReplacementPolicy) -> EngineConfig {
    EngineConfig {
        l1: L1Config::kb(2),
        l2: Some(L2Config {
            size_bytes: 64 * 1024, // 64 blocks: replacement actually runs
            policy,
            ..L2Config::mb(1)
        }),
        tlb_entries: 8,
        ..EngineConfig::default()
    }
}

#[test]
fn committed_city_trace_conforms_across_policies() {
    let (workload, stream) = load("city-64x48-f4-ts8-s5eed-late-scanline.mltct");
    let registry = workload.scene().registry();
    for policy in [
        ReplacementPolicy::Clock,
        ReplacementPolicy::Lru,
        ReplacementPolicy::Fifo,
    ] {
        let harness = DiffHarness::new(stress_cfg(policy), registry).unwrap();
        if let Err(div) = harness.replay(&stream) {
            panic!("policy {policy}: {div}");
        }
    }
}

#[test]
fn committed_village_trace_conforms_without_l2() {
    let (workload, stream) = load("village-64x48-f4-ts8-s5eed-late-scanline.mltct");
    let cfg = EngineConfig {
        l1: L1Config::kb(2),
        l2: None,
        ..EngineConfig::default()
    };
    let harness = DiffHarness::new(cfg, workload.scene().registry()).unwrap();
    harness.replay(&stream).expect("pull architecture conforms");
}

/// The full divergence pipeline on a deliberately mismatched pair: an
/// engine with more L2 capacity than the oracle must diverge; the shrunk
/// stream must stay small and round-trip through the repro JSON into a
/// registry that reproduces the divergence.
#[test]
fn mismatched_models_shrink_to_a_small_repro_that_roundtrips() {
    let (workload, stream) = load("city-64x48-f4-ts8-s5eed-late-scanline.mltct");
    let registry = workload.scene().registry();
    let small = EngineConfig {
        l2: Some(L2Config {
            size_bytes: 8 * 1024,
            ..stress_cfg(ReplacementPolicy::Clock).l2.unwrap()
        }),
        ..stress_cfg(ReplacementPolicy::Clock)
    };
    let big = stress_cfg(ReplacementPolicy::Clock);

    let mut engine = SimEngine::new(big, registry);
    let mut oracle = OracleEngine::new(small, registry);
    let div =
        replay_pair(&mut engine, &mut oracle, &stream).expect_err("capacity mismatch must diverge");

    // Shrink under the *small* config by replaying against a fresh oracle
    // pair per candidate: use the harness of the small config on a synthetic
    // "bug" — here we just assert the ddmin machinery produces a stream that
    // still triggers the divergence between the two configs.
    let mut cursor = stream[..=div.index].to_vec();
    // Greedy one-at-a-time shrink against the mismatched pair.
    let diverges = |accesses: &[TexelAccess]| {
        let mut e = SimEngine::new(big, registry);
        let mut o = OracleEngine::new(small, registry);
        replay_pair(&mut e, &mut o, accesses).is_err()
    };
    let mut i = 0;
    while cursor.len() > 1 && i < cursor.len() {
        let mut candidate = cursor.clone();
        candidate.remove(i);
        if diverges(&candidate) {
            cursor = candidate;
        } else {
            i += 1;
        }
    }
    assert!(
        cursor.len() <= 64,
        "shrunk repro should be tiny, got {} accesses",
        cursor.len()
    );
    assert!(diverges(&cursor), "shrunk stream still diverges");

    // Round-trip through the repro JSON and make sure the rebuilt registry
    // reproduces the same divergence.
    let repro = Repro::capture(div.to_string(), small, registry, &cursor);
    let parsed = Repro::parse(&repro.to_json().render()).expect("repro JSON parses back");
    assert_eq!(parsed, repro);
    let rebuilt = parsed.build_registry();
    let mut e = SimEngine::new(big, &rebuilt);
    let mut o = OracleEngine::new(parsed.config, &rebuilt);
    replay_pair(&mut e, &mut o, &parsed.accesses)
        .expect_err("repro reproduces the divergence on a rebuilt registry");
}

/// A healthy harness shrink is the identity on conforming streams, even on
/// real trace data.
#[test]
fn shrink_is_identity_on_conforming_trace_prefix() {
    let (workload, stream) = load("village-64x48-f4-ts8-s5eed-late-scanline.mltct");
    let harness = DiffHarness::new(
        stress_cfg(ReplacementPolicy::Lru),
        workload.scene().registry(),
    )
    .unwrap();
    let prefix = &stream[..stream.len().min(512)];
    assert_eq!(harness.shrink(prefix), prefix);
}
