//! Record/replay integration: traces serialised to the binary codec and
//! replayed must drive the caches identically to a live run.

use mltc::core::{EngineConfig, L1Config, L2Config, SimEngine};
use mltc::scene::{Workload, WorkloadParams};
use mltc::trace::codec::{TraceReader, TraceWriter};
use mltc::trace::FilterMode;

fn config() -> EngineConfig {
    EngineConfig {
        l1: L1Config::kb(2),
        l2: Some(L2Config::mb(2)),
        tlb_entries: 4,
        ..EngineConfig::default()
    }
}

#[test]
fn serialised_replay_matches_live_run() {
    let w = Workload::village(&WorkloadParams::tiny());

    // Live run, recording every frame to an in-memory trace file.
    let mut live = SimEngine::new(config(), w.registry());
    let mut file = Vec::new();
    {
        let mut writer = TraceWriter::new(&mut file);
        w.render_animation(FilterMode::Trilinear, false, |t| {
            writer.write_frame(&t).expect("record frame");
            live.run_frame(&t);
        });
    }
    assert!(!file.is_empty());

    // Replay run from the serialised traces.
    let mut replay = SimEngine::new(config(), w.registry());
    let mut reader = TraceReader::new(file.as_slice());
    let mut frames = 0;
    while let Some(t) = reader.read_frame().expect("read frame") {
        replay.run_frame(&t);
        frames += 1;
    }
    assert_eq!(frames, w.frame_count);

    // Bit-identical counters, frame by frame.
    assert_eq!(live.frames(), replay.frames());
    assert_eq!(live.totals(), replay.totals());
}

#[test]
fn recorded_traces_are_portable_across_configs() {
    // One recording drives arbitrarily many architectures (the paper's
    // methodology): record once, then sweep.
    let w = Workload::city(&WorkloadParams::tiny());
    let mut file = Vec::new();
    {
        let mut writer = TraceWriter::new(&mut file);
        w.render_animation(FilterMode::Bilinear, false, |t| {
            writer.write_frame(&t).expect("record frame");
        });
    }

    let mut results = Vec::new();
    for l2 in [None, Some(L2Config::mb(2))] {
        let mut engine = SimEngine::new(
            EngineConfig {
                l1: L1Config::kb(2),
                l2,
                ..EngineConfig::default()
            },
            w.registry(),
        );
        let mut reader = TraceReader::new(file.as_slice());
        while let Some(t) = reader.read_frame().unwrap() {
            engine.run_frame(&t);
        }
        results.push(engine.totals());
    }
    assert_eq!(
        results[0].l1_accesses, results[1].l1_accesses,
        "same trace, same accesses"
    );
    assert!(results[1].host_bytes <= results[0].host_bytes);
}

#[test]
fn rerendering_is_deterministic() {
    let params = WorkloadParams::tiny();
    let collect = |w: &Workload| {
        let mut out = Vec::new();
        w.render_animation(FilterMode::Trilinear, false, |t| out.push(t));
        out
    };
    let a = collect(&Workload::village(&params));
    let b = collect(&Workload::village(&params));
    assert_eq!(
        a, b,
        "two builds of the same workload must trace identically"
    );
}
