//! End-to-end integration: workload → trace → statistics → cache engines,
//! asserting the paper's qualitative results hold on the real pipeline.

use mltc::core::{EngineConfig, L1Config, L2Config};
use mltc::experiments::{engine_run_all, stats_run, TraceStore};
use mltc::scene::{Workload, WorkloadParams};
use mltc::trace::{FilterMode, TileClass};

fn tiny() -> WorkloadParams {
    WorkloadParams::tiny()
}

fn store() -> TraceStore {
    TraceStore::in_memory()
}

/// Denser-sampled params so inter-frame effects are visible.
fn smooth() -> WorkloadParams {
    WorkloadParams {
        frames: 30,
        ..WorkloadParams::tiny()
    }
}

#[test]
fn statistics_pipeline_produces_consistent_working_sets() {
    for w in [Workload::village(&tiny()), Workload::city(&tiny())] {
        let bundle = stats_run(&store(), &w);
        let (frames, summary) = (&bundle.frames, &bundle.summary);
        assert_eq!(frames.len(), w.frame_count as usize);
        for f in frames {
            // Finer tilings touch at least as many blocks as coarser ones...
            assert!(f.total_blocks[TileClass::L1x4.idx()] >= f.total_blocks[TileClass::L1x8.idx()]);
            assert!(
                f.total_blocks[TileClass::L2x8.idx()] >= f.total_blocks[TileClass::L2x16.idx()]
            );
            assert!(
                f.total_blocks[TileClass::L2x16.idx()] >= f.total_blocks[TileClass::L2x32.idx()]
            );
            // ...but coarser tilings cover at least as many bytes.
            assert!(f.total_bytes(TileClass::L2x32) >= f.total_bytes(TileClass::L2x16));
            assert!(f.total_bytes(TileClass::L2x16) >= f.total_bytes(TileClass::L2x8));
            // New blocks are a subset of touched blocks.
            for c in TileClass::ALL {
                assert!(f.new_blocks[c.idx()] <= f.total_blocks[c.idx()]);
            }
            // The push minimum can never exceed everything loaded.
            assert!(f.push_min_bytes <= w.registry().host_byte_size() as u64);
        }
        assert!(summary.depth_complexity > 1.0);
        assert!(summary.utilization_16 > 0.0);
    }
}

#[test]
fn l2_saves_memory_against_push_architecture() {
    // Paper finding (2): L2 caching requires significantly less memory than
    // the push architecture.
    let w = Workload::village(&tiny());
    let frames = &stats_run(&store(), &w).frames;
    let mean = |f: &dyn Fn(&mltc::trace::FrameWorkingSet) -> u64| {
        frames.iter().map(f).sum::<u64>() / frames.len() as u64
    };
    let push = mean(&|f| f.push_min_bytes);
    let l2 = mean(&|f| f.total_bytes(TileClass::L2x16));
    assert!(
        l2 * 2 < push,
        "L2 16x16 worst ({l2}) should be well under push minimum ({push})"
    );
}

#[test]
fn l2_saves_bandwidth_against_pull_architecture() {
    // Paper finding (3): L2 caching requires significantly less bandwidth
    // from host memory than the pull architecture.
    let w = Workload::village(&smooth());
    let configs = [
        EngineConfig {
            l1: L1Config::kb(2),
            ..EngineConfig::default()
        },
        EngineConfig {
            l1: L1Config::kb(2),
            l2: Some(L2Config::mb(2)),
            ..EngineConfig::default()
        },
    ];
    let engines = engine_run_all(&store(), &w, FilterMode::Trilinear, &configs, false).unwrap();
    // Skip warm-up: compare steady-state (last half of the animation).
    let half = w.frame_count as usize / 2;
    let late =
        |e: &mltc::core::SimEngine| e.frames()[half..].iter().map(|f| f.host_bytes).sum::<u64>();
    let pull = late(&engines[0]);
    let ml = late(&engines[1]);
    assert!(
        ml * 3 < pull,
        "steady-state L2 bandwidth ({ml}) should be a small fraction of pull ({pull})"
    );
}

#[test]
fn bigger_l1_and_bigger_l2_both_monotonically_reduce_traffic() {
    let w = Workload::city(&smooth());
    let mut configs = Vec::new();
    for kb in [2usize, 16] {
        configs.push(EngineConfig {
            l1: L1Config::kb(kb),
            ..EngineConfig::default()
        });
    }
    for mb in [1usize, 2, 4] {
        configs.push(EngineConfig {
            l1: L1Config::kb(2),
            l2: Some(L2Config::mb(mb)),
            ..EngineConfig::default()
        });
    }
    let engines = engine_run_all(&store(), &w, FilterMode::Bilinear, &configs, false).unwrap();
    let host: Vec<u64> = engines.iter().map(|e| e.totals().host_bytes).collect();
    assert!(
        host[1] <= host[0],
        "16 KB L1 must not download more than 2 KB L1"
    );
    assert!(
        host[3] <= host[2],
        "2 MB L2 must not download more than 1 MB L2"
    );
    assert!(
        host[4] <= host[3],
        "4 MB L2 must not download more than 2 MB L2"
    );
    // And L1 hit behaviour is identical across L2 sizes (paper §3.3).
    let l1_hits: Vec<u64> = engines[2..].iter().map(|e| e.totals().l1_hits).collect();
    assert!(
        l1_hits.windows(2).all(|w| w[0] == w[1]),
        "L1 isolated from L2 sweep: {l1_hits:?}"
    );
}

#[test]
fn interframe_reuse_dominates_after_warmup() {
    // Paper finding (1): significant re-use of texture between frames.
    // Dense frame sampling, as in the paper's 411-frame walk-through.
    let w = Workload::village(&WorkloadParams {
        frames: 80,
        ..WorkloadParams::tiny()
    });
    let frames = &stats_run(&store(), &w).frames;
    let steady = &frames[5..];
    let total: u64 = steady
        .iter()
        .map(|f| f.total_blocks[TileClass::L1x4.idx()])
        .sum();
    let new: u64 = steady
        .iter()
        .map(|f| f.new_blocks[TileClass::L1x4.idx()])
        .sum();
    assert!(
        new * 4 < total,
        "most L1 blocks should be re-used from the previous frame (new {new} / total {total})"
    );
}

#[test]
fn city_and_village_keep_their_calibrated_contrast() {
    let st = store();
    let v = stats_run(&st, &Workload::village(&tiny())).summary.clone();
    let c = stats_run(&st, &Workload::city(&tiny())).summary.clone();
    assert!(
        v.depth_complexity > c.depth_complexity,
        "village overdraws more than city"
    );
}

#[test]
fn filters_order_texel_traffic() {
    // Trilinear touches more texels than bilinear, which touches more than
    // point sampling, on the same frames.
    let w = Workload::village(&tiny());
    let st = store();
    let mut totals = Vec::new();
    for filter in [
        FilterMode::Point,
        FilterMode::Bilinear,
        FilterMode::Trilinear,
    ] {
        let engines = engine_run_all(
            &st,
            &w,
            filter,
            &[EngineConfig {
                l1: L1Config::kb(16),
                ..EngineConfig::default()
            }],
            false,
        )
        .unwrap();
        totals.push(engines[0].totals().l1_accesses);
    }
    assert!(totals[0] < totals[1] && totals[1] < totals[2], "{totals:?}");
    assert_eq!(totals[1], totals[0] * 4, "bilinear = 4 taps per pixel");
}

#[test]
fn infinite_l2_traffic_is_bounded_by_new_block_statistics() {
    // Two independent methodologies must agree: an effectively infinite L2
    // downloads each L1 sub-block at most once ever, so its total host
    // traffic can never exceed the §4 statistics' per-frame "new" L1 bytes
    // summed over the animation (which re-counts blocks that leave and
    // return).
    let w = Workload::village(&WorkloadParams {
        frames: 12,
        ..WorkloadParams::tiny()
    });
    let frames = &stats_run(&store(), &w).frames;
    let new_bytes_total: u64 = frames.iter().map(|f| f.new_bytes(TileClass::L1x4)).sum();

    let huge = EngineConfig {
        l1: L1Config::kb(2),
        l2: Some(L2Config {
            size_bytes: 512 << 20,
            ..L2Config::mb(2)
        }),
        ..EngineConfig::default()
    };
    let engines = engine_run_all(&store(), &w, FilterMode::Point, &[huge], false).unwrap();
    let host = engines[0].totals().host_bytes;
    assert!(
        host <= new_bytes_total,
        "infinite-L2 traffic {host} must be bounded by summed new-block bytes {new_bytes_total}"
    );
    // And it must at least download the last frame's distinct blocks once.
    let last_total = frames.last().unwrap().total_bytes(TileClass::L1x4);
    assert!(
        host >= last_total / 2,
        "sanity: {host} vs last frame {last_total}"
    );
}

#[test]
fn snapshots_and_traces_come_from_the_same_sampling() {
    // The shaded path and the trace path must agree on fragment counts.
    let w = Workload::village(&tiny());
    let trace = w.trace_frame(0, FilterMode::Bilinear);
    let fb = w.render_snapshot(0, FilterMode::Bilinear);
    assert_eq!(fb.width(), w.width);
    // Same scene, same camera: the snapshot covers the screen the trace saw.
    assert!(trace.pixels_rendered >= (w.width * w.height) as u64);
}
