//! Smoke-tests the experiment harness end-to-end at a tiny scale: every
//! registered experiment must run and leave its CSV artefacts behind.

use mltc::experiments::{find_experiment, Outputs, Scale, TraceStore, EXPERIMENTS};
use mltc::scene::WorkloadParams;

fn tiny_scale() -> Scale {
    Scale {
        name: "tiny",
        params: WorkloadParams::tiny(),
    }
}

fn temp_out(tag: &str) -> (Outputs, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("mltc_smoke_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    (Outputs::quiet(&dir), dir)
}

#[test]
fn every_experiment_runs_at_tiny_scale() {
    let scale = tiny_scale();
    let (out, dir) = temp_out("all");
    // One shared in-memory store: the whole suite renders each unique
    // animation exactly once.
    let store = TraceStore::in_memory();
    for (id, f) in EXPERIMENTS {
        f(&scale, &out, &store).unwrap_or_else(|e| panic!("experiment {id} failed: {e}"));
        // Each experiment leaves at least one CSV mentioning itself.
        let base = id.replace('-', "_");
        let found = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .any(|e| {
                e.file_name().to_string_lossy().starts_with(&base)
                    || e.file_name().to_string_lossy().starts_with(*id)
            });
        assert!(found, "experiment {id} left no artefacts");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn experiment_csvs_are_parseable_tables() {
    let scale = tiny_scale();
    let (out, dir) = temp_out("csv");
    let store = TraceStore::in_memory();
    for id in ["table1", "table2", "table4", "table7", "table8"] {
        find_experiment(id).unwrap()(&scale, &out, &store).unwrap();
        let csv = std::fs::read_to_string(dir.join(format!("{id}.csv"))).unwrap();
        let mut lines = csv.lines();
        let header_cols = lines.next().unwrap().split(',').count();
        let mut rows = 0;
        for line in lines {
            // Naive comma-splitting is only valid for unquoted rows.
            if !line.contains('"') {
                assert_eq!(
                    line.split(',').count(),
                    header_cols,
                    "{id}: ragged row {line}"
                );
            }
            rows += 1;
        }
        assert!(rows > 0, "{id} has no data rows");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn table2_hit_rates_behave_like_the_paper() {
    // At any scale: monotone in L1 size, and trilinear never beats bilinear
    // by much (trilinear touches two levels).
    let scale = tiny_scale();
    let (out, dir) = temp_out("t2");
    find_experiment("table2").unwrap()(&scale, &out, &TraceStore::in_memory()).unwrap();
    let csv = std::fs::read_to_string(dir.join("table2.csv")).unwrap();
    let rows: Vec<Vec<f64>> = csv
        .lines()
        .skip(1)
        .map(|l| l.split(',').skip(1).map(|v| v.parse().unwrap()).collect())
        .collect();
    assert_eq!(rows.len(), 5);
    for r in &rows {
        assert!(r[0] > 50.0 && r[0] <= 100.0, "bilinear hit rate {r:?}");
        assert!(r[1] > 50.0 && r[1] <= 100.0, "trilinear hit rate {r:?}");
    }
    // 32 KB must hit at least as well as 2 KB.
    assert!(rows[4][0] >= rows[0][0]);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fractional_advantage_is_below_one_with_an_effective_l2() {
    // The paper's headline performance claim (Table 7): with measured hit
    // rates, f < 1 even when a full L2 miss costs 8x an L1 download.
    let scale = Scale {
        name: "tiny",
        // More frames so the L2 warm-up amortises and f reflects steady state.
        params: WorkloadParams {
            frames: 24,
            ..WorkloadParams::tiny()
        },
    };
    let (out, dir) = temp_out("t7");
    find_experiment("table7").unwrap()(&scale, &out, &TraceStore::in_memory()).unwrap();
    let csv = std::fs::read_to_string(dir.join("table7.csv")).unwrap();
    for line in csv.lines().skip(1) {
        let cols: Vec<&str> = line.split(',').collect();
        let f_c8: f64 = cols[4].parse().unwrap();
        assert!(
            f_c8 < 1.5,
            "f(c=8) should be near/below 1, got {f_c8} in {line}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
