//! Containment contract for the multi-client texture service, exercised
//! end-to-end through the public facade: with a partitioned shared L2, a
//! poisoned client — whether its worker panics or its host link fails
//! every transfer — must be quarantined and reported, while every
//! survivor replays bit-identically to a solo engine given the same
//! per-client slice of the hierarchy.

use mltc::core::{FaultPlan, L2PartitionMode, QuarantineReason, ServiceConfig};
use mltc::experiments::{
    collect_frames, experiment_service_config, run_multi_client, solo_baseline, ClientSpec,
    MultiClientConfig, TraceStore,
};
use mltc::scene::{Workload, WorkloadParams};
use mltc::telemetry::Recorder;
use mltc::trace::FilterMode;

fn tiny_village() -> Workload {
    Workload::village(&WorkloadParams::tiny())
}

fn specs(n: usize, frames: usize) -> Vec<ClientSpec> {
    (0..n)
        .map(|i| ClientSpec {
            phase_offset: i * frames / n,
            ..ClientSpec::new(FilterMode::Bilinear)
        })
        .collect()
}

/// A bursty shared link — 2 of every 10 transfers fail all attempts — so
/// containment is proven under fire, not in a quiet system.
fn chaos_cfg() -> MultiClientConfig {
    MultiClientConfig {
        service: ServiceConfig {
            fault: FaultPlan {
                seed: 0x4d4c_5443,
                burst_period: 10,
                burst_len: 2,
                ..FaultPlan::none()
            },
            ..experiment_service_config(L2PartitionMode::Partitioned)
        },
        ..MultiClientConfig::default()
    }
}

#[test]
fn panicked_client_is_quarantined_and_survivors_match_solo_baselines() {
    let w = tiny_village();
    let store = TraceStore::in_memory();
    let frames = collect_frames(&store, &w).expect("tiny trace renders");
    let mut specs = specs(4, frames.len());
    specs[1].panic_at_frame = Some(1);
    let cfg = chaos_cfg();

    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let report = run_multi_client(w.registry(), &frames, &specs, &cfg, &Recorder::disabled())
        .expect("service constructs");
    std::panic::set_hook(prev_hook);

    // The poisoned client is quarantined and reported as such.
    assert_eq!(report.quarantined_ids(), vec![1]);
    assert!(matches!(
        report.clients[1].quarantined,
        Some(QuarantineReason::Panicked(_))
    ));
    assert!(!report.clients[1].is_survivor());

    // Every survivor completed the run and is bit-identical to a solo
    // engine over its own partition of the shared L2.
    for c in report.survivors() {
        assert_eq!(c.frames.len(), frames.len(), "survivor {} completed", c.id);
        let solo = solo_baseline(w.registry(), &frames, &specs, &cfg, c.id as usize)
            .expect("solo baseline replays");
        assert_eq!(
            c.frames,
            solo.frames(),
            "survivor {} diverged from its solo baseline",
            c.id
        );
    }
    assert_eq!(report.survivors().count(), 3);
}

#[test]
fn total_link_failure_is_scoped_to_the_faulted_client() {
    let w = tiny_village();
    let store = TraceStore::in_memory();
    let frames = collect_frames(&store, &w).expect("tiny trace renders");
    let mut specs = specs(4, frames.len());
    // Client 3's host link fails 100 % of transfers on the first (only)
    // attempt; everyone else rides the shared bursty link.
    specs[3].fault_override = Some(FaultPlan {
        max_attempts: 1,
        ..FaultPlan::with_rate(7, 1_000_000)
    });
    let cfg = chaos_cfg();

    let report = run_multi_client(w.registry(), &frames, &specs, &cfg, &Recorder::disabled())
        .expect("service constructs");

    // A failing link degrades the client; it must not poison anyone else.
    for c in &report.clients {
        assert!(c.error.is_none(), "client {} errored: {:?}", c.id, c.error);
        let solo = solo_baseline(w.registry(), &frames, &specs, &cfg, c.id as usize)
            .expect("solo baseline replays");
        assert_eq!(
            c.frames,
            solo.frames(),
            "client {} diverged from its solo baseline",
            c.id
        );
    }
    let faulted = &report.clients[3];
    assert!(
        faulted.totals.l2_full_misses > 0 || faulted.service.denied_transfers > 0,
        "the fault plan must actually bite"
    );
}
