//! Failure-injection integration tests: the system fails loudly and
//! precisely on misuse, and degrades gracefully where the paper's design
//! says it should.

use mltc::core::{EngineConfig, EngineError, L1Config, L2Config, SimEngine};
use mltc::scene::{Workload, WorkloadParams};
use mltc::texture::{synth, MipPyramid, TextureId, TextureRegistry, TileSize, TilingConfig};
use mltc::trace::codec::{CodecError, TraceReader};
use mltc::trace::{FilterMode, FrameTrace, PixelRequest};

fn one_texture_registry() -> TextureRegistry {
    let mut reg = TextureRegistry::new();
    reg.load(
        "t",
        MipPyramid::from_image(synth::checkerboard(64, 8, [0; 3], [255; 3])),
    );
    reg
}

#[test]
fn engine_rejects_traces_for_unknown_textures() {
    let reg = one_texture_registry();
    let mut e = SimEngine::new(
        EngineConfig {
            l1: L1Config::kb(2),
            l2: Some(L2Config::mb(2)),
            ..EngineConfig::default()
        },
        &reg,
    );
    let mut t = FrameTrace::new(0, 8, 8, FilterMode::Point);
    t.push(PixelRequest {
        tid: TextureId::from_index(42),
        u: 0.0,
        v: 0.0,
        lod: 0.0,
    });
    let err = e.try_run_frame(&t).unwrap_err();
    assert_eq!(err, EngineError::UnknownTexture(TextureId::from_index(42)));
    assert!(err.to_string().contains("unknown"));
}

#[test]
fn l2_engine_requires_textures() {
    let reg = TextureRegistry::new();
    let err = SimEngine::try_new(
        EngineConfig {
            l2: Some(L2Config::mb(2)),
            ..EngineConfig::default()
        },
        &reg,
    )
    .unwrap_err();
    assert_eq!(err, EngineError::EmptyPageTable);
    assert!(err.to_string().contains("empty texture page table"));
}

#[test]
fn invalid_geometry_is_a_typed_error() {
    let reg = one_texture_registry();
    let err = SimEngine::try_new(
        EngineConfig {
            l1: L1Config {
                ways: 0,
                ..L1Config::kb(2)
            },
            ..EngineConfig::default()
        },
        &reg,
    )
    .unwrap_err();
    assert!(matches!(err, EngineError::InvalidGeometry(_)));
    assert!(err.to_string().contains("at least one way"));
}

#[test]
fn out_of_range_texel_coords_are_a_typed_error() {
    let reg = one_texture_registry();
    let mut e = SimEngine::new(EngineConfig::default(), &reg);
    let tid = TextureId::from_index(0);
    let err = e.try_access_texel(tid, 0, 64, 0).unwrap_err();
    assert!(
        matches!(
            err,
            EngineError::CoordsOutOfRange {
                u: 64,
                v: 0,
                m: 0,
                ..
            }
        ),
        "{err:?}"
    );
    assert!(err.to_string().contains("out of range"));
}

#[test]
fn pull_engine_tolerates_empty_registry() {
    // Without an L2 there is no page table, so an empty registry is fine
    // until a texel access names a texture.
    let reg = TextureRegistry::new();
    let mut e = SimEngine::new(EngineConfig::default(), &reg);
    e.end_frame();
    assert_eq!(e.frame_stats().l1_accesses, 0);
}

#[test]
fn tiling_config_rejects_inverted_hierarchy() {
    assert!(TilingConfig::new(TileSize::X4, TileSize::X16).is_err());
    assert!(TilingConfig::new(TileSize::X8, TileSize::X8).is_err());
    let err = TilingConfig::new(TileSize::X4, TileSize::X32).unwrap_err();
    assert!(err.to_string().contains("smaller"));
}

#[test]
fn corrupt_trace_stream_reports_precise_errors() {
    let w = Workload::village(&WorkloadParams::tiny());
    let t = w.trace_frame(0, FilterMode::Point);
    let bytes = mltc::trace::codec::encode_frame(&t);

    // Flip the magic.
    let mut bad = bytes.to_vec();
    bad[1] ^= 0x55;
    let mut r = TraceReader::new(bad.as_slice());
    assert!(matches!(r.read_frame(), Err(CodecError::BadMagic(_))));

    // Cut the payload.
    let mut r = TraceReader::new(&bytes[..bytes.len() / 2]);
    assert!(matches!(r.read_frame(), Err(CodecError::Truncated)));

    // An empty stream is a clean end, not an error.
    let mut r = TraceReader::new(&[][..]);
    assert!(r.read_frame().unwrap().is_none());
}

#[test]
fn deleting_a_texture_mid_run_releases_l2_blocks_without_corruption() {
    let mut reg = TextureRegistry::new();
    let a = reg.load(
        "a",
        MipPyramid::from_image(synth::checkerboard(64, 8, [0; 3], [255; 3])),
    );
    let b = reg.load(
        "b",
        MipPyramid::from_image(synth::checkerboard(64, 8, [0; 3], [255; 3])),
    );
    let mut e = SimEngine::new(
        EngineConfig {
            l1: L1Config::kb(2),
            l2: Some(L2Config::mb(2)),
            ..EngineConfig::default()
        },
        &reg,
    );
    for v in (0..64).step_by(4) {
        for u in (0..64).step_by(4) {
            e.access_texel(a, 0, u, v);
            e.access_texel(b, 0, u, v);
        }
    }
    e.end_frame();
    let used_before = e.l2().unwrap().blocks_in_use();
    e.delete_texture(a);
    let used_after = e.l2().unwrap().blocks_in_use();
    assert!(used_after < used_before);
    // Texture b must be untouched: replaying it is all L2-full-hits.
    for v in (0..64).step_by(4) {
        for u in (0..64).step_by(4) {
            e.access_texel(b, 0, u, v);
        }
    }
    e.end_frame();
    let f = e.frame_stats();
    assert_eq!(
        f.l2_full_misses, 0,
        "b's pages must have survived a's deallocation"
    );
}

#[test]
fn workload_rejects_out_of_range_frames() {
    let w = Workload::city(&WorkloadParams::tiny());
    let result = std::panic::catch_unwind(|| w.camera_at(w.frame_count));
    assert!(
        result.is_err(),
        "frame index beyond the animation must panic"
    );
}

#[test]
fn engines_are_send_for_the_parallel_harness() {
    fn assert_send<T: Send>() {}
    assert_send::<SimEngine>();
    assert_send::<FrameTrace>();
}
