//! Criterion benchmarks for the `mltc` workspace.
//!
//! Three suites (run with `cargo bench -p mltc-bench`):
//!
//! * `micro` — simulator hot paths: ⟨u,v,m⟩ → ⟨tid,L2,L1⟩ translation, L1
//!   probes, L2 accesses (full hit and clock-swept miss), TLB lookups,
//!   filter-tap expansion, rasterizer fill rate;
//! * `tables` — one benchmark per paper table (1–8), each executing the
//!   harness code that regenerates it;
//! * `figures` — one benchmark per paper figure (3–12) and per ablation.
//!
//! This crate intentionally has no library API.
