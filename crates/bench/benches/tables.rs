//! One benchmark per paper **table**: each runs the exact harness code that
//! regenerates that table (at the tiny scale, so the suite stays fast).

use criterion::{criterion_group, criterion_main, Criterion};
use mltc_experiments::{Outputs, Scale, TraceStore};
use mltc_scene::WorkloadParams;

fn tiny() -> Scale {
    Scale { name: "tiny", params: WorkloadParams::tiny() }
}

fn outputs() -> Outputs {
    Outputs::quiet(std::env::temp_dir().join("mltc_bench_tables"))
}

macro_rules! table_bench {
    ($fn_name:ident, $exp:path, $label:literal) => {
        fn $fn_name(c: &mut Criterion) {
            let scale = tiny();
            let out = outputs();
            // One store per benchmark: the first iteration renders, every
            // timed iteration after warm-up replays the memoized trace —
            // matching how the experiments binary actually runs.
            let store = TraceStore::in_memory();
            let mut g = c.benchmark_group("tables");
            g.sample_size(10);
            g.warm_up_time(std::time::Duration::from_secs(1));
            g.measurement_time(std::time::Duration::from_secs(3));
            g.bench_function($label, |b| b.iter(|| $exp(&scale, &out, &store)));
            g.finish();
        }
    };
}

table_bench!(bench_table1, mltc_experiments::table1, "table1_workload_statistics");
table_bench!(bench_table2, mltc_experiments::table2, "table2_l1_hit_rates");
table_bench!(bench_table3, mltc_experiments::table3, "table3_bandwidth");
table_bench!(bench_table4, mltc_experiments::table4, "table4_structure_sizes");
table_bench!(bench_table5_6, mltc_experiments::table5_6, "table5_6_l2_hit_rates");
table_bench!(bench_table7, mltc_experiments::table7, "table7_fractional_advantage");
table_bench!(bench_table8, mltc_experiments::table8, "table8_tlb_hit_rates");

criterion_group!(
    benches,
    bench_table1,
    bench_table2,
    bench_table3,
    bench_table4,
    bench_table5_6,
    bench_table7,
    bench_table8
);
criterion_main!(benches);
