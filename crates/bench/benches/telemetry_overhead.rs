//! The telemetry overhead contract, measured: a frame replayed through a
//! detached engine, through one that refused a disabled recorder, and
//! through one actively recording — plus the raw per-operation cost of
//! disabled and enabled handles. The first two bars must be
//! indistinguishable; that is the "single predictable branch" guarantee.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use mltc_core::{EngineConfig, L1Config, L2Config, SimEngine};
use mltc_scene::{Workload, WorkloadParams};
use mltc_telemetry::Recorder;
use mltc_trace::FilterMode;

fn cfg() -> EngineConfig {
    EngineConfig {
        l1: L1Config::kb(2),
        l2: Some(L2Config::mb(2)),
        ..EngineConfig::default()
    }
}

fn bench_engine_overhead(c: &mut Criterion) {
    let w = Workload::village(&WorkloadParams::tiny());
    let trace = w.trace_frame(7, FilterMode::Bilinear);
    let taps: u64 = trace.requests.len() as u64 * 4;

    let mut g = c.benchmark_group("telemetry_overhead");
    g.throughput(Throughput::Elements(taps));
    g.bench_function("frame_detached", |b| {
        let mut engine = SimEngine::new(cfg(), w.scene().registry());
        b.iter(|| {
            engine.run_frame(black_box(&trace));
        })
    });
    g.bench_function("frame_disabled_recorder", |b| {
        let mut engine = SimEngine::new(cfg(), w.scene().registry());
        engine.attach_telemetry(&Recorder::disabled(), "bench", "village");
        b.iter(|| {
            engine.run_frame(black_box(&trace));
        })
    });
    g.bench_function("frame_recording", |b| {
        let rec = Recorder::enabled();
        let mut engine = SimEngine::new(cfg(), w.scene().registry());
        engine.attach_telemetry(&rec, "bench", "village");
        b.iter(|| {
            engine.run_frame(black_box(&trace));
        })
    });
    g.finish();
}

fn bench_primitives(c: &mut Criterion) {
    let mut g = c.benchmark_group("telemetry_primitives");
    g.throughput(Throughput::Elements(1));

    let off = Recorder::disabled();
    let on = Recorder::enabled();
    let c_off = off.counter("bench/counter");
    let c_on = on.counter("bench/counter");
    let h_off = off.histogram("bench/hist");
    let h_on = on.histogram("bench/hist");

    g.bench_function("counter_incr_disabled", |b| b.iter(|| c_off.incr()));
    g.bench_function("counter_incr_enabled", |b| b.iter(|| c_on.incr()));
    g.bench_function("hist_record_disabled", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = v.wrapping_add(2654435761);
            h_off.record(black_box(v));
        })
    });
    g.bench_function("hist_record_enabled", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = v.wrapping_add(2654435761);
            h_on.record(black_box(v));
        })
    });
    g.bench_function("span_disabled", |b| {
        b.iter(|| black_box(off.span("bench/span")))
    });
    g.bench_function("span_enabled", |b| b.iter(|| black_box(on.span("bench/span"))));
    g.finish();
}

criterion_group!(benches, bench_engine_overhead, bench_primitives);
criterion_main!(benches);
