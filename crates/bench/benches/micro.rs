//! Micro-benchmarks of the simulator's hot paths: address translation, L1
//! probes, L2 accesses, clock victim search, TLB lookups, filter expansion
//! and rasterizer fill rate.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use mltc_core::{L1Config, L1TextureCache, L2Cache, L2Config};
use mltc_math::{Vec2, Vec4};
use mltc_raster::{ClipVertex, RasterMode, Rasterizer};
use mltc_texture::{
    synth, MipPyramid, PageTableLayout, TextureId, TextureRegistry, TilingConfig,
};
use mltc_trace::{filter_taps, FilterMode, PixelRequest};

fn registry() -> TextureRegistry {
    let mut reg = TextureRegistry::new();
    reg.load(
        "t",
        MipPyramid::from_image(synth::checkerboard(512, 8, [200, 40, 40], [240, 240, 240])),
    );
    reg
}

fn bench_translation(c: &mut Criterion) {
    let reg = registry();
    let layout = PageTableLayout::new(&reg, TilingConfig::PAPER_DEFAULT);
    let tid = TextureId::from_index(0);
    let mut g = c.benchmark_group("address");
    g.throughput(Throughput::Elements(1));
    g.bench_function("translate_uvm_to_tid_l2_l1", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(97);
            let u = i % 512;
            let v = (i / 512) % 512;
            black_box(layout.translate(tid, u, v, 0).unwrap())
        })
    });
    g.bench_function("page_table_index", |b| {
        let addr = layout.translate(tid, 100, 200, 0).unwrap();
        b.iter(|| black_box(layout.page_table_index(black_box(&addr))))
    });
    g.finish();
}

fn bench_l1(c: &mut Criterion) {
    let mut g = c.benchmark_group("l1");
    g.throughput(Throughput::Elements(1));
    g.bench_function("hit_path_16kb", |b| {
        let mut l1 = L1TextureCache::new(L1Config::kb(16));
        let tid = TextureId::from_index(0);
        l1.access(tid, 0, 0, 0);
        b.iter(|| black_box(l1.access(tid, 0, black_box(1), black_box(2))))
    });
    g.bench_function("streaming_scanline_2kb", |b| {
        let mut l1 = L1TextureCache::new(L1Config::kb(2));
        let tid = TextureId::from_index(0);
        let mut x = 0u32;
        b.iter(|| {
            x = (x + 1) % 512;
            black_box(l1.access(tid, 0, x, 7))
        })
    });
    g.finish();
}

fn bench_l2(c: &mut Criterion) {
    let mut g = c.benchmark_group("l2");
    g.throughput(Throughput::Elements(1));
    g.bench_function("full_hit", |b| {
        let mut l2 = L2Cache::new(L2Config::mb(2), TilingConfig::PAPER_DEFAULT, 4096);
        l2.access(7, 3);
        b.iter(|| black_box(l2.access(black_box(7), black_box(3))))
    });
    g.bench_function("thrashing_miss_with_clock_search", |b| {
        // 64-block cache cycled over 128 pages: every access is a full miss
        // and runs the clock sweep.
        let tiling = TilingConfig::PAPER_DEFAULT;
        let mut l2 = L2Cache::new(
            L2Config { size_bytes: 64 * tiling.l2().cache_bytes(), ..L2Config::mb(2) },
            tiling,
            128,
        );
        let mut pt = 0u32;
        b.iter(|| {
            pt = (pt + 1) % 128;
            black_box(l2.access(pt, 0))
        })
    });
    g.finish();
}

fn bench_tlb(c: &mut Criterion) {
    let mut g = c.benchmark_group("tlb");
    g.throughput(Throughput::Elements(1));
    g.bench_function("16_entry_lookup", |b| {
        let mut tlb = mltc_cache::RoundRobinTlb::new(16);
        for k in 0..16 {
            tlb.access(k);
        }
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 1) % 20;
            black_box(tlb.access(k))
        })
    });
    g.finish();
}

fn bench_filter(c: &mut Criterion) {
    let mut g = c.benchmark_group("filter");
    g.throughput(Throughput::Elements(1));
    let dims = |m: u32| ((512u32 >> m).max(1), (512u32 >> m).max(1));
    for mode in [FilterMode::Point, FilterMode::Bilinear, FilterMode::Trilinear] {
        g.bench_function(mode.name(), |b| {
            let mut i = 0u32;
            b.iter(|| {
                i = i.wrapping_add(13);
                let req = PixelRequest {
                    tid: TextureId::from_index(0),
                    u: (i % 512) as f32 + 0.3,
                    v: (i % 509) as f32 + 0.7,
                    lod: (i % 5) as f32 * 0.37,
                };
                black_box(filter_taps(&req, mode, 10, dims))
            })
        });
    }
    g.finish();
}

fn bench_rasterizer(c: &mut Criterion) {
    let reg = registry();
    let mut g = c.benchmark_group("rasterizer");
    // One full-screen quad at 256x256 = 65536 fragments per iteration.
    g.throughput(Throughput::Elements(256 * 256));
    g.bench_function("fill_rate_trace_bilinear", |b| {
        let mut r = Rasterizer::new(256, 256, FilterMode::Bilinear, RasterMode::Trace, &reg);
        let v = |x: f32, y: f32, u: f32, vv: f32| ClipVertex {
            pos: Vec4::new(x, y, 0.0, 1.0),
            uv: Vec2::new(u, vv),
        };
        let tid = TextureId::from_index(0);
        b.iter(|| {
            r.begin_frame(0);
            r.draw_triangle(&v(-1.0, -1.0, 0.0, 0.0), &v(1.0, -1.0, 1.0, 0.0), &v(1.0, 1.0, 1.0, 1.0), tid);
            r.draw_triangle(&v(-1.0, -1.0, 0.0, 0.0), &v(1.0, 1.0, 1.0, 1.0), &v(-1.0, 1.0, 0.0, 1.0), tid);
            black_box(r.finish_frame().pixels_rendered)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_translation,
    bench_l1,
    bench_l2,
    bench_tlb,
    bench_filter,
    bench_rasterizer
);
criterion_main!(benches);
