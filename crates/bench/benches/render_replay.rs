//! Render vs replay: the two halves the trace store separates. One group
//! measures rasterizing a single frame from scratch (what a cold store
//! pays, once per unique animation); the other measures replaying an
//! already-rendered trace through the cache simulator (what every
//! experiment pays on each run).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use mltc_core::{EngineConfig, L1Config, L2Config};
use mltc_experiments::{replay_run, TraceHandle, TraceStore};
use mltc_raster::Traversal;
use mltc_scene::{Workload, WorkloadParams};
use mltc_trace::FilterMode;

fn village() -> Workload {
    Workload::village(&WorkloadParams::quick())
}

fn bench_render(c: &mut Criterion) {
    let w = village();
    let mut g = c.benchmark_group("render");
    g.sample_size(20);
    let pixels = (w.width as u64) * (w.height as u64);
    g.throughput(Throughput::Elements(pixels));
    g.bench_function("single_frame_point", |b| {
        b.iter(|| black_box(w.trace_frame(black_box(7), FilterMode::Point)))
    });
    g.bench_function("single_frame_zprepass", |b| {
        b.iter(|| black_box(w.trace_frame_zprepass(black_box(7), FilterMode::Point)))
    });
    g.finish();
}

fn bench_replay(c: &mut Criterion) {
    let w = village();
    let store = TraceStore::in_memory();
    let frames = match store.get_or_render(&w, false, Traversal::Scanline) {
        TraceHandle::Memory(set) => set,
        _ => panic!("in-memory store with default budget keeps the trace"),
    };
    let requests: u64 = frames.frames.iter().map(|f| f.requests.len() as u64).sum();

    let mut g = c.benchmark_group("replay");
    g.sample_size(20);
    g.throughput(Throughput::Elements(requests));
    for (label, configs) in [
        (
            "pull_2kb_trilinear",
            vec![EngineConfig {
                l1: L1Config::kb(2),
                ..EngineConfig::default()
            }],
        ),
        (
            "l2_2mb_trilinear",
            vec![EngineConfig {
                l1: L1Config::kb(2),
                l2: Some(L2Config::mb(2)),
                ..EngineConfig::default()
            }],
        ),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let engines = replay_run(
                    w.registry(),
                    &frames.frames,
                    FilterMode::Trilinear,
                    black_box(&configs),
                );
                black_box(engines.into_iter().map(|e| e.unwrap()).count())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_render, bench_replay);
criterion_main!(benches);
