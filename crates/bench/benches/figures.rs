//! One benchmark per paper **figure** (plus the three ablations): each runs
//! the exact harness code that regenerates that figure, at the tiny scale.

use criterion::{criterion_group, criterion_main, Criterion};
use mltc_experiments::{Outputs, Scale, TraceStore};
use mltc_scene::WorkloadParams;

fn tiny() -> Scale {
    Scale { name: "tiny", params: WorkloadParams::tiny() }
}

fn outputs() -> Outputs {
    Outputs::quiet(std::env::temp_dir().join("mltc_bench_figures"))
}

macro_rules! figure_bench {
    ($fn_name:ident, $exp:path, $label:literal) => {
        fn $fn_name(c: &mut Criterion) {
            let scale = tiny();
            let out = outputs();
            // One store per benchmark: the first iteration renders, every
            // timed iteration after warm-up replays the memoized trace —
            // matching how the experiments binary actually runs.
            let store = TraceStore::in_memory();
            let mut g = c.benchmark_group("figures");
            g.sample_size(10);
            g.warm_up_time(std::time::Duration::from_secs(1));
            g.measurement_time(std::time::Duration::from_secs(3));
            g.bench_function($label, |b| b.iter(|| $exp(&scale, &out, &store)));
            g.finish();
        }
    };
}

figure_bench!(bench_fig3, mltc_experiments::fig3, "fig3_expected_working_set");
figure_bench!(bench_fig4, mltc_experiments::fig4, "fig4_minimum_memory");
figure_bench!(bench_fig5, mltc_experiments::fig5, "fig5_total_vs_new_memory");
figure_bench!(bench_fig6, mltc_experiments::fig6, "fig6_l1_bandwidth");
figure_bench!(bench_fig9, mltc_experiments::fig9, "fig9_l1_miss_rates");
figure_bench!(bench_fig10, mltc_experiments::fig10, "fig10_bandwidth_with_l2");
figure_bench!(bench_fig11, mltc_experiments::fig11, "fig11_tlb_hit_rates");
figure_bench!(bench_fig12, mltc_experiments::fig12, "fig12_snapshots");
figure_bench!(
    bench_ablate_replacement,
    mltc_experiments::ablate_replacement,
    "ablate_replacement_policy"
);
figure_bench!(bench_ablate_zprepass, mltc_experiments::ablate_zprepass, "ablate_zprepass");
figure_bench!(bench_ablate_sector, mltc_experiments::ablate_sector, "ablate_sector_mapping");
figure_bench!(bench_future, mltc_experiments::future_workloads, "future_workloads");
figure_bench!(bench_storage, mltc_experiments::ablate_storage, "ablate_storage_format");
figure_bench!(bench_traversal, mltc_experiments::ablate_traversal, "ablate_traversal_order");
figure_bench!(bench_tile_sweep, mltc_experiments::l2_tile_sweep, "l2_tile_sweep");
figure_bench!(bench_assoc, mltc_experiments::l1_assoc_sweep, "l1_assoc_sweep");

criterion_group!(
    benches,
    bench_fig3,
    bench_fig4,
    bench_fig5,
    bench_fig6,
    bench_fig9,
    bench_fig10,
    bench_fig11,
    bench_fig12,
    bench_ablate_replacement,
    bench_ablate_zprepass,
    bench_ablate_sector,
    bench_future,
    bench_storage,
    bench_traversal,
    bench_tile_sweep,
    bench_assoc
);
criterion_main!(benches);
