//! The monomorphized replay fast path against the canonical per-tap
//! traced path, over identical inputs: a per-tap (`access_texel`) group
//! replaying one frame's pre-expanded tap stream, and a per-frame
//! (`run_frame`) group replaying the frame through the public entry
//! points. The two paths are bit-identical by contract (see DESIGN.md §8);
//! these benchmarks measure what the specialization buys.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use mltc_core::{EngineConfig, L1Config, L2Config, SimEngine};
use mltc_scene::{Workload, WorkloadParams};
use mltc_texture::TextureId;
use mltc_trace::{filter_taps, FilterMode, FrameTrace};

fn village() -> Workload {
    Workload::village(&WorkloadParams::quick())
}

fn ml_cfg() -> EngineConfig {
    EngineConfig {
        l1: L1Config::kb(2),
        l2: Some(L2Config::mb(2)),
        tlb_entries: 16,
        ..EngineConfig::default()
    }
}

/// Pre-expands one frame's requests into the flat tap stream both paths
/// will replay, using the engine's own authoritative expansion.
fn expand(w: &Workload, frame: &FrameTrace, filter: FilterMode) -> Vec<(u32, u32, u32, u32)> {
    let registry = w.registry();
    let mut taps = Vec::new();
    for req in &frame.requests {
        let pyr = registry.pyramid(req.tid).expect("trace tid exists");
        let dims: Vec<(u32, u32)> = pyr.iter().map(|l| (l.width(), l.height())).collect();
        for tap in &filter_taps(req, filter, dims.len() as u32, |m| dims[m as usize]) {
            taps.push((req.tid.index(), tap.m, tap.u, tap.v));
        }
    }
    taps
}

fn bench_access_texel(c: &mut Criterion) {
    let w = village();
    let frame = w.trace_frame(7, FilterMode::Point);
    let taps = expand(&w, &frame, FilterMode::Trilinear);
    let registry = w.registry();
    let mut g = c.benchmark_group("access_texel");
    g.sample_size(20);
    g.throughput(Throughput::Elements(taps.len() as u64));
    g.bench_function("traced_slow_path", |b| {
        let mut e = SimEngine::try_new(ml_cfg(), registry).expect("valid config");
        b.iter(|| {
            for &(tid, m, u, v) in &taps {
                black_box(e.access_texel_traced(TextureId::from_index(tid), m, u, v));
            }
        })
    });
    g.bench_function("monomorphized_fast_path", |b| {
        let mut e = SimEngine::try_new(ml_cfg(), registry).expect("valid config");
        b.iter(|| e.replay_taps(black_box(&taps)))
    });
    g.finish();
}

fn bench_run_frame(c: &mut Criterion) {
    let w = village();
    let frame = w.trace_frame(7, FilterMode::Point);
    let registry = w.registry();
    let mut g = c.benchmark_group("run_frame");
    g.sample_size(20);
    g.throughput(Throughput::Elements(frame.requests.len() as u64));
    g.bench_function("traced_slow_path", |b| {
        let mut e = SimEngine::try_new(ml_cfg(), registry).expect("valid config");
        b.iter(|| {
            e.try_run_frame_as_traced(black_box(&frame), FilterMode::Trilinear)
                .expect("replay")
        })
    });
    g.bench_function("monomorphized_fast_path", |b| {
        let mut e = SimEngine::try_new(ml_cfg(), registry).expect("valid config");
        b.iter(|| {
            e.try_run_frame_as(black_box(&frame), FilterMode::Trilinear)
                .expect("replay")
        })
    });
    g.finish();
}

criterion_group!(benches, bench_access_texel, bench_run_frame);
criterion_main!(benches);
