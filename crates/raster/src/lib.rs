//! Perspective-correct scanline software rasterizer with mip-mapped texture
//! sampling — the renderer behind the workloads (paper §2.1, §3).
//!
//! The paper instruments the Intel Scene Manager; this crate is the
//! from-scratch substitute: it transforms triangles to clip space, clips
//! them against all six frustum planes, rasterizes them **in scanline
//! order** (the paper deliberately studies scanline-order rasterization,
//! §2.3), interpolates texture coordinates perspective-correctly, selects
//! the mip level from the texel-to-pixel footprint ("texture compression"),
//! and emits one [`PixelRequest`](mltc_trace::PixelRequest) per textured
//! fragment into a [`FrameTrace`](mltc_trace::FrameTrace).
//!
//! Two modes share every code path up to the fragment:
//!
//! * **trace mode** records accesses without computing colours (fast, used
//!   for the cache studies);
//! * **shaded mode** additionally filters actual texels into a
//!   [`Framebuffer`] with late depth testing (used for the Fig. 12
//!   snapshots, and to verify the trace and the image agree).
//!
//! # Example
//!
//! ```
//! use mltc_math::{Vec2, Vec4};
//! use mltc_raster::{ClipVertex, RasterMode, Rasterizer};
//! use mltc_texture::{synth, MipPyramid, TextureRegistry};
//! use mltc_trace::FilterMode;
//!
//! let mut reg = TextureRegistry::new();
//! let tid = reg.load("checker", MipPyramid::from_image(
//!     synth::checkerboard(64, 8, [255, 0, 0], [255, 255, 255])));
//!
//! let mut r = Rasterizer::new(64, 64, FilterMode::Bilinear, RasterMode::Trace, &reg);
//! r.begin_frame(0);
//! // A full-screen quad at w = 1.
//! let v = |x: f32, y: f32, u: f32, vv: f32| ClipVertex {
//!     pos: Vec4::new(x, y, 0.0, 1.0), uv: Vec2::new(u, vv) };
//! r.draw_triangle(&v(-1.0, -1.0, 0.0, 0.0), &v(1.0, -1.0, 1.0, 0.0),
//!                 &v(1.0, 1.0, 1.0, 1.0), tid);
//! r.draw_triangle(&v(-1.0, -1.0, 0.0, 0.0), &v(1.0, 1.0, 1.0, 1.0),
//!                 &v(-1.0, 1.0, 0.0, 1.0), tid);
//! let trace = r.finish_frame();
//! assert_eq!(trace.pixels_rendered, 64 * 64);
//! ```

mod camera;
mod clip;
mod framebuffer;
mod raster;
mod shade;

pub use camera::Camera;
pub use clip::{clip_triangle, clip_triangle_into, ClipVertex};
pub use framebuffer::Framebuffer;
pub use raster::{RasterMode, Rasterizer, Traversal};
pub use shade::shade_request;

// Re-exported for convenience: the filter modes live with the trace types.
pub use mltc_trace::FilterMode;
