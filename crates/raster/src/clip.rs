//! Homogeneous clipping (Sutherland–Hodgman against the six frustum planes).

use mltc_math::{Vec2, Vec4};

/// A clip-space vertex: homogeneous position plus texture coordinates.
///
/// Texture coordinates are *normalized* (1.0 spans the texture once;
/// values beyond 1 repeat via wrap addressing downstream).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ClipVertex {
    /// Clip-space position (before perspective divide).
    pub pos: Vec4,
    /// Normalized texture coordinates.
    pub uv: Vec2,
}

impl ClipVertex {
    fn lerp(&self, other: &Self, t: f32) -> Self {
        Self {
            pos: self.pos.lerp(other.pos, t),
            uv: self.uv.lerp(other.uv, t),
        }
    }
}

/// Signed distances for the six clip planes: inside is `d >= 0`.
#[inline]
fn plane_distance(v: &Vec4, plane: usize) -> f32 {
    match plane {
        0 => v.w + v.x, // left:   x >= -w
        1 => v.w - v.x, // right:  x <= w
        2 => v.w + v.y, // bottom: y >= -w
        3 => v.w - v.y, // top:    y <= w
        4 => v.w + v.z, // near:   z >= -w
        _ => v.w - v.z, // far:    z <= w
    }
}

/// Clips a triangle against the full frustum, returning the surviving
/// polygon (0 or 3–9 vertices) as a vertex list; the caller fans it into
/// triangles. Returns an empty list when fully outside.
///
/// ```
/// use mltc_math::{Vec2, Vec4};
/// use mltc_raster::{clip_triangle, ClipVertex};
/// let v = |x, w| ClipVertex { pos: Vec4::new(x, 0.0, 0.0, w), uv: Vec2::ZERO };
/// // Entirely inside: untouched.
/// let out = clip_triangle(&v(0.0, 1.0), &v(0.5, 1.0), &v(-0.5, 1.0));
/// assert_eq!(out.len(), 3);
/// ```
pub fn clip_triangle(a: &ClipVertex, b: &ClipVertex, c: &ClipVertex) -> Vec<ClipVertex> {
    let mut poly = Vec::with_capacity(9);
    let mut scratch = Vec::with_capacity(9);
    clip_triangle_into(a, b, c, &mut poly, &mut scratch);
    poly
}

/// Allocation-free form of [`clip_triangle`]: the result lands in `poly`
/// and `scratch` is working space, both cleared on entry. The rasterizer
/// keeps a pair of these buffers alive across every triangle of a frame,
/// which removes two heap allocations from the per-triangle hot path.
pub fn clip_triangle_into(
    a: &ClipVertex,
    b: &ClipVertex,
    c: &ClipVertex,
    poly: &mut Vec<ClipVertex>,
    scratch: &mut Vec<ClipVertex>,
) {
    poly.clear();
    poly.extend_from_slice(&[*a, *b, *c]);
    for plane in 0..6 {
        if poly.is_empty() {
            break;
        }
        scratch.clear();
        for i in 0..poly.len() {
            let cur = poly[i];
            let prev = poly[(i + poly.len() - 1) % poly.len()];
            let dc = plane_distance(&cur.pos, plane);
            let dp = plane_distance(&prev.pos, plane);
            let cur_in = dc >= 0.0;
            let prev_in = dp >= 0.0;
            if cur_in != prev_in {
                // Edge crosses the plane: emit the intersection.
                let t = dp / (dp - dc);
                scratch.push(prev.lerp(&cur, t));
            }
            if cur_in {
                scratch.push(cur);
            }
        }
        std::mem::swap(poly, scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: f32, y: f32, z: f32, w: f32) -> ClipVertex {
        ClipVertex {
            pos: Vec4::new(x, y, z, w),
            uv: Vec2::new(x, y),
        }
    }

    #[test]
    fn fully_inside_passes_through() {
        let out = clip_triangle(
            &v(0.0, 0.5, 0.0, 1.0),
            &v(0.5, -0.5, 0.0, 1.0),
            &v(-0.5, -0.5, 0.0, 1.0),
        );
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn fully_outside_one_plane_is_discarded() {
        // All x > w: outside the right plane.
        let out = clip_triangle(
            &v(2.0, 0.0, 0.0, 1.0),
            &v(3.0, 0.0, 0.0, 1.0),
            &v(2.5, 1.0, 0.0, 1.0),
        );
        assert!(out.is_empty());
    }

    #[test]
    fn edge_crossing_produces_quad() {
        // Two vertices inside, one outside the right plane: quad (4 verts).
        let out = clip_triangle(
            &v(0.0, -0.5, 0.0, 1.0),
            &v(2.0, 0.0, 0.0, 1.0),
            &v(0.0, 0.5, 0.0, 1.0),
        );
        assert_eq!(out.len(), 4);
        for cv in &out {
            assert!(cv.pos.x <= cv.pos.w + 1e-5);
        }
    }

    #[test]
    fn one_vertex_inside_keeps_triangle() {
        let out = clip_triangle(
            &v(0.0, 0.0, 0.0, 1.0),
            &v(3.0, 0.1, 0.0, 1.0),
            &v(3.0, -0.1, 0.0, 1.0),
        );
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn near_plane_clips_behind_eye_geometry() {
        // One vertex behind the eye (w < 0 region, z < -w violated).
        let out = clip_triangle(
            &v(0.0, 0.0, -0.5, 1.0),
            &v(0.2, 0.0, -0.5, 1.0),
            &v(0.1, 0.1, -2.0, -1.0),
        );
        for cv in &out {
            assert!(
                cv.pos.z >= -cv.pos.w - 1e-4,
                "vertex {:?} violates near plane",
                cv.pos
            );
            assert!(cv.pos.w > 0.0, "clipped vertices must have positive w");
        }
        assert!(!out.is_empty());
    }

    #[test]
    fn uv_interpolates_at_the_crossing() {
        // Edge from x=0 (uv.x=0) to x=2 (uv.x=2) crossing x=w=1 at t=0.5.
        let out = clip_triangle(
            &v(0.0, -0.1, 0.0, 1.0),
            &v(2.0, 0.0, 0.0, 1.0),
            &v(0.0, 0.1, 0.0, 1.0),
        );
        let crossing: Vec<&ClipVertex> = out
            .iter()
            .filter(|c| (c.pos.x - 1.0).abs() < 1e-5)
            .collect();
        assert!(!crossing.is_empty());
        for c in crossing {
            assert!((c.uv.x - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn clipped_polygon_has_at_most_nine_vertices() {
        // A huge triangle crossing every plane.
        let out = clip_triangle(
            &v(-50.0, -50.0, 0.0, 1.0),
            &v(50.0, -40.0, 0.0, 1.0),
            &v(0.0, 60.0, 0.0, 1.0),
        );
        assert!(out.len() >= 3 && out.len() <= 9, "got {}", out.len());
    }
}
