//! Perspective camera.

use mltc_math::{Frustum, Mat4, Vec3};

/// A perspective camera: position, orientation and projection parameters.
///
/// ```
/// use mltc_math::Vec3;
/// use mltc_raster::Camera;
/// let cam = Camera::new(Vec3::new(0.0, 2.0, 5.0), Vec3::ZERO);
/// let vp = cam.view_projection(4.0 / 3.0);
/// let clip = vp * mltc_math::Vec4::from_point(Vec3::ZERO);
/// assert!(clip.w > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Camera {
    /// Eye position.
    pub eye: Vec3,
    /// Look-at target.
    pub target: Vec3,
    /// Up hint.
    pub up: Vec3,
    /// Vertical field of view in radians.
    pub fov_y: f32,
    /// Near plane distance.
    pub near: f32,
    /// Far plane distance.
    pub far: f32,
}

impl Camera {
    /// A camera at `eye` looking at `target` with 60° vertical fov and
    /// 0.2–800 depth range (covers both workloads).
    pub fn new(eye: Vec3, target: Vec3) -> Self {
        Self {
            eye,
            target,
            up: Vec3::Y,
            fov_y: 60f32.to_radians(),
            near: 0.2,
            far: 800.0,
        }
    }

    /// World → view matrix.
    pub fn view(&self) -> Mat4 {
        Mat4::look_at(self.eye, self.target, self.up)
    }

    /// View → clip matrix for a given aspect ratio (width / height).
    pub fn projection(&self, aspect: f32) -> Mat4 {
        Mat4::perspective(self.fov_y, aspect, self.near, self.far)
    }

    /// World → clip matrix.
    pub fn view_projection(&self, aspect: f32) -> Mat4 {
        self.projection(aspect) * self.view()
    }

    /// The world-space view frustum (for object culling).
    pub fn frustum(&self, aspect: f32) -> Frustum {
        Frustum::from_view_projection(&self.view_projection(aspect))
    }

    /// Unit view direction.
    pub fn forward(&self) -> Vec3 {
        (self.target - self.eye).normalized()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mltc_math::{Aabb, Vec4};

    #[test]
    fn target_projects_to_screen_centre() {
        let cam = Camera::new(Vec3::new(0.0, 0.0, 10.0), Vec3::ZERO);
        let clip = cam.view_projection(1.0) * Vec4::from_point(Vec3::ZERO);
        let ndc = clip.project();
        assert!(ndc.x.abs() < 1e-5 && ndc.y.abs() < 1e-5);
    }

    #[test]
    fn frustum_culls_behind_camera() {
        let cam = Camera::new(Vec3::new(0.0, 0.0, 10.0), Vec3::ZERO);
        let f = cam.frustum(1.0);
        let behind = Aabb::new(Vec3::new(-1.0, -1.0, 20.0), Vec3::new(1.0, 1.0, 22.0));
        assert!(!f.intersects(&behind));
        let ahead = Aabb::new(Vec3::new(-1.0, -1.0, -1.0), Vec3::new(1.0, 1.0, 1.0));
        assert!(f.intersects(&ahead));
    }

    #[test]
    fn forward_points_at_target() {
        let cam = Camera::new(Vec3::ZERO, Vec3::new(0.0, 0.0, -5.0));
        assert!((cam.forward() - Vec3::new(0.0, 0.0, -1.0)).length() < 1e-6);
    }
}
