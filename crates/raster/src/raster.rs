//! Triangle setup and scanline-order rasterization.

use crate::{clip_triangle_into, shade_request, ClipVertex, Framebuffer};
use mltc_texture::{TextureId, TextureRegistry};
use mltc_trace::{FilterMode, FrameTrace, PixelRequest};

/// What the rasterizer produces per fragment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RasterMode {
    /// Record texture accesses only (no colour computation) — the fast path
    /// for the cache studies.
    Trace,
    /// Additionally filter real texels into the framebuffer with late depth
    /// testing (Fig. 12 snapshots).
    Shaded,
}

/// Linear screen-space interpolant `a0 + ax·x + ay·y`.
#[derive(Debug, Clone, Copy)]
struct Plane {
    a0: f32,
    ax: f32,
    ay: f32,
}

impl Plane {
    /// Fits the plane through three screen points with attribute values.
    /// `inv_area` is `1 / ((x1-x0)(y2-y0) - (x2-x0)(y1-y0))`.
    fn fit(p: [(f32, f32); 3], a: [f32; 3], inv_area: f32) -> Self {
        let (x0, y0) = p[0];
        let (x1, y1) = p[1];
        let (x2, y2) = p[2];
        let ax = ((a[1] - a[0]) * (y2 - y0) - (a[2] - a[0]) * (y1 - y0)) * inv_area;
        let ay = ((x1 - x0) * (a[2] - a[0]) - (x2 - x0) * (a[1] - a[0])) * inv_area;
        Self {
            a0: a[0] - ax * x0 - ay * y0,
            ax,
            ay,
        }
    }

    #[inline]
    fn eval(&self, x: f32, y: f32) -> f32 {
        self.a0 + self.ax * x + self.ay * y
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pass {
    Normal,
    DepthOnly,
}

/// Fragment traversal order within a triangle.
///
/// The paper studies **scanline order** ("we study multi-level texture
/// caching assuming that primitives are rasterized in scanline order",
/// §2.3) but discusses Hakura's finding that rasterization by screen tiles
/// improves texture locality; `Tiled` reproduces that ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Traversal {
    /// Top-to-bottom scanlines, left-to-right pixels (the paper's choice).
    #[default]
    Scanline,
    /// Screen-space square tiles of the given edge (power of two), visited
    /// row-major; scanline order within each tile.
    Tiled(u32),
}

/// The scanline rasterizer (see the [crate docs](crate) for an example).
///
/// One instance renders one frame at a time: [`Rasterizer::begin_frame`],
/// any number of [`Rasterizer::draw_triangle`] calls, then
/// [`Rasterizer::finish_frame`] to take the trace.
#[derive(Debug)]
pub struct Rasterizer<'reg> {
    width: u32,
    height: u32,
    filter: FilterMode,
    mode: RasterMode,
    registry: &'reg TextureRegistry,
    /// Level-0 dimensions per tid (for normalized-uv → texel scaling).
    base_dims: Vec<Option<(f32, f32)>>,
    fb: Framebuffer,
    trace: FrameTrace,
    after_z: bool,
    traversal: Traversal,
    /// Recycled request buffer for the next frame (see
    /// [`Rasterizer::recycle`]).
    spare: Option<Vec<PixelRequest>>,
    /// Clipper output/working buffers, reused across every triangle.
    clip_poly: Vec<ClipVertex>,
    clip_scratch: Vec<ClipVertex>,
}

impl<'reg> Rasterizer<'reg> {
    /// Creates a rasterizer for a `width`×`height` target.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(
        width: u32,
        height: u32,
        filter: FilterMode,
        mode: RasterMode,
        registry: &'reg TextureRegistry,
    ) -> Self {
        let mut base_dims = vec![None; registry.issued_count()];
        for (tid, pyr) in registry.iter() {
            let l0 = pyr.level(0);
            base_dims[tid.index() as usize] = Some((l0.width() as f32, l0.height() as f32));
        }
        Self {
            width,
            height,
            filter,
            mode,
            registry,
            base_dims,
            fb: Framebuffer::new(width, height),
            trace: FrameTrace::new(0, width, height, filter),
            after_z: false,
            traversal: Traversal::Scanline,
            spare: None,
            clip_poly: Vec::with_capacity(9),
            clip_scratch: Vec::with_capacity(9),
        }
    }

    /// Selects the fragment traversal order (persists across frames).
    ///
    /// # Panics
    ///
    /// Panics if a tiled traversal has a zero or non-power-of-two edge.
    pub fn set_traversal(&mut self, traversal: Traversal) {
        if let Traversal::Tiled(edge) = traversal {
            assert!(
                edge > 0 && edge.is_power_of_two(),
                "tile edge must be a power of two"
            );
        }
        self.traversal = traversal;
    }

    /// Starts a new frame: clears depth (and colour in shaded mode) and the
    /// trace. The trace's request buffer keeps its capacity, so steady-state
    /// rendering does no per-frame allocation.
    pub fn begin_frame(&mut self, frame: u32) {
        self.fb.clear(0xff00_0000, f32::INFINITY);
        self.trace.frame = frame;
        self.trace.width = self.width;
        self.trace.height = self.height;
        self.trace.filter = self.filter;
        self.trace.pixels_rendered = 0;
        self.trace.requests.clear();
        self.after_z = false;
    }

    /// Enables the z-pre-pass ablation for the current frame: after calling
    /// this, [`Rasterizer::draw_triangle`] only textures fragments that
    /// survive the depth already laid down with
    /// [`Rasterizer::depth_prepass_triangle`] (paper §6: "z-buffering before
    /// texture block retrieval").
    pub fn set_after_z(&mut self, on: bool) {
        self.after_z = on;
    }

    /// Rasterizes only depth for a triangle (the pre-pass).
    pub fn depth_prepass_triangle(&mut self, a: &ClipVertex, b: &ClipVertex, c: &ClipVertex) {
        self.draw_clipped(a, b, c, TextureId::from_index(0), Pass::DepthOnly);
    }

    /// Clips, projects and rasterizes one textured triangle.
    ///
    /// # Panics
    ///
    /// Panics if `tid` refers to a texture unknown to (or deleted from) the
    /// registry.
    pub fn draw_triangle(
        &mut self,
        a: &ClipVertex,
        b: &ClipVertex,
        c: &ClipVertex,
        tid: TextureId,
    ) {
        self.draw_clipped(a, b, c, tid, Pass::Normal);
    }

    fn draw_clipped(
        &mut self,
        a: &ClipVertex,
        b: &ClipVertex,
        c: &ClipVertex,
        tid: TextureId,
        pass: Pass,
    ) {
        let mut poly = std::mem::take(&mut self.clip_poly);
        let mut scratch = std::mem::take(&mut self.clip_scratch);
        clip_triangle_into(a, b, c, &mut poly, &mut scratch);
        if poly.len() >= 3 {
            for i in 1..poly.len() - 1 {
                self.raster_tri([&poly[0], &poly[i], &poly[i + 1]], tid, pass);
            }
        }
        self.clip_poly = poly;
        self.clip_scratch = scratch;
    }

    /// Screen-space triangle setup; fragments are emitted in the
    /// configured traversal order.
    fn raster_tri(&mut self, v: [&ClipVertex; 3], tid: TextureId, pass: Pass) {
        let (w0, h0) = match pass {
            Pass::DepthOnly => (1.0, 1.0),
            Pass::Normal => {
                self.base_dims[tid.index() as usize].expect("triangle references unknown texture")
            }
        };

        // Project to screen space, keeping 1/w and texel-space uv/w.
        let mut pts = [(0.0f32, 0.0f32); 3];
        let mut invw = [0.0f32; 3];
        let mut uw = [0.0f32; 3];
        let mut vw = [0.0f32; 3];
        let mut z = [0.0f32; 3];
        for (i, cv) in v.iter().enumerate() {
            let p = cv.pos;
            debug_assert!(p.w > 0.0, "clipping must leave w > 0");
            let iw = 1.0 / p.w;
            pts[i] = (
                (p.x * iw * 0.5 + 0.5) * self.width as f32,
                (0.5 - p.y * iw * 0.5) * self.height as f32,
            );
            invw[i] = iw;
            uw[i] = cv.uv.x * w0 * iw;
            vw[i] = cv.uv.y * h0 * iw;
            z[i] = p.z * iw;
        }

        let area = (pts[1].0 - pts[0].0) * (pts[2].1 - pts[0].1)
            - (pts[2].0 - pts[0].0) * (pts[1].1 - pts[0].1);
        if area.abs() < 1e-12 {
            return; // degenerate
        }
        let inv_area = 1.0 / area;
        let p_invw = Plane::fit(pts, invw, inv_area);
        let p_uw = Plane::fit(pts, uw, inv_area);
        let p_vw = Plane::fit(pts, vw, inv_area);
        let p_z = Plane::fit(pts, z, inv_area);

        // Scanline bounds (pixel centres at y + 0.5, half-open).
        let ymin = pts.iter().map(|p| p.1).fold(f32::INFINITY, f32::min);
        let ymax = pts.iter().map(|p| p.1).fold(f32::NEG_INFINITY, f32::max);
        let y_start = (ymin - 0.5).ceil().max(0.0) as u32;
        let y_end = ((ymax - 0.5).ceil().max(0.0) as u32).min(self.height);
        if y_start >= y_end {
            return;
        }

        match self.traversal {
            Traversal::Scanline => {
                self.fill_rows(
                    y_start, y_end, 0, self.width, &pts, &p_invw, &p_uw, &p_vw, &p_z, tid, pass,
                );
            }
            Traversal::Tiled(edge) => {
                // Visit the triangle's bounding box tile by tile; the span
                // logic is identical, so the same fragments emerge in a
                // 2D-local order.
                let xmin = pts.iter().map(|p| p.0).fold(f32::INFINITY, f32::min);
                let xmax = pts.iter().map(|p| p.0).fold(f32::NEG_INFINITY, f32::max);
                let x_start = (xmin - 0.5).ceil().max(0.0) as u32;
                let x_end = ((xmax - 0.5).ceil().max(0.0) as u32).min(self.width);
                let mut ty = y_start & !(edge - 1);
                while ty < y_end {
                    let mut tx = x_start & !(edge - 1);
                    while tx < x_end {
                        self.fill_rows(
                            ty.max(y_start),
                            (ty + edge).min(y_end),
                            tx.max(x_start),
                            (tx + edge).min(x_end),
                            &pts,
                            &p_invw,
                            &p_uw,
                            &p_vw,
                            &p_z,
                            tid,
                            pass,
                        );
                        tx += edge;
                    }
                    ty += edge;
                }
            }
        }
    }

    /// Rasterizes the scanlines `y_lo..y_hi`, clamping each span to
    /// `x_lo..x_hi` (the full screen for scanline traversal, one tile for
    /// tiled traversal).
    #[allow(clippy::too_many_arguments)]
    fn fill_rows(
        &mut self,
        y_lo: u32,
        y_hi: u32,
        x_lo: u32,
        x_hi: u32,
        pts: &[(f32, f32); 3],
        p_invw: &Plane,
        p_uw: &Plane,
        p_vw: &Plane,
        p_z: &Plane,
        tid: TextureId,
        pass: Pass,
    ) {
        for y in y_lo..y_hi {
            let yc = y as f32 + 0.5;
            // Intersect the scanline with the triangle edges.
            let mut xl = f32::INFINITY;
            let mut xr = f32::NEG_INFINITY;
            for e in 0..3 {
                let (x0, y0) = pts[e];
                let (x1, y1) = pts[(e + 1) % 3];
                if (y0 - yc) * (y1 - yc) <= 0.0 && y0 != y1 {
                    let x = x0 + (yc - y0) * (x1 - x0) / (y1 - y0);
                    xl = xl.min(x);
                    xr = xr.max(x);
                }
            }
            if xl > xr {
                continue;
            }
            let x_start = ((xl - 0.5).ceil().max(0.0) as u32).max(x_lo);
            let x_end = ((xr - 0.5).ceil().max(0.0) as u32).min(x_hi);

            for x in x_start..x_end {
                let xc = x as f32 + 0.5;
                let zc = p_z.eval(xc, yc);
                if pass == Pass::DepthOnly {
                    self.fb.depth_test_only(x, y, zc);
                    continue;
                }
                if self.after_z && !self.fb.depth_equal(x, y, zc) {
                    continue;
                }
                // Perspective-correct attributes.
                let iw = p_invw.eval(xc, yc);
                if iw <= 0.0 {
                    continue; // numerical guard at silhouette edges
                }
                let w = 1.0 / iw;
                let a_u = p_uw.eval(xc, yc);
                let a_v = p_vw.eval(xc, yc);
                let u = a_u * w;
                let vv = a_v * w;

                // Texture-space footprint via the quotient rule on A/W.
                let dudx = (p_uw.ax - u * p_invw.ax) * w;
                let dvdx = (p_vw.ax - vv * p_invw.ax) * w;
                let dudy = (p_uw.ay - u * p_invw.ay) * w;
                let dvdy = (p_vw.ay - vv * p_invw.ay) * w;
                let rho2 = (dudx * dudx + dvdx * dvdx).max(dudy * dudy + dvdy * dvdy);
                // lod = log2(sqrt(rho2)) = 0.5 * log2(rho2); the "texture
                // compression" ratio selecting an ~1:1 mip level (§2.1).
                let lod = 0.5 * rho2.max(1e-12).log2();

                let req = PixelRequest { tid, u, v: vv, lod };
                self.trace.push(req);

                if self.mode == RasterMode::Shaded {
                    let color = shade_request(self.registry, &req, self.filter);
                    self.fb.depth_test_write(x, y, zc, color);
                }
            }
        }
    }

    /// Finishes the frame and returns its trace, leaving the rasterizer
    /// ready for [`Rasterizer::begin_frame`].
    ///
    /// The replacement trace adopts any buffer donated via
    /// [`Rasterizer::recycle`], so a consumer that hands frames back keeps
    /// the render loop allocation-free.
    pub fn finish_frame(&mut self) -> FrameTrace {
        let mut fresh = FrameTrace::new(0, self.width, self.height, self.filter);
        if let Some(spare) = self.spare.take() {
            fresh.requests = spare;
        }
        std::mem::replace(&mut self.trace, fresh)
    }

    /// Donates a request buffer (typically from a consumed [`FrameTrace`])
    /// back to the rasterizer; the next [`Rasterizer::finish_frame`] reuses
    /// its capacity instead of growing a fresh vector.
    pub fn recycle(&mut self, mut requests: Vec<PixelRequest>) {
        requests.clear();
        let keep = match &self.spare {
            Some(held) => requests.capacity() > held.capacity(),
            None => true,
        };
        if keep {
            self.spare = Some(requests);
        }
    }

    /// The framebuffer (colours are only meaningful in shaded mode).
    pub fn framebuffer(&self) -> &Framebuffer {
        &self.fb
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mltc_math::{Vec2, Vec4};
    use mltc_texture::{synth, MipPyramid};

    fn registry() -> TextureRegistry {
        let mut reg = TextureRegistry::new();
        reg.load(
            "checker",
            MipPyramid::from_image(synth::checkerboard(64, 8, [255, 0, 0], [255, 255, 255])),
        );
        reg
    }

    fn vx(x: f32, y: f32, z: f32, w: f32, u: f32, v: f32) -> ClipVertex {
        ClipVertex {
            pos: Vec4::new(x, y, z, w),
            uv: Vec2::new(u, v),
        }
    }

    fn fullscreen_quad(r: &mut Rasterizer<'_>, tid: TextureId, z: f32, uv_scale: f32) {
        let s = uv_scale;
        r.draw_triangle(
            &vx(-1.0, -1.0, z, 1.0, 0.0, 0.0),
            &vx(1.0, -1.0, z, 1.0, s, 0.0),
            &vx(1.0, 1.0, z, 1.0, s, s),
            tid,
        );
        r.draw_triangle(
            &vx(-1.0, -1.0, z, 1.0, 0.0, 0.0),
            &vx(1.0, 1.0, z, 1.0, s, s),
            &vx(-1.0, 1.0, z, 1.0, 0.0, s),
            tid,
        );
    }

    #[test]
    fn fullscreen_quad_covers_every_pixel_once() {
        let reg = registry();
        let mut r = Rasterizer::new(32, 32, FilterMode::Point, RasterMode::Trace, &reg);
        r.begin_frame(0);
        fullscreen_quad(&mut r, TextureId::from_index(0), 0.0, 1.0);
        let t = r.finish_frame();
        assert_eq!(
            t.pixels_rendered,
            32 * 32,
            "exact fill, no double-drawn diagonal"
        );
        assert!((t.depth_complexity() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn overdraw_counts_fragments_not_pixels() {
        let reg = registry();
        let mut r = Rasterizer::new(16, 16, FilterMode::Point, RasterMode::Trace, &reg);
        r.begin_frame(0);
        for _ in 0..3 {
            fullscreen_quad(&mut r, TextureId::from_index(0), 0.0, 1.0);
        }
        let t = r.finish_frame();
        assert!((t.depth_complexity() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn offscreen_triangle_draws_nothing() {
        let reg = registry();
        let mut r = Rasterizer::new(16, 16, FilterMode::Point, RasterMode::Trace, &reg);
        r.begin_frame(0);
        r.draw_triangle(
            &vx(5.0, 5.0, 0.0, 1.0, 0.0, 0.0),
            &vx(6.0, 5.0, 0.0, 1.0, 1.0, 0.0),
            &vx(5.0, 6.0, 0.0, 1.0, 0.0, 1.0),
            TextureId::from_index(0),
        );
        assert_eq!(r.finish_frame().pixels_rendered, 0);
    }

    #[test]
    fn unit_uv_maps_texels_one_to_one_lod_zero() {
        // 64x64 screen, 64x64 texture, uv 0..1: texel step = 1 pixel.
        let reg = registry();
        let mut r = Rasterizer::new(64, 64, FilterMode::Point, RasterMode::Trace, &reg);
        r.begin_frame(0);
        fullscreen_quad(&mut r, TextureId::from_index(0), 0.0, 1.0);
        let t = r.finish_frame();
        for req in &t.requests {
            assert!(req.lod.abs() < 0.01, "lod {} should be ~0 at 1:1", req.lod);
            assert!(req.u >= 0.0 && req.u < 64.0);
            assert!(req.v >= 0.0 && req.v < 64.0);
        }
        // Every texel of level 0 is touched exactly once.
        let set: std::collections::HashSet<(u32, u32)> = t
            .requests
            .iter()
            .map(|r| (r.u as u32, r.v as u32))
            .collect();
        assert_eq!(set.len(), 64 * 64);
    }

    #[test]
    fn minification_raises_lod() {
        // uv 0..4 over a 64px quad: 4 texels per pixel step => lod ~2.
        let reg = registry();
        let mut r = Rasterizer::new(64, 64, FilterMode::Point, RasterMode::Trace, &reg);
        r.begin_frame(0);
        fullscreen_quad(&mut r, TextureId::from_index(0), 0.0, 4.0);
        let t = r.finish_frame();
        let mean_lod: f32 = t.requests.iter().map(|r| r.lod).sum::<f32>() / t.requests.len() as f32;
        assert!((mean_lod - 2.0).abs() < 0.05, "mean lod {mean_lod}");
    }

    #[test]
    fn perspective_correct_uv_interpolation() {
        // A "floor" edge-on: near edge w=1, far edge w=4. At the screen
        // midpoint, perspective-correct v is NOT the affine midpoint.
        let reg = registry();
        let mut r = Rasterizer::new(16, 16, FilterMode::Point, RasterMode::Trace, &reg);
        r.begin_frame(0);
        // Map v from 0 (near, bottom) to 1 (far, top); u constant.
        r.draw_triangle(
            &vx(-1.0, -1.0, 0.0, 1.0, 0.0, 0.0),
            &vx(1.0, -1.0, 0.0, 1.0, 0.5, 0.0),
            &vx(0.0, 4.0, 0.0, 4.0, 0.25, 1.0),
            TextureId::from_index(0),
        );
        let t = r.finish_frame();
        assert!(t.pixels_rendered > 0);
        // All v (texel) values must stay within [0, 64).
        for req in &t.requests {
            assert!(req.v >= -0.5 && req.v <= 64.5);
        }
        // Perspective compression: more fragments at low v than high v.
        let low = t.requests.iter().filter(|r| r.v < 21.3).count();
        let high = t.requests.iter().filter(|r| r.v >= 42.7).count();
        assert!(low > high, "low {low} vs high {high}");
    }

    #[test]
    fn shaded_mode_writes_texture_colors() {
        let reg = registry();
        let mut r = Rasterizer::new(64, 64, FilterMode::Point, RasterMode::Shaded, &reg);
        r.begin_frame(0);
        fullscreen_quad(&mut r, TextureId::from_index(0), 0.0, 1.0);
        let _ = r.finish_frame();
        let fb = r.framebuffer();
        // 8-texel checker cells; screen y is flipped, so screen (2,2) samples
        // texel cell (0,7) = white and (10,2) samples cell (1,7) = red.
        let [r0, g0, _, _] = fb.color_at(2, 2).to_le_bytes();
        let [r1, g1, _, _] = fb.color_at(10, 2).to_le_bytes();
        assert!(r0 > 200 && g0 > 200, "expected white cell, got ({r0},{g0})");
        assert!(r1 > 200 && g1 < 60, "expected red cell, got ({r1},{g1})");
    }

    #[test]
    fn depth_test_keeps_nearer_surface() {
        let reg = registry();
        let mut r = Rasterizer::new(8, 8, FilterMode::Point, RasterMode::Shaded, &reg);
        r.begin_frame(0);
        fullscreen_quad(&mut r, TextureId::from_index(0), 0.5, 1.0); // far, first
        let far_color = r.framebuffer().color_at(4, 4);
        fullscreen_quad(&mut r, TextureId::from_index(0), -0.5, 8.0); // near
        let near_color = r.framebuffer().color_at(4, 4);
        // Both fragments were rasterized (overdraw traced)...
        assert_eq!(r.finish_frame().pixels_rendered, 2 * 64);
        // ...and the near surface won the framebuffer.
        let _ = (far_color, near_color); // colors may coincide on cells; depth says:
        assert!(r.framebuffer().depth_at(4, 4) < 0.0);
    }

    #[test]
    fn z_prepass_suppresses_hidden_fragments() {
        let reg = registry();
        let mut r = Rasterizer::new(16, 16, FilterMode::Point, RasterMode::Trace, &reg);
        r.begin_frame(0);
        let near = [
            vx(-1.0, -1.0, -0.5, 1.0, 0.0, 0.0),
            vx(1.0, -1.0, -0.5, 1.0, 1.0, 0.0),
            vx(1.0, 1.0, -0.5, 1.0, 1.0, 1.0),
        ];
        let far = [
            vx(-1.0, -1.0, 0.5, 1.0, 0.0, 0.0),
            vx(1.0, -1.0, 0.5, 1.0, 1.0, 0.0),
            vx(1.0, 1.0, 0.5, 1.0, 1.0, 1.0),
        ];
        // Depth pre-pass over both triangles.
        r.depth_prepass_triangle(&near[0], &near[1], &near[2]);
        r.depth_prepass_triangle(&far[0], &far[1], &far[2]);
        r.set_after_z(true);
        r.draw_triangle(&near[0], &near[1], &near[2], TextureId::from_index(0));
        r.draw_triangle(&far[0], &far[1], &far[2], TextureId::from_index(0));
        let t = r.finish_frame();
        // Only the near triangle's fragments were textured: depth ~ 1.
        let half = 16 * 16 / 2;
        assert!(
            t.pixels_rendered as i64 - half < 20,
            "got {}",
            t.pixels_rendered
        );
    }

    #[test]
    fn tiled_traversal_emits_the_same_fragments_in_tile_order() {
        let reg = registry();
        let tid = TextureId::from_index(0);

        let mut scan = Rasterizer::new(32, 32, FilterMode::Point, RasterMode::Trace, &reg);
        scan.begin_frame(0);
        fullscreen_quad(&mut scan, tid, 0.0, 1.0);
        let scan_trace = scan.finish_frame();

        let mut tiled = Rasterizer::new(32, 32, FilterMode::Point, RasterMode::Trace, &reg);
        tiled.set_traversal(Traversal::Tiled(8));
        tiled.begin_frame(0);
        fullscreen_quad(&mut tiled, tid, 0.0, 1.0);
        let tiled_trace = tiled.finish_frame();

        // Identical fragment sets...
        assert_eq!(scan_trace.pixels_rendered, tiled_trace.pixels_rendered);
        let key = |r: &mltc_trace::PixelRequest| (r.u.to_bits(), r.v.to_bits());
        let mut a: Vec<_> = scan_trace.requests.iter().map(key).collect();
        let mut b: Vec<_> = tiled_trace.requests.iter().map(key).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "traversal must not change which texels are sampled");
        // ...in a different order.
        let a_seq: Vec<_> = scan_trace.requests.iter().map(key).collect();
        let b_seq: Vec<_> = tiled_trace.requests.iter().map(key).collect();
        assert_ne!(a_seq, b_seq, "tiled traversal should reorder fragments");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn tiled_traversal_rejects_bad_edges() {
        let reg = registry();
        let mut r = Rasterizer::new(8, 8, FilterMode::Point, RasterMode::Trace, &reg);
        r.set_traversal(Traversal::Tiled(6));
    }

    #[test]
    fn trace_mode_counts_overdraw_without_z() {
        // Without the pre-pass, both surfaces are textured (late Z).
        let reg = registry();
        let mut r = Rasterizer::new(8, 8, FilterMode::Point, RasterMode::Trace, &reg);
        r.begin_frame(0);
        fullscreen_quad(&mut r, TextureId::from_index(0), -0.5, 1.0); // near drawn first
        fullscreen_quad(&mut r, TextureId::from_index(0), 0.5, 1.0); // far still textured
        assert_eq!(r.finish_frame().pixels_rendered, 2 * 64);
    }
}
