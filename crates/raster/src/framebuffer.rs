//! Colour + depth framebuffer with PPM output.

use std::io::{self, Write};
use std::path::Path;

/// A colour (packed 0xAABBGGRR) and depth framebuffer.
///
/// ```
/// let mut fb = mltc_raster::Framebuffer::new(4, 4);
/// fb.clear(0xff000000, 1.0);
/// assert_eq!(fb.color_at(0, 0), 0xff000000);
/// ```
#[derive(Debug, Clone)]
pub struct Framebuffer {
    width: u32,
    height: u32,
    color: Vec<u32>,
    depth: Vec<f32>,
}

impl Framebuffer {
    /// Creates a framebuffer cleared to opaque black and far depth.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "framebuffer must be non-empty");
        let n = (width * height) as usize;
        Self {
            width,
            height,
            color: vec![0xff00_0000; n],
            depth: vec![f32::INFINITY; n],
        }
    }

    /// Width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Clears colour and depth.
    pub fn clear(&mut self, color: u32, depth: f32) {
        self.color.fill(color);
        self.depth.fill(depth);
    }

    #[inline]
    fn idx(&self, x: u32, y: u32) -> usize {
        debug_assert!(x < self.width && y < self.height);
        (y * self.width + x) as usize
    }

    /// Depth at a pixel.
    #[inline]
    pub fn depth_at(&self, x: u32, y: u32) -> f32 {
        self.depth[self.idx(x, y)]
    }

    /// Colour at a pixel.
    #[inline]
    pub fn color_at(&self, x: u32, y: u32) -> u32 {
        self.color[self.idx(x, y)]
    }

    /// Depth-tests `z` at `(x, y)`; on pass, writes colour + depth and
    /// returns `true` (late-Z, as in the fixed-function pipelines the paper
    /// studies).
    #[inline]
    pub fn depth_test_write(&mut self, x: u32, y: u32, z: f32, color: u32) -> bool {
        let i = self.idx(x, y);
        if z <= self.depth[i] {
            self.depth[i] = z;
            self.color[i] = color;
            true
        } else {
            false
        }
    }

    /// Depth-tests without writing colour (for the z-pre-pass ablation).
    #[inline]
    pub fn depth_test_only(&mut self, x: u32, y: u32, z: f32) -> bool {
        let i = self.idx(x, y);
        if z <= self.depth[i] {
            self.depth[i] = z;
            true
        } else {
            false
        }
    }

    /// Passes if `z` is (almost) the stored depth — the texture pass of the
    /// z-pre-pass ablation.
    #[inline]
    pub fn depth_equal(&self, x: u32, y: u32, z: f32) -> bool {
        let stored = self.depth[self.idx(x, y)];
        z <= stored * (1.0 + 1e-5) + 1e-7
    }

    /// Serialises the colour buffer as a binary PPM (P6) image.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_ppm<W: Write>(&self, mut w: W) -> io::Result<()> {
        write!(w, "P6\n{} {}\n255\n", self.width, self.height)?;
        let mut row = Vec::with_capacity(self.width as usize * 3);
        for y in 0..self.height {
            row.clear();
            for x in 0..self.width {
                let [r, g, b, _] = self.color_at(x, y).to_le_bytes();
                row.extend_from_slice(&[r, g, b]);
            }
            w.write_all(&row)?;
        }
        Ok(())
    }

    /// Writes a PPM file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates file-creation and write errors.
    pub fn save_ppm<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        let f = std::fs::File::create(path)?;
        self.write_ppm(io::BufWriter::new(f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_black_and_far() {
        let fb = Framebuffer::new(2, 2);
        assert_eq!(fb.color_at(1, 1), 0xff00_0000);
        assert_eq!(fb.depth_at(0, 0), f32::INFINITY);
    }

    #[test]
    fn depth_test_rejects_farther_fragments() {
        let mut fb = Framebuffer::new(2, 2);
        assert!(fb.depth_test_write(0, 0, 0.5, 1));
        assert!(!fb.depth_test_write(0, 0, 0.7, 2));
        assert_eq!(fb.color_at(0, 0), 1);
        assert!(fb.depth_test_write(0, 0, 0.3, 3));
        assert_eq!(fb.color_at(0, 0), 3);
    }

    #[test]
    fn depth_only_pass_does_not_touch_color() {
        let mut fb = Framebuffer::new(1, 1);
        fb.depth_test_only(0, 0, 0.5);
        assert_eq!(fb.color_at(0, 0), 0xff00_0000);
        assert!(fb.depth_equal(0, 0, 0.5));
        assert!(!fb.depth_equal(0, 0, 0.6));
    }

    #[test]
    fn ppm_header_and_size() {
        let fb = Framebuffer::new(3, 2);
        let mut out = Vec::new();
        fb.write_ppm(&mut out).unwrap();
        assert!(out.starts_with(b"P6\n3 2\n255\n"));
        assert_eq!(out.len(), 11 + 3 * 2 * 3);
    }

    #[test]
    fn clear_resets_both_planes() {
        let mut fb = Framebuffer::new(2, 1);
        fb.depth_test_write(0, 0, 0.1, 42);
        fb.clear(7, 2.0);
        assert_eq!(fb.color_at(0, 0), 7);
        assert_eq!(fb.depth_at(0, 0), 2.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_size_rejected() {
        let _ = Framebuffer::new(0, 4);
    }
}
