//! Colour evaluation: filtering actual texels for shaded output.

use mltc_texture::{unpack_rgba, TextureRegistry};
use mltc_trace::{filter_taps, FilterMode, PixelRequest};

/// Filters the texels a request touches into a final colour (packed
/// 0xAABBGGRR), using the same [`filter_taps`] expansion the cache engine
/// replays — so the image is produced from exactly the texels the caches
/// are charged for.
///
/// # Panics
///
/// Panics if the request's texture is unknown to (or deleted from) the
/// registry.
///
/// ```
/// use mltc_raster::shade_request;
/// use mltc_texture::{synth, MipPyramid, TextureRegistry};
/// use mltc_trace::{FilterMode, PixelRequest};
/// let mut reg = TextureRegistry::new();
/// let tid = reg.load("red", MipPyramid::from_image(
///     mltc_texture::Image::filled(16, 16, synth::HOST_FORMAT, [255, 0, 0])));
/// let c = shade_request(&reg, &PixelRequest { tid, u: 4.0, v: 4.0, lod: 0.0 },
///                       FilterMode::Bilinear);
/// let [r, g, _, _] = c.to_le_bytes();
/// assert!(r > 240 && g < 10);
/// ```
pub fn shade_request(registry: &TextureRegistry, req: &PixelRequest, filter: FilterMode) -> u32 {
    let pyr = registry
        .pyramid(req.tid)
        .expect("shading request for unknown texture");
    let levels = pyr.level_count() as u32;
    let taps = filter_taps(req, filter, levels, |m| {
        let l = pyr.level(m as usize);
        (l.width(), l.height())
    });
    let mut acc = [0.0f32; 4];
    for tap in &taps {
        let texel = pyr.level(tap.m as usize).texel(tap.u, tap.v);
        let [r, g, b, a] = unpack_rgba(texel);
        acc[0] += r as f32 * tap.weight;
        acc[1] += g as f32 * tap.weight;
        acc[2] += b as f32 * tap.weight;
        acc[3] += a as f32 * tap.weight;
    }
    u32::from_le_bytes([
        acc[0].round().clamp(0.0, 255.0) as u8,
        acc[1].round().clamp(0.0, 255.0) as u8,
        acc[2].round().clamp(0.0, 255.0) as u8,
        acc[3].round().clamp(0.0, 255.0) as u8,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use mltc_texture::{synth, Image, MipPyramid, TextureId};

    fn reg_with(img: Image) -> (TextureRegistry, TextureId) {
        let mut reg = TextureRegistry::new();
        let tid = reg.load("t", MipPyramid::from_image(img));
        (reg, tid)
    }

    #[test]
    fn point_sampling_picks_exact_texel() {
        let img = Image::from_fn(4, 4, synth::HOST_FORMAT, |x, y| {
            if x == 2 && y == 1 {
                [255, 255, 255]
            } else {
                [0, 0, 0]
            }
        });
        let (reg, tid) = reg_with(img);
        let c = shade_request(
            &reg,
            &PixelRequest {
                tid,
                u: 2.5,
                v: 1.5,
                lod: 0.0,
            },
            FilterMode::Point,
        );
        assert_eq!(c & 0xff, 255);
        let c = shade_request(
            &reg,
            &PixelRequest {
                tid,
                u: 0.5,
                v: 0.5,
                lod: 0.0,
            },
            FilterMode::Point,
        );
        assert_eq!(c & 0xff, 0);
    }

    #[test]
    fn bilinear_blends_neighbours() {
        let img = Image::from_fn(4, 4, synth::HOST_FORMAT, |x, _| {
            if x < 2 {
                [0, 0, 0]
            } else {
                [255, 255, 255]
            }
        });
        let (reg, tid) = reg_with(img);
        // Exactly between texels 1 and 2: a 50/50 blend.
        let c = shade_request(
            &reg,
            &PixelRequest {
                tid,
                u: 2.0,
                v: 0.5,
                lod: 0.0,
            },
            FilterMode::Bilinear,
        );
        let [r, _, _, _] = c.to_le_bytes();
        assert!((r as i32 - 128).abs() <= 4, "r = {r}");
    }

    #[test]
    fn trilinear_blends_levels() {
        // Level 0 pure white; level 1 (box filter of white) also white, so
        // any lod must stay white — checks weight normalisation.
        let (reg, tid) = reg_with(Image::filled(8, 8, synth::HOST_FORMAT, [255, 255, 255]));
        for lod in [0.0, 0.3, 0.5, 1.7, 2.5] {
            let c = shade_request(
                &reg,
                &PixelRequest {
                    tid,
                    u: 3.0,
                    v: 3.0,
                    lod,
                },
                FilterMode::Trilinear,
            );
            let [r, g, b, a] = c.to_le_bytes();
            assert_eq!((r, g, b, a), (255, 255, 255, 255), "lod {lod}");
        }
    }

    #[test]
    fn high_lod_reads_coarse_level() {
        // Half black / half white: the 1x1 coarsest level is mid-grey.
        let img = Image::from_fn(8, 8, synth::HOST_FORMAT, |x, _| {
            if x < 4 {
                [0, 0, 0]
            } else {
                [255, 255, 255]
            }
        });
        let (reg, tid) = reg_with(img);
        let c = shade_request(
            &reg,
            &PixelRequest {
                tid,
                u: 1.0,
                v: 1.0,
                lod: 10.0,
            },
            FilterMode::Point,
        );
        let [r, _, _, _] = c.to_le_bytes();
        assert!(r > 90 && r < 170, "coarsest level should be grey, got {r}");
    }

    #[test]
    #[should_panic(expected = "unknown texture")]
    fn unknown_texture_panics() {
        let reg = TextureRegistry::new();
        let _ = shade_request(
            &reg,
            &PixelRequest {
                tid: TextureId::from_index(3),
                u: 0.0,
                v: 0.0,
                lod: 0.0,
            },
            FilterMode::Point,
        );
    }
}
