//! Property-based tests for filtering and the trace codec.

use mltc_texture::TextureId;
use mltc_trace::codec::{decode_frame, encode_frame, CodecError, MAX_FRAME_REQUESTS};
use mltc_trace::{filter_taps, FilterMode, FrameTrace, PixelRequest};
use proptest::prelude::*;

fn filters() -> impl Strategy<Value = FilterMode> {
    prop_oneof![
        Just(FilterMode::Point),
        Just(FilterMode::Bilinear),
        Just(FilterMode::Trilinear),
    ]
}

fn requests() -> impl Strategy<Value = PixelRequest> {
    (
        0u32..8,
        -1000.0f32..1000.0,
        -1000.0f32..1000.0,
        -4.0f32..16.0,
    )
        .prop_map(|(tid, u, v, lod)| PixelRequest {
            tid: TextureId::from_index(tid),
            u,
            v,
            lod,
        })
}

fn square_dims(base: u32) -> impl Fn(u32) -> (u32, u32) {
    move |m| ((base >> m).max(1), (base >> m).max(1))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// For every filter mode and any request: taps stay in bounds, weights
    /// are non-negative and sum to 1, and the tap count obeys the mode.
    #[test]
    fn taps_are_well_formed(req in requests(), filter in filters(), base_exp in 2u32..9) {
        let base = 1u32 << base_exp;
        let levels = base_exp + 1;
        let dims = square_dims(base);
        let taps = filter_taps(&req, filter, levels, &dims);

        prop_assert!(!taps.is_empty());
        prop_assert!(taps.len() <= filter.max_taps());
        match filter {
            FilterMode::Point => prop_assert_eq!(taps.len(), 1),
            FilterMode::Bilinear => prop_assert_eq!(taps.len(), 4),
            FilterMode::Trilinear => prop_assert!(taps.len() == 4 || taps.len() == 8),
        }

        let mut sum = 0.0f64;
        for tap in &taps {
            let (w, h) = dims(tap.m);
            prop_assert!(tap.m < levels);
            prop_assert!(tap.u < w && tap.v < h, "tap {:?} out of {}x{}", tap, w, h);
            prop_assert!(tap.weight >= -1e-6);
            sum += tap.weight as f64;
        }
        prop_assert!((sum - 1.0).abs() < 1e-4, "weights sum to {}", sum);
    }

    /// The mip levels a trilinear request touches straddle its (clamped)
    /// level of detail.
    #[test]
    fn trilinear_levels_straddle_lod(req in requests(), base_exp in 2u32..9) {
        let levels = base_exp + 1;
        let taps = filter_taps(&req, FilterMode::Trilinear, levels, square_dims(1 << base_exp));
        let clamped = req.lod.clamp(0.0, (levels - 1) as f32);
        let lo = clamped.floor() as u32;
        for tap in &taps {
            prop_assert!(tap.m == lo || tap.m == (lo + 1).min(levels - 1),
                "tap level {} vs lod {}", tap.m, clamped);
        }
    }

    /// Point and bilinear taps agree on the mip level they pick.
    #[test]
    fn point_and_bilinear_pick_same_level(req in requests(), base_exp in 2u32..9) {
        let levels = base_exp + 1;
        let dims = square_dims(1 << base_exp);
        let p = filter_taps(&req, FilterMode::Point, levels, &dims);
        let b = filter_taps(&req, FilterMode::Bilinear, levels, &dims);
        prop_assert_eq!(p.as_slice()[0].m, b.as_slice()[0].m);
    }

    /// The binary codec round-trips arbitrary traces exactly.
    #[test]
    fn codec_roundtrip(
        frame in 0u32..10_000,
        w in 1u32..2048,
        h in 1u32..2048,
        filter in filters(),
        reqs in proptest::collection::vec(requests(), 0..200),
    ) {
        let mut t = FrameTrace::new(frame, w, h, filter);
        for r in reqs {
            t.push(r);
        }
        let bytes = encode_frame(&t);
        let mut buf = bytes.as_ref();
        let back = decode_frame(&mut buf).unwrap();
        prop_assert_eq!(back, t);
        prop_assert!(buf.is_empty(), "decoder must consume the whole frame");
    }

    /// Truncating an encoded frame anywhere inside always errors (never
    /// silently yields a frame).
    #[test]
    fn codec_detects_truncation(
        reqs in proptest::collection::vec(requests(), 1..20),
        cut_frac in 0.0f64..1.0,
    ) {
        let mut t = FrameTrace::new(0, 8, 8, FilterMode::Point);
        for r in reqs {
            t.push(r);
        }
        let bytes = encode_frame(&t);
        let cut = 1 + (cut_frac * (bytes.len() - 2) as f64) as usize;
        let mut buf = &bytes[..cut];
        prop_assert!(decode_frame(&mut buf).is_err());
    }

    /// Arbitrary bytes never panic the decoder: every input yields either a
    /// frame or a typed error.
    #[test]
    fn decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut buf = bytes.as_slice();
        let _ = decode_frame(&mut buf);
    }

    /// A header claiming more than [`MAX_FRAME_REQUESTS`] requests is
    /// rejected as `Oversized` before the decoder allocates for the payload
    /// — regardless of how much (or little) payload follows.
    #[test]
    fn oversized_counts_are_rejected_before_allocation(
        excess in 1u32..=(u32::MAX - MAX_FRAME_REQUESTS),
        tail in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut t = FrameTrace::new(0, 8, 8, FilterMode::Point);
        t.push(PixelRequest { tid: TextureId::from_index(0), u: 0.0, v: 0.0, lod: 0.0 });
        let mut bytes = encode_frame(&t).to_vec();
        let huge = MAX_FRAME_REQUESTS + excess;
        bytes[25..29].copy_from_slice(&huge.to_le_bytes());
        bytes.extend_from_slice(&tail);
        let mut buf = bytes.as_slice();
        prop_assert!(matches!(
            decode_frame(&mut buf),
            Err(CodecError::Oversized { count, max })
                if count == huge && max == MAX_FRAME_REQUESTS
        ));
    }
}
