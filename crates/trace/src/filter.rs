//! Texture filtering: the authoritative request → texel-taps mapping.
//!
//! Both the renderer (for colours) and the cache engine (for addresses)
//! expand a [`PixelRequest`](crate::PixelRequest) through [`filter_taps`],
//! so the simulated caches see exactly the texels the image was filtered
//! from.

use crate::PixelRequest;

/// Texture filtering mode (paper §2.1: point sampling for the locality
/// statistics, bilinear and trilinear for the cache simulations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FilterMode {
    /// Nearest texel of the nearest mip level: 1 tap.
    Point,
    /// 2×2 weighted average within the nearest mip level: 4 taps.
    #[default]
    Bilinear,
    /// Bilinear in the two straddling mip levels, blended: 8 taps
    /// (4 when the level of detail is clamped at either end of the pyramid).
    Trilinear,
}

impl FilterMode {
    /// Short lowercase name (`"point"`, `"bilinear"`, `"trilinear"`).
    pub fn name(self) -> &'static str {
        match self {
            FilterMode::Point => "point",
            FilterMode::Bilinear => "bilinear",
            FilterMode::Trilinear => "trilinear",
        }
    }

    /// Maximum taps this mode can produce.
    pub const fn max_taps(self) -> usize {
        match self {
            FilterMode::Point => 1,
            FilterMode::Bilinear => 4,
            FilterMode::Trilinear => 8,
        }
    }
}

impl std::fmt::Display for FilterMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One texel read produced by filtering: mip level, wrapped in-bounds texel
/// coordinates, and its blend weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tap {
    /// Mip level.
    pub m: u32,
    /// In-bounds texel column.
    pub u: u32,
    /// In-bounds texel row.
    pub v: u32,
    /// Blend weight; the weights of a tap list sum to 1.
    pub weight: f32,
}

/// Up to 8 [`Tap`]s, inline (no allocation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TapList {
    taps: [Tap; 8],
    len: u8,
}

impl TapList {
    const EMPTY_TAP: Tap = Tap {
        m: 0,
        u: 0,
        v: 0,
        weight: 0.0,
    };

    fn new() -> Self {
        Self {
            taps: [Self::EMPTY_TAP; 8],
            len: 0,
        }
    }

    #[inline]
    fn push(&mut self, t: Tap) {
        self.taps[self.len as usize] = t;
        self.len += 1;
    }

    /// The taps as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[Tap] {
        &self.taps[..self.len as usize]
    }

    /// Number of taps.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when no taps were produced (never happens for valid requests).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over the taps.
    pub fn iter(&self) -> std::slice::Iter<'_, Tap> {
        self.as_slice().iter()
    }
}

impl<'a> IntoIterator for &'a TapList {
    type Item = &'a Tap;
    type IntoIter = std::slice::Iter<'a, Tap>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// Wraps a (possibly negative / out-of-range) texel coordinate into
/// `[0, size)` — repeat addressing, the mode both workloads use.
///
/// Almost every tap is already in range, so the general `rem_euclid`
/// (a hardware divide) only runs for coordinates that actually crossed an
/// edge; the fast path is a compare. The value is identical either way.
#[inline]
pub(crate) fn wrap(x: i64, size: u32) -> u32 {
    debug_assert!(size > 0);
    if (x as u64) < size as u64 {
        return x as u32;
    }
    x.rem_euclid(size as i64) as u32
}

/// Expands a pixel request into the texels it reads under `filter`.
///
/// `level_count` is the texture's mip level count and `dims(m)` returns the
/// dimensions of level `m`. Request coordinates are texel-space at level 0;
/// coarser levels address `u / 2^m` (the dimension ratio is used exactly, so
/// non-square clamped pyramids stay consistent).
///
/// ```
/// use mltc_trace::{filter_taps, FilterMode, PixelRequest};
/// use mltc_texture::TextureId;
/// let req = PixelRequest { tid: TextureId::from_index(0), u: 1.0, v: 1.0, lod: 0.0 };
/// let taps = filter_taps(&req, FilterMode::Point, 5, |m| (16 >> m, 16 >> m));
/// assert_eq!(taps.len(), 1);
/// assert_eq!(taps.as_slice()[0].weight, 1.0);
/// ```
#[inline]
pub fn filter_taps(
    req: &PixelRequest,
    filter: FilterMode,
    level_count: u32,
    dims: impl Fn(u32) -> (u32, u32),
) -> TapList {
    debug_assert!(level_count > 0);
    let max_m = level_count - 1;
    let mut out = TapList::new();
    let (w0, h0) = dims(0);

    match filter {
        FilterMode::Point => {
            let m = (req.lod + 0.5).floor().max(0.0).min(max_m as f32) as u32;
            point_tap(&mut out, req, m, dims(m), (w0, h0), 1.0);
        }
        FilterMode::Bilinear => {
            let m = (req.lod + 0.5).floor().max(0.0).min(max_m as f32) as u32;
            bilinear_taps(&mut out, req, m, dims(m), (w0, h0), 1.0);
        }
        FilterMode::Trilinear => {
            let lod = req.lod.max(0.0).min(max_m as f32);
            let m0 = lod.floor() as u32;
            let frac = lod - m0 as f32;
            if frac <= f32::EPSILON || m0 == max_m {
                bilinear_taps(&mut out, req, m0, dims(m0), (w0, h0), 1.0);
            } else {
                let m1 = m0 + 1;
                bilinear_taps(&mut out, req, m0, dims(m0), (w0, h0), 1.0 - frac);
                bilinear_taps(&mut out, req, m1, dims(m1), (w0, h0), frac);
            }
        }
    }
    out
}

/// Converts level-0 texel coordinates to level-`m` continuous coordinates.
#[inline]
fn to_level(req: &PixelRequest, (w, h): (u32, u32), (w0, h0): (u32, u32)) -> (f32, f32) {
    (req.u * w as f32 / w0 as f32, req.v * h as f32 / h0 as f32)
}

#[inline]
fn point_tap(
    out: &mut TapList,
    req: &PixelRequest,
    m: u32,
    level_dims: (u32, u32),
    base_dims: (u32, u32),
    weight: f32,
) {
    let (u, v) = to_level(req, level_dims, base_dims);
    out.push(Tap {
        m,
        u: wrap(u.floor() as i64, level_dims.0),
        v: wrap(v.floor() as i64, level_dims.1),
        weight,
    });
}

#[inline]
fn bilinear_taps(
    out: &mut TapList,
    req: &PixelRequest,
    m: u32,
    level_dims: (u32, u32),
    base_dims: (u32, u32),
    weight: f32,
) {
    let (w, h) = level_dims;
    let (u, v) = to_level(req, level_dims, base_dims);
    // Texel centres sit at integer + 0.5.
    let uc = u - 0.5;
    let vc = v - 0.5;
    let x0 = uc.floor();
    let y0 = vc.floor();
    let fx = uc - x0;
    let fy = vc - y0;
    let (x0, y0) = (x0 as i64, y0 as i64);
    let corners = [
        (x0, y0, (1.0 - fx) * (1.0 - fy)),
        (x0 + 1, y0, fx * (1.0 - fy)),
        (x0, y0 + 1, (1.0 - fx) * fy),
        (x0 + 1, y0 + 1, fx * fy),
    ];
    for (x, y, wgt) in corners {
        out.push(Tap {
            m,
            u: wrap(x, w),
            v: wrap(y, h),
            weight: wgt * weight,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mltc_texture::TextureId;

    fn req(u: f32, v: f32, lod: f32) -> PixelRequest {
        PixelRequest {
            tid: TextureId::from_index(0),
            u,
            v,
            lod,
        }
    }

    fn square_dims(base: u32) -> impl Fn(u32) -> (u32, u32) {
        move |m| ((base >> m).max(1), (base >> m).max(1))
    }

    fn weight_sum(t: &TapList) -> f32 {
        t.iter().map(|t| t.weight).sum()
    }

    #[test]
    fn point_single_tap_floor() {
        let t = filter_taps(&req(3.7, 9.2, 0.0), FilterMode::Point, 5, square_dims(16));
        assert_eq!(t.len(), 1);
        let tap = t.as_slice()[0];
        assert_eq!((tap.m, tap.u, tap.v), (0, 3, 9));
    }

    #[test]
    fn point_rounds_lod() {
        let t = filter_taps(&req(0.0, 0.0, 1.6), FilterMode::Point, 5, square_dims(16));
        assert_eq!(t.as_slice()[0].m, 2);
        let t = filter_taps(&req(0.0, 0.0, 1.4), FilterMode::Point, 5, square_dims(16));
        assert_eq!(t.as_slice()[0].m, 1);
    }

    #[test]
    fn lod_clamps_to_pyramid() {
        let t = filter_taps(&req(0.0, 0.0, 99.0), FilterMode::Point, 5, square_dims(16));
        assert_eq!(t.as_slice()[0].m, 4);
        let t = filter_taps(&req(0.0, 0.0, -3.0), FilterMode::Point, 5, square_dims(16));
        assert_eq!(t.as_slice()[0].m, 0);
    }

    #[test]
    fn bilinear_weights_sum_to_one() {
        let t = filter_taps(
            &req(3.3, 7.8, 0.2),
            FilterMode::Bilinear,
            5,
            square_dims(16),
        );
        assert_eq!(t.len(), 4);
        assert!((weight_sum(&t) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn bilinear_at_texel_centre_is_single_texel() {
        // u = 2.5 is the centre of texel 2: all weight on one corner.
        let t = filter_taps(
            &req(2.5, 2.5, 0.0),
            FilterMode::Bilinear,
            5,
            square_dims(16),
        );
        let big: Vec<&Tap> = t.iter().filter(|t| t.weight > 0.99).collect();
        assert_eq!(big.len(), 1);
        assert_eq!((big[0].u, big[0].v), (2, 2));
    }

    #[test]
    fn bilinear_wraps_at_edges() {
        let t = filter_taps(
            &req(0.1, 0.1, 0.0),
            FilterMode::Bilinear,
            5,
            square_dims(16),
        );
        // Neighbours of texel (-1,-1) wrap to 15.
        assert!(t.iter().any(|t| t.u == 15 && t.v == 15));
        assert!(t.iter().any(|t| t.u == 0 && t.v == 0));
    }

    #[test]
    fn trilinear_straddles_two_levels() {
        let t = filter_taps(
            &req(4.0, 4.0, 0.5),
            FilterMode::Trilinear,
            5,
            square_dims(16),
        );
        assert_eq!(t.len(), 8);
        let levels: std::collections::HashSet<u32> = t.iter().map(|t| t.m).collect();
        assert_eq!(levels, [0u32, 1].into_iter().collect());
        assert!((weight_sum(&t) - 1.0).abs() < 1e-5);
        // Half the weight in each level.
        let w0: f32 = t.iter().filter(|t| t.m == 0).map(|t| t.weight).sum();
        assert!((w0 - 0.5).abs() < 1e-5);
    }

    #[test]
    fn trilinear_integral_lod_uses_one_level() {
        let t = filter_taps(
            &req(4.0, 4.0, 1.0),
            FilterMode::Trilinear,
            5,
            square_dims(16),
        );
        assert_eq!(t.len(), 4);
        assert!(t.iter().all(|t| t.m == 1));
    }

    #[test]
    fn trilinear_clamped_at_coarsest_uses_one_level() {
        let t = filter_taps(
            &req(0.0, 0.0, 10.0),
            FilterMode::Trilinear,
            5,
            square_dims(16),
        );
        assert_eq!(t.len(), 4);
        assert!(t.iter().all(|t| t.m == 4));
    }

    #[test]
    fn coarse_level_coordinates_scale_down() {
        // Texel (8,8) at level 0 of a 16x16 texture is texel (4,4) at level 1.
        let t = filter_taps(&req(8.2, 8.2, 1.0), FilterMode::Point, 5, square_dims(16));
        let tap = t.as_slice()[0];
        assert_eq!((tap.m, tap.u, tap.v), (1, 4, 4));
    }

    #[test]
    fn taps_always_in_bounds() {
        let dims = square_dims(8);
        for mode in [
            FilterMode::Point,
            FilterMode::Bilinear,
            FilterMode::Trilinear,
        ] {
            for i in 0..200 {
                let r = req(
                    i as f32 * 1.37 - 50.0,
                    i as f32 * -2.11 + 33.3,
                    i as f32 * 0.07 - 1.0,
                );
                for tap in &filter_taps(&r, mode, 4, &dims) {
                    let (w, h) = dims(tap.m);
                    assert!(tap.u < w && tap.v < h, "{mode:?} tap {tap:?} out of bounds");
                }
            }
        }
    }

    #[test]
    fn wrap_handles_negatives() {
        assert_eq!(wrap(-1, 8), 7);
        assert_eq!(wrap(-8, 8), 0);
        assert_eq!(wrap(17, 8), 1);
    }
}
