//! Per-frame working-set and bandwidth statistics (paper §3.2, §4).

use crate::{filter_taps, FilterMode, FrameTrace};
use mltc_cache::fxhash::FxHashSet;
use mltc_texture::{TextureId, TextureRegistry};

/// A tile-size class the statistics pass tracks block sets for.
///
/// The paper gathers statistics for L1 tile sizes of 4×4 and 8×8 texels and
/// L2 sizes of 8×8, 16×16 and 32×32 (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TileClass {
    /// 4×4 L1 tiles.
    L1x4,
    /// 8×8 L1 tiles.
    L1x8,
    /// 8×8 L2 tiles.
    L2x8,
    /// 16×16 L2 tiles.
    L2x16,
    /// 32×32 L2 tiles.
    L2x32,
}

impl TileClass {
    /// All classes, in the order used by [`FrameWorkingSet`].
    pub const ALL: [TileClass; 5] = [
        TileClass::L1x4,
        TileClass::L1x8,
        TileClass::L2x8,
        TileClass::L2x16,
        TileClass::L2x32,
    ];

    /// `log2` of the tile edge in texels.
    pub const fn shift(self) -> u32 {
        match self {
            TileClass::L1x4 => 2,
            TileClass::L1x8 | TileClass::L2x8 => 3,
            TileClass::L2x16 => 4,
            TileClass::L2x32 => 5,
        }
    }

    /// Texels per tile.
    pub const fn texel_count(self) -> u64 {
        let e = 1u64 << self.shift();
        e * e
    }

    /// Tile bytes at the accelerator's expanded 32-bit texel depth.
    pub const fn cache_bytes(self) -> u64 {
        self.texel_count() * 4
    }

    /// Index into [`FrameWorkingSet`] arrays.
    pub const fn idx(self) -> usize {
        match self {
            TileClass::L1x4 => 0,
            TileClass::L1x8 => 1,
            TileClass::L2x8 => 2,
            TileClass::L2x16 => 3,
            TileClass::L2x32 => 4,
        }
    }
}

impl std::fmt::Display for TileClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let e = 1u32 << self.shift();
        let lvl = match self {
            TileClass::L1x4 | TileClass::L1x8 => "L1",
            _ => "L2",
        };
        write!(f, "{lvl} {e}x{e}")
    }
}

/// The measured working set of one frame: for every tile class, how many
/// distinct blocks were touched (*total*) and how many of them were not
/// touched in the previous frame (*new*). This is the data behind the
/// paper's Figs. 4–6 and Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameWorkingSet {
    /// Frame number.
    pub frame: u32,
    /// Textured fragments rasterized.
    pub pixels_rendered: u64,
    /// Depth complexity `d` (fragments per screen pixel).
    pub depth_complexity: f64,
    /// Distinct blocks touched, indexed by [`TileClass::idx`].
    pub total_blocks: [u64; 5],
    /// Touched blocks not touched in the previous frame, by class index.
    pub new_blocks: [u64; 5],
    /// Textures touched this frame.
    pub touched_tids: Vec<TextureId>,
    /// Host bytes (original depth, full pyramids) of the touched textures —
    /// the per-frame *minimum push-architecture memory* of Fig. 4, under the
    /// paper's assumption of a perfect application replacement algorithm.
    pub push_min_bytes: u64,
}

impl FrameWorkingSet {
    /// Bytes of blocks touched, at 32-bit cache depth.
    pub fn total_bytes(&self, class: TileClass) -> u64 {
        self.total_blocks[class.idx()] * class.cache_bytes()
    }

    /// Bytes of blocks touched that are new since the previous frame.
    pub fn new_bytes(&self, class: TileClass) -> u64 {
        self.new_blocks[class.idx()] * class.cache_bytes()
    }

    /// Block utilization for a class: texel fetches divided by texels in the
    /// touched blocks (values above 1 mean texels are re-used; §4.1 defines
    /// the working set through this quantity).
    pub fn utilization(&self, class: TileClass) -> f64 {
        let blocks = self.total_blocks[class.idx()];
        if blocks == 0 {
            0.0
        } else {
            self.pixels_rendered as f64 / (blocks as f64 * class.texel_count() as f64)
        }
    }
}

/// Streams [`FrameTrace`]s and produces a [`FrameWorkingSet`] per frame,
/// carrying the previous frame's block sets to compute *new* blocks.
///
/// Statistics are measured with point sampling regardless of the trace's
/// filter mode, matching §3.2: "All texture accesses have been measured with
/// point-sampling in order to provide a picture of basic texture locality in
/// the absence of more advanced filtering."
#[derive(Debug)]
pub struct FrameStatsCollector {
    /// Per-tid mip dimensions (`None` for deleted textures).
    dims: Vec<Option<Vec<(u32, u32)>>>,
    /// Per-tid host byte size (original depth, full pyramid).
    host_bytes: Vec<u64>,
    prev: [FxHashSet<u64>; 5],
}

impl FrameStatsCollector {
    /// Creates a collector over the textures of `registry`.
    pub fn new(registry: &TextureRegistry) -> Self {
        let mut dims = vec![None; registry.issued_count()];
        let mut host_bytes = vec![0u64; registry.issued_count()];
        for (tid, pyr) in registry.iter() {
            dims[tid.index() as usize] =
                Some(pyr.iter().map(|l| (l.width(), l.height())).collect());
            host_bytes[tid.index() as usize] = pyr.byte_size() as u64;
        }
        Self {
            dims,
            host_bytes,
            prev: Default::default(),
        }
    }

    /// Processes one frame's trace.
    ///
    /// # Panics
    ///
    /// Panics if the trace references a texture unknown to the registry the
    /// collector was built over.
    pub fn process_frame(&mut self, trace: &FrameTrace) -> FrameWorkingSet {
        let mut cur: [FxHashSet<u64>; 5] = Default::default();
        let mut tids: FxHashSet<u32> = Default::default();

        for req in &trace.requests {
            let dims = self.dims[req.tid.index() as usize]
                .as_ref()
                .expect("trace references texture unknown to the collector");
            let levels = dims.len() as u32;
            let taps = filter_taps(req, FilterMode::Point, levels, |m| dims[m as usize]);
            tids.insert(req.tid.index());
            for tap in &taps {
                for class in TileClass::ALL {
                    let s = class.shift();
                    // Block key: ⟨tid, level, block column, block row⟩.
                    let key = ((req.tid.index() as u64) << 40)
                        | ((tap.m as u64) << 32)
                        | (((tap.u >> s) as u64) << 16)
                        | (tap.v >> s) as u64;
                    cur[class.idx()].insert(key);
                }
            }
        }

        let mut total_blocks = [0u64; 5];
        let mut new_blocks = [0u64; 5];
        for class in TileClass::ALL {
            let i = class.idx();
            total_blocks[i] = cur[i].len() as u64;
            new_blocks[i] = cur[i].iter().filter(|k| !self.prev[i].contains(*k)).count() as u64;
        }
        self.prev = cur;

        let mut touched: Vec<TextureId> = tids.iter().map(|&t| TextureId::from_index(t)).collect();
        touched.sort_unstable();
        let push_min_bytes = touched
            .iter()
            .map(|t| self.host_bytes[t.index() as usize])
            .sum();

        FrameWorkingSet {
            frame: trace.frame,
            pixels_rendered: trace.pixels_rendered,
            depth_complexity: trace.depth_complexity(),
            total_blocks,
            new_blocks,
            touched_tids: touched,
            push_min_bytes,
        }
    }

    /// Forgets the previous frame's block sets (use between animations).
    pub fn reset(&mut self) {
        self.prev = Default::default();
    }
}

/// Whole-animation aggregates: the numbers of the paper's Table 1 plus the
/// per-class averages quoted in §4.2.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSummary {
    /// Frames aggregated.
    pub frames: usize,
    /// Mean depth complexity `d`.
    pub depth_complexity: f64,
    /// Mean block utilization for 16×16 L2 tiles (Table 1).
    pub utilization_16: f64,
    /// Expected inter-frame working set `W = R·d·4 / utilization` in bytes
    /// (§4.1), computed from the means.
    pub expected_working_set: f64,
    /// Mean bytes of blocks touched per frame, by [`TileClass::idx`].
    pub mean_total_bytes: [f64; 5],
    /// Mean bytes of *new* blocks per frame, by class index.
    pub mean_new_bytes: [f64; 5],
    /// Peak per-frame minimum push memory in bytes.
    pub push_peak_bytes: u64,
}

impl WorkloadSummary {
    /// Aggregates per-frame working sets for a `width`×`height` animation.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is empty.
    pub fn from_frames(frames: &[FrameWorkingSet], width: u32, height: u32) -> Self {
        assert!(!frames.is_empty(), "cannot summarise zero frames");
        let n = frames.len() as f64;
        let depth_complexity = frames.iter().map(|f| f.depth_complexity).sum::<f64>() / n;
        let utilization_16 = frames
            .iter()
            .map(|f| f.utilization(TileClass::L2x16))
            .sum::<f64>()
            / n;
        let mut mean_total_bytes = [0.0; 5];
        let mut mean_new_bytes = [0.0; 5];
        for class in TileClass::ALL {
            let i = class.idx();
            mean_total_bytes[i] = frames
                .iter()
                .map(|f| f.total_bytes(class) as f64)
                .sum::<f64>()
                / n;
            mean_new_bytes[i] = frames
                .iter()
                .map(|f| f.new_bytes(class) as f64)
                .sum::<f64>()
                / n;
        }
        let r = width as f64 * height as f64;
        let expected_working_set = if utilization_16 > 0.0 {
            r * depth_complexity * 4.0 / utilization_16
        } else {
            0.0
        };
        Self {
            frames: frames.len(),
            depth_complexity,
            utilization_16,
            expected_working_set,
            mean_total_bytes,
            mean_new_bytes,
            push_peak_bytes: frames.iter().map(|f| f.push_min_bytes).max().unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PixelRequest;
    use mltc_texture::{synth, MipPyramid};

    fn registry_with(dim: u32) -> (TextureRegistry, TextureId) {
        let mut reg = TextureRegistry::new();
        let tid = reg.load(
            "t",
            MipPyramid::from_image(synth::checkerboard(dim, 4, [0; 3], [255; 3])),
        );
        (reg, tid)
    }

    fn trace_of(tid: TextureId, pts: &[(f32, f32)]) -> FrameTrace {
        let mut t = FrameTrace::new(0, 8, 8, FilterMode::Point);
        for &(u, v) in pts {
            t.push(PixelRequest {
                tid,
                u,
                v,
                lod: 0.0,
            });
        }
        t
    }

    #[test]
    fn tile_class_arithmetic() {
        assert_eq!(TileClass::L2x16.texel_count(), 256);
        assert_eq!(TileClass::L2x16.cache_bytes(), 1024);
        assert_eq!(TileClass::L1x4.cache_bytes(), 64);
    }

    #[test]
    fn single_texel_touches_one_block_per_class() {
        let (reg, tid) = registry_with(64);
        let mut c = FrameStatsCollector::new(&reg);
        let ws = c.process_frame(&trace_of(tid, &[(0.0, 0.0)]));
        for class in TileClass::ALL {
            assert_eq!(ws.total_blocks[class.idx()], 1, "{class}");
            assert_eq!(ws.new_blocks[class.idx()], 1, "{class}");
        }
        assert_eq!(ws.touched_tids, vec![tid]);
    }

    #[test]
    fn texels_in_same_l2_but_different_l1_blocks() {
        let (reg, tid) = registry_with(64);
        let mut c = FrameStatsCollector::new(&reg);
        // (0,0) and (8,0): same 16x16 block, different 4x4 and 8x8 blocks.
        let ws = c.process_frame(&trace_of(tid, &[(0.0, 0.0), (8.0, 0.0)]));
        assert_eq!(ws.total_blocks[TileClass::L2x16.idx()], 1);
        assert_eq!(ws.total_blocks[TileClass::L1x4.idx()], 2);
        assert_eq!(ws.total_blocks[TileClass::L1x8.idx()], 2);
    }

    #[test]
    fn repeated_frame_has_no_new_blocks() {
        let (reg, tid) = registry_with(64);
        let mut c = FrameStatsCollector::new(&reg);
        let t = trace_of(tid, &[(0.0, 0.0), (20.0, 20.0)]);
        let _ = c.process_frame(&t);
        let ws = c.process_frame(&t);
        for class in TileClass::ALL {
            assert!(ws.total_blocks[class.idx()] > 0);
            assert_eq!(ws.new_blocks[class.idx()], 0, "{class}");
        }
    }

    #[test]
    fn moved_window_is_partially_new() {
        let (reg, tid) = registry_with(64);
        let mut c = FrameStatsCollector::new(&reg);
        let _ = c.process_frame(&trace_of(tid, &[(0.0, 0.0), (4.0, 0.0)]));
        let ws = c.process_frame(&trace_of(tid, &[(4.0, 0.0), (40.0, 40.0)]));
        assert_eq!(ws.total_blocks[TileClass::L1x4.idx()], 2);
        assert_eq!(ws.new_blocks[TileClass::L1x4.idx()], 1);
    }

    #[test]
    fn utilization_counts_reuse() {
        let (reg, tid) = registry_with(64);
        let mut c = FrameStatsCollector::new(&reg);
        // 512 fetches of the same texel: 1 block of 256 texels -> util = 2.
        let pts: Vec<(f32, f32)> = (0..512).map(|_| (1.0, 1.0)).collect();
        let ws = c.process_frame(&trace_of(tid, &pts));
        assert!((ws.utilization(TileClass::L2x16) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn push_min_counts_touched_textures_once() {
        let mut reg = TextureRegistry::new();
        let a = reg.load(
            "a",
            MipPyramid::from_image(synth::checkerboard(32, 4, [0; 3], [255; 3])),
        );
        let b = reg.load(
            "b",
            MipPyramid::from_image(synth::checkerboard(32, 4, [0; 3], [255; 3])),
        );
        let mut c = FrameStatsCollector::new(&reg);
        let mut t = FrameTrace::new(0, 8, 8, FilterMode::Point);
        for _ in 0..3 {
            t.push(PixelRequest {
                tid: a,
                u: 0.0,
                v: 0.0,
                lod: 0.0,
            });
        }
        t.push(PixelRequest {
            tid: b,
            u: 0.0,
            v: 0.0,
            lod: 0.0,
        });
        let ws = c.process_frame(&t);
        let pyr_bytes = reg.pyramid(a).unwrap().byte_size() as u64;
        assert_eq!(ws.push_min_bytes, 2 * pyr_bytes);
        assert_eq!(ws.touched_tids, vec![a, b]);
    }

    #[test]
    fn summary_aggregates() {
        let (reg, tid) = registry_with(64);
        let mut c = FrameStatsCollector::new(&reg);
        let f1 = c.process_frame(&trace_of(tid, &[(0.0, 0.0)]));
        let f2 = c.process_frame(&trace_of(tid, &[(0.0, 0.0), (40.0, 40.0)]));
        let s = WorkloadSummary::from_frames(&[f1, f2], 8, 8);
        assert_eq!(s.frames, 2);
        assert!(s.depth_complexity > 0.0);
        assert!(s.expected_working_set > 0.0);
        assert!(s.mean_total_bytes[TileClass::L2x16.idx()] > 0.0);
        assert!(s.push_peak_bytes > 0);
    }

    #[test]
    #[should_panic(expected = "zero frames")]
    fn empty_summary_panics() {
        let _ = WorkloadSummary::from_frames(&[], 8, 8);
    }
}
