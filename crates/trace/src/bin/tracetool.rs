//! Inspect recorded trace files (see `examples/record_replay.rs` for
//! producing them).
//!
//! ```text
//! tracetool <trace-file> [--per-frame]
//! tracetool stats <trace-file> [--per-frame] [--out <file>]
//! ```
//!
//! The bare form prints a human summary. `stats` is machine-oriented: with
//! `--per-frame` it dumps one CSV row per frame (request count, nominal
//! texel-tap count at the recorded filter mode, distinct textures) through
//! the shared `mltc-telemetry` time-series exporter, so the columns match
//! the engine's own telemetry exports byte for byte.

use mltc_telemetry::{export, SeriesSnapshot};
use mltc_trace::codec::{CodecError, TraceFileReader, TraceReader};
use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::fs::File;
use std::io::{BufReader, Write};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: tracetool <trace-file> [--per-frame]\n\
         \x20      tracetool stats <trace-file> [--per-frame] [--out <file>]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("stats") {
        return stats_main(&args[1..]);
    }
    let Some(path) = args.iter().find(|a| !a.starts_with("--")) else {
        return usage();
    };
    let per_frame = args.iter().any(|a| a == "--per-frame");

    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot open {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut reader = TraceReader::new(BufReader::new(file));

    let mut frames = 0u64;
    let mut requests = 0u64;
    let mut depth_sum = 0.0f64;
    let mut tids: BTreeMap<u32, u64> = BTreeMap::new();
    let mut lod_min = f32::INFINITY;
    let mut lod_max = f32::NEG_INFINITY;
    let mut dims = (0u32, 0u32);
    let mut filter = None;

    if per_frame {
        println!("{:>6} {:>10} {:>8}", "frame", "requests", "d");
    }
    loop {
        match reader.read_frame() {
            Ok(Some(t)) => {
                frames += 1;
                requests += t.requests.len() as u64;
                depth_sum += t.depth_complexity();
                dims = (t.width, t.height);
                filter = Some(t.filter);
                for r in &t.requests {
                    *tids.entry(r.tid.index()).or_insert(0) += 1;
                    lod_min = lod_min.min(r.lod);
                    lod_max = lod_max.max(r.lod);
                }
                if per_frame {
                    println!(
                        "{:>6} {:>10} {:>8.2}",
                        t.frame,
                        t.requests.len(),
                        t.depth_complexity()
                    );
                }
            }
            Ok(None) => break,
            Err(e) => {
                eprintln!("corrupt trace after {frames} frames: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if frames == 0 {
        println!("{path}: empty trace");
        return ExitCode::SUCCESS;
    }

    println!("\n{path}:");
    println!("  frames           : {frames}");
    println!("  resolution       : {}x{}", dims.0, dims.1);
    println!(
        "  filter           : {}",
        filter.map(|f| f.name()).unwrap_or("?")
    );
    println!("  total requests   : {requests}");
    println!("  mean depth compl.: {:.2}", depth_sum / frames as f64);
    println!("  distinct textures: {}", tids.len());
    println!("  lod range        : {lod_min:.2} .. {lod_max:.2}");
    let mut top: Vec<(u32, u64)> = tids.into_iter().collect();
    top.sort_by_key(|(_, n)| std::cmp::Reverse(*n));
    println!("  hottest textures :");
    for (tid, n) in top.into_iter().take(5) {
        println!(
            "    tid{tid:<6} {:>6.2}% of requests",
            n as f64 * 100.0 / requests as f64
        );
    }
    ExitCode::SUCCESS
}

/// `tracetool stats`: machine-readable per-frame counts.
fn stats_main(args: &[String]) -> ExitCode {
    let mut path = None;
    let mut per_frame = false;
    let mut out: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--per-frame" => per_frame = true,
            "--out" => match it.next() {
                Some(f) => out = Some(f.clone()),
                None => return usage(),
            },
            other if !other.starts_with("--") && path.is_none() => path = Some(other.to_string()),
            _ => return usage(),
        }
    }
    let Some(path) = path else {
        return usage();
    };

    let series = match per_frame_series(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if per_frame {
        let written = match out {
            Some(ref f) => File::create(f)
                .and_then(|file| {
                    let mut w = std::io::BufWriter::new(file);
                    export::write_single_series_csv(&series, &mut w)?;
                    w.flush()
                })
                .map(|()| eprintln!("wrote {f}")),
            None => {
                let stdout = std::io::stdout();
                export::write_single_series_csv(&series, &mut stdout.lock())
            }
        };
        if let Err(e) = written {
            eprintln!("cannot write per-frame CSV: {e}");
            return ExitCode::FAILURE;
        }
    } else {
        let frames = series.rows.len();
        let requests: u64 = series.rows.iter().map(|r| r[1]).sum();
        let taps: u64 = series.rows.iter().map(|r| r[2]).sum();
        println!("{path}: {frames} frames, {requests} requests, {taps} taps");
    }
    ExitCode::SUCCESS
}

fn invalid(e: impl std::fmt::Display) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
}

/// Decodes `path` into one row per frame: request count, nominal tap count
/// (requests × the filter mode's maximum taps — point 1, bilinear 4,
/// trilinear 8), and distinct textures touched. Understands both the
/// versioned `.mltct` container (`MLTS` header, as the trace store writes)
/// and a bare `MLTC` frame stream (as `examples/record_replay.rs` writes).
fn per_frame_series(path: &str) -> std::io::Result<SeriesSnapshot> {
    let mut series = SeriesSnapshot {
        label: path.to_string(),
        columns: ["frame", "requests", "taps", "distinct_textures"]
            .iter()
            .map(|c| c.to_string())
            .collect(),
        rows: Vec::new(),
    };
    let push = |series: &mut SeriesSnapshot, t: &mltc_trace::FrameTrace| {
        let requests = t.requests.len() as u64;
        let tids: BTreeSet<u32> = t.requests.iter().map(|r| r.tid.index()).collect();
        series.rows.push(vec![
            u64::from(t.frame),
            requests,
            requests * t.filter.max_taps() as u64,
            tids.len() as u64,
        ]);
    };
    match TraceFileReader::new(BufReader::new(File::open(path)?)) {
        Ok(mut container) => {
            for _ in 0..container.frame_count() {
                push(&mut series, &container.read_frame().map_err(invalid)?);
            }
        }
        // Not a container: re-open and read it as a bare frame stream.
        Err(CodecError::BadFileMagic(_)) => {
            let mut reader = TraceReader::new(BufReader::new(File::open(path)?));
            while let Some(t) = reader.read_frame().map_err(invalid)? {
                push(&mut series, &t);
            }
        }
        Err(e) => return Err(invalid(e)),
    }
    Ok(series)
}
