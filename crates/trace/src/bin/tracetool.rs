//! Inspect recorded trace files (see `examples/record_replay.rs` for
//! producing them).
//!
//! ```text
//! tracetool <trace-file> [--per-frame]
//! ```

use mltc_trace::codec::TraceReader;
use std::collections::BTreeMap;
use std::fs::File;
use std::io::BufReader;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(path) = args.iter().find(|a| !a.starts_with("--")) else {
        eprintln!("usage: tracetool <trace-file> [--per-frame]");
        return ExitCode::from(2);
    };
    let per_frame = args.iter().any(|a| a == "--per-frame");

    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot open {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut reader = TraceReader::new(BufReader::new(file));

    let mut frames = 0u64;
    let mut requests = 0u64;
    let mut depth_sum = 0.0f64;
    let mut tids: BTreeMap<u32, u64> = BTreeMap::new();
    let mut lod_min = f32::INFINITY;
    let mut lod_max = f32::NEG_INFINITY;
    let mut dims = (0u32, 0u32);
    let mut filter = None;

    if per_frame {
        println!("{:>6} {:>10} {:>8}", "frame", "requests", "d");
    }
    loop {
        match reader.read_frame() {
            Ok(Some(t)) => {
                frames += 1;
                requests += t.requests.len() as u64;
                depth_sum += t.depth_complexity();
                dims = (t.width, t.height);
                filter = Some(t.filter);
                for r in &t.requests {
                    *tids.entry(r.tid.index()).or_insert(0) += 1;
                    lod_min = lod_min.min(r.lod);
                    lod_max = lod_max.max(r.lod);
                }
                if per_frame {
                    println!(
                        "{:>6} {:>10} {:>8.2}",
                        t.frame,
                        t.requests.len(),
                        t.depth_complexity()
                    );
                }
            }
            Ok(None) => break,
            Err(e) => {
                eprintln!("corrupt trace after {frames} frames: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if frames == 0 {
        println!("{path}: empty trace");
        return ExitCode::SUCCESS;
    }

    println!("\n{path}:");
    println!("  frames           : {frames}");
    println!("  resolution       : {}x{}", dims.0, dims.1);
    println!(
        "  filter           : {}",
        filter.map(|f| f.name()).unwrap_or("?")
    );
    println!("  total requests   : {requests}");
    println!("  mean depth compl.: {:.2}", depth_sum / frames as f64);
    println!("  distinct textures: {}", tids.len());
    println!("  lod range        : {lod_min:.2} .. {lod_max:.2}");
    let mut top: Vec<(u32, u64)> = tids.into_iter().collect();
    top.sort_by_key(|(_, n)| std::cmp::Reverse(*n));
    println!("  hottest textures :");
    for (tid, n) in top.into_iter().take(5) {
        println!(
            "    tid{tid:<6} {:>6.2}% of requests",
            n as f64 * 100.0 / requests as f64
        );
    }
    ExitCode::SUCCESS
}
