//! Compact binary trace format for record/replay.
//!
//! A trace stream is a sequence of independently-encoded frames. Recording
//! an animation once and replaying it through many cache configurations is
//! the paper's methodology; the on-disk format additionally lets experiments
//! skip re-rendering entirely.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! frame   := magic:u32 ("MLTC") frame:u32 width:u32 height:u32
//!            filter:u8 pixels_rendered:u64 count:u32 request*count
//! request := tid:u32 u:f32 v:f32 lod:f32
//! ```
//!
//! On top of the raw frame stream sits the versioned *trace file* container
//! used by the experiment suite's persistent trace store
//! ([`TraceFileWriter`] / [`TraceFileReader`]):
//!
//! ```text
//! file    := fmagic:u32 ("MLTS") version:u32 key_len:u16 key_bytes
//!            frame_count:u32 (frame_len:u32 frame)*frame_count
//! ```
//!
//! `key` is an opaque caller-defined identity string (the trace store encodes
//! the workload, its parameters and the render settings there) verified on
//! load, so a stale or mislabeled file is never silently replayed.

use crate::{FilterMode, FrameTrace, PixelRequest};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use mltc_texture::TextureId;
use std::fmt;
use std::io::{Read, Write};

const MAGIC: u32 = u32::from_le_bytes(*b"MLTC");

/// Magic number opening a versioned trace *file* (as opposed to a bare
/// frame stream).
pub const FILE_MAGIC: u32 = u32::from_le_bytes(*b"MLTS");

/// Current trace-file format version. Bump on any layout change; readers
/// reject every other version with [`CodecError::BadVersion`].
pub const FILE_VERSION: u32 = 1;

/// Upper bound on one encoded frame inside a trace file, implied by
/// [`MAX_FRAME_REQUESTS`]: header (29 bytes) plus 16 bytes per request.
pub const MAX_FRAME_BYTES: u32 = 29 + MAX_FRAME_REQUESTS * 16;

/// Upper bound on requests in one decoded frame.
///
/// A paper-scale frame (1024×768, trilinear, depth complexity ~4) needs
/// ~25 M taps; 2²² per *recorded* frame is generous for everything this
/// simulator produces while keeping the worst-case decode allocation at
/// 64 MiB. A corrupt or hostile header with a larger count is rejected with
/// [`CodecError::Oversized`] *before* any allocation happens.
pub const MAX_FRAME_REQUESTS: u32 = 1 << 22;

/// Error decoding a trace stream.
#[derive(Debug)]
pub enum CodecError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The frame header's magic number was wrong.
    BadMagic(u32),
    /// Unknown filter-mode byte.
    BadFilter(u8),
    /// The stream ended inside a frame.
    Truncated,
    /// The header's request count exceeds [`MAX_FRAME_REQUESTS`].
    Oversized {
        /// The count the header claimed.
        count: u32,
        /// The cap that rejected it.
        max: u32,
    },
    /// A trace file did not open with [`FILE_MAGIC`].
    BadFileMagic(u32),
    /// A trace file's format version is not [`FILE_VERSION`].
    BadVersion {
        /// The version the file claimed.
        found: u32,
        /// The only version this reader understands.
        expected: u32,
    },
    /// A trace file's per-frame length prefix is impossible (too small for
    /// a frame header or over [`MAX_FRAME_BYTES`]).
    BadFrameLength {
        /// The length the prefix claimed.
        declared: u32,
        /// The cap that rejected it.
        max: u32,
    },
    /// A frame decoded to fewer bytes than its length prefix declared —
    /// the prefix and payload disagree, so the file is corrupt.
    FrameLengthMismatch {
        /// The length the prefix claimed.
        declared: u32,
        /// The bytes the frame decoder actually consumed.
        decoded: u32,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Io(e) => write!(f, "i/o error: {e}"),
            CodecError::BadMagic(m) => write!(f, "bad frame magic {m:#010x}"),
            CodecError::BadFilter(b) => write!(f, "unknown filter byte {b}"),
            CodecError::Truncated => f.write_str("trace stream truncated mid-frame"),
            CodecError::Oversized { count, max } => {
                write!(f, "frame claims {count} requests, over the {max} cap")
            }
            CodecError::BadFileMagic(m) => write!(f, "bad trace-file magic {m:#010x}"),
            CodecError::BadVersion { found, expected } => {
                write!(f, "trace-file version {found}, expected {expected}")
            }
            CodecError::BadFrameLength { declared, max } => {
                write!(f, "frame length prefix {declared} outside 29..={max}")
            }
            CodecError::FrameLengthMismatch { declared, decoded } => {
                write!(
                    f,
                    "frame length prefix {declared} but frame decoded {decoded} bytes"
                )
            }
        }
    }
}

impl std::error::Error for CodecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CodecError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CodecError {
    fn from(e: std::io::Error) -> Self {
        CodecError::Io(e)
    }
}

fn filter_byte(f: FilterMode) -> u8 {
    match f {
        FilterMode::Point => 0,
        FilterMode::Bilinear => 1,
        FilterMode::Trilinear => 2,
    }
}

fn filter_from_byte(b: u8) -> Result<FilterMode, CodecError> {
    match b {
        0 => Ok(FilterMode::Point),
        1 => Ok(FilterMode::Bilinear),
        2 => Ok(FilterMode::Trilinear),
        other => Err(CodecError::BadFilter(other)),
    }
}

/// Encodes one frame to bytes.
pub fn encode_frame(t: &FrameTrace) -> Bytes {
    let mut buf = BytesMut::with_capacity(29 + t.requests.len() * 16);
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(t.frame);
    buf.put_u32_le(t.width);
    buf.put_u32_le(t.height);
    buf.put_u8(filter_byte(t.filter));
    buf.put_u64_le(t.pixels_rendered);
    buf.put_u32_le(t.requests.len() as u32);
    for r in &t.requests {
        buf.put_u32_le(r.tid.index());
        buf.put_f32_le(r.u);
        buf.put_f32_le(r.v);
        buf.put_f32_le(r.lod);
    }
    buf.freeze()
}

/// Borrowed view of one encoded frame: header fields decoded, request
/// payload left in place and decoded lazily by [`requests`]
/// (`FrameCursor::requests`). This is the zero-allocation decode path — a
/// caller replaying a trace streams requests straight out of its reusable
/// read buffer and never materializes a `Vec<PixelRequest>` per frame.
#[derive(Debug, Clone, Copy)]
pub struct FrameCursor<'a> {
    /// Frame number.
    pub frame: u32,
    /// Framebuffer width the trace was rendered at.
    pub width: u32,
    /// Framebuffer height.
    pub height: u32,
    /// Filter mode recorded with the frame.
    pub filter: FilterMode,
    /// Fragments the rasterizer produced for this frame.
    pub pixels_rendered: u64,
    /// Raw little-endian request payload, 16 bytes per request.
    payload: &'a [u8],
}

impl<'a> FrameCursor<'a> {
    /// Number of requests in the frame.
    #[inline]
    pub fn request_count(&self) -> u32 {
        (self.payload.len() / 16) as u32
    }

    /// Iterates the requests, decoding each from the payload in place.
    #[inline]
    pub fn requests(&self) -> FrameRequests<'a> {
        FrameRequests {
            payload: self.payload,
        }
    }

    /// Materializes an owned [`FrameTrace`] (the allocating path callers
    /// use when the frame must outlive the read buffer).
    pub fn into_frame(self) -> FrameTrace {
        FrameTrace {
            frame: self.frame,
            width: self.width,
            height: self.height,
            filter: self.filter,
            pixels_rendered: self.pixels_rendered,
            requests: self.requests().collect(),
        }
    }
}

/// In-place request iterator of a [`FrameCursor`].
#[derive(Debug, Clone)]
pub struct FrameRequests<'a> {
    payload: &'a [u8],
}

impl Iterator for FrameRequests<'_> {
    type Item = PixelRequest;

    #[inline]
    fn next(&mut self) -> Option<PixelRequest> {
        let (raw, rest) = self.payload.split_first_chunk::<16>()?;
        self.payload = rest;
        Some(PixelRequest {
            tid: TextureId::from_index(u32::from_le_bytes(raw[0..4].try_into().unwrap())),
            u: f32::from_le_bytes(raw[4..8].try_into().unwrap()),
            v: f32::from_le_bytes(raw[8..12].try_into().unwrap()),
            lod: f32::from_le_bytes(raw[12..16].try_into().unwrap()),
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.payload.len() / 16;
        (n, Some(n))
    }
}

impl ExactSizeIterator for FrameRequests<'_> {}

/// Decodes one frame's header from the front of `buf`, returning a borrowed
/// [`FrameCursor`] over its request payload plus the remainder of `buf`
/// after the frame. Validation is identical to [`decode_frame`]; nothing is
/// allocated.
///
/// # Errors
///
/// Same contract as [`decode_frame`].
pub fn frame_cursor(buf: &[u8]) -> Result<(FrameCursor<'_>, &[u8]), CodecError> {
    if buf.len() < 29 {
        return Err(CodecError::Truncated);
    }
    let (mut header, body) = buf.split_at(29);
    let magic = header.get_u32_le();
    if magic != MAGIC {
        return Err(CodecError::BadMagic(magic));
    }
    let frame = header.get_u32_le();
    let width = header.get_u32_le();
    let height = header.get_u32_le();
    let filter = filter_from_byte(header.get_u8())?;
    let pixels_rendered = header.get_u64_le();
    let raw_count = header.get_u32_le();
    if raw_count > MAX_FRAME_REQUESTS {
        return Err(CodecError::Oversized {
            count: raw_count,
            max: MAX_FRAME_REQUESTS,
        });
    }
    // u64 math: count * 16 could wrap on a 32-bit usize.
    if (body.len() as u64) < raw_count as u64 * 16 {
        return Err(CodecError::Truncated);
    }
    let (payload, rest) = body.split_at(raw_count as usize * 16);
    Ok((
        FrameCursor {
            frame,
            width,
            height,
            filter,
            pixels_rendered,
            payload,
        },
        rest,
    ))
}

/// Decodes one frame from the front of `buf`, advancing it.
///
/// # Errors
///
/// Returns [`CodecError::Truncated`] if `buf` ends mid-frame,
/// [`CodecError::BadMagic`]/[`CodecError::BadFilter`] on corrupt headers,
/// and [`CodecError::Oversized`] — before allocating anything — when the
/// header claims more than [`MAX_FRAME_REQUESTS`] requests.
pub fn decode_frame(buf: &mut impl Buf) -> Result<FrameTrace, CodecError> {
    if buf.remaining() < 29 {
        return Err(CodecError::Truncated);
    }
    let magic = buf.get_u32_le();
    if magic != MAGIC {
        return Err(CodecError::BadMagic(magic));
    }
    let frame = buf.get_u32_le();
    let width = buf.get_u32_le();
    let height = buf.get_u32_le();
    let filter = filter_from_byte(buf.get_u8())?;
    let pixels_rendered = buf.get_u64_le();
    let raw_count = buf.get_u32_le();
    if raw_count > MAX_FRAME_REQUESTS {
        return Err(CodecError::Oversized {
            count: raw_count,
            max: MAX_FRAME_REQUESTS,
        });
    }
    let count = raw_count as usize;
    // u64 math: count * 16 could wrap on a 32-bit usize.
    if (buf.remaining() as u64) < raw_count as u64 * 16 {
        return Err(CodecError::Truncated);
    }
    let mut requests = Vec::with_capacity(count);
    for _ in 0..count {
        requests.push(PixelRequest {
            tid: TextureId::from_index(buf.get_u32_le()),
            u: buf.get_f32_le(),
            v: buf.get_f32_le(),
            lod: buf.get_f32_le(),
        });
    }
    Ok(FrameTrace {
        frame,
        width,
        height,
        filter,
        pixels_rendered,
        requests,
    })
}

/// Streams frames to a writer.
///
/// ```
/// use mltc_trace::{codec::{TraceReader, TraceWriter}, FilterMode, FrameTrace};
/// let mut buf = Vec::new();
/// let mut w = TraceWriter::new(&mut buf);
/// w.write_frame(&FrameTrace::new(0, 8, 8, FilterMode::Point))?;
/// drop(w);
/// let mut r = TraceReader::new(buf.as_slice());
/// assert_eq!(r.read_frame()?.unwrap().frame, 0);
/// assert!(r.read_frame()?.is_none());
/// # Ok::<(), mltc_trace::codec::CodecError>(())
/// ```
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    inner: W,
}

impl<W: Write> TraceWriter<W> {
    /// Wraps a writer.
    pub fn new(inner: W) -> Self {
        Self { inner }
    }

    /// Appends one frame.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn write_frame(&mut self, t: &FrameTrace) -> Result<(), CodecError> {
        self.inner.write_all(&encode_frame(t))?;
        Ok(())
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

/// Streams frames from a reader.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    inner: R,
}

impl<R: Read> TraceReader<R> {
    /// Wraps a reader.
    pub fn new(inner: R) -> Self {
        Self { inner }
    }

    /// Reads the next frame, or `None` at a clean end of stream.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Truncated`] if the stream ends mid-frame, plus
    /// the header/I-O errors of [`decode_frame`].
    pub fn read_frame(&mut self) -> Result<Option<FrameTrace>, CodecError> {
        let mut header = [0u8; 29];
        match read_exact_or_eof(&mut self.inner, &mut header)? {
            0 => return Ok(None),
            29 => {}
            _ => return Err(CodecError::Truncated),
        }
        let mut hdr = &header[..];
        // Re-parse the fixed header through the shared decoder path by
        // reading the count, then pulling the request payload.
        let magic = hdr.get_u32_le();
        if magic != MAGIC {
            return Err(CodecError::BadMagic(magic));
        }
        let frame = hdr.get_u32_le();
        let width = hdr.get_u32_le();
        let height = hdr.get_u32_le();
        let filter = filter_from_byte(hdr.get_u8())?;
        let pixels_rendered = hdr.get_u64_le();
        let raw_count = hdr.get_u32_le();
        if raw_count > MAX_FRAME_REQUESTS {
            return Err(CodecError::Oversized {
                count: raw_count,
                max: MAX_FRAME_REQUESTS,
            });
        }
        let count = raw_count as usize;
        let mut payload = vec![0u8; count * 16];
        self.inner.read_exact(&mut payload).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                CodecError::Truncated
            } else {
                CodecError::Io(e)
            }
        })?;
        let mut body = payload.as_slice();
        let mut requests = Vec::with_capacity(count);
        for _ in 0..count {
            requests.push(PixelRequest {
                tid: TextureId::from_index(body.get_u32_le()),
                u: body.get_f32_le(),
                v: body.get_f32_le(),
                lod: body.get_f32_le(),
            });
        }
        Ok(Some(FrameTrace {
            frame,
            width,
            height,
            filter,
            pixels_rendered,
            requests,
        }))
    }
}

/// Writes a versioned trace *file*: header (magic, version, key, frame
/// count) followed by length-prefixed frames.
///
/// The declared `frame_count` is part of the header, so the writer enforces
/// it: writing more frames than declared is an error, and [`finish`]
/// (`TraceFileWriter::finish`) fails if fewer were written. This makes a
/// half-written file (e.g. the process died mid-render) detectable on read
/// as [`CodecError::Truncated`] rather than silently short.
///
/// ```
/// use mltc_trace::{codec::{TraceFileReader, TraceFileWriter}, FilterMode, FrameTrace};
/// let mut buf = Vec::new();
/// let mut w = TraceFileWriter::new(&mut buf, "village-tiny", 1)?;
/// w.write_frame(&FrameTrace::new(0, 8, 8, FilterMode::Point))?;
/// w.finish()?;
/// let mut r = TraceFileReader::new(buf.as_slice())?;
/// assert_eq!(r.key(), "village-tiny");
/// assert_eq!(r.frame_count(), 1);
/// assert_eq!(r.read_frame()?.frame, 0);
/// # Ok::<(), mltc_trace::codec::CodecError>(())
/// ```
#[derive(Debug)]
pub struct TraceFileWriter<W: Write> {
    inner: W,
    declared: u32,
    written: u32,
}

impl<W: Write> TraceFileWriter<W> {
    /// Writes the file header and returns a writer expecting exactly
    /// `frame_count` frames.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; fails if `key` exceeds `u16::MAX` bytes.
    pub fn new(mut inner: W, key: &str, frame_count: u32) -> Result<Self, CodecError> {
        let key_len = u16::try_from(key.len()).map_err(|_| {
            CodecError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "trace-file key over 64 KiB",
            ))
        })?;
        let mut header = BytesMut::with_capacity(14 + key.len());
        header.put_u32_le(FILE_MAGIC);
        header.put_u32_le(FILE_VERSION);
        header.put_slice(&key_len.to_le_bytes());
        header.put_slice(key.as_bytes());
        header.put_u32_le(frame_count);
        inner.write_all(&header)?;
        Ok(Self {
            inner,
            declared: frame_count,
            written: 0,
        })
    }

    /// Appends one length-prefixed frame.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; fails if the declared frame count would be
    /// exceeded.
    pub fn write_frame(&mut self, t: &FrameTrace) -> Result<(), CodecError> {
        if self.written == self.declared {
            return Err(CodecError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "more frames than the header declared",
            )));
        }
        let frame = encode_frame(t);
        self.inner.write_all(&(frame.len() as u32).to_le_bytes())?;
        self.inner.write_all(&frame)?;
        self.written += 1;
        Ok(())
    }

    /// Flushes and verifies that exactly the declared number of frames was
    /// written, returning the inner writer.
    ///
    /// # Errors
    ///
    /// Propagates flush errors; fails if fewer frames than declared were
    /// written.
    pub fn finish(mut self) -> Result<W, CodecError> {
        if self.written != self.declared {
            return Err(CodecError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "trace file declared {} frames but {} were written",
                    self.declared, self.written
                ),
            )));
        }
        self.inner.flush()?;
        Ok(self.inner)
    }
}

/// Reads a versioned trace file written by [`TraceFileWriter`], validating
/// magic, version, and every frame's length prefix.
#[derive(Debug)]
pub struct TraceFileReader<R: Read> {
    inner: R,
    key: String,
    frame_count: u32,
    read: u32,
}

impl<R: Read> TraceFileReader<R> {
    /// Parses the file header.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::BadFileMagic`] / [`CodecError::BadVersion`] on
    /// a foreign or stale file, [`CodecError::Truncated`] if the header is
    /// incomplete, and I/O errors from the reader.
    pub fn new(mut inner: R) -> Result<Self, CodecError> {
        let mut fixed = [0u8; 10];
        if read_exact_or_eof(&mut inner, &mut fixed)? != fixed.len() {
            return Err(CodecError::Truncated);
        }
        let mut hdr = &fixed[..];
        let magic = hdr.get_u32_le();
        if magic != FILE_MAGIC {
            return Err(CodecError::BadFileMagic(magic));
        }
        let version = hdr.get_u32_le();
        if version != FILE_VERSION {
            return Err(CodecError::BadVersion {
                found: version,
                expected: FILE_VERSION,
            });
        }
        let key_len = u16::from_le_bytes([hdr.get_u8(), hdr.get_u8()]) as usize;
        let mut key_bytes = vec![0u8; key_len];
        if read_exact_or_eof(&mut inner, &mut key_bytes)? != key_len {
            return Err(CodecError::Truncated);
        }
        let key = String::from_utf8(key_bytes).map_err(|_| {
            CodecError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "trace-file key is not UTF-8",
            ))
        })?;
        let mut count = [0u8; 4];
        if read_exact_or_eof(&mut inner, &mut count)? != count.len() {
            return Err(CodecError::Truncated);
        }
        Ok(Self {
            inner,
            key,
            frame_count: u32::from_le_bytes(count),
            read: 0,
        })
    }

    /// The caller-defined identity string stored in the header.
    pub fn key(&self) -> &str {
        &self.key
    }

    /// Number of frames the header declares.
    pub fn frame_count(&self) -> u32 {
        self.frame_count
    }

    /// Frames read so far.
    pub fn frames_read(&self) -> u32 {
        self.read
    }

    /// Reads the next frame. Calling it more than [`frame_count`]
    /// (`Self::frame_count`) times is a caller bug reported as
    /// [`CodecError::Truncated`].
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::BadFrameLength`] on an impossible length
    /// prefix, [`CodecError::FrameLengthMismatch`] when prefix and payload
    /// disagree, [`CodecError::Truncated`] when the file ends early, plus
    /// the frame decoder's own errors.
    pub fn read_frame(&mut self) -> Result<FrameTrace, CodecError> {
        let mut scratch = Vec::new();
        self.read_frame_into(&mut scratch)
            .map(FrameCursor::into_frame)
    }

    /// [`read_frame`](Self::read_frame) without the per-frame allocations:
    /// the encoded frame is read into `scratch` (cleared and grown as
    /// needed — pass the same buffer every call and it stops allocating
    /// once it has seen the largest frame) and decoded in place as a
    /// borrowed [`FrameCursor`].
    ///
    /// # Errors
    ///
    /// Same contract as [`read_frame`](Self::read_frame).
    pub fn read_frame_into<'b>(
        &mut self,
        scratch: &'b mut Vec<u8>,
    ) -> Result<FrameCursor<'b>, CodecError> {
        if self.read == self.frame_count {
            return Err(CodecError::Truncated);
        }
        let mut len = [0u8; 4];
        if read_exact_or_eof(&mut self.inner, &mut len)? != len.len() {
            return Err(CodecError::Truncated);
        }
        let declared = u32::from_le_bytes(len);
        if !(29..=MAX_FRAME_BYTES).contains(&declared) {
            return Err(CodecError::BadFrameLength {
                declared,
                max: MAX_FRAME_BYTES,
            });
        }
        scratch.clear();
        scratch.resize(declared as usize, 0);
        if read_exact_or_eof(&mut self.inner, scratch)? != scratch.len() {
            return Err(CodecError::Truncated);
        }
        let (cursor, rest) = frame_cursor(scratch)?;
        if !rest.is_empty() {
            return Err(CodecError::FrameLengthMismatch {
                declared,
                decoded: declared - rest.len() as u32,
            });
        }
        self.read += 1;
        Ok(cursor)
    }
}

/// Reads exactly `buf.len()` bytes, or 0 at immediate EOF; a partial read
/// followed by EOF returns the partial count.
fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<usize, CodecError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(CodecError::Io(e)),
        }
    }
    Ok(filled)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace(n: usize) -> FrameTrace {
        let mut t = FrameTrace::new(7, 64, 48, FilterMode::Trilinear);
        for i in 0..n {
            t.push(PixelRequest {
                tid: TextureId::from_index(i as u32 % 3),
                u: i as f32 * 0.5,
                v: -(i as f32) * 0.25,
                lod: i as f32 * 0.01,
            });
        }
        t
    }

    #[test]
    fn roundtrip_in_memory() {
        let t = sample_trace(100);
        let enc = encode_frame(&t);
        let mut buf = enc.as_ref();
        let dec = decode_frame(&mut buf).unwrap();
        assert_eq!(dec, t);
        assert!(buf.is_empty());
    }

    #[test]
    fn roundtrip_empty_frame() {
        let t = FrameTrace::new(0, 1, 1, FilterMode::Point);
        let mut buf = encode_frame(&t);
        assert_eq!(decode_frame(&mut buf).unwrap(), t);
    }

    #[test]
    fn multi_frame_stream() {
        let mut file = Vec::new();
        {
            let mut w = TraceWriter::new(&mut file);
            for i in 0..3 {
                let mut t = sample_trace(10 * i);
                t.frame = i as u32;
                w.write_frame(&t).unwrap();
            }
        }
        let mut r = TraceReader::new(file.as_slice());
        for i in 0..3 {
            let t = r.read_frame().unwrap().expect("frame present");
            assert_eq!(t.frame, i);
            assert_eq!(t.requests.len(), 10 * i as usize);
        }
        assert!(r.read_frame().unwrap().is_none());
    }

    #[test]
    fn bad_magic_detected() {
        let t = sample_trace(1);
        let mut bytes = encode_frame(&t).to_vec();
        bytes[0] ^= 0xff;
        let mut buf = bytes.as_slice();
        assert!(matches!(
            decode_frame(&mut buf),
            Err(CodecError::BadMagic(_))
        ));
    }

    #[test]
    fn bad_filter_detected() {
        let t = sample_trace(0);
        let mut bytes = encode_frame(&t).to_vec();
        bytes[16] = 9; // filter byte
        let mut buf = bytes.as_slice();
        assert!(matches!(
            decode_frame(&mut buf),
            Err(CodecError::BadFilter(9))
        ));
    }

    #[test]
    fn truncation_detected() {
        let t = sample_trace(4);
        let bytes = encode_frame(&t);
        let mut buf = &bytes[..bytes.len() - 3];
        assert!(matches!(decode_frame(&mut buf), Err(CodecError::Truncated)));
        let mut r = TraceReader::new(&bytes[..bytes.len() - 3]);
        assert!(matches!(r.read_frame(), Err(CodecError::Truncated)));
    }

    #[test]
    fn oversized_count_rejected_on_both_paths() {
        let t = sample_trace(2);
        let mut bytes = encode_frame(&t).to_vec();
        // The count field sits at offset 25 in the 29-byte header.
        bytes[25..29].copy_from_slice(&(MAX_FRAME_REQUESTS + 1).to_le_bytes());
        let mut buf = bytes.as_slice();
        assert!(matches!(
            decode_frame(&mut buf),
            Err(CodecError::Oversized { count, max })
                if count == MAX_FRAME_REQUESTS + 1 && max == MAX_FRAME_REQUESTS
        ));
        let mut r = TraceReader::new(bytes.as_slice());
        assert!(matches!(r.read_frame(), Err(CodecError::Oversized { .. })));
    }

    #[test]
    fn max_request_count_itself_is_accepted_shapewise() {
        // A frame claiming exactly the cap fails with Truncated (payload
        // missing), never Oversized: the cap is exclusive of valid sizes.
        let t = sample_trace(0);
        let mut bytes = encode_frame(&t).to_vec();
        bytes[25..29].copy_from_slice(&MAX_FRAME_REQUESTS.to_le_bytes());
        let mut buf = bytes.as_slice();
        assert!(matches!(decode_frame(&mut buf), Err(CodecError::Truncated)));
    }

    #[test]
    fn error_display_strings() {
        assert!(CodecError::Truncated.to_string().contains("truncated"));
        assert!(CodecError::BadMagic(5).to_string().contains("magic"));
        let e = CodecError::Oversized { count: 99, max: 10 };
        assert!(e.to_string().contains("99") && e.to_string().contains("10"));
        assert!(CodecError::BadFileMagic(1).to_string().contains("magic"));
        let e = CodecError::BadVersion {
            found: 3,
            expected: 1,
        };
        assert!(e.to_string().contains('3') && e.to_string().contains('1'));
        let e = CodecError::BadFrameLength {
            declared: 7,
            max: 9,
        };
        assert!(e.to_string().contains('7'));
        let e = CodecError::FrameLengthMismatch {
            declared: 40,
            decoded: 30,
        };
        assert!(e.to_string().contains("40") && e.to_string().contains("30"));
    }

    fn sample_file(key: &str, frames: usize) -> Vec<u8> {
        let mut buf = Vec::new();
        let mut w = TraceFileWriter::new(&mut buf, key, frames as u32).unwrap();
        for i in 0..frames {
            let mut t = sample_trace(5 * i);
            t.frame = i as u32;
            w.write_frame(&t).unwrap();
        }
        w.finish().unwrap();
        buf
    }

    #[test]
    fn trace_file_roundtrip() {
        let file = sample_file("village-64x48-f3", 3);
        let mut r = TraceFileReader::new(file.as_slice()).unwrap();
        assert_eq!(r.key(), "village-64x48-f3");
        assert_eq!(r.frame_count(), 3);
        for i in 0..3u32 {
            let t = r.read_frame().unwrap();
            assert_eq!(t.frame, i);
            assert_eq!(t.requests.len(), 5 * i as usize);
        }
        assert_eq!(r.frames_read(), 3);
    }

    #[test]
    fn trace_file_wrong_magic_rejected() {
        let mut file = sample_file("k", 1);
        file[0] ^= 0xff;
        assert!(matches!(
            TraceFileReader::new(file.as_slice()),
            Err(CodecError::BadFileMagic(_))
        ));
    }

    #[test]
    fn trace_file_wrong_version_rejected() {
        let mut file = sample_file("k", 1);
        file[4..8].copy_from_slice(&(FILE_VERSION + 1).to_le_bytes());
        assert!(matches!(
            TraceFileReader::new(file.as_slice()),
            Err(CodecError::BadVersion { found, expected })
                if found == FILE_VERSION + 1 && expected == FILE_VERSION
        ));
    }

    #[test]
    fn trace_file_truncation_rejected_everywhere() {
        let file = sample_file("key", 2);
        // Chop at every possible length; each must fail with a typed error,
        // never a panic, and never succeed in reading both frames.
        for cut in 0..file.len() {
            let short = &file[..cut];
            match TraceFileReader::new(short) {
                Err(_) => {}
                Ok(mut r) => {
                    let outcome = (0..2).try_for_each(|_| r.read_frame().map(|_| ()));
                    assert!(outcome.is_err(), "cut at {cut} read a whole file");
                }
            }
        }
    }

    #[test]
    fn trace_file_bad_frame_length_rejected() {
        let file = sample_file("k", 1);
        // The frame length prefix sits right after the 10+3-byte header of
        // key "k" — corrupt it to an absurd value.
        let prefix_at = 4 + 4 + 2 + 1 + 4;
        let mut big = file.clone();
        big[prefix_at..prefix_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut r = TraceFileReader::new(big.as_slice()).unwrap();
        assert!(matches!(
            r.read_frame(),
            Err(CodecError::BadFrameLength { .. })
        ));
        let mut small = file;
        small[prefix_at..prefix_at + 4].copy_from_slice(&5u32.to_le_bytes());
        let mut r = TraceFileReader::new(small.as_slice()).unwrap();
        assert!(matches!(
            r.read_frame(),
            Err(CodecError::BadFrameLength { .. })
        ));
    }

    #[test]
    fn trace_file_length_mismatch_rejected() {
        let t = sample_trace(2);
        let mut buf = Vec::new();
        let mut w = TraceFileWriter::new(&mut buf, "k", 1).unwrap();
        w.write_frame(&t).unwrap();
        w.finish().unwrap();
        // Inflate the length prefix by 16 and append one spare request's
        // worth of zero padding: the frame decodes fine but leaves bytes.
        let prefix_at = 4 + 4 + 2 + 1 + 4;
        let declared = u32::from_le_bytes(buf[prefix_at..prefix_at + 4].try_into().unwrap());
        buf[prefix_at..prefix_at + 4].copy_from_slice(&(declared + 16).to_le_bytes());
        buf.extend_from_slice(&[0u8; 16]);
        let mut r = TraceFileReader::new(buf.as_slice()).unwrap();
        assert!(matches!(
            r.read_frame(),
            Err(CodecError::FrameLengthMismatch { .. })
        ));
    }

    #[test]
    fn trace_file_writer_enforces_declared_count() {
        let mut buf = Vec::new();
        let mut w = TraceFileWriter::new(&mut buf, "k", 1).unwrap();
        w.write_frame(&sample_trace(0)).unwrap();
        assert!(w.write_frame(&sample_trace(0)).is_err());

        let mut buf = Vec::new();
        let w = TraceFileWriter::new(&mut buf, "k", 2).unwrap();
        assert!(w.finish().is_err(), "short file must not finish cleanly");
    }

    #[test]
    fn frame_cursor_matches_decode_frame() {
        let t = sample_trace(37);
        let enc = encode_frame(&t);
        let (cursor, rest) = frame_cursor(&enc).unwrap();
        assert!(rest.is_empty());
        assert_eq!(cursor.request_count() as usize, t.requests.len());
        let streamed: Vec<PixelRequest> = cursor.requests().collect();
        assert_eq!(streamed, t.requests);
        assert_eq!(cursor.into_frame(), t);
        // And the cursor rejects exactly what decode_frame rejects.
        assert!(matches!(
            frame_cursor(&enc[..enc.len() - 1]),
            Err(CodecError::Truncated)
        ));
        let mut bad = enc.to_vec();
        bad[0] ^= 0xff;
        assert!(matches!(frame_cursor(&bad), Err(CodecError::BadMagic(_))));
    }

    #[test]
    fn read_frame_into_reuses_one_scratch_buffer() {
        let file = sample_file("scratch", 4);
        let mut by_value = TraceFileReader::new(file.as_slice()).unwrap();
        let mut by_cursor = TraceFileReader::new(file.as_slice()).unwrap();
        let mut scratch = Vec::new();
        let mut peak_capacity = 0;
        for _ in 0..4 {
            let owned = by_value.read_frame().unwrap();
            let cursor = by_cursor.read_frame_into(&mut scratch).unwrap();
            assert_eq!(cursor.into_frame(), owned);
            peak_capacity = peak_capacity.max(scratch.capacity());
        }
        assert_eq!(
            scratch.capacity(),
            peak_capacity,
            "one buffer serves every frame"
        );
        assert!(by_cursor.read_frame_into(&mut scratch).is_err());
    }

    #[test]
    fn trace_file_reading_past_end_is_an_error_not_a_panic() {
        let file = sample_file("k", 1);
        let mut r = TraceFileReader::new(file.as_slice()).unwrap();
        r.read_frame().unwrap();
        assert!(r.read_frame().is_err());
    }
}
