//! Compact binary trace format for record/replay.
//!
//! A trace file is a sequence of independently-encoded frames. Recording an
//! animation once and replaying it through many cache configurations is the
//! paper's methodology; the on-disk format additionally lets experiments
//! skip re-rendering entirely.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! frame   := magic:u32 ("MLTC") frame:u32 width:u32 height:u32
//!            filter:u8 pixels_rendered:u64 count:u32 request*count
//! request := tid:u32 u:f32 v:f32 lod:f32
//! ```

use crate::{FilterMode, FrameTrace, PixelRequest};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use mltc_texture::TextureId;
use std::fmt;
use std::io::{Read, Write};

const MAGIC: u32 = u32::from_le_bytes(*b"MLTC");

/// Upper bound on requests in one decoded frame.
///
/// A paper-scale frame (1024×768, trilinear, depth complexity ~4) needs
/// ~25 M taps; 2²² per *recorded* frame is generous for everything this
/// simulator produces while keeping the worst-case decode allocation at
/// 64 MiB. A corrupt or hostile header with a larger count is rejected with
/// [`CodecError::Oversized`] *before* any allocation happens.
pub const MAX_FRAME_REQUESTS: u32 = 1 << 22;

/// Error decoding a trace stream.
#[derive(Debug)]
pub enum CodecError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The frame header's magic number was wrong.
    BadMagic(u32),
    /// Unknown filter-mode byte.
    BadFilter(u8),
    /// The stream ended inside a frame.
    Truncated,
    /// The header's request count exceeds [`MAX_FRAME_REQUESTS`].
    Oversized {
        /// The count the header claimed.
        count: u32,
        /// The cap that rejected it.
        max: u32,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Io(e) => write!(f, "i/o error: {e}"),
            CodecError::BadMagic(m) => write!(f, "bad frame magic {m:#010x}"),
            CodecError::BadFilter(b) => write!(f, "unknown filter byte {b}"),
            CodecError::Truncated => f.write_str("trace stream truncated mid-frame"),
            CodecError::Oversized { count, max } => {
                write!(f, "frame claims {count} requests, over the {max} cap")
            }
        }
    }
}

impl std::error::Error for CodecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CodecError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CodecError {
    fn from(e: std::io::Error) -> Self {
        CodecError::Io(e)
    }
}

fn filter_byte(f: FilterMode) -> u8 {
    match f {
        FilterMode::Point => 0,
        FilterMode::Bilinear => 1,
        FilterMode::Trilinear => 2,
    }
}

fn filter_from_byte(b: u8) -> Result<FilterMode, CodecError> {
    match b {
        0 => Ok(FilterMode::Point),
        1 => Ok(FilterMode::Bilinear),
        2 => Ok(FilterMode::Trilinear),
        other => Err(CodecError::BadFilter(other)),
    }
}

/// Encodes one frame to bytes.
pub fn encode_frame(t: &FrameTrace) -> Bytes {
    let mut buf = BytesMut::with_capacity(29 + t.requests.len() * 16);
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(t.frame);
    buf.put_u32_le(t.width);
    buf.put_u32_le(t.height);
    buf.put_u8(filter_byte(t.filter));
    buf.put_u64_le(t.pixels_rendered);
    buf.put_u32_le(t.requests.len() as u32);
    for r in &t.requests {
        buf.put_u32_le(r.tid.index());
        buf.put_f32_le(r.u);
        buf.put_f32_le(r.v);
        buf.put_f32_le(r.lod);
    }
    buf.freeze()
}

/// Decodes one frame from the front of `buf`, advancing it.
///
/// # Errors
///
/// Returns [`CodecError::Truncated`] if `buf` ends mid-frame,
/// [`CodecError::BadMagic`]/[`CodecError::BadFilter`] on corrupt headers,
/// and [`CodecError::Oversized`] — before allocating anything — when the
/// header claims more than [`MAX_FRAME_REQUESTS`] requests.
pub fn decode_frame(buf: &mut impl Buf) -> Result<FrameTrace, CodecError> {
    if buf.remaining() < 29 {
        return Err(CodecError::Truncated);
    }
    let magic = buf.get_u32_le();
    if magic != MAGIC {
        return Err(CodecError::BadMagic(magic));
    }
    let frame = buf.get_u32_le();
    let width = buf.get_u32_le();
    let height = buf.get_u32_le();
    let filter = filter_from_byte(buf.get_u8())?;
    let pixels_rendered = buf.get_u64_le();
    let raw_count = buf.get_u32_le();
    if raw_count > MAX_FRAME_REQUESTS {
        return Err(CodecError::Oversized {
            count: raw_count,
            max: MAX_FRAME_REQUESTS,
        });
    }
    let count = raw_count as usize;
    // u64 math: count * 16 could wrap on a 32-bit usize.
    if (buf.remaining() as u64) < raw_count as u64 * 16 {
        return Err(CodecError::Truncated);
    }
    let mut requests = Vec::with_capacity(count);
    for _ in 0..count {
        requests.push(PixelRequest {
            tid: TextureId::from_index(buf.get_u32_le()),
            u: buf.get_f32_le(),
            v: buf.get_f32_le(),
            lod: buf.get_f32_le(),
        });
    }
    Ok(FrameTrace {
        frame,
        width,
        height,
        filter,
        pixels_rendered,
        requests,
    })
}

/// Streams frames to a writer.
///
/// ```
/// use mltc_trace::{codec::{TraceReader, TraceWriter}, FilterMode, FrameTrace};
/// let mut buf = Vec::new();
/// let mut w = TraceWriter::new(&mut buf);
/// w.write_frame(&FrameTrace::new(0, 8, 8, FilterMode::Point))?;
/// drop(w);
/// let mut r = TraceReader::new(buf.as_slice());
/// assert_eq!(r.read_frame()?.unwrap().frame, 0);
/// assert!(r.read_frame()?.is_none());
/// # Ok::<(), mltc_trace::codec::CodecError>(())
/// ```
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    inner: W,
}

impl<W: Write> TraceWriter<W> {
    /// Wraps a writer.
    pub fn new(inner: W) -> Self {
        Self { inner }
    }

    /// Appends one frame.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn write_frame(&mut self, t: &FrameTrace) -> Result<(), CodecError> {
        self.inner.write_all(&encode_frame(t))?;
        Ok(())
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

/// Streams frames from a reader.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    inner: R,
}

impl<R: Read> TraceReader<R> {
    /// Wraps a reader.
    pub fn new(inner: R) -> Self {
        Self { inner }
    }

    /// Reads the next frame, or `None` at a clean end of stream.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Truncated`] if the stream ends mid-frame, plus
    /// the header/I-O errors of [`decode_frame`].
    pub fn read_frame(&mut self) -> Result<Option<FrameTrace>, CodecError> {
        let mut header = [0u8; 29];
        match read_exact_or_eof(&mut self.inner, &mut header)? {
            0 => return Ok(None),
            29 => {}
            _ => return Err(CodecError::Truncated),
        }
        let mut hdr = &header[..];
        // Re-parse the fixed header through the shared decoder path by
        // reading the count, then pulling the request payload.
        let magic = hdr.get_u32_le();
        if magic != MAGIC {
            return Err(CodecError::BadMagic(magic));
        }
        let frame = hdr.get_u32_le();
        let width = hdr.get_u32_le();
        let height = hdr.get_u32_le();
        let filter = filter_from_byte(hdr.get_u8())?;
        let pixels_rendered = hdr.get_u64_le();
        let raw_count = hdr.get_u32_le();
        if raw_count > MAX_FRAME_REQUESTS {
            return Err(CodecError::Oversized {
                count: raw_count,
                max: MAX_FRAME_REQUESTS,
            });
        }
        let count = raw_count as usize;
        let mut payload = vec![0u8; count * 16];
        self.inner.read_exact(&mut payload).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                CodecError::Truncated
            } else {
                CodecError::Io(e)
            }
        })?;
        let mut body = payload.as_slice();
        let mut requests = Vec::with_capacity(count);
        for _ in 0..count {
            requests.push(PixelRequest {
                tid: TextureId::from_index(body.get_u32_le()),
                u: body.get_f32_le(),
                v: body.get_f32_le(),
                lod: body.get_f32_le(),
            });
        }
        Ok(Some(FrameTrace {
            frame,
            width,
            height,
            filter,
            pixels_rendered,
            requests,
        }))
    }
}

/// Reads exactly `buf.len()` bytes, or 0 at immediate EOF; a partial read
/// followed by EOF returns the partial count.
fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<usize, CodecError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(CodecError::Io(e)),
        }
    }
    Ok(filled)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace(n: usize) -> FrameTrace {
        let mut t = FrameTrace::new(7, 64, 48, FilterMode::Trilinear);
        for i in 0..n {
            t.push(PixelRequest {
                tid: TextureId::from_index(i as u32 % 3),
                u: i as f32 * 0.5,
                v: -(i as f32) * 0.25,
                lod: i as f32 * 0.01,
            });
        }
        t
    }

    #[test]
    fn roundtrip_in_memory() {
        let t = sample_trace(100);
        let enc = encode_frame(&t);
        let mut buf = enc.as_ref();
        let dec = decode_frame(&mut buf).unwrap();
        assert_eq!(dec, t);
        assert!(buf.is_empty());
    }

    #[test]
    fn roundtrip_empty_frame() {
        let t = FrameTrace::new(0, 1, 1, FilterMode::Point);
        let mut buf = encode_frame(&t);
        assert_eq!(decode_frame(&mut buf).unwrap(), t);
    }

    #[test]
    fn multi_frame_stream() {
        let mut file = Vec::new();
        {
            let mut w = TraceWriter::new(&mut file);
            for i in 0..3 {
                let mut t = sample_trace(10 * i);
                t.frame = i as u32;
                w.write_frame(&t).unwrap();
            }
        }
        let mut r = TraceReader::new(file.as_slice());
        for i in 0..3 {
            let t = r.read_frame().unwrap().expect("frame present");
            assert_eq!(t.frame, i);
            assert_eq!(t.requests.len(), 10 * i as usize);
        }
        assert!(r.read_frame().unwrap().is_none());
    }

    #[test]
    fn bad_magic_detected() {
        let t = sample_trace(1);
        let mut bytes = encode_frame(&t).to_vec();
        bytes[0] ^= 0xff;
        let mut buf = bytes.as_slice();
        assert!(matches!(
            decode_frame(&mut buf),
            Err(CodecError::BadMagic(_))
        ));
    }

    #[test]
    fn bad_filter_detected() {
        let t = sample_trace(0);
        let mut bytes = encode_frame(&t).to_vec();
        bytes[16] = 9; // filter byte
        let mut buf = bytes.as_slice();
        assert!(matches!(
            decode_frame(&mut buf),
            Err(CodecError::BadFilter(9))
        ));
    }

    #[test]
    fn truncation_detected() {
        let t = sample_trace(4);
        let bytes = encode_frame(&t);
        let mut buf = &bytes[..bytes.len() - 3];
        assert!(matches!(decode_frame(&mut buf), Err(CodecError::Truncated)));
        let mut r = TraceReader::new(&bytes[..bytes.len() - 3]);
        assert!(matches!(r.read_frame(), Err(CodecError::Truncated)));
    }

    #[test]
    fn oversized_count_rejected_on_both_paths() {
        let t = sample_trace(2);
        let mut bytes = encode_frame(&t).to_vec();
        // The count field sits at offset 25 in the 29-byte header.
        bytes[25..29].copy_from_slice(&(MAX_FRAME_REQUESTS + 1).to_le_bytes());
        let mut buf = bytes.as_slice();
        assert!(matches!(
            decode_frame(&mut buf),
            Err(CodecError::Oversized { count, max })
                if count == MAX_FRAME_REQUESTS + 1 && max == MAX_FRAME_REQUESTS
        ));
        let mut r = TraceReader::new(bytes.as_slice());
        assert!(matches!(r.read_frame(), Err(CodecError::Oversized { .. })));
    }

    #[test]
    fn max_request_count_itself_is_accepted_shapewise() {
        // A frame claiming exactly the cap fails with Truncated (payload
        // missing), never Oversized: the cap is exclusive of valid sizes.
        let t = sample_trace(0);
        let mut bytes = encode_frame(&t).to_vec();
        bytes[25..29].copy_from_slice(&MAX_FRAME_REQUESTS.to_le_bytes());
        let mut buf = bytes.as_slice();
        assert!(matches!(decode_frame(&mut buf), Err(CodecError::Truncated)));
    }

    #[test]
    fn error_display_strings() {
        assert!(CodecError::Truncated.to_string().contains("truncated"));
        assert!(CodecError::BadMagic(5).to_string().contains("magic"));
        let e = CodecError::Oversized { count: 99, max: 10 };
        assert!(e.to_string().contains("99") && e.to_string().contains("10"));
    }
}
