//! Texture access tracing and per-frame statistics (paper §3.2, §4).
//!
//! The study is *trace-driven*: the renderer in `mltc-raster` emits one
//! [`FrameTrace`] of per-pixel texture requests per frame, and every cache
//! configuration in `mltc-core` replays the same trace — exactly the
//! methodology of the paper, which instruments the Intel Scene Manager with
//! a tracing library that "calculates the virtual texture address
//! ⟨tid, L2, L1⟩ … and tracks all pixel references during each frame".
//!
//! This crate provides:
//!
//! * [`PixelRequest`] / [`FrameTrace`] — the trace records;
//! * [`FilterMode`] and [`filter_taps`] — the single authoritative mapping
//!   from a pixel request to the texels it touches under point, bilinear or
//!   trilinear filtering (used by both the renderer for colour and the cache
//!   engine for addresses, so they can never disagree);
//! * [`FrameStatsCollector`] — the §4 statistics: per-frame working sets
//!   (total and new) for every tile size, minimum L1 download bandwidth,
//!   depth complexity and block utilization;
//! * [`codec`] — a compact binary trace format for record/replay.

pub mod codec;
mod filter;
mod request;
mod stats;

pub use filter::{filter_taps, FilterMode, Tap, TapList};
pub use request::{FrameTrace, PixelRequest};
pub use stats::{FrameStatsCollector, FrameWorkingSet, TileClass, WorkloadSummary};
