//! Trace records: per-pixel texture requests and per-frame traces.

use crate::FilterMode;
use mltc_texture::TextureId;

/// One textured pixel produced by scan conversion: which texture it samples,
/// where (in *texel* coordinates of mip level 0, unwrapped — repeated
/// textures address `u`/`v` beyond the level size), and at what level of
/// detail.
///
/// 16 bytes; a full-scale Village frame produces about three million of
/// these (1024×768 at depth complexity ≈ 3.8).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PixelRequest {
    /// Texture sampled.
    pub tid: TextureId,
    /// Texel-space `u` at mip level 0 (may exceed the texture width for
    /// repeated textures; may be negative before wrapping).
    pub u: f32,
    /// Texel-space `v` at mip level 0.
    pub v: f32,
    /// Level of detail: `log2` of the texel-to-pixel footprint ("texture
    /// compression", §2.1). `0.0` samples level 0; values are clamped to the
    /// pyramid range during filtering.
    pub lod: f32,
}

/// The texture accesses of one rendered frame, plus enough metadata to
/// compute the paper's per-frame statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameTrace {
    /// Frame number within the animation.
    pub frame: u32,
    /// Screen width in pixels.
    pub width: u32,
    /// Screen height in pixels.
    pub height: u32,
    /// Filter mode the frame was traced for.
    pub filter: FilterMode,
    /// Total pixels rasterized (textured fragments, including overdraw) —
    /// the numerator of depth complexity `d = pixels / (width*height)`.
    pub pixels_rendered: u64,
    /// One request per textured pixel, in scanline rasterization order.
    pub requests: Vec<PixelRequest>,
}

impl FrameTrace {
    /// Creates an empty trace for a frame.
    pub fn new(frame: u32, width: u32, height: u32, filter: FilterMode) -> Self {
        Self {
            frame,
            width,
            height,
            filter,
            pixels_rendered: 0,
            requests: Vec::new(),
        }
    }

    /// Appends a request and counts the fragment.
    #[inline]
    pub fn push(&mut self, req: PixelRequest) {
        self.pixels_rendered += 1;
        self.requests.push(req);
    }

    /// Depth complexity `d` of the frame: textured fragments per screen
    /// pixel (paper §4.1).
    pub fn depth_complexity(&self) -> f64 {
        self.pixels_rendered as f64 / (self.width as f64 * self.height as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_counts_fragments() {
        let mut t = FrameTrace::new(0, 4, 4, FilterMode::Point);
        t.push(PixelRequest {
            tid: TextureId::from_index(0),
            u: 0.0,
            v: 0.0,
            lod: 0.0,
        });
        t.push(PixelRequest {
            tid: TextureId::from_index(0),
            u: 1.0,
            v: 0.0,
            lod: 0.0,
        });
        assert_eq!(t.pixels_rendered, 2);
        assert_eq!(t.requests.len(), 2);
    }

    #[test]
    fn depth_complexity_counts_overdraw() {
        let mut t = FrameTrace::new(0, 2, 2, FilterMode::Point);
        for _ in 0..8 {
            t.push(PixelRequest {
                tid: TextureId::from_index(0),
                u: 0.0,
                v: 0.0,
                lod: 0.0,
            });
        }
        assert_eq!(t.depth_complexity(), 2.0);
    }

    #[test]
    fn request_is_16_bytes() {
        assert_eq!(std::mem::size_of::<PixelRequest>(), 16);
    }
}
