//! Workload driver: scene + camera script + frame rendering.

use crate::{city, village, CameraPath, Scene};
use mltc_raster::{Camera, Framebuffer, RasterMode, Rasterizer, Traversal};
use mltc_texture::TextureRegistry;
use mltc_trace::{FilterMode, FrameTrace};

/// Scale parameters for a workload run.
///
/// The spatial content and camera path are scale-independent; `frames`
/// controls how densely the path is sampled, `texture_scale` divides
/// texture dimensions (1 = the calibrated full-size assets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WorkloadParams {
    /// Screen width in pixels.
    pub width: u32,
    /// Screen height in pixels.
    pub height: u32,
    /// Animation length; `0` selects the paper's per-workload frame count
    /// (411 for the Village, 525 for the City).
    pub frames: u32,
    /// Texture dimension divisor (power of two recommended; min texture
    /// dimension is clamped to 16).
    pub texture_scale: u32,
    /// Master seed for all procedural content.
    pub seed: u64,
}

impl WorkloadParams {
    /// Minimal scale for unit tests: 64×48, 4 frames, 1/8-size textures.
    pub fn tiny() -> Self {
        Self {
            width: 64,
            height: 48,
            frames: 4,
            texture_scale: 8,
            seed: 0x5eed,
        }
    }

    /// Small scale for quick experiments and benches: 256×192, 24 frames.
    pub fn quick() -> Self {
        Self {
            width: 256,
            height: 192,
            frames: 24,
            texture_scale: 4,
            seed: 0x5eed,
        }
    }

    /// The default experiment scale: 640×480, 120 frames, full textures.
    pub fn default_scale() -> Self {
        Self {
            width: 640,
            height: 480,
            frames: 120,
            texture_scale: 1,
            seed: 0x5eed,
        }
    }

    /// The paper's scale: 1024×768, full animation length, full textures.
    pub fn paper_scale() -> Self {
        Self {
            width: 1024,
            height: 768,
            frames: 0,
            texture_scale: 1,
            seed: 0x5eed,
        }
    }

    /// Applies `texture_scale` to a base texture dimension.
    pub fn scaled_texture(&self, base: u32) -> u32 {
        (base / self.texture_scale.max(1)).max(16)
    }
}

impl Default for WorkloadParams {
    fn default() -> Self {
        Self::default_scale()
    }
}

/// The procedural workloads by identity, without their (heavyweight) built
/// scenes — hashable, so a `(WorkloadKind, WorkloadParams)` pair can key
/// memoized traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// The Village walk-through ([`Workload::village`]).
    Village,
    /// The City fly-through ([`Workload::city`]).
    City,
    /// The §6 "workload of the future" City variant
    /// ([`Workload::future_city`]).
    FutureCity,
}

impl WorkloadKind {
    /// The workload's stable name (matches [`Workload::name`]).
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::Village => "village",
            WorkloadKind::City => "city",
            WorkloadKind::FutureCity => "future-city",
        }
    }

    /// Builds the scene + camera path for this kind.
    pub fn build(self, params: &WorkloadParams) -> Workload {
        match self {
            WorkloadKind::Village => Workload::village(params),
            WorkloadKind::City => Workload::city(params),
            WorkloadKind::FutureCity => Workload::future_city(params),
        }
    }
}

/// A scene plus its scripted animation, ready to trace or render.
///
/// See the [crate docs](crate) for an example.
#[derive(Debug)]
pub struct Workload {
    /// Workload name (`"village"` or `"city"`).
    pub name: &'static str,
    /// Which procedural workload this is.
    pub kind: WorkloadKind,
    /// The parameters the workload was built with.
    pub params: WorkloadParams,
    scene: Scene,
    path: CameraPath,
    /// Screen width in pixels.
    pub width: u32,
    /// Screen height in pixels.
    pub height: u32,
    /// Number of animation frames.
    pub frame_count: u32,
}

impl Workload {
    /// Builds the Village walk-through (paper §3.1).
    pub fn village(params: &WorkloadParams) -> Self {
        let (scene, path) = village::build(params);
        let frames = if params.frames == 0 {
            village::PAPER_FRAMES
        } else {
            params.frames
        };
        Self {
            name: "village",
            kind: WorkloadKind::Village,
            params: *params,
            scene,
            path,
            width: params.width,
            height: params.height,
            frame_count: frames,
        }
    }

    /// Builds the City fly-through (paper §3.1).
    pub fn city(params: &WorkloadParams) -> Self {
        let (scene, path) = city::build(params);
        let frames = if params.frames == 0 {
            city::PAPER_FRAMES
        } else {
            params.frames
        };
        Self {
            name: "city",
            kind: WorkloadKind::City,
            params: *params,
            scene,
            path,
            width: params.width,
            height: params.height,
            frame_count: frames,
        }
    }

    /// Builds the "workload of the future" City variant the paper's §6
    /// asks to investigate: a larger downtown with double-resolution
    /// facades, stressing L2 capacity.
    pub fn future_city(params: &WorkloadParams) -> Self {
        let (scene, path) = city::build_with(params, city::CityOptions::future());
        let frames = if params.frames == 0 {
            city::PAPER_FRAMES
        } else {
            params.frames
        };
        Self {
            name: "future-city",
            kind: WorkloadKind::FutureCity,
            params: *params,
            scene,
            path,
            width: params.width,
            height: params.height,
            frame_count: frames,
        }
    }

    /// The scene.
    pub fn scene(&self) -> &Scene {
        &self.scene
    }

    /// The camera for a frame.
    ///
    /// # Panics
    ///
    /// Panics if `frame >= frame_count`.
    pub fn camera_at(&self, frame: u32) -> Camera {
        assert!(frame < self.frame_count, "frame {frame} out of range");
        self.path.camera_for_frame(frame, self.frame_count)
    }

    /// Renders one frame to a texture-access trace (no colours).
    pub fn trace_frame(&self, frame: u32, filter: FilterMode) -> FrameTrace {
        let mut raster = Rasterizer::new(
            self.width,
            self.height,
            filter,
            RasterMode::Trace,
            self.scene.registry(),
        );
        self.trace_into(&mut raster, frame, false)
    }

    /// Renders one frame to a trace with the z-pre-pass ablation enabled
    /// (only visible fragments are textured; paper §6).
    pub fn trace_frame_zprepass(&self, frame: u32, filter: FilterMode) -> FrameTrace {
        let mut raster = Rasterizer::new(
            self.width,
            self.height,
            filter,
            RasterMode::Trace,
            self.scene.registry(),
        );
        self.trace_into(&mut raster, frame, true)
    }

    fn trace_into(&self, raster: &mut Rasterizer<'_>, frame: u32, zprepass: bool) -> FrameTrace {
        let cam = self.camera_at(frame);
        raster.begin_frame(frame);
        if zprepass {
            self.scene.draw_depth_prepass(raster, &cam);
            raster.set_after_z(true);
        }
        self.scene.draw(raster, &cam);
        raster.finish_frame()
    }

    /// Streams the whole animation through `sink`, reusing one rasterizer.
    ///
    /// `zprepass` enables the §6 ablation for every frame.
    pub fn render_animation(
        &self,
        filter: FilterMode,
        zprepass: bool,
        sink: impl FnMut(FrameTrace),
    ) {
        self.render_animation_traversal(filter, zprepass, Traversal::Scanline, sink);
    }

    /// Like [`Workload::render_animation`], with an explicit fragment
    /// traversal order (for the §2.3 tiled-rasterization ablation).
    pub fn render_animation_traversal(
        &self,
        filter: FilterMode,
        zprepass: bool,
        traversal: Traversal,
        mut sink: impl FnMut(FrameTrace),
    ) {
        self.render_animation_feed(filter, zprepass, traversal, |t| {
            sink(t);
            None
        });
    }

    /// Like [`Workload::render_animation_traversal`], but the sink may hand
    /// a request buffer back (e.g. after serialising the frame to disk);
    /// the rasterizer reuses its capacity for the next frame, making a
    /// consume-as-you-go render loop allocation-free in steady state.
    pub fn render_animation_feed(
        &self,
        filter: FilterMode,
        zprepass: bool,
        traversal: Traversal,
        mut sink: impl FnMut(FrameTrace) -> Option<Vec<mltc_trace::PixelRequest>>,
    ) {
        let mut raster = Rasterizer::new(
            self.width,
            self.height,
            filter,
            RasterMode::Trace,
            self.scene.registry(),
        );
        raster.set_traversal(traversal);
        for frame in 0..self.frame_count {
            let t = self.trace_into(&mut raster, frame, zprepass);
            if let Some(buf) = sink(t) {
                raster.recycle(buf);
            }
        }
    }

    /// Renders a shaded snapshot of one frame (Fig. 12).
    pub fn render_snapshot(&self, frame: u32, filter: FilterMode) -> Framebuffer {
        let mut raster = Rasterizer::new(
            self.width,
            self.height,
            filter,
            RasterMode::Shaded,
            self.scene.registry(),
        );
        let cam = self.camera_at(frame);
        raster.begin_frame(frame);
        self.scene.draw(&mut raster, &cam);
        let _ = raster.finish_frame();
        raster.framebuffer().clone()
    }

    /// Shorthand for the scene's texture registry.
    pub fn registry(&self) -> &TextureRegistry {
        self.scene.registry()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_presets_scale_sensibly() {
        assert!(WorkloadParams::tiny().width < WorkloadParams::quick().width);
        assert_eq!(WorkloadParams::paper_scale().width, 1024);
        assert_eq!(WorkloadParams::default(), WorkloadParams::default_scale());
        assert_eq!(WorkloadParams::tiny().scaled_texture(512), 64);
        assert_eq!(
            WorkloadParams::tiny().scaled_texture(64),
            16,
            "clamped at 16"
        );
    }

    #[test]
    fn paper_frame_counts() {
        let mut p = WorkloadParams::tiny();
        p.frames = 0;
        assert_eq!(Workload::village(&p).frame_count, 411);
        assert_eq!(Workload::city(&p).frame_count, 525);
    }

    #[test]
    fn village_traces_have_depth_complexity_above_two() {
        let w = Workload::village(&WorkloadParams::tiny());
        let t = w.trace_frame(0, FilterMode::Point);
        assert!(
            t.depth_complexity() > 2.0,
            "village d = {:.2} should include sky+ground+buildings",
            t.depth_complexity()
        );
    }

    #[test]
    fn city_traces_are_shallower_than_village() {
        let p = WorkloadParams::tiny();
        let v = Workload::village(&p).trace_frame(0, FilterMode::Point);
        let c = Workload::city(&p).trace_frame(2, FilterMode::Point);
        assert!(
            c.depth_complexity() < v.depth_complexity(),
            "city {:.2} < village {:.2}",
            c.depth_complexity(),
            v.depth_complexity()
        );
    }

    #[test]
    fn traces_are_deterministic() {
        let p = WorkloadParams::tiny();
        let a = Workload::village(&p).trace_frame(1, FilterMode::Bilinear);
        let b = Workload::village(&p).trace_frame(1, FilterMode::Bilinear);
        assert_eq!(a, b);
    }

    #[test]
    fn adjacent_frames_overlap_heavily() {
        // Inter-frame locality is the premise of L2 caching: most texels
        // touched in frame n are touched in frame n+1 too. Sample the path
        // densely enough that adjacent frames are incremental.
        let params = WorkloadParams {
            frames: 60,
            ..WorkloadParams::tiny()
        };
        let w = Workload::village(&params);
        let collect = |f: u32| -> std::collections::HashSet<(u32, u64, u64)> {
            w.trace_frame(f, FilterMode::Point)
                .requests
                .iter()
                .map(|r| {
                    (
                        r.tid.index(),
                        (r.u as i64 / 16) as u64,
                        (r.v as i64 / 16) as u64,
                    )
                })
                .collect()
        };
        let a = collect(0);
        let b = collect(1);
        let shared = a.intersection(&b).count();
        assert!(
            shared * 10 >= a.len() * 6,
            "only {shared}/{} blocks shared between adjacent frames",
            a.len()
        );
    }

    #[test]
    fn zprepass_reduces_textured_fragments() {
        let w = Workload::village(&WorkloadParams::tiny());
        let full = w.trace_frame(0, FilterMode::Point).pixels_rendered;
        let pre = w.trace_frame_zprepass(0, FilterMode::Point).pixels_rendered;
        assert!(
            pre < full,
            "z-pre-pass {pre} must texture fewer fragments than {full}"
        );
        // The screen is fully covered, so at least width*height survive.
        assert!(pre >= (w.width * w.height) as u64 * 9 / 10);
    }

    #[test]
    fn kind_builds_the_matching_workload() {
        let p = WorkloadParams::tiny();
        for kind in [
            WorkloadKind::Village,
            WorkloadKind::City,
            WorkloadKind::FutureCity,
        ] {
            let w = kind.build(&p);
            assert_eq!(w.kind, kind);
            assert_eq!(w.name, kind.name());
            assert_eq!(w.params, p);
        }
    }

    #[test]
    fn feed_with_recycling_traces_identically() {
        let p = WorkloadParams::tiny();
        let w = Workload::village(&p);
        let mut plain = Vec::new();
        w.render_animation(FilterMode::Point, false, |t| plain.push(t));
        let mut fed = Vec::new();
        w.render_animation_feed(FilterMode::Point, false, Traversal::Scanline, |t| {
            fed.push(t.clone());
            Some(t.requests) // donate the buffer back every frame
        });
        assert_eq!(plain, fed, "buffer recycling must not change the trace");
    }

    #[test]
    fn render_animation_visits_every_frame() {
        let w = Workload::city(&WorkloadParams::tiny());
        let mut frames = Vec::new();
        w.render_animation(FilterMode::Point, false, |t| frames.push(t.frame));
        assert_eq!(frames, (0..w.frame_count).collect::<Vec<_>>());
    }

    #[test]
    fn future_city_scales_up_the_texture_set() {
        let p = WorkloadParams::tiny();
        let today = Workload::city(&p);
        let future = Workload::future_city(&p);
        assert_eq!(future.name, "future-city");
        assert!(future.registry().live_count() > today.registry().live_count());
        assert!(future.registry().host_byte_size() > 2 * today.registry().host_byte_size());
        // It still renders.
        let t = future.trace_frame(0, FilterMode::Point);
        assert!(t.pixels_rendered > 0);
    }

    #[test]
    fn snapshot_renders_nonblack_pixels() {
        let w = Workload::village(&WorkloadParams::tiny());
        let fb = w.render_snapshot(0, FilterMode::Bilinear);
        let mut lit = 0;
        for y in 0..fb.height() {
            for x in 0..fb.width() {
                if fb.color_at(x, y) != 0xff00_0000 {
                    lit += 1;
                }
            }
        }
        assert!(
            lit * 10 > (fb.width() * fb.height()) * 9,
            "snapshot mostly covered"
        );
    }
}
