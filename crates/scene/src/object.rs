//! Scene graph: textured objects and the culling draw loop.

use crate::Mesh;
use mltc_math::{Aabb, Mat4, Vec4};
use mltc_raster::{Camera, ClipVertex, Rasterizer};
use mltc_texture::{TextureId, TextureRegistry};

/// A world-space mesh bound to one texture.
#[derive(Debug, Clone)]
pub struct Object {
    /// Geometry in world coordinates.
    pub mesh: Mesh,
    /// Texture applied to every triangle.
    pub texture: TextureId,
    /// Render both faces (billboards); single-sided objects are
    /// backface-culled by winding.
    pub two_sided: bool,
    aabb: Option<Aabb>,
}

impl Object {
    /// Creates a single-sided object.
    pub fn new(mesh: Mesh, texture: TextureId) -> Self {
        let aabb = mesh.aabb();
        Self {
            mesh,
            texture,
            two_sided: false,
            aabb,
        }
    }

    /// Creates a double-sided object (e.g. tree billboards).
    pub fn new_two_sided(mesh: Mesh, texture: TextureId) -> Self {
        let aabb = mesh.aabb();
        Self {
            mesh,
            texture,
            two_sided: true,
            aabb,
        }
    }

    /// World bounding box (`None` for empty meshes).
    pub fn aabb(&self) -> Option<Aabb> {
        self.aabb
    }
}

/// A complete scene: a texture registry plus the objects using it.
///
/// The draw loop performs the stages the paper attributes to the Intel
/// Scene Manager (§3): object-space visibility culling against the view
/// frustum, geometry processing (transform into clip space, backface
/// culling), then scanline rasterization via [`Rasterizer`].
#[derive(Debug, Default)]
pub struct Scene {
    /// Texture store for every object.
    pub registry: TextureRegistry,
    objects: Vec<Object>,
}

/// Per-draw statistics (for calibration and tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DrawStats {
    /// Objects surviving frustum culling.
    pub objects_drawn: u64,
    /// Objects rejected by the frustum test.
    pub objects_culled: u64,
    /// Triangles submitted to the rasterizer.
    pub triangles_drawn: u64,
    /// Triangles rejected as backfaces.
    pub triangles_backfaced: u64,
}

impl Scene {
    /// An empty scene.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an object and returns its index.
    pub fn add(&mut self, object: Object) -> usize {
        self.objects.push(object);
        self.objects.len() - 1
    }

    /// The objects.
    pub fn objects(&self) -> &[Object] {
        &self.objects
    }

    /// The texture registry.
    pub fn registry(&self) -> &TextureRegistry {
        &self.registry
    }

    /// Total triangles over all objects.
    pub fn triangle_count(&self) -> usize {
        self.objects.iter().map(|o| o.mesh.triangle_count()).sum()
    }

    /// Draws every visible object into `raster` from `camera`.
    pub fn draw(&self, raster: &mut Rasterizer<'_>, camera: &Camera) -> DrawStats {
        self.draw_inner(raster, camera, false)
    }

    /// Depth-only pre-pass over the same geometry (z-pre-pass ablation,
    /// paper §6). Call before [`Scene::draw`] with the rasterizer's
    /// after-z mode enabled.
    pub fn draw_depth_prepass(&self, raster: &mut Rasterizer<'_>, camera: &Camera) -> DrawStats {
        self.draw_inner(raster, camera, true)
    }

    fn draw_inner(
        &self,
        raster: &mut Rasterizer<'_>,
        camera: &Camera,
        depth_only: bool,
    ) -> DrawStats {
        let aspect = raster.framebuffer().width() as f32 / raster.framebuffer().height() as f32;
        let vp = camera.view_projection(aspect);
        let frustum = camera.frustum(aspect);
        let eye = camera.eye;
        let mut stats = DrawStats::default();

        for obj in &self.objects {
            match obj.aabb() {
                Some(bb) if frustum.intersects(&bb) => {}
                _ => {
                    stats.objects_culled += 1;
                    continue;
                }
            }
            stats.objects_drawn += 1;

            let pos = obj.mesh.positions();
            let uvs = obj.mesh.uvs();
            for tri in obj.mesh.triangles() {
                let p0 = pos[tri[0] as usize];
                let p1 = pos[tri[1] as usize];
                let p2 = pos[tri[2] as usize];
                if !obj.two_sided {
                    // World-space backface cull: CCW-outward normals.
                    let n = (p1 - p0).cross(p2 - p0);
                    if n.dot(p0 - eye) >= 0.0 {
                        stats.triangles_backfaced += 1;
                        continue;
                    }
                }
                stats.triangles_drawn += 1;
                let cv = |p, uv| ClipVertex {
                    pos: transform(&vp, p),
                    uv,
                };
                let a = cv(p0, uvs[tri[0] as usize]);
                let b = cv(p1, uvs[tri[1] as usize]);
                let c = cv(p2, uvs[tri[2] as usize]);
                if depth_only {
                    raster.depth_prepass_triangle(&a, &b, &c);
                } else {
                    raster.draw_triangle(&a, &b, &c, obj.texture);
                }
            }
        }
        stats
    }
}

#[inline]
fn transform(vp: &Mat4, p: mltc_math::Vec3) -> Vec4 {
    vp.transform(Vec4::from_point(p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mltc_math::Vec3;
    use mltc_raster::{FilterMode, RasterMode};
    use mltc_texture::{synth, MipPyramid};

    fn test_scene() -> Scene {
        let mut scene = Scene::new();
        let tid = scene.registry.load(
            "t",
            MipPyramid::from_image(synth::checkerboard(32, 4, [0; 3], [255; 3])),
        );
        // A 2x2 wall facing +Z at z = 0.
        scene.add(Object::new(
            Mesh::quad(
                [
                    Vec3::new(-1.0, -1.0, 0.0),
                    Vec3::new(1.0, -1.0, 0.0),
                    Vec3::new(1.0, 1.0, 0.0),
                    Vec3::new(-1.0, 1.0, 0.0),
                ],
                1.0,
                1.0,
            ),
            tid,
        ));
        scene
    }

    fn draw_from(scene: &Scene, eye: Vec3) -> (DrawStats, u64) {
        let mut r = Rasterizer::new(
            32,
            32,
            FilterMode::Point,
            RasterMode::Trace,
            scene.registry(),
        );
        r.begin_frame(0);
        let cam = Camera::new(eye, Vec3::ZERO);
        let stats = scene.draw(&mut r, &cam);
        let t = r.finish_frame();
        (stats, t.pixels_rendered)
    }

    #[test]
    fn front_side_renders() {
        let scene = test_scene();
        let (stats, pixels) = draw_from(&scene, Vec3::new(0.0, 0.0, 3.0));
        assert_eq!(stats.objects_drawn, 1);
        assert_eq!(stats.triangles_drawn, 2);
        assert!(pixels > 0);
    }

    #[test]
    fn back_side_is_backface_culled() {
        let scene = test_scene();
        let (stats, pixels) = draw_from(&scene, Vec3::new(0.0, 0.0, -3.0));
        assert_eq!(stats.triangles_backfaced, 2);
        assert_eq!(pixels, 0);
    }

    #[test]
    fn two_sided_objects_skip_culling() {
        let mut scene = test_scene();
        let obj =
            Object::new_two_sided(scene.objects()[0].mesh.clone(), scene.objects()[0].texture);
        scene.add(obj);
        let (stats, pixels) = draw_from(&scene, Vec3::new(0.0, 0.0, -3.0));
        assert_eq!(stats.triangles_drawn, 2, "only the two-sided copy draws");
        assert!(pixels > 0);
    }

    #[test]
    fn objects_outside_frustum_are_culled() {
        let mut scene = test_scene();
        let tid = scene.objects()[0].texture;
        scene.add(Object::new(
            Mesh::quad(
                [
                    Vec3::new(500.0, 0.0, 0.0),
                    Vec3::new(501.0, 0.0, 0.0),
                    Vec3::new(501.0, 1.0, 0.0),
                    Vec3::new(500.0, 1.0, 0.0),
                ],
                1.0,
                1.0,
            ),
            tid,
        ));
        let (stats, _) = draw_from(&scene, Vec3::new(0.0, 0.0, 3.0));
        assert_eq!(stats.objects_culled, 1);
        assert_eq!(stats.objects_drawn, 1);
    }

    #[test]
    fn depth_prepass_then_after_z_reduces_fragments() {
        let mut scene = test_scene();
        let tid = scene.objects()[0].texture;
        // A second wall hidden behind the first.
        scene.add(Object::new(
            Mesh::quad(
                [
                    Vec3::new(-1.0, -1.0, -0.5),
                    Vec3::new(1.0, -1.0, -0.5),
                    Vec3::new(1.0, 1.0, -0.5),
                    Vec3::new(-1.0, 1.0, -0.5),
                ],
                1.0,
                1.0,
            ),
            tid,
        ));
        let cam = Camera::new(Vec3::new(0.0, 0.0, 3.0), Vec3::ZERO);

        let mut late_z = Rasterizer::new(
            32,
            32,
            FilterMode::Point,
            RasterMode::Trace,
            scene.registry(),
        );
        late_z.begin_frame(0);
        scene.draw(&mut late_z, &cam);
        let late = late_z.finish_frame().pixels_rendered;

        let mut pre = Rasterizer::new(
            32,
            32,
            FilterMode::Point,
            RasterMode::Trace,
            scene.registry(),
        );
        pre.begin_frame(0);
        scene.draw_depth_prepass(&mut pre, &cam);
        pre.set_after_z(true);
        scene.draw(&mut pre, &cam);
        let prepassed = pre.finish_frame().pixels_rendered;

        assert!(
            prepassed < late,
            "pre-pass {prepassed} must texture fewer than late-z {late}"
        );
        // The far wall projects to ~73% of the near wall's pixels, all of
        // them occluded: the pre-pass should cut well over a quarter.
        assert!(
            prepassed * 3 < late * 2,
            "hidden wall should be suppressed ({prepassed}/{late})"
        );
    }
}
