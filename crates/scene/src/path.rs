//! Scripted camera animations.

use mltc_math::Vec3;
use mltc_raster::Camera;

/// A scripted camera path: eye/target keyframes traversed at constant
/// keyframe rate with Catmull-Rom smoothing, evaluated at a normalized
/// parameter `t ∈ [0, 1]` — so an animation keeps the same spatial path no
/// matter how many frames sample it (the paper's walk-through and
/// fly-through are scripted the same way, §3.1).
///
/// ```
/// use mltc_math::Vec3;
/// use mltc_scene::CameraPath;
/// let path = CameraPath::new(vec![
///     (Vec3::ZERO, Vec3::X),
///     (Vec3::new(10.0, 0.0, 0.0), Vec3::new(11.0, 0.0, 0.0)),
/// ]);
/// let start = path.camera_at(0.0);
/// let end = path.camera_at(1.0);
/// assert!((end.eye.x - 10.0).abs() < 1e-4);
/// assert!((start.eye - Vec3::ZERO).length() < 1e-4);
/// ```
#[derive(Debug, Clone)]
pub struct CameraPath {
    keys: Vec<(Vec3, Vec3)>,
}

impl CameraPath {
    /// Creates a path from `(eye, target)` keyframes.
    ///
    /// # Panics
    ///
    /// Panics with fewer than two keyframes.
    pub fn new(keys: Vec<(Vec3, Vec3)>) -> Self {
        assert!(
            keys.len() >= 2,
            "a camera path needs at least two keyframes"
        );
        Self { keys }
    }

    /// Number of keyframes.
    pub fn key_count(&self) -> usize {
        self.keys.len()
    }

    /// Evaluates the camera at `t ∈ [0, 1]` (clamped).
    pub fn camera_at(&self, t: f32) -> Camera {
        let t = t.clamp(0.0, 1.0);
        let segments = (self.keys.len() - 1) as f32;
        let ft = t * segments;
        let seg = (ft as usize).min(self.keys.len() - 2);
        let local = ft - seg as f32;

        let idx = |i: isize| -> usize { i.clamp(0, self.keys.len() as isize - 1) as usize };
        let k0 = self.keys[idx(seg as isize - 1)];
        let k1 = self.keys[seg];
        let k2 = self.keys[seg + 1];
        let k3 = self.keys[idx(seg as isize + 2)];

        let eye = catmull_rom(k0.0, k1.0, k2.0, k3.0, local);
        let target = catmull_rom(k0.1, k1.1, k2.1, k3.1, local);
        Camera::new(eye, target)
    }

    /// Evaluates the camera for `frame` of a `frame_count`-frame animation.
    ///
    /// # Panics
    ///
    /// Panics if `frame_count` is zero.
    pub fn camera_for_frame(&self, frame: u32, frame_count: u32) -> Camera {
        assert!(frame_count > 0);
        let t = if frame_count == 1 {
            0.0
        } else {
            frame as f32 / (frame_count - 1) as f32
        };
        self.camera_at(t)
    }
}

/// Standard Catmull-Rom spline interpolation.
fn catmull_rom(p0: Vec3, p1: Vec3, p2: Vec3, p3: Vec3, t: f32) -> Vec3 {
    let t2 = t * t;
    let t3 = t2 * t;
    (p1 * 2.0
        + (p2 - p0) * t
        + (p0 * 2.0 - p1 * 5.0 + p2 * 4.0 - p3) * t2
        + (p1 * 3.0 - p0 - p2 * 3.0 + p3) * t3)
        * 0.5
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_path() -> CameraPath {
        CameraPath::new(vec![
            (Vec3::ZERO, Vec3::Z),
            (Vec3::new(4.0, 0.0, 0.0), Vec3::new(4.0, 0.0, 1.0)),
            (Vec3::new(8.0, 0.0, 0.0), Vec3::new(8.0, 0.0, 1.0)),
        ])
    }

    #[test]
    fn endpoints_hit_keyframes() {
        let p = line_path();
        assert!((p.camera_at(0.0).eye - Vec3::ZERO).length() < 1e-5);
        assert!((p.camera_at(1.0).eye - Vec3::new(8.0, 0.0, 0.0)).length() < 1e-5);
    }

    #[test]
    fn midpoint_hits_middle_key() {
        let p = line_path();
        assert!((p.camera_at(0.5).eye - Vec3::new(4.0, 0.0, 0.0)).length() < 1e-4);
    }

    #[test]
    fn collinear_keys_interpolate_linearly_in_interior_segments() {
        // With uniform collinear keys, Catmull-Rom is exactly linear on
        // interior segments (end segments ease in/out from clamped knots).
        let p = CameraPath::new(vec![
            (Vec3::ZERO, Vec3::Z),
            (Vec3::new(4.0, 0.0, 0.0), Vec3::new(4.0, 0.0, 1.0)),
            (Vec3::new(8.0, 0.0, 0.0), Vec3::new(8.0, 0.0, 1.0)),
            (Vec3::new(12.0, 0.0, 0.0), Vec3::new(12.0, 0.0, 1.0)),
        ]);
        // t = 0.5 lands in the middle of the interior segment (4 -> 8).
        let e = p.camera_at(0.5).eye;
        assert!((e.x - 6.0).abs() < 1e-4, "got {e}");
        assert!(e.y.abs() < 1e-5 && e.z.abs() < 1e-5);
    }

    #[test]
    fn eye_motion_is_monotone_along_a_straight_path() {
        let p = line_path();
        let mut last = -1.0f32;
        for i in 0..=20 {
            let x = p.camera_at(i as f32 / 20.0).eye.x;
            assert!(x >= last - 1e-4, "x went backwards: {x} after {last}");
            last = x;
        }
    }

    #[test]
    fn parameter_is_clamped() {
        let p = line_path();
        assert_eq!(p.camera_at(-1.0).eye, p.camera_at(0.0).eye);
        assert_eq!(p.camera_at(2.0).eye, p.camera_at(1.0).eye);
    }

    #[test]
    fn frame_sampling_covers_the_path() {
        let p = line_path();
        let c0 = p.camera_for_frame(0, 100);
        let c99 = p.camera_for_frame(99, 100);
        assert!((c0.eye - Vec3::ZERO).length() < 1e-5);
        assert!((c99.eye.x - 8.0).abs() < 1e-4);
    }

    #[test]
    fn motion_between_adjacent_frames_is_small() {
        let p = line_path();
        let a = p.camera_for_frame(40, 100).eye;
        let b = p.camera_for_frame(41, 100).eye;
        assert!(
            (b - a).length() < 0.2,
            "inter-frame step should be incremental"
        );
    }

    #[test]
    #[should_panic(expected = "two keyframes")]
    fn single_key_rejected() {
        let _ = CameraPath::new(vec![(Vec3::ZERO, Vec3::X)]);
    }
}
