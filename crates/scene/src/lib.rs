//! Procedural workloads: the *Village* and *City* animations (paper §3.1).
//!
//! The paper's workloads are proprietary scene databases — the Village
//! (Evans & Sutherland) explored by a scripted walk-through over 411 frames,
//! and the City (UCLA) by a fly-through over 525 frames. This crate builds
//! procedural stand-ins calibrated to the published statistics (see
//! DESIGN.md §1):
//!
//! * [`village`]: textured ground and streets, a sky dome, tens of
//!   buildings **sharing** a small pool of wall/roof textures, trees —
//!   texture re-use within and between objects, depth complexity ≈ 3.8;
//! * [`city`]: a street grid where every building carries its **own**
//!   facade texture (repeated across the facade by ⟨u,v⟩ wrap, but never
//!   shared between buildings), depth complexity ≈ 1.9.
//!
//! [`Workload`] packages a scene with its scripted camera path and drives
//! the `mltc-raster` renderer to produce per-frame texture traces or
//! shaded snapshots.
//!
//! # Example
//!
//! ```
//! use mltc_scene::{Workload, WorkloadParams};
//! use mltc_trace::FilterMode;
//!
//! let w = Workload::village(&WorkloadParams::tiny());
//! let trace = w.trace_frame(0, FilterMode::Point);
//! assert!(trace.pixels_rendered > 0);
//! assert!(trace.depth_complexity() > 1.0); // sky + ground + buildings
//! ```

pub mod city;
mod mesh;
mod object;
mod path;
pub mod village;
mod workload;

pub use mesh::Mesh;
pub use object::{Object, Scene};
pub use path::CameraPath;
pub use workload::{Workload, WorkloadKind, WorkloadParams};
