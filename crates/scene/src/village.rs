//! The *Village* workload: a walk-through of a small textured town.
//!
//! Stands in for the Evans & Sutherland Village database (paper §3.1).
//! Calibrated properties (Table 1 / Fig. 4): textures are **shared between
//! objects** (a small pool of wall/roof textures dressing every building)
//! and repeated within objects; depth complexity ≈ 3.8 at eye level looking
//! down streets lined with several rows of buildings; the full texture set
//! is ~14 MB at original depth with a per-frame push-architecture minimum
//! around 12 MB.

use crate::{CameraPath, Mesh, Object, Scene, WorkloadParams};
use mltc_math::Vec3;
use mltc_texture::{synth, MipPyramid, TextureId};
use rand::Rng;

/// Builds the Village scene and its scripted walk-through path.
pub fn build(params: &WorkloadParams) -> (Scene, CameraPath) {
    let mut scene = Scene::new();
    let mut rng = synth::seeded_rng(params.seed);
    let ts = |base: u32| params.scaled_texture(base);

    // --- Shared texture pool -------------------------------------------
    let load = |scene: &mut Scene, name: String, img| -> TextureId {
        scene.registry.load(name, MipPyramid::from_image(img))
    };

    let grass = load(
        &mut scene,
        "grass".into(),
        synth::noise(ts(512), 11, 24, [40, 90, 35], [80, 140, 60]),
    );
    let pavement = load(
        &mut scene,
        "pavement".into(),
        synth::noise(ts(512), 12, 6, [120, 118, 112], [160, 158, 150]),
    );
    let sky = load(
        &mut scene,
        "sky".into(),
        synth::gradient_v(ts(512), [90, 140, 235], [200, 220, 245]),
    );

    let wall_tones: [[u8; 3]; 6] = [
        [196, 160, 120],
        [180, 140, 110],
        [205, 195, 170],
        [170, 120, 90],
        [190, 170, 150],
        [160, 150, 130],
    ];
    let mut walls = Vec::new();
    for i in 0..12u64 {
        let img = if i % 2 == 0 {
            synth::brick(
                ts(512),
                100 + i,
                wall_tones[(i / 2) as usize % 6],
                [185, 185, 180],
            )
        } else {
            synth::window_grid(
                ts(512),
                200 + i,
                wall_tones[(i / 2) as usize % 6],
                [255, 240, 180],
                [35, 40, 55],
            )
        };
        walls.push(load(&mut scene, format!("wall{i}"), img));
    }
    let mut roofs = Vec::new();
    for (i, tone) in [[150, 60, 50], [120, 70, 60], [90, 90, 100], [140, 100, 60]]
        .iter()
        .enumerate()
    {
        roofs.push(load(
            &mut scene,
            format!("roof{i}"),
            synth::roof_tiles(ts(256), 300 + i as u64, *tone),
        ));
    }
    let foliage_a = load(&mut scene, "foliage_a".into(), synth::foliage(ts(256), 41));
    let foliage_b = load(&mut scene, "foliage_b".into(), synth::foliage(ts(256), 42));
    let wood = load(
        &mut scene,
        "wood".into(),
        synth::stripes(ts(256), 16, 14, [120, 85, 50], [90, 60, 35]),
    );
    let detail_a = load(
        &mut scene,
        "detail_a".into(),
        synth::window_grid(ts(256), 777, [150, 110, 80], [255, 250, 200], [30, 30, 40]),
    );
    let detail_b = load(
        &mut scene,
        "detail_b".into(),
        synth::stripes(ts(256), 24, 12, [60, 90, 140], [220, 220, 210]),
    );

    // --- Terrain, streets, sky -----------------------------------------
    scene.add(Object::new(
        Mesh::ground(-150.0, 150.0, 0.0, -150.0, 150.0, 40.0, 40.0),
        grass,
    ));
    // Main street along Z and a cross street along X, slightly raised.
    scene.add(Object::new(
        Mesh::ground(-5.0, 5.0, 0.02, -110.0, 110.0, 4.0, 60.0),
        pavement,
    ));
    scene.add(Object::new(
        Mesh::ground(-110.0, 110.0, 0.02, -5.0, 5.0, 60.0, 4.0),
        pavement,
    ));
    scene.add(Object::new(
        Mesh::dome(Vec3::new(0.0, 0.0, 0.0), 500.0, 24, 10),
        sky,
    ));

    // --- Buildings -------------------------------------------------------
    // Rows flanking both streets; nearer rows occlude farther ones, giving
    // the Village its depth complexity.
    // `face` is the outward direction of the street-facing wall, which
    // receives an additional decal quad (shopfront/awning) — the paper's §4
    // notes hardware increasingly maps multiple textures onto one object.
    let add_building = |scene: &mut Scene,
                        rng: &mut rand::rngs::StdRng,
                        cx: f32,
                        cz: f32,
                        face: Option<(f32, f32)>| {
        let half = rng.gen_range(3.0..5.0);
        let height = rng.gen_range(6.0..16.0);
        let min = Vec3::new(cx - half, 0.0, cz - half);
        let max = Vec3::new(cx + half, height, cz + half);
        let wall = walls[rng.gen_range(0..walls.len())];
        let roof = roofs[rng.gen_range(0..roofs.len())];
        scene.add(Object::new(Mesh::box_walls(min, max, 3.0), wall));
        scene.add(Object::new(
            Mesh::gabled_roof(min, max, rng.gen_range(1.5..3.0), 2.0, 1.0),
            roof,
        ));
        if let Some((fx, fz)) = face {
            let detail = if rng.gen_range(0..2) == 0 {
                detail_a
            } else {
                detail_b
            };
            let w = half * 1.4;
            let h0 = 0.3;
            let h1 = height * rng.gen_range(0.55..0.8);
            // Quad offset slightly off the wall, wound to face outward.
            let (px, pz) = (cx + fx * (half + 0.06), cz + fz * (half + 0.06));
            let (tx, tz) = (-fz, fx); // wall tangent
            let corners = [
                Vec3::new(px - tx * w * 0.5, h0, pz - tz * w * 0.5),
                Vec3::new(px + tx * w * 0.5, h0, pz + tz * w * 0.5),
                Vec3::new(px + tx * w * 0.5, h1, pz + tz * w * 0.5),
                Vec3::new(px - tx * w * 0.5, h1, pz - tz * w * 0.5),
            ];
            // Ensure CCW from outside: normal = tangent x up points (fx,fz).
            let mesh = Mesh::quad(corners, 2.0, 2.0);
            let p = mesh.positions();
            let n = (p[1] - p[0]).cross(p[2] - p[0]);
            let outward = n.x * fx + n.z * fz;
            let mesh = if outward > 0.0 {
                mesh
            } else {
                Mesh::quad([corners[1], corners[0], corners[3], corners[2]], 2.0, 2.0)
            };
            scene.add(Object::new(mesh, detail));
        }
    };

    for row in 0..4 {
        let x = 10.0 + row as f32 * 11.0;
        let mut z: f32 = -95.0;
        while z < 95.0 {
            if z.abs() > 9.0 {
                let face = (row < 2).then_some((-1.0, 0.0));
                add_building(&mut scene, &mut rng, x, z, face);
                let face = (row < 2).then_some((1.0, 0.0));
                add_building(&mut scene, &mut rng, -x, z, face);
            }
            z += 10.5 + rng.gen_range(0.0..2.5);
        }
    }
    // Buildings along the cross street.
    for row in 0..2 {
        let z = 10.0 + row as f32 * 11.0;
        let mut x: f32 = -95.0;
        while x < 95.0 {
            if x.abs() > 42.0 {
                let face = (row < 2).then_some((0.0, -1.0));
                add_building(&mut scene, &mut rng, x, z, face);
                let face = (row < 2).then_some((0.0, 1.0));
                add_building(&mut scene, &mut rng, x, -z, face);
            }
            x += 10.5 + rng.gen_range(0.0..2.5);
        }
    }

    // --- Trees and props -------------------------------------------------
    let mut z: f32 = -90.0;
    while z < 90.0 {
        for side in [-7.0f32, 7.0] {
            if z.abs() > 8.0 {
                let tex = if (z as i32) % 2 == 0 {
                    foliage_a
                } else {
                    foliage_b
                };
                let h = rng.gen_range(3.0..6.0);
                scene.add(Object::new_two_sided(
                    Mesh::billboard_cross(
                        Vec3::new(side, 0.0, z + rng.gen_range(-2.0..2.0)),
                        h * 0.8,
                        h,
                    ),
                    tex,
                ));
            }
        }
        z += 5.5;
    }
    // End-cap rows closing the vista at both ends of the main street.
    for endz in [-103.0f32, 103.0] {
        let mut x: f32 = -40.0;
        while x < 40.0 {
            let face = Some((0.0, if endz < 0.0 { 1.0 } else { -1.0 }));
            add_building(&mut scene, &mut rng, x, endz, face);
            x += 9.5 + rng.gen_range(0.0..2.0);
        }
    }

    // The village well on the central plaza.
    scene.add(Object::new(
        Mesh::cylinder(Vec3::new(6.5, 0.0, 6.5), 1.5, 1.2, 12, 4.0),
        wood,
    ));

    // --- Walk-through path ----------------------------------------------
    // Eye level, down the main street, a glance across the plaza, then on.
    let eye = 1.7;
    let path = CameraPath::new(vec![
        (Vec3::new(1.5, eye, 92.0), Vec3::new(0.0, eye, 70.0)),
        (Vec3::new(-1.5, eye, 60.0), Vec3::new(0.5, eye, 38.0)),
        (Vec3::new(1.0, eye, 30.0), Vec3::new(-1.0, eye + 1.0, 8.0)),
        (Vec3::new(0.0, eye, 8.0), Vec3::new(20.0, eye + 2.0, 2.0)), // look down the cross street
        (
            Vec3::new(-1.0, eye, -8.0),
            Vec3::new(-20.0, eye + 2.0, -4.0),
        ),
        (Vec3::new(1.0, eye, -30.0), Vec3::new(0.0, eye, -52.0)),
        (Vec3::new(-1.0, eye, -60.0), Vec3::new(0.5, eye, -82.0)),
        (Vec3::new(0.0, eye, -92.0), Vec3::new(0.0, eye, -114.0)),
    ]);

    (scene, path)
}

/// The paper's Village animation length in frames.
pub const PAPER_FRAMES: u32 = 411;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_deterministically() {
        let p = WorkloadParams::tiny();
        let (a, _) = build(&p);
        let (b, _) = build(&p);
        assert_eq!(a.objects().len(), b.objects().len());
        assert_eq!(a.registry().host_byte_size(), b.registry().host_byte_size());
    }

    #[test]
    fn has_shared_textures_across_buildings() {
        let (scene, _) = build(&WorkloadParams::tiny());
        // Many more objects than textures: sharing is structural.
        assert!(scene.objects().len() > 2 * scene.registry().live_count());
    }

    #[test]
    fn texture_pool_size_matches_design() {
        let (scene, _) = build(&WorkloadParams::tiny());
        // 3 terrain/sky + 12 walls + 4 roofs + 2 foliage + 1 wood + 2 details = 24.
        assert_eq!(scene.registry().live_count(), 24);
    }

    #[test]
    fn full_scale_texture_budget_in_paper_range() {
        let mut p = WorkloadParams::tiny();
        p.texture_scale = 1;
        let (scene, _) = build(&p);
        let mb = scene.registry().host_byte_size() as f64 / (1 << 20) as f64;
        assert!(
            (10.0..20.0).contains(&mb),
            "texture set {mb:.1} MB should be ~14 MB"
        );
    }

    #[test]
    fn path_stays_on_the_street() {
        let (_, path) = build(&WorkloadParams::tiny());
        for i in 0..50 {
            let cam = path.camera_at(i as f32 / 49.0);
            assert!(cam.eye.x.abs() < 4.0, "walk stays near the street axis");
            assert!((cam.eye.y - 1.7).abs() < 0.3, "eye height is human");
        }
    }
}
