//! The *City* workload: a fly-through of a procedural downtown grid.
//!
//! Stands in for the UCLA City database (paper §3.1). Calibrated properties
//! (Table 1): every building carries its **own** facade texture — textures
//! repeat across a facade via ⟨u,v⟩ wrap but are *not* shared between
//! objects ("the City does not substantially reuse textures between
//! objects") — and depth complexity ≈ 1.9 from the air.

use crate::{CameraPath, Mesh, Object, Scene, WorkloadParams};
use mltc_math::Vec3;
use mltc_texture::{synth, MipPyramid};
use rand::Rng;

/// Street-grid pitch in world units.
const PITCH: f32 = 24.0;
/// Number of blocks along each axis.
const BLOCKS: i32 = 10;

/// Knobs distinguishing today's City from the "workloads of the future"
/// variant the paper's §6 calls for investigating.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CityOptions {
    /// Blocks along each axis (buildings = blocks²).
    pub blocks: i32,
    /// Base facade texture dimension before `texture_scale`.
    pub facade_base: u32,
}

impl Default for CityOptions {
    fn default() -> Self {
        Self {
            blocks: BLOCKS,
            facade_base: 256,
        }
    }
}

impl CityOptions {
    /// The §6 "workloads of the future" variant: a larger downtown with
    /// double-resolution facades (4x the texel count per building).
    pub fn future() -> Self {
        Self {
            blocks: 14,
            facade_base: 512,
        }
    }
}

/// Builds the City scene and its scripted fly-through path.
pub fn build(params: &WorkloadParams) -> (Scene, CameraPath) {
    build_with(params, CityOptions::default())
}

/// Builds a City with explicit [`CityOptions`].
pub fn build_with(params: &WorkloadParams, opts: CityOptions) -> (Scene, CameraPath) {
    let mut scene = Scene::new();
    let mut rng = synth::seeded_rng(params.seed ^ 0xc17e);
    let ts = |base: u32| params.scaled_texture(base);

    let blocks = opts.blocks;
    let extent = blocks as f32 * PITCH * 0.5; // city spans [-extent, extent]

    // Shared infrastructure textures (ground, streets, sky) — the only
    // sharing in the City.
    let concrete = scene.registry.load(
        "concrete",
        MipPyramid::from_image(synth::noise(
            ts(512),
            21,
            10,
            [105, 105, 100],
            [140, 140, 135],
        )),
    );
    let road = scene
        .registry
        .load("road", MipPyramid::from_image(synth::road(ts(512), 22)));
    let sky = scene.registry.load(
        "sky",
        MipPyramid::from_image(synth::gradient_v(ts(512), [70, 120, 225], [190, 210, 240])),
    );

    scene.add(Object::new(
        Mesh::ground(
            -extent - 60.0,
            extent + 60.0,
            0.0,
            -extent - 60.0,
            extent + 60.0,
            30.0,
            30.0,
        ),
        concrete,
    ));
    scene.add(Object::new(Mesh::dome(Vec3::ZERO, 700.0, 24, 10), sky));

    // Streets: one object per direction (repeated road texture).
    let mut ns = Mesh::new();
    let mut ew = Mesh::new();
    for i in 0..=blocks {
        let c = -extent + i as f32 * PITCH;
        ns.append(&Mesh::ground(
            c - 3.0,
            c + 3.0,
            0.02,
            -extent,
            extent,
            1.0,
            blocks as f32 * 3.0,
        ));
        ew.append(&Mesh::ground(
            -extent,
            extent,
            0.02,
            c - 3.0,
            c + 3.0,
            blocks as f32 * 3.0,
            1.0,
        ));
    }
    scene.add(Object::new(ns, road));
    scene.add(Object::new(ew, road));

    // Buildings: one per block, each with a unique facade texture.
    for bx in 0..blocks {
        for bz in 0..blocks {
            let cx = -extent + (bx as f32 + 0.5) * PITCH;
            let cz = -extent + (bz as f32 + 0.5) * PITCH;
            let half = rng.gen_range(5.5..8.0);
            let height = rng.gen_range(8.0..32.0);
            let wall_rgb = synth::random_tone(&mut rng);
            let seed = params.seed ^ ((bx as u64) << 32 | bz as u64);
            let facade = scene.registry.load(
                format!("facade_{bx}_{bz}"),
                MipPyramid::from_image(synth::window_grid(
                    ts(opts.facade_base),
                    seed,
                    wall_rgb,
                    [255, 245, 190],
                    [25, 30, 45],
                )),
            );
            let min = Vec3::new(cx - half, 0.0, cz - half);
            let max = Vec3::new(cx + half, height, cz + half);
            // Facade repeats every ~8 world units; the roof reuses the same
            // texture (repetition within the object, no sharing across).
            let mut mesh = Mesh::box_walls(min, max, 8.0);
            mesh.append(&Mesh::box_top(min, max, 2.0, 2.0));
            scene.add(Object::new(mesh, facade));
        }
    }

    // Fly-through: enter low over one edge, thread the canyons diagonally
    // at rooftop height (the forward view cone keeps a sizeable part of the
    // city outside the frustum each frame), then climb out the far side.
    let path = CameraPath::new(vec![
        (
            Vec3::new(-extent - 40.0, 60.0, -extent * 0.55),
            Vec3::new(-extent * 0.3, 24.0, -extent * 0.45),
        ),
        (
            Vec3::new(-extent * 0.4, 38.0, -extent * 0.35),
            Vec3::new(10.0, 22.0, -20.0),
        ),
        (Vec3::new(0.0, 30.0, 0.0), Vec3::new(60.0, 20.0, 50.0)),
        (
            Vec3::new(extent * 0.45, 34.0, extent * 0.4),
            Vec3::new(extent, 20.0, extent * 0.75),
        ),
        (
            Vec3::new(extent + 30.0, 55.0, extent * 0.6),
            Vec3::new(extent + 120.0, 45.0, extent * 0.8),
        ),
    ]);

    (scene, path)
}

/// The paper's City animation length in frames.
pub const PAPER_FRAMES: u32 = 525;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_building_has_unique_texture() {
        let (scene, _) = build(&WorkloadParams::tiny());
        // 3 shared (concrete/road/sky) + one per building.
        assert_eq!(
            scene.registry().live_count(),
            3 + (BLOCKS * BLOCKS) as usize
        );
        let mut seen = std::collections::HashSet::new();
        for obj in scene.objects().iter().skip(4) {
            seen.insert(obj.texture);
        }
        assert!(seen.len() >= (BLOCKS * BLOCKS) as usize);
    }

    #[test]
    fn builds_deterministically() {
        let p = WorkloadParams::tiny();
        let (a, _) = build(&p);
        let (b, _) = build(&p);
        assert_eq!(a.registry().host_byte_size(), b.registry().host_byte_size());
        assert_eq!(a.triangle_count(), b.triangle_count());
    }

    #[test]
    fn full_scale_texture_budget_exceeds_village() {
        let mut p = WorkloadParams::tiny();
        p.texture_scale = 1;
        let (scene, _) = build(&p);
        let mb = scene.registry().host_byte_size() as f64 / (1 << 20) as f64;
        // 100 unique facades plus infrastructure: ~20 MB.
        assert!((12.0..32.0).contains(&mb), "city texture set {mb:.1} MB");
    }

    #[test]
    fn flight_path_descends_over_downtown() {
        let (_, path) = build(&WorkloadParams::tiny());
        let high = path.camera_at(0.0).eye.y;
        let mid = path.camera_at(0.5).eye.y;
        assert!(high > mid, "the fly-through descends toward downtown");
        for i in 0..20 {
            let cam = path.camera_at(i as f32 / 19.0);
            assert!(cam.eye.y > 20.0, "the camera stays above the streets");
        }
    }
}
