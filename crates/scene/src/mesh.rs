//! World-space triangle meshes and procedural builders.

use mltc_math::{Aabb, Vec2, Vec3};

/// An indexed triangle mesh in world coordinates with per-vertex normalized
/// texture coordinates (values beyond 1 repeat the texture).
///
/// Triangles are wound counter-clockwise when seen from outside (the scene
/// renderer backface-culls on that convention).
///
/// ```
/// use mltc_math::Vec3;
/// let q = mltc_scene::Mesh::quad(
///     [Vec3::ZERO, Vec3::X, Vec3::new(1.0, 1.0, 0.0), Vec3::Y], 2.0, 2.0);
/// assert_eq!(q.triangle_count(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Mesh {
    positions: Vec<Vec3>,
    uvs: Vec<Vec2>,
    tris: Vec<[u32; 3]>,
}

impl Mesh {
    /// An empty mesh.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of triangles.
    pub fn triangle_count(&self) -> usize {
        self.tris.len()
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.positions.len()
    }

    /// Vertex positions.
    pub fn positions(&self) -> &[Vec3] {
        &self.positions
    }

    /// Vertex texture coordinates.
    pub fn uvs(&self) -> &[Vec2] {
        &self.uvs
    }

    /// Triangle index triples.
    pub fn triangles(&self) -> &[[u32; 3]] {
        &self.tris
    }

    /// Adds a vertex and returns its index.
    pub fn push_vertex(&mut self, pos: Vec3, uv: Vec2) -> u32 {
        self.positions.push(pos);
        self.uvs.push(uv);
        (self.positions.len() - 1) as u32
    }

    /// Adds a triangle by vertex indices.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn push_triangle(&mut self, a: u32, b: u32, c: u32) {
        let n = self.positions.len() as u32;
        assert!(a < n && b < n && c < n, "triangle index out of range");
        self.tris.push([a, b, c]);
    }

    /// Appends another mesh.
    pub fn append(&mut self, other: &Mesh) {
        let base = self.positions.len() as u32;
        self.positions.extend_from_slice(&other.positions);
        self.uvs.extend_from_slice(&other.uvs);
        self.tris.extend(
            other
                .tris
                .iter()
                .map(|t| [t[0] + base, t[1] + base, t[2] + base]),
        );
    }

    /// World-space bounding box, or `None` for an empty mesh.
    pub fn aabb(&self) -> Option<Aabb> {
        Aabb::from_points(self.positions.iter().copied())
    }

    /// A quad from four corners in counter-clockwise order, with texture
    /// coordinates spanning `(0,0)` to `(u_rep, v_rep)`.
    pub fn quad(corners: [Vec3; 4], u_rep: f32, v_rep: f32) -> Self {
        let mut m = Mesh::new();
        let uv = [
            Vec2::new(0.0, 0.0),
            Vec2::new(u_rep, 0.0),
            Vec2::new(u_rep, v_rep),
            Vec2::new(0.0, v_rep),
        ];
        for (p, t) in corners.iter().zip(uv) {
            m.push_vertex(*p, t);
        }
        m.push_triangle(0, 1, 2);
        m.push_triangle(0, 2, 3);
        m
    }

    /// A horizontal ground plane `(x0..x1, y, z0..z1)` facing +Y, with the
    /// texture repeated `u_rep`×`v_rep` times.
    pub fn ground(x0: f32, x1: f32, y: f32, z0: f32, z1: f32, u_rep: f32, v_rep: f32) -> Self {
        // +Y facing requires CCW when seen from above.
        Self::quad(
            [
                Vec3::new(x0, y, z1),
                Vec3::new(x1, y, z1),
                Vec3::new(x1, y, z0),
                Vec3::new(x0, y, z0),
            ],
            u_rep,
            v_rep,
        )
    }

    /// The four outward-facing side walls of an axis-aligned box, with the
    /// texture repeated every `tex_world` world units in both directions.
    ///
    /// # Panics
    ///
    /// Panics if `tex_world` is not positive.
    pub fn box_walls(min: Vec3, max: Vec3, tex_world: f32) -> Self {
        assert!(tex_world > 0.0);
        let mut m = Mesh::new();
        let (w, h, d) = (max.x - min.x, max.y - min.y, max.z - min.z);
        let (ur_w, ur_d, vr) = (w / tex_world, d / tex_world, h / tex_world);
        // Front (+Z), CCW from outside.
        m.append(&Self::quad(
            [
                Vec3::new(min.x, min.y, max.z),
                Vec3::new(max.x, min.y, max.z),
                Vec3::new(max.x, max.y, max.z),
                Vec3::new(min.x, max.y, max.z),
            ],
            ur_w,
            vr,
        ));
        // Back (−Z).
        m.append(&Self::quad(
            [
                Vec3::new(max.x, min.y, min.z),
                Vec3::new(min.x, min.y, min.z),
                Vec3::new(min.x, max.y, min.z),
                Vec3::new(max.x, max.y, min.z),
            ],
            ur_w,
            vr,
        ));
        // Left (−X).
        m.append(&Self::quad(
            [
                Vec3::new(min.x, min.y, min.z),
                Vec3::new(min.x, min.y, max.z),
                Vec3::new(min.x, max.y, max.z),
                Vec3::new(min.x, max.y, min.z),
            ],
            ur_d,
            vr,
        ));
        // Right (+X).
        m.append(&Self::quad(
            [
                Vec3::new(max.x, min.y, max.z),
                Vec3::new(max.x, min.y, min.z),
                Vec3::new(max.x, max.y, min.z),
                Vec3::new(max.x, max.y, max.z),
            ],
            ur_d,
            vr,
        ));
        m
    }

    /// The top face of an axis-aligned box (a roof slab), facing +Y.
    pub fn box_top(min: Vec3, max: Vec3, u_rep: f32, v_rep: f32) -> Self {
        Self::quad(
            [
                Vec3::new(min.x, max.y, max.z),
                Vec3::new(max.x, max.y, max.z),
                Vec3::new(max.x, max.y, min.z),
                Vec3::new(min.x, max.y, min.z),
            ],
            u_rep,
            v_rep,
        )
    }

    /// A gabled roof: two sloped quads over the box footprint, ridge along
    /// X, apex `apex_h` above `max.y`.
    pub fn gabled_roof(min: Vec3, max: Vec3, apex_h: f32, u_rep: f32, v_rep: f32) -> Self {
        let zmid = (min.z + max.z) * 0.5;
        let apex0 = Vec3::new(min.x, max.y + apex_h, zmid);
        let apex1 = Vec3::new(max.x, max.y + apex_h, zmid);
        let mut m = Mesh::new();
        // South slope (faces +Z-ish).
        m.append(&Self::quad(
            [
                Vec3::new(min.x, max.y, max.z),
                Vec3::new(max.x, max.y, max.z),
                apex1,
                apex0,
            ],
            u_rep,
            v_rep,
        ));
        // North slope.
        m.append(&Self::quad(
            [
                Vec3::new(max.x, max.y, min.z),
                Vec3::new(min.x, max.y, min.z),
                apex0,
                apex1,
            ],
            u_rep,
            v_rep,
        ));
        m
    }

    /// A UV sphere. `inward: true` winds triangles to face the centre (sky
    /// dome). Texture u wraps around, v spans pole to pole `v_rep` times.
    ///
    /// # Panics
    ///
    /// Panics if `segments < 3` or `rings < 2`.
    pub fn sphere(center: Vec3, radius: f32, segments: u32, rings: u32, inward: bool) -> Self {
        assert!(segments >= 3 && rings >= 2);
        let mut m = Mesh::new();
        for r in 0..=rings {
            let phi = std::f32::consts::PI * r as f32 / rings as f32;
            for s in 0..=segments {
                let theta = 2.0 * std::f32::consts::PI * s as f32 / segments as f32;
                let p = Vec3::new(phi.sin() * theta.cos(), phi.cos(), phi.sin() * theta.sin());
                m.push_vertex(
                    center + p * radius,
                    Vec2::new(s as f32 / segments as f32 * 4.0, r as f32 / rings as f32),
                );
            }
        }
        let stride = segments + 1;
        for r in 0..rings {
            for s in 0..segments {
                let a = r * stride + s;
                let b = a + 1;
                let c = a + stride;
                let d = c + 1;
                if inward {
                    m.push_triangle(a, c, b);
                    m.push_triangle(b, c, d);
                } else {
                    m.push_triangle(a, b, c);
                    m.push_triangle(b, d, c);
                }
            }
        }
        m
    }

    /// An inward-facing sky dome: the upper hemisphere of a UV sphere,
    /// extended slightly below the horizon so the seam never shows. Unlike
    /// a full sphere, it adds no hidden lower-hemisphere overdraw when the
    /// camera looks down.
    ///
    /// # Panics
    ///
    /// Panics if `segments < 3` or `rings < 2`.
    pub fn dome(center: Vec3, radius: f32, segments: u32, rings: u32) -> Self {
        assert!(segments >= 3 && rings >= 2);
        let mut m = Mesh::new();
        let max_phi = std::f32::consts::PI * 0.58; // a touch past the horizon
        for r in 0..=rings {
            let phi = max_phi * r as f32 / rings as f32;
            for s in 0..=segments {
                let theta = 2.0 * std::f32::consts::PI * s as f32 / segments as f32;
                let p = Vec3::new(phi.sin() * theta.cos(), phi.cos(), phi.sin() * theta.sin());
                m.push_vertex(
                    center + p * radius,
                    Vec2::new(s as f32 / segments as f32 * 4.0, r as f32 / rings as f32),
                );
            }
        }
        let stride = segments + 1;
        for r in 0..rings {
            for s in 0..segments {
                let a = r * stride + s;
                let b = a + 1;
                let c = a + stride;
                let d = c + 1;
                m.push_triangle(a, c, b);
                m.push_triangle(b, c, d);
            }
        }
        m
    }

    /// Two crossed vertical quads (a tree billboard), double-sided by
    /// construction when rendered without culling.
    pub fn billboard_cross(base: Vec3, width: f32, height: f32) -> Self {
        let hw = width * 0.5;
        let mut m = Mesh::new();
        m.append(&Self::quad(
            [
                base + Vec3::new(-hw, 0.0, 0.0),
                base + Vec3::new(hw, 0.0, 0.0),
                base + Vec3::new(hw, height, 0.0),
                base + Vec3::new(-hw, height, 0.0),
            ],
            1.0,
            1.0,
        ));
        m.append(&Self::quad(
            [
                base + Vec3::new(0.0, 0.0, -hw),
                base + Vec3::new(0.0, 0.0, hw),
                base + Vec3::new(0.0, height, hw),
                base + Vec3::new(0.0, height, -hw),
            ],
            1.0,
            1.0,
        ));
        m
    }

    /// An open cylinder of `segments` outward-facing wall quads.
    ///
    /// # Panics
    ///
    /// Panics if `segments < 3`.
    pub fn cylinder(center: Vec3, radius: f32, height: f32, segments: u32, u_rep: f32) -> Self {
        assert!(segments >= 3);
        let mut m = Mesh::new();
        for s in 0..=segments {
            let theta = 2.0 * std::f32::consts::PI * s as f32 / segments as f32;
            let dir = Vec3::new(theta.cos(), 0.0, theta.sin());
            let u = u_rep * s as f32 / segments as f32;
            m.push_vertex(center + dir * radius, Vec2::new(u, 0.0));
            m.push_vertex(
                center + dir * radius + Vec3::new(0.0, height, 0.0),
                Vec2::new(u, 1.0),
            );
        }
        for s in 0..segments {
            let a = 2 * s;
            // Outward CCW: next segment is counter-clockwise seen from +Y;
            // wind so normals point away from the axis.
            m.push_triangle(a, a + 1, a + 2);
            m.push_triangle(a + 2, a + 1, a + 3);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quad_has_two_ccw_triangles() {
        let q = Mesh::quad(
            [Vec3::ZERO, Vec3::X, Vec3::new(1.0, 1.0, 0.0), Vec3::Y],
            1.0,
            1.0,
        );
        assert_eq!(q.triangle_count(), 2);
        for t in q.triangles() {
            let p = q.positions();
            let n =
                (p[t[1] as usize] - p[t[0] as usize]).cross(p[t[2] as usize] - p[t[0] as usize]);
            assert!(n.z > 0.0, "CCW in the XY plane must face +Z");
        }
    }

    #[test]
    fn ground_faces_up() {
        let g = Mesh::ground(-1.0, 1.0, 0.0, -1.0, 1.0, 2.0, 2.0);
        for t in g.triangles() {
            let p = g.positions();
            let n =
                (p[t[1] as usize] - p[t[0] as usize]).cross(p[t[2] as usize] - p[t[0] as usize]);
            assert!(n.y > 0.0);
        }
    }

    #[test]
    fn box_walls_face_outward() {
        let b = Mesh::box_walls(Vec3::ZERO, Vec3::new(2.0, 3.0, 4.0), 1.0);
        assert_eq!(b.triangle_count(), 8);
        let c = Vec3::new(1.0, 1.5, 2.0);
        for t in b.triangles() {
            let p = b.positions();
            let n =
                (p[t[1] as usize] - p[t[0] as usize]).cross(p[t[2] as usize] - p[t[0] as usize]);
            let centroid = (p[t[0] as usize] + p[t[1] as usize] + p[t[2] as usize]) / 3.0;
            assert!(
                n.dot(centroid - c) > 0.0,
                "wall normal must point away from centre"
            );
        }
    }

    #[test]
    fn box_walls_uv_repeat_scales_with_size() {
        let b = Mesh::box_walls(Vec3::ZERO, Vec3::new(8.0, 4.0, 8.0), 2.0);
        let max_u = b.uvs().iter().map(|t| t.x).fold(0.0f32, f32::max);
        let max_v = b.uvs().iter().map(|t| t.y).fold(0.0f32, f32::max);
        assert_eq!(max_u, 4.0); // 8 units / 2 per repeat
        assert_eq!(max_v, 2.0);
    }

    #[test]
    fn sphere_vertex_and_triangle_counts() {
        let s = Mesh::sphere(Vec3::ZERO, 1.0, 8, 4, false);
        assert_eq!(s.vertex_count(), 9 * 5);
        assert_eq!(s.triangle_count(), 8 * 4 * 2);
    }

    #[test]
    fn inward_sphere_faces_centre() {
        let s = Mesh::sphere(Vec3::ZERO, 2.0, 8, 4, true);
        let p = s.positions();
        let mut checked = 0;
        for t in s.triangles() {
            let n =
                (p[t[1] as usize] - p[t[0] as usize]).cross(p[t[2] as usize] - p[t[0] as usize]);
            if n.length() < 1e-6 {
                continue; // degenerate pole triangle
            }
            checked += 1;
            let centroid = (p[t[0] as usize] + p[t[1] as usize] + p[t[2] as usize]) / 3.0;
            assert!(
                n.dot(centroid) < 0.0,
                "non-degenerate dome triangle must face inward"
            );
        }
        assert!(
            checked * 10 >= s.triangle_count() * 7,
            "most triangles are non-degenerate"
        );
    }

    #[test]
    fn append_offsets_indices() {
        let mut a = Mesh::quad(
            [Vec3::ZERO, Vec3::X, Vec3::new(1.0, 1.0, 0.0), Vec3::Y],
            1.0,
            1.0,
        );
        let b = a.clone();
        a.append(&b);
        assert_eq!(a.vertex_count(), 8);
        assert_eq!(a.triangle_count(), 4);
        assert!(a.triangles()[2].iter().all(|&i| i >= 4));
    }

    #[test]
    fn aabb_bounds_everything() {
        let b = Mesh::box_walls(Vec3::new(-1.0, 0.0, -2.0), Vec3::new(3.0, 5.0, 2.0), 1.0);
        let bb = b.aabb().unwrap();
        assert_eq!(bb.min, Vec3::new(-1.0, 0.0, -2.0));
        assert_eq!(bb.max, Vec3::new(3.0, 5.0, 2.0));
        assert!(Mesh::new().aabb().is_none());
    }

    #[test]
    fn billboard_has_two_quads() {
        let b = Mesh::billboard_cross(Vec3::ZERO, 2.0, 3.0);
        assert_eq!(b.triangle_count(), 4);
        let bb = b.aabb().unwrap();
        assert_eq!(bb.max.y, 3.0);
    }

    #[test]
    fn cylinder_walls_face_outward() {
        let c = Mesh::cylinder(Vec3::ZERO, 1.0, 2.0, 12, 3.0);
        let p = c.positions();
        for t in c.triangles() {
            let n =
                (p[t[1] as usize] - p[t[0] as usize]).cross(p[t[2] as usize] - p[t[0] as usize]);
            let centroid = (p[t[0] as usize] + p[t[1] as usize] + p[t[2] as usize]) / 3.0;
            let radial = Vec3::new(centroid.x, 0.0, centroid.z);
            assert!(n.dot(radial) > 0.0, "cylinder wall must face outward");
        }
    }
}
