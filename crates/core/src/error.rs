//! Typed engine errors.
//!
//! The simulator used to `panic!`/`expect` on every misuse, which meant a
//! single bad configuration or a corrupt trace aborted whole experiment
//! suites. Every failure the engine can detect is now a variant of
//! [`EngineError`], surfaced through [`SimEngine::try_new`],
//! [`SimEngine::try_run_frame`] and [`SimEngine::try_access_texel`]; the
//! panicking entry points remain as thin wrappers for infallible call
//! sites (docs, tests, examples with known-good data).
//!
//! [`SimEngine::try_new`]: crate::SimEngine::try_new
//! [`SimEngine::try_run_frame`]: crate::SimEngine::try_run_frame
//! [`SimEngine::try_access_texel`]: crate::SimEngine::try_access_texel

use mltc_texture::TextureId;
use std::fmt;

/// Everything that can go wrong constructing or driving a [`SimEngine`].
///
/// [`SimEngine`]: crate::SimEngine
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A texel access or trace request named a texture the registry never
    /// issued (or one that has been deleted).
    UnknownTexture(TextureId),
    /// A texel access addressed coordinates outside the mip level — or a
    /// mip level outside the pyramid (`u`/`v` are the requested texel,
    /// `width`/`height` the level's actual extent, 0×0 for a missing
    /// level).
    CoordsOutOfRange {
        /// The texture accessed.
        tid: TextureId,
        /// The mip level accessed.
        m: u32,
        /// Requested texel column.
        u: u32,
        /// Requested texel row.
        v: u32,
        /// The level's width (0 if the level does not exist).
        width: u32,
        /// The level's height (0 if the level does not exist).
        height: u32,
    },
    /// An L2 was configured but the registry holds no textures, so the
    /// texture page table would be empty.
    EmptyPageTable,
    /// A cache geometry that cannot be built (zero lines, non-power-of-two
    /// set count, L2 smaller than one block, ...). The message says which.
    InvalidGeometry(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownTexture(tid) => {
                write!(f, "texture {} is unknown to the engine", tid.index())
            }
            EngineError::CoordsOutOfRange {
                tid,
                m,
                u,
                v,
                width,
                height,
            } => write!(
                f,
                "texel ({u}, {v}) out of range for level {m} of texture {} ({width}x{height})",
                tid.index()
            ),
            EngineError::EmptyPageTable => {
                f.write_str("empty texture page table: an L2 needs at least one texture")
            }
            EngineError::InvalidGeometry(why) => write!(f, "invalid cache geometry: {why}"),
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_strings_name_the_failure() {
        assert!(EngineError::UnknownTexture(TextureId::from_index(7))
            .to_string()
            .contains("unknown"));
        assert!(EngineError::EmptyPageTable
            .to_string()
            .contains("page table"));
        assert!(EngineError::InvalidGeometry("no sets".into())
            .to_string()
            .contains("no sets"));
        let e = EngineError::CoordsOutOfRange {
            tid: TextureId::from_index(1),
            m: 2,
            u: 64,
            v: 0,
            width: 16,
            height: 16,
        };
        let s = e.to_string();
        assert!(
            s.contains("(64, 0)") && s.contains("level 2") && s.contains("16x16"),
            "{s}"
        );
    }

    #[test]
    fn errors_are_comparable_and_cloneable() {
        let a = EngineError::EmptyPageTable;
        assert_eq!(a.clone(), a);
        assert_ne!(a, EngineError::UnknownTexture(TextureId::from_index(0)));
    }
}
