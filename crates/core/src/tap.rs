//! The shared per-tap bodies of the cache hierarchy.
//!
//! `SimEngine::access_texel_traced` is the canonical per-tap slow path:
//! every dynamic decision (`Option<L2Cache>`, `Option<Tlb>`, attached
//! telemetry, filter mode) is re-examined per texel. The batch replay
//! entry points of [`SimEngine`](crate::SimEngine) — and the per-client
//! engines of the multi-client [`service`](crate::service) layer — resolve
//! those decisions once and instantiate a specialized loop per
//! combination. The tap bodies below are shared **verbatim** between every
//! consumer, so counters, cache state, host-link draws and telemetry stay
//! bit-identical across the slow path, the monomorphized fast path and a
//! partitioned service client (the differential oracle, the golden trace
//! tests and the multi-client containment tests all enforce this).

use crate::engine::FrameCounters;
use crate::telemetry::EngineTelemetry;
use crate::{HostLink, L1TextureCache, L2Cache, L2Outcome, Transfer};
use mltc_cache::RoundRobinTlb;
use mltc_texture::{TextureId, TranslationMemo, TranslationTables};
use mltc_trace::FilterMode;

/// Compile-time telemetry switch: `TelOn` forwards to the attached
/// [`EngineTelemetry`], `TelOff` erases the observation closures entirely.
pub(crate) trait TelemetryMode {
    fn with(&mut self, f: impl FnOnce(&mut EngineTelemetry));
}

pub(crate) struct TelOn<'a>(pub(crate) &'a mut EngineTelemetry);

impl TelemetryMode for TelOn<'_> {
    #[inline(always)]
    fn with(&mut self, f: impl FnOnce(&mut EngineTelemetry)) {
        f(self.0);
    }
}

pub(crate) struct TelOff;

impl TelemetryMode for TelOff {
    #[inline(always)]
    fn with(&mut self, _f: impl FnOnce(&mut EngineTelemetry)) {}
}

/// Compile-time TLB switch mirroring the slow path's `Option<Tlb>` probe:
/// `TlbOff::access` is a constant `None`, so the hit bookkeeping folds away.
pub(crate) trait TlbMode {
    fn access(&mut self, key: u64) -> Option<bool>;
}

pub(crate) struct TlbOn<'a>(pub(crate) &'a mut RoundRobinTlb);

impl TlbMode for TlbOn<'_> {
    #[inline(always)]
    fn access(&mut self, key: u64) -> Option<bool> {
        Some(self.0.access(key))
    }
}

pub(crate) struct TlbOff;

impl TlbMode for TlbOff {
    #[inline(always)]
    fn access(&mut self, _key: u64) -> Option<bool> {
        None
    }
}

/// Maps the replay loops' filter const back to the runtime enum (resolved
/// at monomorphization time, so `filter_taps` sees a literal).
#[inline(always)]
pub(crate) const fn const_filter<const F: u8>() -> FilterMode {
    match F {
        0 => FilterMode::Point,
        1 => FilterMode::Bilinear,
        _ => FilterMode::Trilinear,
    }
}

/// One pull-architecture tap; mirrors the `None` L2 arm of
/// [`SimEngine::access_texel_traced`](crate::SimEngine::access_texel_traced)
/// line for line.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub(crate) fn tap_pull<Te: TelemetryMode>(
    tid: TextureId,
    m: u32,
    u: u32,
    v: u32,
    l1_bytes: u64,
    l1: &mut L1TextureCache,
    host: &mut HostLink,
    current: &mut FrameCounters,
    tel: &mut Te,
) {
    current.l1_accesses += 1;
    if l1.access(tid, m, u, v) {
        current.l1_hits += 1;
        tel.with(|t| t.l1_hits.incr());
        return;
    }
    match host.transfer(tid) {
        Transfer::Delivered { retries } => {
            current.retries += retries as u64;
            current.host_bytes += l1_bytes;
            tel.with(|t| {
                t.l1_misses.incr();
                t.host_delivered.incr();
                t.host_retries.add(retries as u64);
                t.transfer_bytes.record(l1_bytes);
            });
        }
        Transfer::Failed { retries } => {
            current.retries += retries as u64;
            current.failed_transfers += 1;
            l1.invalidate(tid, m, u, v);
            current.dropped_taps += 1;
            tel.with(|t| {
                t.l1_misses.incr();
                t.host_failed.incr();
                t.host_retries.add(retries as u64);
                t.dropped_taps.incr();
            });
        }
    }
}

/// One multi-level tap; mirrors the `Some(l2)` arm of
/// [`SimEngine::access_texel_traced`](crate::SimEngine::access_texel_traced)
/// line for line, with translation served by the shift/mask tables and the
/// one-entry memo.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub(crate) fn tap_ml<Tl: TlbMode, Te: TelemetryMode>(
    tid: TextureId,
    m: u32,
    u: u32,
    v: u32,
    l1_bytes: u64,
    dl_full_miss: u64,
    tables: &TranslationTables,
    memo: &mut TranslationMemo,
    dims: &[Option<Vec<(u32, u32)>>],
    l1: &mut L1TextureCache,
    l2: &mut L2Cache,
    host: &mut HostLink,
    current: &mut FrameCounters,
    tlb: &mut Tl,
    tel: &mut Te,
) {
    current.l1_accesses += 1;
    if l1.access(tid, m, u, v) {
        current.l1_hits += 1;
        tel.with(|t| t.l1_hits.incr());
        return;
    }
    let (pt_index, l1_sub) = tables.lookup(memo, tid.index(), m, u, v);
    let tlb_hit = tlb.access(pt_index as u64);
    if let Some(hit) = tlb_hit {
        current.tlb_accesses += 1;
        current.tlb_hits += hit as u64;
    }
    tap_ml_below_l1(
        tid,
        m,
        u,
        v,
        pt_index,
        l1_sub,
        tlb_hit,
        l1_bytes,
        dl_full_miss,
        tables,
        dims,
        l1,
        l2,
        host,
        current,
        tel,
    );
}

/// The below-L1 half of a multi-level tap (L2 probe → host transfer →
/// rollback / degradation), after translation and the TLB probe. Split out
/// so the service layer's admission-controlled taps can reuse the exact
/// miss semantics after making their own tier decision.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub(crate) fn tap_ml_below_l1<Te: TelemetryMode>(
    tid: TextureId,
    m: u32,
    u: u32,
    v: u32,
    pt_index: u32,
    l1_sub: u16,
    tlb_hit: Option<bool>,
    l1_bytes: u64,
    dl_full_miss: u64,
    tables: &TranslationTables,
    dims: &[Option<Vec<(u32, u32)>>],
    l1: &mut L1TextureCache,
    l2: &mut L2Cache,
    host: &mut HostLink,
    current: &mut FrameCounters,
    tel: &mut Te,
) {
    let outcome = l2.access(pt_index, l1_sub);
    let dl = match outcome {
        L2Outcome::FullHit => {
            current.l2_full_hits += 1;
            current.l2_local_bytes += l1_bytes;
            tel.with(|t| {
                t.on_l2_access(pt_index as u64, tlb_hit);
                t.l2_full_hits.incr();
            });
            return;
        }
        L2Outcome::PartialHit => {
            current.l2_partial_hits += 1;
            l1_bytes
        }
        L2Outcome::FullMiss => {
            current.l2_full_misses += 1;
            dl_full_miss
        }
    };
    match host.transfer(tid) {
        Transfer::Delivered { retries } => {
            current.retries += retries as u64;
            current.host_bytes += dl;
            current.l2_local_bytes += dl;
            tel.with(|t| {
                t.on_l2_access(pt_index as u64, tlb_hit);
                match outcome {
                    L2Outcome::PartialHit => t.l2_partial_hits.incr(),
                    L2Outcome::FullMiss => {
                        t.l2_full_misses.incr();
                        t.on_full_miss_sweep(l2.clock_stats());
                    }
                    L2Outcome::FullHit => unreachable!("full hits return above"),
                }
                t.host_delivered.incr();
                t.host_retries.add(retries as u64);
                t.transfer_bytes.record(dl);
            });
        }
        Transfer::Failed { retries } => {
            current.retries += retries as u64;
            current.failed_transfers += 1;
            l2.fail_download(pt_index, l1_sub);
            l1.invalidate(tid, m, u, v);
            let served = degraded_probe(tables, dims, l2, tid, m, u, v);
            if served {
                current.degraded_taps += 1;
                current.l2_local_bytes += l1_bytes;
            } else {
                current.dropped_taps += 1;
            }
            tel.with(|t| {
                t.on_l2_access(pt_index as u64, tlb_hit);
                match outcome {
                    L2Outcome::PartialHit => t.l2_partial_hits.incr(),
                    L2Outcome::FullMiss => {
                        t.l2_full_misses.incr();
                        t.on_full_miss_sweep(l2.clock_stats());
                    }
                    L2Outcome::FullHit => unreachable!("full hits return above"),
                }
                t.host_failed.incr();
                t.host_retries.add(retries as u64);
                if served {
                    t.degraded_taps.incr();
                } else {
                    t.dropped_taps.incr();
                }
            });
        }
    }
}

/// Read-only search for the nearest coarser mip level whose covering texel
/// is resident in L2 (graceful degradation after a failed download). Shared
/// by the slow and fast paths; geometry comes from the precomputed layout
/// tables instead of a full `translate` per candidate level.
#[inline]
pub(crate) fn degraded_probe(
    tables: &TranslationTables,
    dims: &[Option<Vec<(u32, u32)>>],
    l2: &L2Cache,
    tid: TextureId,
    m: u32,
    u: u32,
    v: u32,
) -> bool {
    let Some(dims) = dims.get(tid.index() as usize).and_then(|d| d.as_ref()) else {
        return false;
    };
    for cm in (m + 1)..dims.len() as u32 {
        let (cw, ch) = dims[cm as usize];
        let cu = (u >> (cm - m)).min(cw.saturating_sub(1));
        let cv = (v >> (cm - m)).min(ch.saturating_sub(1));
        if let Some(e) = tables.entry(tid.index(), cm) {
            let (cpt, csub) = tables.pt_and_sub(e, cu, cv);
            if l2.is_resident(cpt, csub) {
                return true;
            }
        }
    }
    false
}
