//! The push-architecture baseline (paper §1, §4.2).

use mltc_texture::{TextureId, TextureRegistry};

/// Model of the traditional **push** architecture: whole textures live in
/// dedicated local accelerator memory at their original depth, and the
/// application downloads/replaces them at frame boundaries.
///
/// Following §4.2, the memory requirement assumes "textures are replaced in
/// local memory only at frame boundaries, but that the application has a
/// perfect replacement algorithm (i.e. that it can predict exactly the
/// textures required in the upcoming frame)" — so the per-frame minimum is
/// the total size of the textures touched during that frame. Downloads
/// charge the textures that were *not* resident the previous frame (the
/// most charitable possible schedule; the paper declines to report push
/// bandwidth because it depends on the application's replacement and
/// packing algorithms, so treat this as a lower bound).
///
/// ```
/// use mltc_core::PushArchitecture;
/// use mltc_texture::{synth, MipPyramid, TextureRegistry};
/// let mut reg = TextureRegistry::new();
/// let a = reg.load("a", MipPyramid::from_image(synth::checkerboard(64, 4, [0;3], [255;3])));
/// let mut push = PushArchitecture::new(&reg);
/// let f = push.frame(&[a]);
/// assert_eq!(f.memory_bytes, f.download_bytes); // everything is new
/// let f = push.frame(&[a]);
/// assert_eq!(f.download_bytes, 0); // perfect re-use
/// ```
#[derive(Debug, Clone)]
pub struct PushArchitecture {
    /// Host byte size per tid (original depth, full pyramid).
    sizes: Vec<u64>,
    resident: Vec<bool>,
}

/// Per-frame push-architecture requirements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PushFrame {
    /// Minimum local texture memory this frame (perfect replacement).
    pub memory_bytes: u64,
    /// Bytes downloaded at the frame boundary (textures newly resident).
    pub download_bytes: u64,
}

impl PushArchitecture {
    /// Builds the model over a registry's textures.
    pub fn new(registry: &TextureRegistry) -> Self {
        let mut sizes = vec![0u64; registry.issued_count()];
        for (tid, pyr) in registry.iter() {
            sizes[tid.index() as usize] = pyr.byte_size() as u64;
        }
        Self {
            resident: vec![false; sizes.len()],
            sizes,
        }
    }

    /// Advances one frame given the set of textures it touches.
    ///
    /// # Panics
    ///
    /// Panics if a tid is out of range for the registry this was built on.
    pub fn frame(&mut self, touched: &[TextureId]) -> PushFrame {
        let mut memory = 0u64;
        let mut download = 0u64;
        let mut now = vec![false; self.resident.len()];
        for tid in touched {
            let i = tid.index() as usize;
            if now[i] {
                continue; // duplicate tid in the touched list
            }
            now[i] = true;
            memory += self.sizes[i];
            if !self.resident[i] {
                download += self.sizes[i];
            }
        }
        self.resident = now;
        PushFrame {
            memory_bytes: memory,
            download_bytes: download,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mltc_texture::{synth, MipPyramid};

    fn setup() -> (TextureRegistry, Vec<TextureId>) {
        let mut reg = TextureRegistry::new();
        let tids = (0..3)
            .map(|i| {
                reg.load(
                    format!("t{i}"),
                    MipPyramid::from_image(synth::checkerboard(64, 4, [0; 3], [255; 3])),
                )
            })
            .collect();
        (reg, tids)
    }

    #[test]
    fn first_frame_downloads_everything() {
        let (reg, tids) = setup();
        let size = reg.pyramid(tids[0]).unwrap().byte_size() as u64;
        let mut push = PushArchitecture::new(&reg);
        let f = push.frame(&[tids[0], tids[1]]);
        assert_eq!(f.memory_bytes, 2 * size);
        assert_eq!(f.download_bytes, 2 * size);
    }

    #[test]
    fn steady_state_needs_no_downloads() {
        let (reg, tids) = setup();
        let mut push = PushArchitecture::new(&reg);
        push.frame(&[tids[0], tids[1]]);
        let f = push.frame(&[tids[0], tids[1]]);
        assert_eq!(f.download_bytes, 0);
        assert!(f.memory_bytes > 0);
    }

    #[test]
    fn returning_texture_is_downloaded_again() {
        let (reg, tids) = setup();
        let size = reg.pyramid(tids[0]).unwrap().byte_size() as u64;
        let mut push = PushArchitecture::new(&reg);
        push.frame(&[tids[0]]);
        push.frame(&[tids[1]]); // t0 replaced
        let f = push.frame(&[tids[0]]);
        assert_eq!(f.download_bytes, size);
    }

    #[test]
    fn duplicate_tids_counted_once() {
        let (reg, tids) = setup();
        let size = reg.pyramid(tids[0]).unwrap().byte_size() as u64;
        let mut push = PushArchitecture::new(&reg);
        let f = push.frame(&[tids[0], tids[0], tids[0]]);
        assert_eq!(f.memory_bytes, size);
    }

    #[test]
    fn empty_frame_frees_everything() {
        let (reg, tids) = setup();
        let mut push = PushArchitecture::new(&reg);
        push.frame(&[tids[0]]);
        let f = push.frame(&[]);
        assert_eq!(f.memory_bytes, 0);
        let f = push.frame(&[tids[0]]);
        assert!(f.download_bytes > 0);
    }
}
