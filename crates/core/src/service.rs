//! Fault-isolated multi-client texture service substrate.
//!
//! The paper models a single renderer in front of the hierarchy; the
//! ROADMAP's north star is a texture *service* multiplexing many camera
//! streams through one shared L2. This module is the shardable core of
//! that service: per-client L1s (and TLBs) in front of a shared,
//! partition-configurable L2, with per-client host-link fault scoping and
//! admission control. Everything here is `Send`, so a service layer can
//! hand each [`ClientEngine`] to its own worker thread.
//!
//! # Containment contract
//!
//! * **Fault scoping** — each client's [`HostLink`] runs
//!   [`FaultPlan::for_client`], so its fault schedule depends only on
//!   `(base plan, client id)` and the client's own transfer ordinals,
//!   never on how clients interleave.
//! * **Partitioned isolation** — under
//!   [`L2PartitionMode::Partitioned`] each client owns a private L2
//!   partition; a client's counters are then bit-identical to a solo
//!   [`SimEngine`](crate::SimEngine) run of
//!   [`TextureService::solo_config`] (the tap bodies are shared verbatim
//!   with the engine), no matter what other clients do — including
//!   panicking or running a 100 %-failure fault plan.
//! * **Graceful degradation tiers** — [`AdmissionControl`] bounds each
//!   client's per-frame host transfers: over the soft budget the client's
//!   misses are served read-degraded from resident L2 data instead of
//!   touching the host link (tier 1, *degrade taps*); over the hard
//!   budget the rest of the frame is shed (tier 2, *shed frames*); too
//!   many consecutive shed frames quarantine the client (tier 3), turning
//!   every further [`ClientEngine::run_frame`] into
//!   [`ServiceError::Quarantined`].
//!
//! [`L2PartitionMode::Unified`] shares one L2 (and one page table) among
//! all clients behind a single arbitration point, measured by
//! [`SharedL2::contention`]; results then genuinely depend on client
//! interleaving, which is why the conformance gates run partitioned.

use crate::engine::FrameCounters;
use crate::tap::{
    degraded_probe, tap_ml, tap_pull, TelOff, TelOn, TelemetryMode, TlbMode, TlbOff, TlbOn,
};
use crate::telemetry::EngineTelemetry;
use crate::{
    EngineConfig, EngineError, FaultPlan, HostLink, L1Config, L1TextureCache, L2Cache, L2Config,
    L2Outcome,
};
use mltc_cache::RoundRobinTlb;
use mltc_telemetry::Recorder;
use mltc_texture::{
    PageTableLayout, TextureRegistry, TilingConfig, TranslationMemo, TranslationTables,
};
use mltc_trace::{filter_taps, FilterMode, FrameTrace};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, TryLockError};
use std::time::Instant;

/// Mip-chain dimensions per texture id (`None` where no texture is
/// registered), shared read-only by every client of a service.
type SharedMipDims = Arc<Vec<Option<Vec<(u32, u32)>>>>;

/// How the shared L2 capacity is divided among clients.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum L2PartitionMode {
    /// Each client owns a private `total/N` partition (its own page table
    /// and replacement state): zero cross-client interference, and the
    /// basis of the bit-identical containment guarantee.
    #[default]
    Partitioned,
    /// All clients share one full-size L2 and page table behind a single
    /// arbitration point: maximal capacity sharing, measurable contention,
    /// results dependent on client interleaving.
    Unified,
}

/// Per-client admission control: deterministic per-frame host-transfer
/// budgets driving the degradation tiers. All budgets count *attempted*
/// transfers (delivered, failed **or denied**), so tier decisions depend
/// only on the client's own stream. `0` disables a budget.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionControl {
    /// Tier-1 budget: once a frame has attempted this many transfers,
    /// further misses are denied host access and served degraded (coarser
    /// resident mip) or dropped — exactly the failed-download fallback,
    /// minus the link traffic.
    pub soft_transfers_per_frame: u64,
    /// Tier-2 budget: once reached, the remainder of the frame is shed
    /// (taps counted, caches untouched).
    pub hard_transfers_per_frame: u64,
    /// Tier-3 trigger: this many *consecutive* shed frames quarantine the
    /// client.
    pub quarantine_after_shed_frames: u32,
}

impl AdmissionControl {
    /// No budgets: every transfer is admitted (the default).
    pub const fn unlimited() -> Self {
        Self {
            soft_transfers_per_frame: 0,
            hard_transfers_per_frame: 0,
            quarantine_after_shed_frames: 0,
        }
    }
}

/// Configuration of a [`TextureService`]. `l2` is the **total** budget
/// shared by all clients; `fault` is the base plan scoped per client via
/// [`FaultPlan::for_client`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Per-client on-chip L1.
    pub l1: L1Config,
    /// Total shared L2 budget; `None` = per-client pull architecture.
    pub l2: Option<L2Config>,
    /// How the L2 budget is divided.
    pub partition: L2PartitionMode,
    /// Per-client TLB entries (`0` disables).
    pub tlb_entries: usize,
    /// L2 block / L1 sub-block tiling (shared page-table geometry).
    pub tiling: TilingConfig,
    /// Base host-link fault plan.
    pub fault: FaultPlan,
    /// Per-client admission control.
    pub admission: AdmissionControl,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            l1: L1Config::default(),
            l2: None,
            partition: L2PartitionMode::Partitioned,
            tlb_entries: 0,
            tiling: TilingConfig::PAPER_DEFAULT,
            fault: FaultPlan::none(),
            admission: AdmissionControl::unlimited(),
        }
    }
}

/// Why a client was quarantined.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuarantineReason {
    /// The client's worker panicked (isolated by the service layer's
    /// per-client `catch_unwind`); the payload message is preserved.
    Panicked(String),
    /// The client exhausted its shed-frame budget
    /// ([`AdmissionControl::quarantine_after_shed_frames`]).
    ShedBudget {
        /// Consecutive shed frames at the moment of quarantine.
        consecutive_shed_frames: u32,
    },
}

impl std::fmt::Display for QuarantineReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Panicked(msg) => write!(f, "worker panicked: {msg}"),
            Self::ShedBudget {
                consecutive_shed_frames,
            } => write!(f, "shed {consecutive_shed_frames} consecutive frames"),
        }
    }
}

/// A client-scoped failure: either a plain engine error or the client
/// crossing into quarantine. Never fatal to the service — survivors keep
/// running.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The underlying engine rejected the stream (e.g. unknown texture).
    Engine(EngineError),
    /// The client is quarantined; no further frames will run.
    Quarantined {
        /// Which client.
        client: u32,
        /// Why.
        reason: QuarantineReason,
    },
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Engine(e) => write!(f, "{e}"),
            Self::Quarantined { client, reason } => {
                write!(f, "client {client} quarantined: {reason}")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<EngineError> for ServiceError {
    fn from(e: EngineError) -> Self {
        Self::Engine(e)
    }
}

/// The degradation tier a client has reached (monotonic per run).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum DegradeTier {
    /// All transfers admitted.
    #[default]
    Normal = 0,
    /// Tier 1: soft budget hit, misses served degraded without the host.
    DegradedTaps = 1,
    /// Tier 2: hard budget hit, frames partially shed.
    ShedFrames = 2,
    /// Tier 3: client quarantined.
    Quarantined = 3,
}

/// Service-level per-client statistics, on top of [`FrameCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientServiceStats {
    /// Host transfers denied by the soft budget (served degraded/dropped).
    pub denied_transfers: u64,
    /// Taps shed by the hard budget (caches untouched).
    pub shed_taps: u64,
    /// Frames that shed at least one tap.
    pub shed_frames: u64,
    /// Frames run to completion (shed or not).
    pub frames_run: u64,
    /// Highest degradation tier reached.
    pub peak_tier: DegradeTier,
}

fn bump_tier(svc: &mut ClientServiceStats, tier: DegradeTier) {
    if tier > svc.peak_tier {
        svc.peak_tier = tier;
    }
}

/// Cross-client contention on the shared L2 arbitration point.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SharedL2Contention {
    /// Lock acquisitions (one per frame per client).
    pub acquisitions: u64,
    /// Acquisitions that found the lock held.
    pub contended: u64,
    /// Nanoseconds spent waiting on held locks (wall clock; observe-only,
    /// never fed back into simulation state).
    pub contended_nanos: u64,
}

/// The shared L2 level: one [`L2Cache`] per partition (or a single unified
/// one), each behind its own mutex. Lock poisoning is deliberately
/// recovered — a panicked client must never wedge the survivors — and in
/// partitioned mode a poisoned partition belongs only to the client that
/// poisoned it.
#[derive(Debug)]
pub struct SharedL2 {
    partitions: Vec<Mutex<L2Cache>>,
    unified: bool,
    acquisitions: AtomicU64,
    contended: AtomicU64,
    contended_nanos: AtomicU64,
}

impl SharedL2 {
    fn new(partitions: Vec<Mutex<L2Cache>>, unified: bool) -> Self {
        Self {
            partitions,
            unified,
            acquisitions: AtomicU64::new(0),
            contended: AtomicU64::new(0),
            contended_nanos: AtomicU64::new(0),
        }
    }

    /// Number of partitions (`0` = no L2 at all, `1` = unified).
    pub fn partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Whether all clients share one cache.
    pub fn is_unified(&self) -> bool {
        self.unified
    }

    /// Locks the partition serving `client` (`None` without an L2),
    /// recovering from poisoning and accounting contention.
    pub fn lock_for(&self, client: u32) -> Option<MutexGuard<'_, L2Cache>> {
        if self.partitions.is_empty() {
            return None;
        }
        let idx = if self.unified {
            0
        } else {
            client as usize % self.partitions.len()
        };
        let m = &self.partitions[idx];
        self.acquisitions.fetch_add(1, Ordering::Relaxed);
        match m.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => {
                self.contended.fetch_add(1, Ordering::Relaxed);
                let start = Instant::now();
                let g = m.lock().unwrap_or_else(PoisonError::into_inner);
                self.contended_nanos
                    .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
                Some(g)
            }
        }
    }

    /// Contention counters so far.
    pub fn contention(&self) -> SharedL2Contention {
        SharedL2Contention {
            acquisitions: self.acquisitions.load(Ordering::Relaxed),
            contended: self.contended.load(Ordering::Relaxed),
            contended_nanos: self.contended_nanos.load(Ordering::Relaxed),
        }
    }
}

/// Factory for a fixed population of [`ClientEngine`]s over one texture
/// registry: owns the shared L2 and the (read-only, shared) page-table
/// layout. `Sync`, so worker threads borrow it directly.
#[derive(Debug)]
pub struct TextureService {
    cfg: ServiceConfig,
    clients: u32,
    layout: Arc<PageTableLayout>,
    dims: SharedMipDims,
    l2: SharedL2,
}

impl TextureService {
    /// Builds a service for `clients` clients over `registry`.
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidGeometry`] when `clients == 0`, when the
    /// per-client cache geometry is invalid, or when a partitioned share
    /// (`total/N`) holds no L2 block; [`EngineError::EmptyPageTable`] when
    /// an L2 is configured over an empty registry.
    pub fn try_new(
        cfg: ServiceConfig,
        registry: &TextureRegistry,
        clients: u32,
    ) -> Result<Self, EngineError> {
        if clients == 0 {
            return Err(EngineError::InvalidGeometry(
                "service needs at least one client".into(),
            ));
        }
        let share = Self::client_l2(&cfg, clients);
        EngineConfig {
            l1: cfg.l1,
            l2: share,
            tlb_entries: cfg.tlb_entries,
            tiling: cfg.tiling,
            fault: cfg.fault,
        }
        .validate_geometry()?;
        let layout = PageTableLayout::new(registry, cfg.tiling);
        if cfg.l2.is_some() && layout.entry_count() == 0 {
            return Err(EngineError::EmptyPageTable);
        }
        let mut dims = vec![None; registry.issued_count()];
        for (tid, pyr) in registry.iter() {
            dims[tid.index() as usize] =
                Some(pyr.iter().map(|l| (l.width(), l.height())).collect());
        }
        let entries = layout.entry_count();
        let (partitions, unified) = match (cfg.l2, cfg.partition) {
            (None, _) => (Vec::new(), false),
            (Some(_), L2PartitionMode::Partitioned) => {
                let share = share.expect("partition share exists when l2 does");
                let parts = (0..clients)
                    .map(|_| Mutex::new(L2Cache::new(share, cfg.tiling, entries)))
                    .collect();
                (parts, false)
            }
            (Some(total), L2PartitionMode::Unified) => (
                vec![Mutex::new(L2Cache::new(total, cfg.tiling, entries))],
                true,
            ),
        };
        Ok(Self {
            cfg,
            clients,
            layout: Arc::new(layout),
            dims: Arc::new(dims),
            l2: SharedL2::new(partitions, unified),
        })
    }

    /// The per-client L2 share: `total/N` when partitioned, the full cache
    /// when unified (a unified client can in principle use all of it).
    fn client_l2(cfg: &ServiceConfig, clients: u32) -> Option<L2Config> {
        cfg.l2.map(|total| match cfg.partition {
            L2PartitionMode::Partitioned => L2Config {
                size_bytes: total.size_bytes / clients as usize,
                ..total
            },
            L2PartitionMode::Unified => total,
        })
    }

    /// The configuration.
    pub fn config(&self) -> ServiceConfig {
        self.cfg
    }

    /// Number of clients the service was built for.
    pub fn clients(&self) -> u32 {
        self.clients
    }

    /// The shared L2 level (pass to [`ClientEngine::run_frame`]).
    pub fn shared_l2(&self) -> &SharedL2 {
        &self.l2
    }

    /// The solo-baseline engine configuration for `client`: the exact
    /// [`EngineConfig`] under which a plain [`SimEngine`](crate::SimEngine)
    /// reproduces this client's partitioned counters bit for bit (its L2
    /// share, its scoped fault plan). This is the containment oracle.
    pub fn solo_config(&self, client: u32) -> EngineConfig {
        EngineConfig {
            l1: self.cfg.l1,
            l2: Self::client_l2(&self.cfg, self.clients),
            tlb_entries: self.cfg.tlb_entries,
            tiling: self.cfg.tiling,
            fault: self.cfg.fault.for_client(client),
        }
    }

    /// Builds the engine for `client`, with its scoped fault plan.
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidGeometry`] for a client id outside the
    /// service's population.
    pub fn client(&self, client: u32) -> Result<ClientEngine, EngineError> {
        self.client_with_fault(client, self.cfg.fault.for_client(client))
    }

    /// [`client`](Self::client) with the fault plan overridden (chaos
    /// testing: e.g. a 100 %-failure plan for one client). The override is
    /// used as-is — not re-scoped — so tests can inject exact plans.
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidGeometry`] for a client id outside the
    /// service's population.
    pub fn client_with_fault(
        &self,
        client: u32,
        fault: FaultPlan,
    ) -> Result<ClientEngine, EngineError> {
        if client >= self.clients {
            return Err(EngineError::InvalidGeometry(format!(
                "client {client} outside service population {}",
                self.clients
            )));
        }
        Ok(ClientEngine {
            id: client,
            admission: self.cfg.admission,
            l1_bytes: self.cfg.l1.line_bytes() as u64,
            dl_full_miss: Self::client_l2(&self.cfg, self.clients)
                .map(|l2| {
                    if l2.sector_mapping {
                        self.cfg.l1.line_bytes() as u64
                    } else {
                        self.cfg.tiling.l2().cache_bytes() as u64
                    }
                })
                .unwrap_or(0),
            layout: Arc::clone(&self.layout),
            dims: Arc::clone(&self.dims),
            l1: L1TextureCache::new(self.cfg.l1),
            tlb: (self.cfg.tlb_entries > 0).then(|| RoundRobinTlb::new(self.cfg.tlb_entries)),
            host: HostLink::new(fault),
            current: FrameCounters::default(),
            frames: Vec::new(),
            svc: ClientServiceStats::default(),
            consecutive_shed: 0,
            quarantine: None,
            tel: None,
        })
    }
}

/// One client's private half of the hierarchy: its L1, TLB, scoped host
/// link and counters. `Send` — hand it to a worker thread and drive it
/// with [`run_frame`](Self::run_frame) against the service's [`SharedL2`].
#[derive(Debug)]
pub struct ClientEngine {
    id: u32,
    admission: AdmissionControl,
    l1_bytes: u64,
    dl_full_miss: u64,
    layout: Arc<PageTableLayout>,
    dims: SharedMipDims,
    l1: L1TextureCache,
    tlb: Option<RoundRobinTlb>,
    host: HostLink,
    current: FrameCounters,
    frames: Vec<FrameCounters>,
    svc: ClientServiceStats,
    consecutive_shed: u32,
    quarantine: Option<QuarantineReason>,
    tel: Option<Box<EngineTelemetry>>,
}

impl ClientEngine {
    /// The client id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Attaches per-client telemetry (see
    /// [`SimEngine::attach_telemetry`](crate::SimEngine::attach_telemetry);
    /// pass a [`Recorder::scoped`] recorder to key everything per client).
    pub fn attach_telemetry(&mut self, recorder: &Recorder, label: &str, group: &str) {
        self.tel = recorder
            .is_enabled()
            .then(|| Box::new(EngineTelemetry::new(recorder, label, group)));
    }

    /// Per-frame counters for all completed frames.
    pub fn frames(&self) -> &[FrameCounters] {
        &self.frames
    }

    /// Sum of all completed frames.
    pub fn totals(&self) -> FrameCounters {
        let mut t = FrameCounters::default();
        for f in &self.frames {
            t.merge(f);
        }
        t
    }

    /// Service-level statistics (tiers, shed/denied work).
    pub fn service_stats(&self) -> ClientServiceStats {
        self.svc
    }

    /// The host link (for fault statistics).
    pub fn host(&self) -> &HostLink {
        &self.host
    }

    /// Why this client is quarantined, if it is.
    pub fn quarantined(&self) -> Option<&QuarantineReason> {
        self.quarantine.as_ref()
    }

    /// Quarantines the client externally (the service layer calls this
    /// after catching a worker panic, preserving the payload).
    pub fn quarantine(&mut self, reason: QuarantineReason) {
        bump_tier(&mut self.svc, DegradeTier::Quarantined);
        self.quarantine = Some(reason);
    }

    /// Replays one frame through this client's slice of the hierarchy,
    /// holding the client's L2 partition lock for the duration of the
    /// frame, then closes the frame.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Quarantined`] when the client is (or just became)
    /// quarantined; [`ServiceError::Engine`] for unknown textures — in
    /// that case the frame is left open, exactly like
    /// [`SimEngine::try_run_frame`](crate::SimEngine::try_run_frame).
    pub fn run_frame(
        &mut self,
        shared: &SharedL2,
        trace: &FrameTrace,
        filter: FilterMode,
    ) -> Result<(), ServiceError> {
        if let Some(reason) = self.quarantine.clone() {
            return Err(ServiceError::Quarantined {
                client: self.id,
                reason,
            });
        }
        let mut shed_frame = false;
        let mut guard = shared.lock_for(self.id);
        match guard.as_deref_mut() {
            None => self.frame_pull(trace, filter, &mut shed_frame)?,
            Some(l2) => self.frame_ml(l2, trace, filter, &mut shed_frame)?,
        }
        let clock = guard.as_deref().map(|l2| l2.clock_stats());
        if let Some(tel) = &mut self.tel {
            tel.on_frame_end(self.frames.len() as u64, &self.current, clock);
        }
        drop(guard);
        self.frames.push(self.current);
        self.current = FrameCounters::default();
        self.svc.frames_run += 1;
        if shed_frame {
            self.svc.shed_frames += 1;
            self.consecutive_shed += 1;
            bump_tier(&mut self.svc, DegradeTier::ShedFrames);
        } else {
            self.consecutive_shed = 0;
        }
        let quota = self.admission.quarantine_after_shed_frames;
        if quota > 0 && self.consecutive_shed >= quota {
            let reason = QuarantineReason::ShedBudget {
                consecutive_shed_frames: self.consecutive_shed,
            };
            self.quarantine(reason.clone());
            return Err(ServiceError::Quarantined {
                client: self.id,
                reason,
            });
        }
        Ok(())
    }

    fn frame_ml(
        &mut self,
        l2: &mut L2Cache,
        trace: &FrameTrace,
        filter: FilterMode,
        shed_frame: &mut bool,
    ) -> Result<(), EngineError> {
        let Self {
            admission,
            l1_bytes,
            dl_full_miss,
            layout,
            dims,
            l1,
            tlb,
            host,
            current,
            svc,
            tel,
            ..
        } = self;
        let tables = layout.tables();
        let dims: &[Option<Vec<(u32, u32)>>] = dims;
        match (tlb.as_mut(), tel.as_deref_mut()) {
            (None, None) => ml_loop(
                trace,
                filter,
                admission,
                tables,
                dims,
                *l1_bytes,
                *dl_full_miss,
                l1,
                l2,
                host,
                current,
                svc,
                shed_frame,
                TlbOff,
                TelOff,
            ),
            (None, Some(t)) => ml_loop(
                trace,
                filter,
                admission,
                tables,
                dims,
                *l1_bytes,
                *dl_full_miss,
                l1,
                l2,
                host,
                current,
                svc,
                shed_frame,
                TlbOff,
                TelOn(t),
            ),
            (Some(tlb), None) => ml_loop(
                trace,
                filter,
                admission,
                tables,
                dims,
                *l1_bytes,
                *dl_full_miss,
                l1,
                l2,
                host,
                current,
                svc,
                shed_frame,
                TlbOn(tlb),
                TelOff,
            ),
            (Some(tlb), Some(t)) => ml_loop(
                trace,
                filter,
                admission,
                tables,
                dims,
                *l1_bytes,
                *dl_full_miss,
                l1,
                l2,
                host,
                current,
                svc,
                shed_frame,
                TlbOn(tlb),
                TelOn(t),
            ),
        }
    }

    fn frame_pull(
        &mut self,
        trace: &FrameTrace,
        filter: FilterMode,
        shed_frame: &mut bool,
    ) -> Result<(), EngineError> {
        let Self {
            admission,
            l1_bytes,
            dims,
            l1,
            host,
            current,
            svc,
            tel,
            ..
        } = self;
        let dims: &[Option<Vec<(u32, u32)>>] = dims;
        match tel.as_deref_mut() {
            None => pull_loop(
                trace, filter, admission, dims, *l1_bytes, l1, host, current, svc, shed_frame,
                TelOff,
            ),
            Some(t) => pull_loop(
                trace,
                filter,
                admission,
                dims,
                *l1_bytes,
                l1,
                host,
                current,
                svc,
                shed_frame,
                TelOn(t),
            ),
        }
    }
}

/// Multi-level frame loop with admission tiers. Under budget, every tap is
/// the engine's own [`tap_ml`] — the bit-identity anchor. Over the soft
/// budget, a miss is denied host access: the speculative install is rolled
/// back exactly like a failed download and the tap is served degraded or
/// dropped. Over the hard budget, taps are shed outright.
#[allow(clippy::too_many_arguments)]
fn ml_loop<Tl: TlbMode, Te: TelemetryMode>(
    trace: &FrameTrace,
    filter: FilterMode,
    admission: &AdmissionControl,
    tables: &TranslationTables,
    dims: &[Option<Vec<(u32, u32)>>],
    l1_bytes: u64,
    dl_full_miss: u64,
    l1: &mut L1TextureCache,
    l2: &mut L2Cache,
    host: &mut HostLink,
    current: &mut FrameCounters,
    svc: &mut ClientServiceStats,
    shed_frame: &mut bool,
    mut tlb: Tl,
    mut tel: Te,
) -> Result<(), EngineError> {
    let mut memo = TranslationMemo::default();
    for req in &trace.requests {
        let d = dims
            .get(req.tid.index() as usize)
            .and_then(|d| d.as_ref())
            .ok_or(EngineError::UnknownTexture(req.tid))?;
        let levels = d.len() as u32;
        let taps = filter_taps(req, filter, levels, |m| d[m as usize]);
        for tap in &taps {
            let transfers = current.l2_partial_hits + current.l2_full_misses;
            if admission.hard_transfers_per_frame > 0
                && transfers >= admission.hard_transfers_per_frame
            {
                svc.shed_taps += 1;
                *shed_frame = true;
                continue;
            }
            if admission.soft_transfers_per_frame > 0
                && transfers >= admission.soft_transfers_per_frame
            {
                bump_tier(svc, DegradeTier::DegradedTaps);
                current.l1_accesses += 1;
                if l1.access(req.tid, tap.m, tap.u, tap.v) {
                    current.l1_hits += 1;
                    tel.with(|t| t.l1_hits.incr());
                    continue;
                }
                let (pt_index, l1_sub) =
                    tables.lookup(&mut memo, req.tid.index(), tap.m, tap.u, tap.v);
                let tlb_hit = tlb.access(pt_index as u64);
                if let Some(hit) = tlb_hit {
                    current.tlb_accesses += 1;
                    current.tlb_hits += hit as u64;
                }
                let outcome = l2.access(pt_index, l1_sub);
                if outcome == L2Outcome::FullHit {
                    current.l2_full_hits += 1;
                    current.l2_local_bytes += l1_bytes;
                    tel.with(|t| {
                        t.on_l2_access(pt_index as u64, tlb_hit);
                        t.l2_full_hits.incr();
                    });
                    continue;
                }
                // The transfer the miss needs is denied: roll back the
                // speculative install exactly like a failed download and
                // fall back to resident coarser data.
                match outcome {
                    L2Outcome::PartialHit => current.l2_partial_hits += 1,
                    L2Outcome::FullMiss => current.l2_full_misses += 1,
                    L2Outcome::FullHit => unreachable!("full hits continue above"),
                }
                svc.denied_transfers += 1;
                l2.fail_download(pt_index, l1_sub);
                l1.invalidate(req.tid, tap.m, tap.u, tap.v);
                let served = degraded_probe(tables, dims, l2, req.tid, tap.m, tap.u, tap.v);
                if served {
                    current.degraded_taps += 1;
                    current.l2_local_bytes += l1_bytes;
                } else {
                    current.dropped_taps += 1;
                }
                tel.with(|t| {
                    t.on_l2_access(pt_index as u64, tlb_hit);
                    match outcome {
                        L2Outcome::PartialHit => t.l2_partial_hits.incr(),
                        L2Outcome::FullMiss => {
                            t.l2_full_misses.incr();
                            t.on_full_miss_sweep(l2.clock_stats());
                        }
                        L2Outcome::FullHit => unreachable!("full hits continue above"),
                    }
                    if served {
                        t.degraded_taps.incr();
                    } else {
                        t.dropped_taps.incr();
                    }
                });
                continue;
            }
            tap_ml(
                req.tid,
                tap.m,
                tap.u,
                tap.v,
                l1_bytes,
                dl_full_miss,
                tables,
                &mut memo,
                dims,
                l1,
                l2,
                host,
                current,
                &mut tlb,
                &mut tel,
            );
        }
    }
    Ok(())
}

/// Pull-architecture frame loop with admission tiers: without an L2 there
/// is nothing to degrade to, so a denied transfer drops the tap.
#[allow(clippy::too_many_arguments)]
fn pull_loop<Te: TelemetryMode>(
    trace: &FrameTrace,
    filter: FilterMode,
    admission: &AdmissionControl,
    dims: &[Option<Vec<(u32, u32)>>],
    l1_bytes: u64,
    l1: &mut L1TextureCache,
    host: &mut HostLink,
    current: &mut FrameCounters,
    svc: &mut ClientServiceStats,
    shed_frame: &mut bool,
    mut tel: Te,
) -> Result<(), EngineError> {
    for req in &trace.requests {
        let d = dims
            .get(req.tid.index() as usize)
            .and_then(|d| d.as_ref())
            .ok_or(EngineError::UnknownTexture(req.tid))?;
        let levels = d.len() as u32;
        let taps = filter_taps(req, filter, levels, |m| d[m as usize]);
        for tap in &taps {
            let transfers = current.l1_accesses - current.l1_hits;
            if admission.hard_transfers_per_frame > 0
                && transfers >= admission.hard_transfers_per_frame
            {
                svc.shed_taps += 1;
                *shed_frame = true;
                continue;
            }
            if admission.soft_transfers_per_frame > 0
                && transfers >= admission.soft_transfers_per_frame
            {
                bump_tier(svc, DegradeTier::DegradedTaps);
                current.l1_accesses += 1;
                if l1.access(req.tid, tap.m, tap.u, tap.v) {
                    current.l1_hits += 1;
                    tel.with(|t| t.l1_hits.incr());
                    continue;
                }
                svc.denied_transfers += 1;
                l1.invalidate(req.tid, tap.m, tap.u, tap.v);
                current.dropped_taps += 1;
                tel.with(|t| {
                    t.l1_misses.incr();
                    t.dropped_taps.incr();
                });
                continue;
            }
            tap_pull(
                req.tid, tap.m, tap.u, tap.v, l1_bytes, l1, host, current, &mut tel,
            );
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimEngine;
    use mltc_texture::{synth, MipPyramid, TextureId};
    use mltc_trace::PixelRequest;

    fn registry(n: usize, dim: u32) -> TextureRegistry {
        let mut reg = TextureRegistry::new();
        for i in 0..n {
            reg.load(
                format!("t{i}"),
                MipPyramid::from_image(synth::checkerboard(dim, 4, [0; 3], [255; 3])),
            );
        }
        reg
    }

    /// Deterministic pseudo-random request stream, distinct per seed.
    fn frames(
        seed: u64,
        n_frames: u32,
        per_frame: usize,
        textures: u32,
        dim: u32,
    ) -> Vec<FrameTrace> {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        (0..n_frames)
            .map(|f| {
                let mut t = FrameTrace::new(f, dim, dim, FilterMode::Trilinear);
                for _ in 0..per_frame {
                    let r = next();
                    t.push(PixelRequest {
                        tid: TextureId::from_index((r % textures as u64) as u32),
                        u: ((r >> 8) % dim as u64) as f32,
                        v: ((r >> 24) % dim as u64) as f32,
                        lod: ((r >> 40) % 300) as f32 / 100.0,
                    });
                }
                t
            })
            .collect()
    }

    fn ml_service_cfg() -> ServiceConfig {
        ServiceConfig {
            l1: L1Config::kb(2),
            l2: Some(L2Config::mb(2)),
            tlb_entries: 4,
            fault: FaultPlan::with_rate(0x4d4c_5443, 50_000),
            ..ServiceConfig::default()
        }
    }

    #[test]
    fn service_types_are_send_and_sync() {
        fn send<T: Send>() {}
        fn sync<T: Sync>() {}
        send::<ClientEngine>();
        send::<TextureService>();
        sync::<TextureService>();
        sync::<SharedL2>();
    }

    #[test]
    fn partitioned_client_matches_solo_engine_bit_for_bit() {
        let reg = registry(3, 64);
        let svc = TextureService::try_new(ml_service_cfg(), &reg, 4).unwrap();
        for c in 0..4 {
            let stream = frames(1000 + c as u64, 3, 400, 3, 64);
            let mut client = svc.client(c).unwrap();
            for f in &stream {
                client
                    .run_frame(svc.shared_l2(), f, FilterMode::Trilinear)
                    .unwrap();
            }
            let mut solo = SimEngine::try_new(svc.solo_config(c), &reg).unwrap();
            for f in &stream {
                solo.try_run_frame_as(f, FilterMode::Trilinear).unwrap();
            }
            assert_eq!(client.frames(), solo.frames(), "client {c}");
            assert!(client.totals().retries > 0, "fault plan must have fired");
        }
    }

    #[test]
    fn client_zero_of_one_keeps_the_base_plan() {
        let reg = registry(1, 64);
        let svc = TextureService::try_new(ml_service_cfg(), &reg, 1).unwrap();
        assert_eq!(svc.solo_config(0).fault, ml_service_cfg().fault);
        assert_eq!(
            svc.solo_config(0).l2.unwrap().size_bytes,
            L2Config::mb(2).size_bytes,
            "single client owns the whole budget"
        );
    }

    #[test]
    fn unified_mode_shares_one_partition_and_counts_contention() {
        let reg = registry(2, 64);
        let cfg = ServiceConfig {
            partition: L2PartitionMode::Unified,
            ..ml_service_cfg()
        };
        let svc = TextureService::try_new(cfg, &reg, 3).unwrap();
        assert!(svc.shared_l2().is_unified());
        assert_eq!(svc.shared_l2().partitions(), 1);
        let stream = frames(7, 2, 200, 2, 64);
        for c in 0..3 {
            let mut client = svc.client(c).unwrap();
            for f in &stream {
                client
                    .run_frame(svc.shared_l2(), f, FilterMode::Bilinear)
                    .unwrap();
            }
        }
        let cont = svc.shared_l2().contention();
        assert_eq!(cont.acquisitions, 6, "one acquisition per client frame");
    }

    #[test]
    fn admission_tiers_degrade_then_shed_then_quarantine() {
        let reg = registry(2, 64);
        let cfg = ServiceConfig {
            admission: AdmissionControl {
                soft_transfers_per_frame: 8,
                hard_transfers_per_frame: 16,
                quarantine_after_shed_frames: 2,
            },
            fault: FaultPlan::none(),
            ..ml_service_cfg()
        };
        let svc = TextureService::try_new(cfg, &reg, 1).unwrap();
        let mut client = svc.client(0).unwrap();
        let stream = frames(42, 3, 500, 2, 64);
        let r0 = client.run_frame(svc.shared_l2(), &stream[0], FilterMode::Trilinear);
        assert!(r0.is_ok(), "first shed frame only escalates: {r0:?}");
        let r1 = client.run_frame(svc.shared_l2(), &stream[1], FilterMode::Trilinear);
        assert!(
            matches!(
                r1,
                Err(ServiceError::Quarantined {
                    client: 0,
                    reason: QuarantineReason::ShedBudget {
                        consecutive_shed_frames: 2
                    }
                })
            ),
            "second consecutive shed frame quarantines: {r1:?}"
        );
        let r2 = client.run_frame(svc.shared_l2(), &stream[2], FilterMode::Trilinear);
        assert!(matches!(r2, Err(ServiceError::Quarantined { .. })));
        assert_eq!(client.frames().len(), 2, "quarantined frame never ran");
        let svc_stats = client.service_stats();
        assert!(svc_stats.denied_transfers > 0, "soft tier fired");
        assert!(svc_stats.shed_taps > 0, "hard tier fired");
        assert_eq!(svc_stats.shed_frames, 2);
        assert_eq!(svc_stats.peak_tier, DegradeTier::Quarantined);
        for f in client.frames() {
            assert!(
                f.l2_partial_hits + f.l2_full_misses <= 16,
                "hard budget bounds attempted transfers"
            );
        }
        assert_eq!(
            client.totals().host_bytes / client.l1_bytes,
            client
                .frames()
                .iter()
                .map(|f| f.l2_partial_hits + f.l2_full_misses)
                .sum::<u64>()
                - svc_stats.denied_transfers,
            "denied transfers moved no host bytes"
        );
    }

    #[test]
    fn admission_without_budgets_is_inert() {
        let reg = registry(1, 64);
        let svc = TextureService::try_new(ml_service_cfg(), &reg, 2).unwrap();
        let stream = frames(5, 2, 300, 1, 64);
        let mut client = svc.client(1).unwrap();
        for f in &stream {
            client
                .run_frame(svc.shared_l2(), f, FilterMode::Trilinear)
                .unwrap();
        }
        let s = client.service_stats();
        assert_eq!((s.denied_transfers, s.shed_taps, s.shed_frames), (0, 0, 0));
        assert_eq!(s.peak_tier, DegradeTier::Normal);
        assert_eq!(s.frames_run, 2);
    }

    #[test]
    fn pull_service_drops_denied_taps() {
        let reg = registry(1, 64);
        let cfg = ServiceConfig {
            l1: L1Config::kb(2),
            l2: None,
            admission: AdmissionControl {
                soft_transfers_per_frame: 4,
                hard_transfers_per_frame: 0,
                quarantine_after_shed_frames: 0,
            },
            ..ServiceConfig::default()
        };
        let svc = TextureService::try_new(cfg, &reg, 1).unwrap();
        let mut client = svc.client(0).unwrap();
        let stream = frames(9, 1, 300, 1, 64);
        client
            .run_frame(svc.shared_l2(), &stream[0], FilterMode::Point)
            .unwrap();
        let s = client.service_stats();
        assert!(s.denied_transfers > 0);
        assert_eq!(s.denied_transfers, client.totals().dropped_taps);
        assert_eq!(
            client.totals().host_bytes / client.l1_bytes,
            4,
            "only the admitted transfers moved bytes"
        );
    }

    #[test]
    fn invalid_populations_are_rejected() {
        let reg = registry(1, 64);
        assert!(matches!(
            TextureService::try_new(ml_service_cfg(), &reg, 0),
            Err(EngineError::InvalidGeometry(_))
        ));
        // 2 MB over 4096 clients: 512-byte shares hold no 1 KB block.
        assert!(matches!(
            TextureService::try_new(ml_service_cfg(), &reg, 4096),
            Err(EngineError::InvalidGeometry(_))
        ));
        let svc = TextureService::try_new(ml_service_cfg(), &reg, 2).unwrap();
        assert!(matches!(
            svc.client(2),
            Err(EngineError::InvalidGeometry(_))
        ));
        assert!(matches!(
            TextureService::try_new(ml_service_cfg(), &TextureRegistry::new(), 1),
            Err(EngineError::EmptyPageTable)
        ));
    }

    #[test]
    fn quarantine_is_sticky_and_reported() {
        let reg = registry(1, 64);
        let svc = TextureService::try_new(ml_service_cfg(), &reg, 2).unwrap();
        let mut client = svc.client(0).unwrap();
        client.quarantine(QuarantineReason::Panicked("boom".into()));
        let stream = frames(3, 1, 10, 1, 64);
        let r = client.run_frame(svc.shared_l2(), &stream[0], FilterMode::Point);
        assert!(matches!(
            r,
            Err(ServiceError::Quarantined {
                client: 0,
                reason: QuarantineReason::Panicked(_)
            })
        ));
        assert_eq!(
            client.quarantined(),
            Some(&QuarantineReason::Panicked("boom".into()))
        );
        assert_eq!(
            r.unwrap_err().to_string(),
            "client 0 quarantined: worker panicked: boom"
        );
    }
}
