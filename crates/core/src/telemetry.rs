//! Engine-side telemetry: the handles [`SimEngine`](crate::SimEngine)
//! records into when a [`Recorder`] is attached.
//!
//! The overhead contract (see `mltc-telemetry`): the engine stores
//! `Option<Box<EngineTelemetry>>`, so with telemetry detached every dynamic
//! path through `access_texel` pays exactly one not-taken branch, and
//! attached or not, telemetry only *observes* — `FrameCounters`, cache and
//! RNG state are bit-identical either way.
//!
//! Naming: histograms are keyed per workload *group* (so the parallel
//! configs replaying one workload merge into one distribution, and the
//! L2 reuse-distance histogram is "exported per workload"), while the
//! per-frame series is keyed per *run label* so rows from different
//! configurations never interleave.

use mltc_cache::ClockStats;
use mltc_telemetry::{Counter, Histogram, Recorder, ReuseDistance, Series};

use crate::FrameCounters;

/// Column names of the per-frame engine series, in row order.
pub const FRAME_SERIES_COLUMNS: [&str; 16] = [
    "frame",
    "l1_accesses",
    "l1_hits",
    "l2_full_hits",
    "l2_partial_hits",
    "l2_full_misses",
    "host_bytes",
    "l2_local_bytes",
    "tlb_accesses",
    "tlb_hits",
    "retries",
    "failed_transfers",
    "degraded_taps",
    "dropped_taps",
    "sweep_searches",
    "sweep_entries",
];

/// All recording handles an instrumented engine holds, plus the small
/// amount of state needed to turn cumulative clock statistics into
/// per-miss and per-frame deltas.
#[derive(Debug)]
pub struct EngineTelemetry {
    pub(crate) l1_hits: Counter,
    pub(crate) l1_misses: Counter,
    pub(crate) l2_full_hits: Counter,
    pub(crate) l2_partial_hits: Counter,
    pub(crate) l2_full_misses: Counter,
    pub(crate) tlb_hits: Counter,
    pub(crate) tlb_misses: Counter,
    pub(crate) host_delivered: Counter,
    pub(crate) host_failed: Counter,
    pub(crate) host_retries: Counter,
    pub(crate) degraded_taps: Counter,
    pub(crate) dropped_taps: Counter,
    /// Host transfer sizes in bytes (per delivered transfer).
    pub(crate) transfer_bytes: Histogram,
    /// Clock sweep length (entries examined) per L2 full miss.
    pub(crate) sweep_len: Histogram,
    /// L2 reuse distance at page granularity (distinct pages between
    /// consecutive references to the same page).
    pub(crate) reuse_hist: Histogram,
    pub(crate) reuse_cold: Counter,
    reuse: ReuseDistance,
    frame_series: Series,
    /// Cumulative `entries_examined` at the last observed full miss.
    miss_base_entries: u64,
    /// Cumulative clock stats at the last frame close.
    frame_base: ClockStats,
}

impl EngineTelemetry {
    /// Registers every handle on `recorder`. `label` keys the per-frame
    /// series (one per run); `group` keys counters and histograms (shared
    /// by all runs of one workload).
    pub(crate) fn new(recorder: &Recorder, label: &str, group: &str) -> Self {
        let c = |name: &str| recorder.counter(&format!("engine/{group}/{name}"));
        Self {
            l1_hits: c("l1_hits"),
            l1_misses: c("l1_misses"),
            l2_full_hits: c("l2_full_hits"),
            l2_partial_hits: c("l2_partial_hits"),
            l2_full_misses: c("l2_full_misses"),
            tlb_hits: c("tlb_hits"),
            tlb_misses: c("tlb_misses"),
            host_delivered: c("host_delivered"),
            host_failed: c("host_failed"),
            host_retries: c("host_retries"),
            degraded_taps: c("degraded_taps"),
            dropped_taps: c("dropped_taps"),
            transfer_bytes: recorder.histogram(&format!("host_transfer_bytes/{group}")),
            sweep_len: recorder.histogram(&format!("clock_sweep_len/{group}")),
            reuse_hist: recorder.histogram(&format!("l2_reuse_pages/{group}")),
            reuse_cold: c("l2_reuse_cold"),
            reuse: ReuseDistance::new(),
            frame_series: recorder.series(label, &FRAME_SERIES_COLUMNS),
            miss_base_entries: 0,
            frame_base: ClockStats::default(),
        }
    }

    /// Common bookkeeping for every L2 access (one per L1 miss): the L1
    /// miss itself, the TLB outcome when a TLB is modelled, and the page
    /// reuse distance.
    #[inline]
    pub(crate) fn on_l2_access(&mut self, pt_index: u64, tlb_hit: Option<bool>) {
        self.l1_misses.incr();
        match tlb_hit {
            Some(true) => self.tlb_hits.incr(),
            Some(false) => self.tlb_misses.incr(),
            None => {}
        }
        match self.reuse.record(pt_index) {
            Some(d) => self.reuse_hist.record(d),
            None => self.reuse_cold.incr(),
        }
    }

    /// Records the sweep a full miss just ran: the delta of cumulative
    /// `entries_examined` since the previous full miss (sweeps only happen
    /// on full misses, so the delta is exactly this miss's search).
    #[inline]
    pub(crate) fn on_full_miss_sweep(&mut self, clock: ClockStats) {
        let delta = clock.entries_examined - self.miss_base_entries;
        self.miss_base_entries = clock.entries_examined;
        self.sweep_len.record(delta);
    }

    /// Pushes the closing frame's row onto the per-frame series.
    pub(crate) fn on_frame_end(
        &mut self,
        frame: u64,
        counters: &FrameCounters,
        clock: Option<ClockStats>,
    ) {
        let clock = clock.unwrap_or_default();
        let row = [
            frame,
            counters.l1_accesses,
            counters.l1_hits,
            counters.l2_full_hits,
            counters.l2_partial_hits,
            counters.l2_full_misses,
            counters.host_bytes,
            counters.l2_local_bytes,
            counters.tlb_accesses,
            counters.tlb_hits,
            counters.retries,
            counters.failed_transfers,
            counters.degraded_taps,
            counters.dropped_taps,
            clock.searches - self.frame_base.searches,
            clock.entries_examined - self.frame_base.entries_examined,
        ];
        self.frame_base = clock;
        self.frame_series.push_row(&row);
    }
}
