//! Analytic models: expected working set (§4.1), implementation structure
//! sizes (§5.4.1, Table 4) and the simple performance model (§5.4.2,
//! Table 7).

use mltc_texture::TilingConfig;

/// Expected inter-frame working set in **bytes** (paper §4.1, Fig. 3):
///
/// `W = (R · d · 4) / utilization`
///
/// where `R` is the screen resolution in pixels, `d` the depth complexity,
/// 4 the bytes per (32-bit) texel, and *utilization* the ratio of texel
/// fetches to texels in the downloaded blocks (above 1 when texels are
/// re-used, below 1 under internal fragmentation).
///
/// # Panics
///
/// Panics if `utilization` is not positive.
///
/// ```
/// // 1024x768, depth 1, utilization 0.5 => 6 MB.
/// let w = mltc_core::model::expected_working_set(1024 * 768, 1.0, 0.5);
/// assert!((w / (1 << 20) as f64 - 6.0).abs() < 0.01);
/// ```
pub fn expected_working_set(
    resolution_pixels: u64,
    depth_complexity: f64,
    utilization: f64,
) -> f64 {
    assert!(utilization > 0.0, "utilization must be positive");
    resolution_pixels as f64 * depth_complexity * 4.0 / utilization
}

/// The fractional advantage `f` of the L2 caching architecture (§5.4.2):
/// the ratio of the L2 architecture's cost on an L1 miss to the pull
/// architecture's cost on an L1 miss,
///
/// `f = c − (c − ½)·h2_full − (c − 1)·h2_partial`
///
/// with `c = t2miss / t3` the cost of a full L2 miss relative to an L1
/// download (the paper assumes `c = 8` for Table 7), and the L2 hit rates
/// conditional on an L1 miss. `f < 1` means the L2 architecture wins.
///
/// The derivation assumes a full L2 hit costs half an L1 download
/// (`t2full = ½·t3`, local memory at 2× host bandwidth) and a partial hit
/// costs the same as an L1 download (`t2partial = t3`).
///
/// ```
/// // Perfect full-hitting L2: every miss costs half a download.
/// assert_eq!(mltc_core::model::fractional_advantage(8.0, 1.0, 0.0), 0.5);
/// // No L2 hits at all: every L1 miss costs a full L2 miss.
/// assert_eq!(mltc_core::model::fractional_advantage(8.0, 0.0, 0.0), 8.0);
/// ```
pub fn fractional_advantage(c: f64, h2_full: f64, h2_partial: f64) -> f64 {
    c - (c - 0.5) * h2_full - (c - 1.0) * h2_partial
}

/// Average texel access time of the pull architecture (§5.4.2):
/// `A_pull = t1 + (1 − h1)·t3`.
pub fn avg_access_time_pull(h1: f64, t1: f64, t3: f64) -> f64 {
    t1 + (1.0 - h1) * t3
}

/// Average texel access time of the L2 caching architecture (§5.4.2):
/// `A_L2 = t1 + (1 − h1)·f·t3`.
pub fn avg_access_time_l2(h1: f64, t1: f64, t3: f64, f: f64) -> f64 {
    t1 + (1.0 - h1) * f * t3
}

/// Memory requirements of the L2 caching structures (§5.4.1, Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StructureSizes {
    /// Texture page table bytes (one entry per L2 block of host texture).
    pub page_table_bytes: u64,
    /// BRL active bits only (kept in on-chip SRAM).
    pub brl_active_bytes: u64,
    /// BRL without active bits (the `t_index` fields, in external DRAM).
    pub brl_t_index_bytes: u64,
}

/// Computes [`StructureSizes`] for an L2 cache of `l2_bytes` serving
/// `host_texture_bytes` of texture in system memory (measured at the
/// 32-bit cache depth, as in Table 4), under `tiling`.
///
/// Per the paper's assumptions: `t_table[]` and `BRL[]` entries are aligned
/// on 16-bit boundaries; a page-table entry holds a 16-bit `l2_block` plus
/// one sector bit per L1 sub-block (rounded up to 16-bit words); a BRL
/// entry's `t_index` is 32 bits.
///
/// ```
/// use mltc_core::model::structure_sizes;
/// use mltc_texture::TilingConfig;
/// // Table 4, middle column: 2 MB L2, 32 MB host texture, 16x16 tiles.
/// let s = structure_sizes(2 << 20, 32 << 20, TilingConfig::PAPER_DEFAULT);
/// assert_eq!(s.page_table_bytes, 128 << 10);
/// assert_eq!(s.brl_active_bytes, 256);
/// assert_eq!(s.brl_t_index_bytes, 8 << 10);
/// ```
pub fn structure_sizes(
    l2_bytes: u64,
    host_texture_bytes: u64,
    tiling: TilingConfig,
) -> StructureSizes {
    let block_bytes = tiling.l2().cache_bytes() as u64;
    let entries = host_texture_bytes / block_bytes;
    let sector_words = (tiling.l1_per_l2() as u64).div_ceil(16);
    let entry_bytes = 2 + 2 * sector_words;
    let blocks = l2_bytes / block_bytes;
    StructureSizes {
        page_table_bytes: entries * entry_bytes,
        brl_active_bytes: blocks.div_ceil(8),
        brl_t_index_bytes: blocks * 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mltc_texture::{TileSize, TilingConfig};

    #[test]
    fn expected_working_set_matches_formula() {
        // Fig. 3 sanity: 1024x768, d=3, utilization 0.25 -> 36 MB.
        let w = expected_working_set(1024 * 768, 3.0, 0.25);
        assert!((w - 36.0 * (1 << 20) as f64).abs() < 1.0);
    }

    #[test]
    fn higher_utilization_means_smaller_working_set() {
        let lo = expected_working_set(1 << 20, 2.0, 0.1);
        let hi = expected_working_set(1 << 20, 2.0, 5.0);
        assert!(hi < lo);
        assert!((lo / hi - 50.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_utilization_rejected() {
        let _ = expected_working_set(100, 1.0, 0.0);
    }

    #[test]
    fn fractional_advantage_paper_extremes() {
        // All partial hits: every miss costs exactly one download.
        assert_eq!(fractional_advantage(8.0, 0.0, 1.0), 1.0);
        // Table 7 regime: high full-hit rates give f well below 1 even at c=8.
        let f = fractional_advantage(8.0, 0.95, 0.04);
        assert!(f < 1.0, "f = {f}");
    }

    #[test]
    fn fractional_advantage_is_linear_in_rates() {
        let f1 = fractional_advantage(8.0, 0.5, 0.0);
        let f2 = fractional_advantage(8.0, 0.0, 0.5);
        // Full hits save more than partial hits.
        assert!(f1 < f2);
    }

    #[test]
    fn access_times_agree_when_f_is_one() {
        let (h1, t1, t3) = (0.97, 1.0, 10.0);
        let a = avg_access_time_pull(h1, t1, t3);
        let b = avg_access_time_l2(h1, t1, t3, 1.0);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn l2_wins_when_f_below_one() {
        let (h1, t1, t3) = (0.97, 1.0, 10.0);
        assert!(avg_access_time_l2(h1, t1, t3, 0.6) < avg_access_time_pull(h1, t1, t3));
    }

    #[test]
    fn table4_page_table_column() {
        // Table 4 page-table rows (16x16 tiles): host texture -> KB.
        for (host_mb, expect_kb) in [
            (16u64, 64u64),
            (32, 128),
            (64, 256),
            (256, 1024),
            (1024, 4096),
        ] {
            let s = structure_sizes(2 << 20, host_mb << 20, TilingConfig::PAPER_DEFAULT);
            assert_eq!(s.page_table_bytes, expect_kb << 10, "{host_mb} MB host");
        }
    }

    #[test]
    fn table4_brl_rows() {
        for (l2_mb, active, t_index_kb) in [(2u64, 256u64, 8u64), (4, 512, 16), (8, 1024, 32)] {
            let s = structure_sizes(l2_mb << 20, 32 << 20, TilingConfig::PAPER_DEFAULT);
            assert_eq!(s.brl_active_bytes, active, "{l2_mb} MB L2");
            assert_eq!(s.brl_t_index_bytes, t_index_kb << 10, "{l2_mb} MB L2");
        }
    }

    #[test]
    fn structure_sizes_respect_tiling() {
        // 32x32 blocks of 4x4 sub-blocks: 64 sector bits = 4 words -> 10-byte
        // entries, and 4 KB blocks -> quarter as many entries.
        let t = TilingConfig::new(TileSize::X32, TileSize::X4).unwrap();
        let s = structure_sizes(2 << 20, 32 << 20, t);
        assert_eq!(s.page_table_bytes, (32 << 20) / 4096 * 10);
        assert_eq!(s.brl_active_bytes, 512 / 8);
    }
}
