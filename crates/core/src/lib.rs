//! The paper's contribution: multi-level (L1 + L2) texture caching.
//!
//! This crate assembles the substrate of `mltc-cache` into the architecture
//! of Cox, Bhandari & Shantz (ISCA '98):
//!
//! * [`L1TextureCache`] — the on-chip 2-way set-associative texture cache
//!   with ⟨tid, L2, L1⟩ tags and 6D-blocked set indexing (§2.3, §3.3);
//! * [`L2Cache`] — the proposal itself: a MB-scale cache in local
//!   accelerator memory organised like virtual memory, with a texture page
//!   table (`t_table[]`), a block replacement list (`BRL[]`) running the
//!   clock algorithm, and *sector mapping* of L1 sub-blocks (§5.1–5.2 and
//!   the Appendix pseudo-code);
//! * [`SimEngine`] — the transaction-accurate simulator that replays frame
//!   traces through L1 → (TLB) → L2 → host and accounts every byte of AGP
//!   and local-memory traffic (§3.3, §5.3);
//! * [`PushArchitecture`] — the traditional baseline with a perfect
//!   application-level replacement algorithm (§4.2); the *pull* baseline is
//!   simply a [`SimEngine`] with `l2: None`;
//! * [`model`] — the analytic models: expected inter-frame working set
//!   (§4.1), structure sizes (Table 4) and the fractional-advantage
//!   performance model (§5.4.2).
//!
//! # Example: pull vs 2-level caching on a synthetic stream
//!
//! ```
//! use mltc_core::{EngineConfig, L1Config, L2Config, SimEngine};
//! use mltc_texture::{synth, MipPyramid, TextureRegistry};
//!
//! let mut reg = TextureRegistry::new();
//! let tid = reg.load("t", MipPyramid::from_image(
//!     synth::checkerboard(256, 8, [0; 3], [255; 3])));
//!
//! let mut pull = SimEngine::new(EngineConfig { l1: L1Config::kb(2), l2: None,
//!     ..EngineConfig::default() }, &reg);
//! let mut ml = SimEngine::new(EngineConfig { l1: L1Config::kb(2),
//!     l2: Some(L2Config::mb(2)), ..EngineConfig::default() }, &reg);
//!
//! // Two identical "frames": the second is pure inter-frame re-use.
//! for _ in 0..2 {
//!     for v in 0..256 {
//!         for u in 0..256 {
//!             pull.access_texel(tid, 0, u, v);
//!             ml.access_texel(tid, 0, u, v);
//!         }
//!     }
//!     pull.end_frame();
//!     ml.end_frame();
//! }
//! // The L2 absorbs the second frame's L1 misses entirely.
//! let p = &pull.frames()[1];
//! let m = &ml.frames()[1];
//! assert!(p.host_bytes > 0);
//! assert_eq!(m.host_bytes, 0);
//! ```

mod engine;
mod error;
mod host_link;
mod l1;
mod l2;
pub mod model;
mod push;
pub mod service;
mod tap;
mod telemetry;

pub use engine::{AccessTrace, EngineConfig, FrameCounters, SimEngine};
pub use error::EngineError;
pub use host_link::{FaultPlan, HostLink, TextureBlackout, Transfer};
pub use l1::{L1Config, L1TextureCache, StorageFormat};
pub use l2::{L2AccessTrace, L2Cache, L2Config, L2Outcome, L2Stats, ReplacementPolicy};
pub use push::PushArchitecture;
pub use service::{
    AdmissionControl, ClientEngine, ClientServiceStats, DegradeTier, L2PartitionMode,
    QuarantineReason, ServiceConfig, ServiceError, SharedL2, SharedL2Contention, TextureService,
};
pub use telemetry::{EngineTelemetry, FRAME_SERIES_COLUMNS};
