//! The on-chip L1 texture cache (paper §2.3, §3.3).

use mltc_cache::{HitStats, SetAssocCache};
use mltc_texture::{L1BlockKey, TextureId, TileSize};

/// How texture lines are shaped in host memory and therefore in the cache.
///
/// Hakura's study (which §2.3 builds on) compares *tiled* storage (square
/// texel blocks per cache line) against conventional *linear* scanline
/// storage; the paper adopts tiled storage. `Linear` keeps the same line
/// size but shapes it as a 1-texel-tall run, for the storage-format
/// ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StorageFormat {
    /// Square tiles (the paper's choice).
    #[default]
    Tiled,
    /// Scanline runs of texels (tile.texel_count() x 1).
    Linear,
}

/// Configuration of the L1 texture cache.
///
/// Following the paper (§2.3), the line size equals the tile size, the
/// default tile is 4×4 texels of 32 bits (64-byte lines), and associativity
/// defaults to 2-way — "Hakura … argues that 2-way set associative is of
/// sufficient associativity to avoid conflict misses with trilinear
/// interpolation. We follow Hakura's lead."
///
/// ```
/// use mltc_core::L1Config;
/// let c = L1Config::kb(2);
/// assert_eq!(c.lines(), 32);
/// assert_eq!(c.sets(), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L1Config {
    /// Total capacity in bytes (must be a power of two ≥ one line).
    pub size_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Tile (= line) size.
    pub tile: TileSize,
    /// Line shape: square tiles or linear scanline runs (§2.3 ablation).
    pub storage: StorageFormat,
}

impl L1Config {
    /// A `kb`-kilobyte, 2-way, 4×4-tile cache (the paper's configurations
    /// are 2 KB "low end" and 16 KB "high end").
    pub const fn kb(kb: usize) -> Self {
        Self {
            size_bytes: kb * 1024,
            ways: 2,
            tile: TileSize::X4,
            storage: StorageFormat::Tiled,
        }
    }

    /// Line size in bytes (tile texels × 4 bytes).
    #[inline]
    pub const fn line_bytes(&self) -> usize {
        self.tile.cache_bytes()
    }

    /// Number of lines.
    #[inline]
    pub const fn lines(&self) -> usize {
        self.size_bytes / self.line_bytes()
    }

    /// Number of sets.
    #[inline]
    pub const fn sets(&self) -> usize {
        self.lines() / self.ways
    }
}

impl Default for L1Config {
    fn default() -> Self {
        Self::kb(16)
    }
}

/// Interleaves the low 16 bits of `x` and `y` (Morton order).
#[inline]
fn morton16(x: u32, y: u32) -> u32 {
    fn spread(mut v: u32) -> u32 {
        v &= 0xffff;
        v = (v | (v << 8)) & 0x00ff_00ff;
        v = (v | (v << 4)) & 0x0f0f_0f0f;
        v = (v | (v << 2)) & 0x3333_3333;
        v = (v | (v << 1)) & 0x5555_5555;
        v
    }
    spread(x) | (spread(y) << 1)
}

/// The L1 texture cache: an N-way set-associative cache of L1 texture tiles
/// tagged by their virtual block identity and indexed by bit-interleaved
/// tile coordinates — Hakura's "6D blocked representation" for collision
/// avoidance, which the paper adopts by making L1 tags "the same
/// ⟨tid, L2, L1⟩ used for L2 virtual addresses" (§3.3).
///
/// Per §3.3, the tag calculation is *fixed across all simulated L2 tile
/// sizes* so that L1 behaviour does not vary within an L2 parameter sweep:
/// tags here are the tiling-independent [`L1BlockKey`] (texture, mip level,
/// tile column, tile row), which is in one-to-one correspondence with
/// ⟨tid, L2, L1⟩ for any fixed L2 tile size.
///
/// ```
/// use mltc_core::{L1Config, L1TextureCache};
/// use mltc_texture::TextureId;
/// let mut l1 = L1TextureCache::new(L1Config::kb(2));
/// let t = TextureId::from_index(0);
/// assert!(!l1.access(t, 0, 0, 0)); // cold miss
/// assert!(l1.access(t, 0, 3, 3));  // same 4x4 tile
/// ```
#[derive(Debug, Clone)]
pub struct L1TextureCache {
    cache: SetAssocCache,
    cfg: L1Config,
    set_mask: u32,
    /// One-entry tag → set memo: the packed key of the most recently
    /// located line and its set. `last_set == usize::MAX` until the first
    /// access. The key → set mapping is a pure function, so a key match
    /// can reuse the set without rehashing (Morton interleave + XOR fold
    /// skipped) — consecutive filter taps hit the same tile constantly.
    last_key: u64,
    last_set: usize,
}

impl L1TextureCache {
    /// Builds the cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration yields zero sets or a non-power-of-two
    /// set count (hardware indexes sets with address bits).
    pub fn new(cfg: L1Config) -> Self {
        let sets = cfg.sets();
        assert!(sets > 0, "L1 of {} bytes has no sets", cfg.size_bytes);
        assert!(
            sets.is_power_of_two(),
            "L1 set count {sets} must be a power of two"
        );
        Self {
            cache: SetAssocCache::new(sets, cfg.ways),
            cfg,
            set_mask: sets as u32 - 1,
            last_key: 0,
            last_set: usize::MAX,
        }
    }

    /// The configuration.
    #[inline]
    pub fn config(&self) -> L1Config {
        self.cfg
    }

    /// Computes the set index for a tile: Morton-interleaved tile
    /// coordinates XOR-folded down to the set bits (so distant tiles
    /// contribute too, not just the immediate neighbourhood), perturbed by
    /// mip level and texture id so that coincident tiles of different
    /// levels/textures spread across sets.
    #[inline]
    fn set_index(&self, tid: TextureId, m: u32, bx: u32, by: u32) -> usize {
        // Mip level and texture id are multiplicatively spread over all bits
        // so coincident tiles of different levels/textures don't pile into
        // neighbouring sets.
        let mut h = morton16(bx, by)
            ^ m.wrapping_mul(0x85eb_ca6b)
            ^ tid.index().wrapping_mul(0x9e37_79b1).rotate_right(16);
        let bits = (self.set_mask + 1).trailing_zeros().max(1);
        let mut shift = bits;
        while shift < 32 {
            h ^= h >> shift;
            shift += bits;
        }
        (h & self.set_mask) as usize
    }

    /// Tag and set of the line holding texel `(u, v)` of level `m` of `tid`.
    #[inline]
    fn locate(&mut self, tid: TextureId, m: u32, u: u32, v: u32) -> (u64, usize) {
        let (bx, by) = match self.cfg.storage {
            StorageFormat::Tiled => {
                let s = self.cfg.tile.shift();
                (u >> s, v >> s)
            }
            // A line holds the same texel count, but 1 texel tall.
            StorageFormat::Linear => (u >> (2 * self.cfg.tile.shift()), v),
        };
        let tag = L1BlockKey::from_block_coords(tid, m, bx, by).packed();
        // The packed key determines the set (pure function of the same
        // inputs), so a repeat of the previous key skips the hash.
        if tag == self.last_key && self.last_set != usize::MAX {
            return (tag, self.last_set);
        }
        let set = self.set_index(tid, m, bx, by);
        self.last_key = tag;
        self.last_set = set;
        (tag, set)
    }

    /// Looks up the texel `(u, v)` of mip level `m` of `tid` (texel
    /// coordinates within the level) and returns whether its line hit.
    /// On a miss, the line is installed (the caller models the download).
    #[inline]
    pub fn access(&mut self, tid: TextureId, m: u32, u: u32, v: u32) -> bool {
        let (tag, set) = self.locate(tid, m, u, v);
        self.cache.access(tag, set).hit
    }

    /// Invalidates the line holding texel `(u, v)` of level `m` of `tid`,
    /// returning whether a line was dropped. Used to undo the speculative
    /// install of [`access`](Self::access) when the download that was to
    /// fill the line failed; hit/miss statistics are untouched.
    pub fn invalidate(&mut self, tid: TextureId, m: u32, u: u32, v: u32) -> bool {
        let (tag, set) = self.locate(tid, m, u, v);
        self.cache.invalidate(tag, set)
    }

    /// Lifetime hit/miss counters.
    #[inline]
    pub fn stats(&self) -> HitStats {
        self.cache.stats()
    }

    /// Resets counters (contents untouched).
    pub fn reset_stats(&mut self) {
        self.cache.reset_stats();
    }

    /// Invalidates the whole cache.
    pub fn flush(&mut self) {
        self.cache.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TextureId {
        TextureId::from_index(i)
    }

    #[test]
    fn config_arithmetic() {
        let c = L1Config::kb(16);
        assert_eq!(c.line_bytes(), 64);
        assert_eq!(c.lines(), 256);
        assert_eq!(c.sets(), 128);
    }

    #[test]
    fn same_tile_hits_different_tile_misses() {
        let mut l1 = L1TextureCache::new(L1Config::kb(2));
        assert!(!l1.access(t(0), 0, 0, 0));
        assert!(l1.access(t(0), 0, 1, 2));
        assert!(!l1.access(t(0), 0, 4, 0), "next tile to the right");
        assert!(!l1.access(t(0), 0, 0, 4), "next tile below");
    }

    #[test]
    fn mip_levels_do_not_alias() {
        let mut l1 = L1TextureCache::new(L1Config::kb(2));
        assert!(!l1.access(t(0), 0, 0, 0));
        assert!(!l1.access(t(0), 1, 0, 0));
        assert!(l1.access(t(0), 0, 0, 0));
        assert!(l1.access(t(0), 1, 0, 0));
    }

    #[test]
    fn textures_do_not_alias() {
        let mut l1 = L1TextureCache::new(L1Config::kb(2));
        assert!(!l1.access(t(0), 0, 0, 0));
        assert!(!l1.access(t(1), 0, 0, 0));
        assert!(l1.access(t(0), 0, 0, 0));
    }

    #[test]
    fn scanline_sweep_within_capacity_only_compulsory_misses() {
        // A 32-texel-wide scanline touches 8 tiles per band; with Morton
        // set indexing they fit the 2 KB cache without conflicts, so rows
        // 1-3 of each 4-row band hit entirely.
        let mut l1 = L1TextureCache::new(L1Config::kb(2));
        for v in 0..8u32 {
            for u in 0..32u32 {
                l1.access(t(0), 0, u, v);
            }
        }
        // Misses: 8 tiles on the first scanline of each of the 2 bands.
        assert_eq!(l1.stats().misses(), 16);
    }

    #[test]
    fn capacity_misses_appear_when_working_set_exceeds_cache() {
        // A 2D-local working set of 16x16 tiles (16 KB) cycled twice.
        // 2 KB = 32 lines: cyclic thrash, the second pass misses too.
        let mut l1 = L1TextureCache::new(L1Config::kb(2));
        for _ in 0..2 {
            for i in 0..256u32 {
                l1.access(t(0), 0, (i % 16) * 4, (i / 16) * 4);
            }
        }
        assert!(
            l1.stats().hit_rate() < 0.2,
            "rate={}",
            l1.stats().hit_rate()
        );

        // 32 KB = 512 lines: Morton indexing maps the 16x16-tile square
        // conflict-free, so the second pass hits entirely.
        let mut big = L1TextureCache::new(L1Config::kb(32));
        for _ in 0..2 {
            for i in 0..256u32 {
                big.access(t(0), 0, (i % 16) * 4, (i / 16) * 4);
            }
        }
        assert_eq!(big.stats().hit_rate(), 0.5);
    }

    #[test]
    fn morton_interleave_spreads_neighbours() {
        // 2x2 neighbouring tiles land in 4 distinct sets.
        let l1 = L1TextureCache::new(L1Config::kb(2));
        let mut sets = std::collections::HashSet::new();
        for by in 0..2 {
            for bx in 0..2 {
                sets.insert(l1.set_index(t(0), 0, bx, by));
            }
        }
        assert_eq!(sets.len(), 4);
    }

    #[test]
    fn invalidate_undoes_a_speculative_install() {
        let mut l1 = L1TextureCache::new(L1Config::kb(2));
        assert!(!l1.access(t(0), 0, 0, 0)); // miss installs the line
        assert!(l1.invalidate(t(0), 0, 3, 3), "same tile, any texel");
        assert!(!l1.access(t(0), 0, 0, 0), "line must be gone again");
        assert!(
            !l1.invalidate(t(1), 0, 0, 0),
            "absent line: nothing to drop"
        );
        // Stats counted the two accesses only.
        assert_eq!(l1.stats().accesses, 2);
        assert_eq!(l1.stats().hits, 0);
    }

    #[test]
    fn flush_forgets_contents_keeps_stats() {
        let mut l1 = L1TextureCache::new(L1Config::kb(2));
        l1.access(t(0), 0, 0, 0);
        l1.flush();
        assert!(!l1.access(t(0), 0, 0, 0));
        assert_eq!(l1.stats().accesses, 2);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_rejected() {
        // 3 KB / 64 B / 2 = 24 sets.
        let _ = L1TextureCache::new(L1Config {
            size_bytes: 3072,
            ..L1Config::kb(2)
        });
    }
}
