//! The L2 texture cache: virtual-memory-style caching of texture blocks
//! (paper §5.1–5.2 and the Appendix pseudo-code).
//!
//! The working-set results of §4.2 call for an L2 cache of megabytes; a
//! fully associative cache of that size is infeasible, and hashing for a
//! direct-mapped or set-associative organisation would have to capture
//! temporal as well as spatial locality across textures. The paper instead
//! treats L2 texture caching as virtual memory: a **texture page table**
//! (`t_table[]`) maps virtual blocks ⟨tid, L2⟩ to physical blocks in L2
//! cache memory, a **block replacement list** (`BRL[]`) runs the clock
//! algorithm to approximate LRU, and **sector mapping** downloads only the
//! L1 sub-block that missed, marking it in a per-page bit vector.

use mltc_cache::{ClockList, ClockStats, LruList, SectorBits};
use mltc_texture::TilingConfig;
use std::fmt;

/// L2 block replacement policy.
///
/// The paper uses clock ("a simple and robust algorithm that is still used
/// in practice", §5.1) and calls for investigating alternatives to avoid
/// "pesky" behaviour (§6); true LRU and FIFO are provided for that ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReplacementPolicy {
    /// Second-chance clock over the BRL (the paper's choice).
    #[default]
    Clock,
    /// True least-recently-used.
    Lru,
    /// First-in first-out (allocation order).
    Fifo,
}

impl fmt::Display for ReplacementPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ReplacementPolicy::Clock => "clock",
            ReplacementPolicy::Lru => "lru",
            ReplacementPolicy::Fifo => "fifo",
        })
    }
}

/// L2 cache configuration.
///
/// ```
/// use mltc_core::L2Config;
/// let c = L2Config::mb(2);
/// assert_eq!(c.size_bytes, 2 << 20);
/// assert!(c.sector_mapping);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L2Config {
    /// Capacity of L2 cache memory in bytes (32-bit texels).
    pub size_bytes: usize,
    /// Replacement policy.
    pub policy: ReplacementPolicy,
    /// When `true` (the paper's design), only the missing L1 sub-block is
    /// downloaded on a miss; when `false`, the whole L2 block is downloaded
    /// and all sectors marked resident (ablation C).
    pub sector_mapping: bool,
}

impl L2Config {
    /// A `mb`-megabyte clock-replaced sector-mapped cache (the paper studies
    /// 2, 4 and 8 MB).
    pub const fn mb(mb: usize) -> Self {
        Self {
            size_bytes: mb << 20,
            policy: ReplacementPolicy::Clock,
            sector_mapping: true,
        }
    }
}

/// Outcome of one L2 access (given an L1 miss).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L2Outcome {
    /// The virtual L2 block has a physical block *and* the wanted L1
    /// sub-block is resident: serve from local memory (paper step D → yes).
    FullHit,
    /// The block is allocated but the sub-block is vacant: download one L1
    /// sub-block from host memory into L2 (and L1 in parallel) (step F).
    PartialHit,
    /// No physical block: run replacement, allocate, then download (step E).
    FullMiss,
}

/// L2 access counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct L2Stats {
    /// Full hits.
    pub full_hits: u64,
    /// Partial hits (block allocated, sector vacant).
    pub partial_hits: u64,
    /// Full misses (block replacement ran).
    pub full_misses: u64,
}

impl L2Stats {
    /// Total accesses (= L1 misses presented to the L2).
    pub fn accesses(&self) -> u64 {
        self.full_hits + self.partial_hits + self.full_misses
    }

    /// Full-hit rate conditioned on an L1 miss having occurred — the paper
    /// reports L2 rates "as a conditional probability" (§5.4.2, fn. 5).
    pub fn full_hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.full_hits as f64 / self.accesses() as f64
        }
    }

    /// Partial-hit rate conditioned on an L1 miss.
    pub fn partial_hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.partial_hits as f64 / self.accesses() as f64
        }
    }
}

/// What one [`L2Cache::access`] did, in full: the outcome plus the
/// replacement decisions behind it. [`L2Cache::access_traced`] returns this
/// so a reference model can be compared decision-by-decision, not just on
/// aggregate counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L2AccessTrace {
    /// Hit/miss classification.
    pub outcome: L2Outcome,
    /// Physical block serving the access (allocated on a full miss).
    pub block: u32,
    /// On a full miss that stole a live block: the 0-based page-table index
    /// of the evicted owner.
    pub evicted_page: Option<u32>,
}

/// A texture page table entry: the physical block number (`0` = none
/// allocated, else 1-based) and the sector presence bits.
#[derive(Debug, Clone, Copy, Default)]
struct PtEntry {
    l2_block: u32,
    sector: SectorBits,
}

/// Replacement machinery behind a common interface.
#[derive(Debug, Clone)]
enum Replacer {
    Clock(ClockList),
    Lru(LruList),
    Fifo(FifoList),
}

impl Replacer {
    fn new(policy: ReplacementPolicy, blocks: usize) -> Self {
        match policy {
            ReplacementPolicy::Clock => Replacer::Clock(ClockList::new(blocks)),
            ReplacementPolicy::Lru => Replacer::Lru(LruList::new(blocks)),
            ReplacementPolicy::Fifo => Replacer::Fifo(FifoList::new(blocks)),
        }
    }

    #[inline]
    fn touch(&mut self, b: usize) {
        match self {
            Replacer::Clock(c) => c.touch(b),
            Replacer::Lru(l) => l.touch(b),
            Replacer::Fifo(_) => {}
        }
    }

    fn find_victim(&mut self) -> usize {
        match self {
            Replacer::Clock(c) => c.find_victim(),
            Replacer::Lru(l) => l.find_victim(),
            Replacer::Fifo(f) => f.find_victim(),
        }
    }

    fn assign(&mut self, b: usize, t_index: u32) {
        match self {
            Replacer::Clock(c) => c.assign(b, t_index),
            Replacer::Lru(l) => l.assign(b, t_index),
            Replacer::Fifo(f) => f.assign(b, t_index),
        }
    }

    fn owner(&self, b: usize) -> Option<u32> {
        match self {
            Replacer::Clock(c) => c.owner(b),
            Replacer::Lru(l) => l.owner(b),
            Replacer::Fifo(f) => f.owner(b),
        }
    }

    fn release(&mut self, b: usize) {
        match self {
            Replacer::Clock(c) => c.release(b),
            Replacer::Lru(l) => l.release(b),
            Replacer::Fifo(f) => f.release(b),
        }
    }
}

/// FIFO by allocation order.
#[derive(Debug, Clone)]
struct FifoList {
    free: Vec<u32>,
    queue: std::collections::VecDeque<u32>,
    owners: Vec<u32>,
}

impl FifoList {
    fn new(blocks: usize) -> Self {
        Self {
            free: (0..blocks as u32).rev().collect(),
            queue: std::collections::VecDeque::with_capacity(blocks),
            owners: vec![0; blocks],
        }
    }

    fn find_victim(&mut self) -> usize {
        if let Some(b) = self.free.pop() {
            b as usize
        } else {
            self.queue
                .pop_front()
                .expect("FIFO queue empty with no free blocks") as usize
        }
    }

    fn assign(&mut self, b: usize, t_index: u32) {
        self.owners[b] = t_index;
        self.queue.push_back(b as u32);
    }

    fn owner(&self, b: usize) -> Option<u32> {
        (self.owners[b] != 0).then_some(self.owners[b])
    }

    fn release(&mut self, b: usize) {
        self.owners[b] = 0;
        self.queue.retain(|&x| x != b as u32);
        self.free.push(b as u32);
    }
}

/// The L2 texture cache.
///
/// Physical texture data is not stored — this is a transaction-accurate
/// (not cycle-accurate) simulator, as in §3.3; only the page table, sector
/// bits and replacement state are modelled, which fully determine hits,
/// misses and traffic.
///
/// ```
/// use mltc_core::{L2Cache, L2Config, L2Outcome};
/// use mltc_texture::TilingConfig;
///
/// // 4 KB cache of 16x16 blocks = 4 physical blocks; 10-entry page table.
/// let mut l2 = L2Cache::new(
///     L2Config { size_bytes: 4096, ..L2Config::mb(2) },
///     TilingConfig::PAPER_DEFAULT, 10);
/// assert_eq!(l2.access(3, 0), L2Outcome::FullMiss);
/// assert_eq!(l2.access(3, 0), L2Outcome::FullHit);
/// assert_eq!(l2.access(3, 1), L2Outcome::PartialHit);
/// ```
#[derive(Debug, Clone)]
pub struct L2Cache {
    cfg: L2Config,
    tiling: TilingConfig,
    t_table: Vec<PtEntry>,
    replacer: Replacer,
    blocks: usize,
    stats: L2Stats,
}

impl L2Cache {
    /// Builds an L2 cache with `page_table_entries` page-table slots (one
    /// per L2 block of every texture in system memory — see
    /// [`mltc_texture::PageTableLayout::entry_count`]).
    ///
    /// # Panics
    ///
    /// Panics if the configured size holds zero L2 blocks or the page table
    /// is empty.
    pub fn new(cfg: L2Config, tiling: TilingConfig, page_table_entries: u32) -> Self {
        let block_bytes = tiling.l2().cache_bytes();
        let blocks = cfg.size_bytes / block_bytes;
        assert!(
            blocks > 0,
            "L2 of {} bytes holds no {} blocks",
            cfg.size_bytes,
            tiling.l2()
        );
        assert!(page_table_entries > 0, "empty texture page table");
        Self {
            cfg,
            tiling,
            t_table: vec![PtEntry::default(); page_table_entries as usize],
            replacer: Replacer::new(cfg.policy, blocks),
            blocks,
            stats: L2Stats::default(),
        }
    }

    /// Configuration.
    #[inline]
    pub fn config(&self) -> L2Config {
        self.cfg
    }

    /// Tiling configuration (L2 block and L1 sub-block sizes).
    #[inline]
    pub fn tiling(&self) -> TilingConfig {
        self.tiling
    }

    /// Number of physical blocks.
    #[inline]
    pub fn block_count(&self) -> usize {
        self.blocks
    }

    /// Number of physical blocks currently allocated to virtual blocks.
    pub fn blocks_in_use(&self) -> usize {
        (0..self.blocks)
            .filter(|&b| self.replacer.owner(b).is_some())
            .count()
    }

    /// Presents an L1 miss for page-table entry `pt_index` (= `tstart + L2`)
    /// and L1 sub-block `l1_sub`; runs the control flow of the paper's
    /// Fig. 7 steps C–F and returns what happened.
    ///
    /// # Panics
    ///
    /// Panics if `pt_index` is out of page-table range or `l1_sub` exceeds
    /// the tiling's sub-blocks-per-block.
    pub fn access(&mut self, pt_index: u32, l1_sub: u16) -> L2Outcome {
        self.access_traced(pt_index, l1_sub).outcome
    }

    /// [`access`](Self::access) with the replacement decisions exposed:
    /// which physical block served the access and, on a full miss, which
    /// page (if any) lost its block. Behaviour and counters are identical
    /// to `access` — this is the introspection hook the differential
    /// oracle's lockstep comparison runs on.
    pub fn access_traced(&mut self, pt_index: u32, l1_sub: u16) -> L2AccessTrace {
        assert!(
            (l1_sub as u32) < self.tiling.l1_per_l2(),
            "sub-block {l1_sub} out of range"
        );
        let ti = pt_index as usize;
        let entry = self.t_table[ti];

        if entry.l2_block != 0 {
            // Step C yes: a physical block is allocated.
            let b = (entry.l2_block - 1) as usize;
            let resident = !self.cfg.sector_mapping || entry.sector.get(l1_sub);
            self.replacer.touch(b);
            let outcome = if resident {
                self.stats.full_hits += 1;
                L2Outcome::FullHit
            } else {
                // Step D no → F: download the missing sub-block.
                self.t_table[ti].sector.set(l1_sub);
                self.stats.partial_hits += 1;
                L2Outcome::PartialHit
            };
            L2AccessTrace {
                outcome,
                block: b as u32,
                evicted_page: None,
            }
        } else {
            // Step E: find a victim, steal its block, allocate, download.
            let b = self.replacer.find_victim();
            let evicted_page = self.replacer.owner(b).map(|old| {
                // Clear the victim's ownership via its t_index (1-based).
                self.t_table[(old - 1) as usize] = PtEntry::default();
                old - 1
            });
            self.replacer.assign(b, pt_index + 1);
            let mut sector = SectorBits::empty();
            if self.cfg.sector_mapping {
                sector.set(l1_sub);
            } else {
                sector = SectorBits::full(self.tiling.l1_per_l2());
            }
            self.t_table[ti] = PtEntry {
                l2_block: b as u32 + 1,
                sector,
            };
            self.stats.full_misses += 1;
            L2AccessTrace {
                outcome: L2Outcome::FullMiss,
                block: b as u32,
                evicted_page,
            }
        }
    }

    /// Read-only residency probe: would `(pt_index, l1_sub)` full-hit right
    /// now? Unlike [`access`](Self::access) this touches neither the
    /// replacement state nor the counters — the engine uses it to look for
    /// a coarser mip level to degrade to after a failed download, and a
    /// degraded serve must not perturb what the caches would have done.
    pub fn is_resident(&self, pt_index: u32, l1_sub: u16) -> bool {
        let entry = self.t_table[pt_index as usize];
        entry.l2_block != 0 && (!self.cfg.sector_mapping || entry.sector.get(l1_sub))
    }

    /// Rolls back the residency that [`access`](Self::access) just recorded
    /// for `(pt_index, l1_sub)` because the host download behind it failed.
    ///
    /// With sector mapping only the failed sector is cleared; the physical
    /// block stays allocated (the page was claimed before the download, as
    /// in hardware — a later access partial-hits and retries). Without
    /// sector mapping the whole-block download failed, so the block is
    /// released entirely. Any victim evicted by the access is already gone;
    /// replacement ran before the download, which is the hardware ordering.
    pub fn fail_download(&mut self, pt_index: u32, l1_sub: u16) {
        let ti = pt_index as usize;
        let entry = self.t_table[ti];
        if entry.l2_block == 0 {
            return;
        }
        if self.cfg.sector_mapping {
            self.t_table[ti].sector.unset(l1_sub);
        } else {
            self.replacer.release((entry.l2_block - 1) as usize);
            self.t_table[ti] = PtEntry::default();
        }
    }

    /// Deallocates the page-table entries `tstart .. tstart + tlen` of a
    /// deleted texture, releasing any physical blocks they own (§5.2's
    /// deallocation walk).
    pub fn deallocate_texture(&mut self, tstart: u32, tlen: u32) {
        for ti in tstart..tstart + tlen {
            let entry = self.t_table[ti as usize];
            if entry.l2_block != 0 {
                self.replacer.release((entry.l2_block - 1) as usize);
                self.t_table[ti as usize] = PtEntry::default();
            }
        }
    }

    /// Access counters.
    #[inline]
    pub fn stats(&self) -> L2Stats {
        self.stats
    }

    /// Clock victim-search statistics (zeroes for non-clock policies).
    pub fn clock_stats(&self) -> ClockStats {
        match &self.replacer {
            Replacer::Clock(c) => c.stats(),
            _ => ClockStats::default(),
        }
    }

    /// Current clock-hand position (`None` for non-clock policies).
    /// Conformance checking compares this against the reference model after
    /// every operation — a drifted hand means future victims diverge even
    /// while outcomes still agree.
    pub fn clock_hand(&self) -> Option<usize> {
        match &self.replacer {
            Replacer::Clock(c) => Some(c.hand()),
            _ => None,
        }
    }

    /// Resets counters (contents untouched).
    pub fn reset_stats(&mut self) {
        self.stats = L2Stats::default();
        if let Replacer::Clock(c) = &mut self.replacer {
            c.reset_stats();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_l2(blocks: usize, policy: ReplacementPolicy, entries: u32) -> L2Cache {
        let tiling = TilingConfig::PAPER_DEFAULT; // 1 KB blocks
        L2Cache::new(
            L2Config {
                size_bytes: blocks * 1024,
                policy,
                sector_mapping: true,
            },
            tiling,
            entries,
        )
    }

    #[test]
    fn miss_hit_partial_sequence() {
        let mut l2 = small_l2(4, ReplacementPolicy::Clock, 16);
        assert_eq!(l2.access(0, 0), L2Outcome::FullMiss);
        assert_eq!(l2.access(0, 0), L2Outcome::FullHit);
        assert_eq!(l2.access(0, 5), L2Outcome::PartialHit);
        assert_eq!(l2.access(0, 5), L2Outcome::FullHit);
        let s = l2.stats();
        assert_eq!((s.full_misses, s.partial_hits, s.full_hits), (1, 1, 2));
    }

    #[test]
    fn conditional_rates() {
        let mut l2 = small_l2(4, ReplacementPolicy::Clock, 16);
        l2.access(0, 0);
        l2.access(0, 0);
        l2.access(0, 1);
        l2.access(1, 0);
        let s = l2.stats();
        assert_eq!(s.accesses(), 4);
        assert!((s.full_hit_rate() - 0.25).abs() < 1e-12);
        assert!((s.partial_hit_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn replacement_clears_victims_page_entry() {
        let mut l2 = small_l2(2, ReplacementPolicy::Lru, 16);
        l2.access(0, 0);
        l2.access(1, 0);
        l2.access(2, 0); // evicts pt 0 (LRU)
        assert_eq!(l2.access(1, 0), L2Outcome::FullHit);
        assert_eq!(
            l2.access(0, 0),
            L2Outcome::FullMiss,
            "victim must have been unmapped"
        );
    }

    #[test]
    fn lru_keeps_recently_touched() {
        let mut l2 = small_l2(2, ReplacementPolicy::Lru, 16);
        l2.access(0, 0);
        l2.access(1, 0);
        l2.access(0, 1); // partial hit touches block of pt 0
        l2.access(2, 0); // should evict pt 1
        assert_eq!(l2.access(0, 0), L2Outcome::FullHit);
        assert_eq!(l2.access(1, 0), L2Outcome::FullMiss);
    }

    #[test]
    fn fifo_ignores_recency() {
        let mut l2 = small_l2(2, ReplacementPolicy::Fifo, 16);
        l2.access(0, 0);
        l2.access(1, 0);
        l2.access(0, 1); // touch pt 0 — FIFO doesn't care
        l2.access(2, 0); // evicts pt 0 (first allocated)
        assert_eq!(l2.access(1, 0), L2Outcome::FullHit);
        assert_eq!(l2.access(0, 0), L2Outcome::FullMiss);
    }

    #[test]
    fn clock_gives_second_chance() {
        let mut l2 = small_l2(2, ReplacementPolicy::Clock, 16);
        l2.access(0, 0);
        l2.access(1, 0);
        // Both active; a miss sweeps, clears both, takes block 0 (pt 0).
        l2.access(2, 0);
        assert_eq!(
            l2.access(1, 0),
            L2Outcome::FullHit,
            "pt 1 got its second chance"
        );
    }

    #[test]
    fn sector_mapping_off_loads_whole_block() {
        let tiling = TilingConfig::PAPER_DEFAULT;
        let mut l2 = L2Cache::new(
            L2Config {
                size_bytes: 4096,
                policy: ReplacementPolicy::Clock,
                sector_mapping: false,
            },
            tiling,
            16,
        );
        assert_eq!(l2.access(0, 0), L2Outcome::FullMiss);
        assert_eq!(
            l2.access(0, 15),
            L2Outcome::FullHit,
            "all sectors resident after a miss"
        );
    }

    #[test]
    fn working_set_within_capacity_has_no_steady_state_misses() {
        let mut l2 = small_l2(8, ReplacementPolicy::Clock, 8);
        for round in 0..3 {
            for pt in 0..8u32 {
                for sub in 0..16u16 {
                    let out = l2.access(pt, sub);
                    if round > 0 {
                        assert_eq!(out, L2Outcome::FullHit, "round {round} pt {pt} sub {sub}");
                    }
                }
            }
        }
    }

    #[test]
    fn thrashing_when_working_set_exceeds_capacity() {
        let mut l2 = small_l2(2, ReplacementPolicy::Lru, 8);
        // Cyclic sweep over 4 virtual blocks through 2 physical: LRU worst case.
        let mut misses = 0;
        for _ in 0..5 {
            for pt in 0..4u32 {
                if l2.access(pt, 0) == L2Outcome::FullMiss {
                    misses += 1;
                }
            }
        }
        assert_eq!(misses, 20, "every access must miss under cyclic LRU thrash");
    }

    #[test]
    fn deallocate_texture_frees_blocks() {
        let mut l2 = small_l2(4, ReplacementPolicy::Clock, 16);
        l2.access(0, 0);
        l2.access(1, 0);
        assert_eq!(l2.blocks_in_use(), 2);
        l2.deallocate_texture(0, 2);
        assert_eq!(l2.blocks_in_use(), 0);
        assert_eq!(l2.access(0, 0), L2Outcome::FullMiss);
    }

    #[test]
    fn blocks_in_use_tracks_allocation() {
        let mut l2 = small_l2(4, ReplacementPolicy::Clock, 16);
        assert_eq!(l2.blocks_in_use(), 0);
        for pt in 0..6u32 {
            l2.access(pt, 0);
        }
        assert_eq!(l2.blocks_in_use(), 4, "capacity caps the allocation");
        assert_eq!(l2.block_count(), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sub_block_bounds_checked() {
        let mut l2 = small_l2(2, ReplacementPolicy::Clock, 4);
        let _ = l2.access(0, 16); // 16x16/4x4 has sub-blocks 0..16
    }

    #[test]
    fn is_resident_probe_is_side_effect_free() {
        let mut l2 = small_l2(2, ReplacementPolicy::Lru, 8);
        l2.access(0, 0);
        l2.access(1, 0);
        assert!(l2.is_resident(0, 0));
        assert!(!l2.is_resident(0, 1), "sector 1 never downloaded");
        assert!(!l2.is_resident(2, 0));
        let stats_before = l2.stats();
        // Probing pt 0 must not refresh its LRU position...
        for _ in 0..10 {
            l2.is_resident(0, 0);
        }
        l2.access(2, 0); // ...so pt 0 is still the LRU victim.
        assert_eq!(l2.access(1, 0), L2Outcome::FullHit);
        assert!(!l2.is_resident(0, 0));
        assert_eq!(stats_before.accesses() + 2, l2.stats().accesses());
    }

    #[test]
    fn fail_download_clears_the_sector_but_keeps_the_block() {
        let mut l2 = small_l2(4, ReplacementPolicy::Clock, 16);
        assert_eq!(l2.access(0, 3), L2Outcome::FullMiss);
        l2.fail_download(0, 3);
        assert!(!l2.is_resident(0, 3));
        assert_eq!(l2.blocks_in_use(), 1, "the page stays claimed");
        assert_eq!(
            l2.access(0, 3),
            L2Outcome::PartialHit,
            "a later access retries"
        );
    }

    #[test]
    fn fail_download_without_sector_mapping_releases_the_block() {
        let tiling = TilingConfig::PAPER_DEFAULT;
        let mut l2 = L2Cache::new(
            L2Config {
                size_bytes: 4096,
                policy: ReplacementPolicy::Clock,
                sector_mapping: false,
            },
            tiling,
            16,
        );
        l2.access(0, 0);
        l2.fail_download(0, 0);
        assert_eq!(l2.blocks_in_use(), 0);
        assert_eq!(
            l2.access(0, 5),
            L2Outcome::FullMiss,
            "nothing usable was kept"
        );
    }

    #[test]
    fn fail_download_on_unallocated_entry_is_a_no_op() {
        let mut l2 = small_l2(2, ReplacementPolicy::Clock, 8);
        l2.fail_download(3, 0);
        assert_eq!(l2.blocks_in_use(), 0);
    }

    #[test]
    fn lru_release_reuses_block_first() {
        let mut l2 = small_l2(2, ReplacementPolicy::Lru, 8);
        l2.access(0, 0);
        l2.access(1, 0);
        l2.deallocate_texture(0, 1); // free pt 0's block
        l2.access(2, 0); // must take the freed block, not evict pt 1
        assert_eq!(l2.access(1, 0), L2Outcome::FullHit);
    }

    #[test]
    fn zero_access_rates_are_zero_not_nan() {
        // Regression test: with no accesses both conditional rates must be
        // exactly 0.0 (a plain division would yield NaN and poison every
        // downstream aggregate).
        let s = L2Stats::default();
        assert_eq!(s.accesses(), 0);
        assert_eq!(s.full_hit_rate(), 0.0);
        assert_eq!(s.partial_hit_rate(), 0.0);
        assert!(!s.full_hit_rate().is_nan());
        assert!(!s.partial_hit_rate().is_nan());
        // A freshly built cache reports the same.
        let l2 = small_l2(2, ReplacementPolicy::Clock, 4);
        assert_eq!(l2.stats().full_hit_rate(), 0.0);
        assert_eq!(l2.stats().partial_hit_rate(), 0.0);
    }

    #[test]
    fn access_traced_reports_blocks_and_victims() {
        let mut l2 = small_l2(2, ReplacementPolicy::Lru, 16);
        let a = l2.access_traced(0, 0);
        assert_eq!(a.outcome, L2Outcome::FullMiss);
        assert_eq!(a.block, 0);
        assert_eq!(a.evicted_page, None, "free block, nobody evicted");
        let b = l2.access_traced(1, 0);
        assert_eq!(
            (b.outcome, b.block, b.evicted_page),
            (L2Outcome::FullMiss, 1, None)
        );
        // Cache full: pt 2 steals pt 0's block (LRU).
        let c = l2.access_traced(2, 0);
        assert_eq!(
            (c.outcome, c.block, c.evicted_page),
            (L2Outcome::FullMiss, 0, Some(0))
        );
        // Hits and partial hits report the serving block, no victim.
        let d = l2.access_traced(2, 0);
        assert_eq!(
            (d.outcome, d.block, d.evicted_page),
            (L2Outcome::FullHit, 0, None)
        );
        let e = l2.access_traced(2, 3);
        assert_eq!(
            (e.outcome, e.block, e.evicted_page),
            (L2Outcome::PartialHit, 0, None)
        );
    }

    #[test]
    fn clock_hand_is_exposed_for_clock_only() {
        let mut clock = small_l2(2, ReplacementPolicy::Clock, 8);
        assert_eq!(clock.clock_hand(), Some(0));
        clock.access(0, 0);
        assert_eq!(clock.clock_hand(), Some(1), "hand advanced past victim");
        assert_eq!(small_l2(2, ReplacementPolicy::Lru, 8).clock_hand(), None);
        assert_eq!(small_l2(2, ReplacementPolicy::Fifo, 8).clock_hand(), None);
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Satellite coverage: random interleavings of `access`,
        /// `fail_download` and `deallocate_texture` must never leak blocks
        /// or corrupt the replacement state. "No leak" is checked by
        /// deallocating every page at the end — anything `blocks_in_use`
        /// still reports is a block no page owns; "no corruption" by the
        /// cache continuing to serve every later access without panicking
        /// and by the clock hand staying in range throughout.
        #[test]
        fn fail_dealloc_interleavings_never_leak_blocks(
            ops in proptest::collection::vec((0u32..3, 0u32..16, 0u32..16), 1..120usize),
            policy_pick in 0u32..3,
            blocks in 1usize..5,
            sector in any::<bool>(),
        ) {
            let policy = match policy_pick {
                0 => ReplacementPolicy::Clock,
                1 => ReplacementPolicy::Lru,
                _ => ReplacementPolicy::Fifo,
            };
            let entries = 16u32;
            let mut l2 = L2Cache::new(
                L2Config {
                    size_bytes: blocks * 1024,
                    policy,
                    sector_mapping: sector,
                },
                TilingConfig::PAPER_DEFAULT,
                entries,
            );
            for (kind, a, b) in ops {
                match kind {
                    0 => {
                        let _ = l2.access(a % entries, (b % 16) as u16);
                    }
                    1 => l2.fail_download(a % entries, (b % 16) as u16),
                    _ => {
                        let tstart = a % entries;
                        let tlen = (b % (entries - tstart)).max(1);
                        l2.deallocate_texture(tstart, tlen);
                    }
                }
                prop_assert!(l2.blocks_in_use() <= l2.block_count());
                if let Some(hand) = l2.clock_hand() {
                    prop_assert!(hand < l2.block_count(), "clock hand out of range");
                }
            }
            // The replacement state must still be able to cycle through
            // every page without panicking or double-allocating.
            for pt in 0..entries {
                let _ = l2.access(pt, 0);
                prop_assert!(l2.blocks_in_use() <= l2.block_count());
            }
            // Deallocating everything must return every block: anything
            // left in use afterwards is a leaked block.
            l2.deallocate_texture(0, entries);
            prop_assert_eq!(l2.blocks_in_use(), 0, "leaked physical blocks");
            // And the freed cache is fully reusable.
            for pt in 0..entries {
                let _ = l2.access(pt, 0);
            }
            prop_assert_eq!(l2.blocks_in_use(), l2.block_count().min(entries as usize));
        }
    }
}
