//! The transaction-accurate multi-level cache simulator (paper §3.3, §5.3).

use crate::tap::{
    const_filter, degraded_probe, tap_ml, tap_pull, TelOff, TelOn, TelemetryMode, TlbMode, TlbOff,
    TlbOn,
};
use crate::telemetry::EngineTelemetry;
use crate::{
    EngineError, FaultPlan, HostLink, L1Config, L1TextureCache, L2Cache, L2Config, L2Outcome,
    Transfer,
};
use mltc_cache::RoundRobinTlb;
use mltc_telemetry::Recorder;
use mltc_texture::{
    PageTableLayout, TextureId, TextureRegistry, TilingConfig, TranslationMemo, TranslationTables,
};
use mltc_trace::{filter_taps, FilterMode, FrameTrace, PixelRequest};

/// Full configuration of a simulated architecture.
///
/// * `l2: None` models the **pull** architecture (L1 misses download L1
///   tiles straight from host memory over AGP);
/// * `l2: Some(..)` models the proposed **multi-level** architecture.
///
/// ```
/// use mltc_core::EngineConfig;
/// let pull = EngineConfig::default();
/// assert!(pull.l2.is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// On-chip L1 texture cache.
    pub l1: L1Config,
    /// Optional local-memory L2 cache.
    pub l2: Option<L2Config>,
    /// Texture page-table TLB entries; `0` disables TLB modelling. Only
    /// meaningful when an L2 is present (§5.4.3).
    pub tlb_entries: usize,
    /// L2 block / L1 sub-block tiling.
    pub tiling: TilingConfig,
    /// Host-link fault injection. [`FaultPlan::none()`] (the default)
    /// reproduces the fault-free engine bit for bit.
    pub fault: FaultPlan,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            l1: L1Config::default(),
            l2: None,
            tlb_entries: 0,
            tiling: TilingConfig::PAPER_DEFAULT,
            fault: FaultPlan::none(),
        }
    }
}

impl EngineConfig {
    /// Short human-readable description (used as series labels in the
    /// experiment harness).
    pub fn label(&self) -> String {
        let l1kb = self.l1.size_bytes / 1024;
        match self.l2 {
            None => format!("{l1kb} KB L1, no L2"),
            Some(l2) => format!("{l1kb} KB L1, {} MB L2", l2.size_bytes >> 20),
        }
    }

    /// Validates the cache geometry (shared by [`SimEngine::try_new`] and
    /// the multi-client [`TextureService`](crate::TextureService), which
    /// applies it to each per-client L2 partition).
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidGeometry`] for an L1 with zero ways, zero sets
    /// or a non-power-of-two set count, or an L2 smaller than one block.
    pub fn validate_geometry(&self) -> Result<(), EngineError> {
        if self.l1.ways == 0 {
            return Err(EngineError::InvalidGeometry(
                "L1 must have at least one way".into(),
            ));
        }
        let sets = self.l1.sets();
        if sets == 0 {
            return Err(EngineError::InvalidGeometry(format!(
                "L1 of {} bytes has no sets",
                self.l1.size_bytes
            )));
        }
        if !sets.is_power_of_two() {
            return Err(EngineError::InvalidGeometry(format!(
                "L1 set count {sets} must be a power of two"
            )));
        }
        if let Some(l2) = self.l2 {
            let block_bytes = self.tiling.l2().cache_bytes();
            if l2.size_bytes < block_bytes {
                return Err(EngineError::InvalidGeometry(format!(
                    "L2 of {} bytes holds no {} blocks",
                    l2.size_bytes,
                    self.tiling.l2()
                )));
            }
        }
        Ok(())
    }
}

/// Per-frame traffic and hit counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrameCounters {
    /// Texel lookups presented to the L1.
    pub l1_accesses: u64,
    /// L1 hits.
    pub l1_hits: u64,
    /// L2 full hits (conditional on L1 miss).
    pub l2_full_hits: u64,
    /// L2 partial hits.
    pub l2_partial_hits: u64,
    /// L2 full misses.
    pub l2_full_misses: u64,
    /// Bytes downloaded from host memory over AGP.
    pub host_bytes: u64,
    /// Bytes moved through local L2 cache memory (reads on full hits,
    /// writes on downloads).
    pub l2_local_bytes: u64,
    /// TLB lookups (one per L1 miss when a TLB is modelled).
    pub tlb_accesses: u64,
    /// TLB hits.
    pub tlb_hits: u64,
    /// Host-transfer re-attempts beyond each first try (fault injection).
    pub retries: u64,
    /// Host transfers that exhausted their retry budget.
    pub failed_transfers: u64,
    /// Taps whose download failed but that were served from the nearest
    /// coarser mip level resident in L2 (graceful degradation).
    pub degraded_taps: u64,
    /// Taps lost entirely: the download failed and no coarser-mip data was
    /// available (always the case in the pull architecture, which has no
    /// L2 to fall back on).
    pub dropped_taps: u64,
}

impl FrameCounters {
    /// L1 hit rate.
    pub fn l1_hit_rate(&self) -> f64 {
        rate(self.l1_hits, self.l1_accesses)
    }

    /// L1 miss rate (0.0 when no accesses happened, like every other rate).
    pub fn l1_miss_rate(&self) -> f64 {
        rate(self.l1_accesses - self.l1_hits, self.l1_accesses)
    }

    /// L2 full-hit rate given an L1 miss.
    pub fn l2_full_hit_rate(&self) -> f64 {
        rate(self.l2_full_hits, self.l2_accesses())
    }

    /// L2 partial-hit rate given an L1 miss.
    pub fn l2_partial_hit_rate(&self) -> f64 {
        rate(self.l2_partial_hits, self.l2_accesses())
    }

    /// L1 misses presented to the L2.
    pub fn l2_accesses(&self) -> u64 {
        self.l2_full_hits + self.l2_partial_hits + self.l2_full_misses
    }

    /// TLB hit rate.
    pub fn tlb_hit_rate(&self) -> f64 {
        rate(self.tlb_hits, self.tlb_accesses)
    }

    /// Host download traffic in megabytes.
    pub fn host_mb(&self) -> f64 {
        self.host_bytes as f64 / (1024.0 * 1024.0)
    }

    /// Accumulates another frame's counters.
    pub fn merge(&mut self, o: &FrameCounters) {
        self.l1_accesses += o.l1_accesses;
        self.l1_hits += o.l1_hits;
        self.l2_full_hits += o.l2_full_hits;
        self.l2_partial_hits += o.l2_partial_hits;
        self.l2_full_misses += o.l2_full_misses;
        self.host_bytes += o.host_bytes;
        self.l2_local_bytes += o.l2_local_bytes;
        self.tlb_accesses += o.tlb_accesses;
        self.tlb_hits += o.tlb_hits;
        self.retries += o.retries;
        self.failed_transfers += o.failed_transfers;
        self.degraded_taps += o.degraded_taps;
        self.dropped_taps += o.dropped_taps;
    }
}

fn rate(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// What happened to a single texel access, step by step.
///
/// Returned by [`SimEngine::access_texel_traced`] so an external reference
/// model (`mltc-oracle`) can compare the engine's decisions in lockstep:
/// classification at every level, the physical L2 block involved, the
/// eviction victim (if any) and the bytes that crossed the host link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessTrace {
    /// The access hit in L1 (nothing below L1 was consulted).
    pub l1_hit: bool,
    /// TLB outcome; `None` when no TLB is modelled or L1 hit.
    pub tlb_hit: Option<bool>,
    /// L2 classification; `None` without an L2 or on an L1 hit.
    pub l2: Option<L2Outcome>,
    /// Physical L2 block that served (or was allocated for) the access.
    pub l2_block: Option<u32>,
    /// Page-table index whose block was evicted to make room, if the access
    /// caused a replacement.
    pub evicted_page: Option<u32>,
    /// Bytes actually delivered over the host link by this access.
    pub host_bytes: u64,
    /// Host-link re-attempts beyond the first try.
    pub retries: u32,
    /// The host transfer exhausted its retry budget.
    pub failed: bool,
    /// Failed tap served from a coarser resident mip level.
    pub degraded: bool,
    /// Failed tap lost entirely.
    pub dropped: bool,
}

/// The simulator: one architecture configuration replaying texel accesses.
///
/// Control flow per texel (the paper's Fig. 7): compute the virtual block
/// address (step A); probe L1 (B); on a miss consult the page table —
/// through the TLB when modelled — and either serve from L2 (C/D), download
/// the missing L1 sub-block from host into L2 and L1 in parallel (F), or
/// run block replacement first (E). Without an L2, every L1 miss downloads
/// an L1 tile from host memory (pull architecture).
#[derive(Debug)]
pub struct SimEngine {
    cfg: EngineConfig,
    layout: PageTableLayout,
    /// Per-tid mip dims for filter expansion (`None` = deleted texture).
    dims: Vec<Option<Vec<(u32, u32)>>>,
    l1: L1TextureCache,
    l2: Option<L2Cache>,
    tlb: Option<RoundRobinTlb>,
    host: HostLink,
    current: FrameCounters,
    frames: Vec<FrameCounters>,
    /// Telemetry handles; `None` (detached) keeps every dynamic path
    /// through [`access_texel`](Self::access_texel) at one extra branch.
    tel: Option<Box<EngineTelemetry>>,
}

impl SimEngine {
    /// Builds an engine for the textures of `registry`.
    ///
    /// # Panics
    ///
    /// Panics on any error [`try_new`](Self::try_new) would report.
    pub fn new(cfg: EngineConfig, registry: &TextureRegistry) -> Self {
        Self::try_new(cfg, registry).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds an engine for the textures of `registry`, reporting invalid
    /// configurations instead of panicking.
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidGeometry`] for an L1 with zero ways, zero
    /// sets or a non-power-of-two set count, or an L2 smaller than one
    /// block; [`EngineError::EmptyPageTable`] when an L2 is configured but
    /// the registry holds no textures.
    pub fn try_new(cfg: EngineConfig, registry: &TextureRegistry) -> Result<Self, EngineError> {
        cfg.validate_geometry()?;
        let layout = PageTableLayout::new(registry, cfg.tiling);
        if cfg.l2.is_some() && layout.entry_count() == 0 {
            return Err(EngineError::EmptyPageTable);
        }
        let mut dims = vec![None; registry.issued_count()];
        for (tid, pyr) in registry.iter() {
            dims[tid.index() as usize] =
                Some(pyr.iter().map(|l| (l.width(), l.height())).collect());
        }
        let l2 = cfg
            .l2
            .map(|c| L2Cache::new(c, cfg.tiling, layout.entry_count()));
        let tlb = (cfg.tlb_entries > 0).then(|| RoundRobinTlb::new(cfg.tlb_entries));
        Ok(Self {
            cfg,
            layout,
            dims,
            l1: L1TextureCache::new(cfg.l1),
            l2,
            tlb,
            host: HostLink::new(cfg.fault),
            current: FrameCounters::default(),
            frames: Vec::new(),
            tel: None,
        })
    }

    /// The configuration.
    pub fn config(&self) -> EngineConfig {
        self.cfg
    }

    /// Attaches telemetry handles registered on `recorder`: outcome
    /// counters and histograms under `group` (one namespace per workload,
    /// merged across configurations) and a per-frame time series under
    /// `label` (unique per run). A disabled recorder detaches — the engine
    /// then pays a single not-taken branch per texel, and counters are
    /// bit-identical either way because telemetry only observes.
    pub fn attach_telemetry(&mut self, recorder: &Recorder, label: &str, group: &str) {
        self.tel = recorder
            .is_enabled()
            .then(|| Box::new(EngineTelemetry::new(recorder, label, group)));
    }

    /// Whether telemetry is currently attached (i.e. recording).
    pub fn telemetry_attached(&self) -> bool {
        self.tel.is_some()
    }

    /// Simulates one texel read: `(u, v)` are in-bounds texel coordinates of
    /// mip level `m` of `tid`.
    ///
    /// Host downloads go through the configured [`HostLink`]; a transfer
    /// that exhausts its retry budget is rolled back (the speculatively
    /// installed L1 line — and L2 sector, if any — is invalidated so failed
    /// data never reads as resident) and the tap is either *degraded* to
    /// the nearest coarser mip level resident in L2 or *dropped*.
    ///
    /// # Panics
    ///
    /// Panics if the texture is unknown. Out-of-range coordinates are
    /// caught in debug builds; use
    /// [`try_access_texel`](Self::try_access_texel) for untrusted input.
    #[inline]
    pub fn access_texel(&mut self, tid: TextureId, m: u32, u: u32, v: u32) {
        let _ = self.access_texel_traced(tid, m, u, v);
    }

    /// [`access_texel`](Self::access_texel), additionally reporting what
    /// happened as an [`AccessTrace`] (counters are updated identically —
    /// the plain form merely discards the trace). This is the lockstep
    /// introspection hook the differential oracle compares against.
    pub fn access_texel_traced(&mut self, tid: TextureId, m: u32, u: u32, v: u32) -> AccessTrace {
        let mut trace = AccessTrace::default();
        self.current.l1_accesses += 1;
        if self.l1.access(tid, m, u, v) {
            self.current.l1_hits += 1;
            trace.l1_hit = true;
            if let Some(tel) = &mut self.tel {
                tel.l1_hits.incr();
            }
            return trace;
        }

        let l1_bytes = self.cfg.l1.line_bytes() as u64;
        match &mut self.l2 {
            None => {
                // Pull architecture: L1 tile straight from host memory.
                match self.host.transfer(tid) {
                    Transfer::Delivered { retries } => {
                        self.current.retries += retries as u64;
                        self.current.host_bytes += l1_bytes;
                        trace.retries = retries;
                        trace.host_bytes = l1_bytes;
                        if let Some(tel) = &mut self.tel {
                            tel.l1_misses.incr();
                            tel.host_delivered.incr();
                            tel.host_retries.add(retries as u64);
                            tel.transfer_bytes.record(l1_bytes);
                        }
                    }
                    Transfer::Failed { retries } => {
                        // No fallback storage exists without an L2: undo the
                        // speculative L1 install and drop the tap.
                        self.current.retries += retries as u64;
                        self.current.failed_transfers += 1;
                        self.l1.invalidate(tid, m, u, v);
                        self.current.dropped_taps += 1;
                        trace.retries = retries;
                        trace.failed = true;
                        trace.dropped = true;
                        if let Some(tel) = &mut self.tel {
                            tel.l1_misses.incr();
                            tel.host_failed.incr();
                            tel.host_retries.add(retries as u64);
                            tel.dropped_taps.incr();
                        }
                    }
                }
            }
            Some(l2) => {
                let addr = self
                    .layout
                    .translate(tid, u, v, m)
                    .expect("texel access to texture unknown to the engine");
                let pt_index = self.layout.page_table_index(&addr);
                let mut tlb_hit = None;
                if let Some(tlb) = &mut self.tlb {
                    self.current.tlb_accesses += 1;
                    let hit = tlb.access(pt_index as u64);
                    if hit {
                        self.current.tlb_hits += 1;
                    }
                    tlb_hit = Some(hit);
                }
                trace.tlb_hit = tlb_hit;
                let l2_block_bytes = self.cfg.tiling.l2().cache_bytes() as u64;
                let l2_trace = l2.access_traced(pt_index, addr.l1);
                let outcome = l2_trace.outcome;
                trace.l2 = Some(outcome);
                trace.l2_block = Some(l2_trace.block);
                trace.evicted_page = l2_trace.evicted_page;
                let dl = match outcome {
                    L2Outcome::FullHit => {
                        // Served from local memory; no host transfer at all.
                        self.current.l2_full_hits += 1;
                        self.current.l2_local_bytes += l1_bytes;
                        if let Some(tel) = &mut self.tel {
                            tel.on_l2_access(pt_index as u64, tlb_hit);
                            tel.l2_full_hits.incr();
                        }
                        return trace;
                    }
                    L2Outcome::PartialHit => {
                        self.current.l2_partial_hits += 1;
                        l1_bytes
                    }
                    L2Outcome::FullMiss => {
                        self.current.l2_full_misses += 1;
                        if l2.config().sector_mapping {
                            l1_bytes
                        } else {
                            l2_block_bytes
                        }
                    }
                };
                match self.host.transfer(tid) {
                    Transfer::Delivered { retries } => {
                        self.current.retries += retries as u64;
                        // Downloaded into L2 and L1 in parallel (step F).
                        self.current.host_bytes += dl;
                        self.current.l2_local_bytes += dl;
                        trace.retries = retries;
                        trace.host_bytes = dl;
                        if let Some(tel) = &mut self.tel {
                            tel.on_l2_access(pt_index as u64, tlb_hit);
                            match outcome {
                                L2Outcome::PartialHit => tel.l2_partial_hits.incr(),
                                L2Outcome::FullMiss => {
                                    tel.l2_full_misses.incr();
                                    tel.on_full_miss_sweep(l2.clock_stats());
                                }
                                L2Outcome::FullHit => unreachable!("full hits return above"),
                            }
                            tel.host_delivered.incr();
                            tel.host_retries.add(retries as u64);
                            tel.transfer_bytes.record(dl);
                        }
                    }
                    Transfer::Failed { retries } => {
                        self.current.retries += retries as u64;
                        self.current.failed_transfers += 1;
                        trace.retries = retries;
                        trace.failed = true;
                        // Roll back the residency the download would have
                        // backed; failed attempts move no bytes.
                        l2.fail_download(pt_index, addr.l1);
                        self.l1.invalidate(tid, m, u, v);
                        // Graceful degradation: stand in the nearest coarser
                        // mip texel already resident in L2. The probe is
                        // read-only so a degraded serve does not perturb
                        // replacement state.
                        let served =
                            degraded_probe(self.layout.tables(), &self.dims, l2, tid, m, u, v);
                        if served {
                            self.current.degraded_taps += 1;
                            self.current.l2_local_bytes += l1_bytes;
                            trace.degraded = true;
                        } else {
                            self.current.dropped_taps += 1;
                            trace.dropped = true;
                        }
                        if let Some(tel) = &mut self.tel {
                            tel.on_l2_access(pt_index as u64, tlb_hit);
                            match outcome {
                                L2Outcome::PartialHit => tel.l2_partial_hits.incr(),
                                L2Outcome::FullMiss => {
                                    tel.l2_full_misses.incr();
                                    tel.on_full_miss_sweep(l2.clock_stats());
                                }
                                L2Outcome::FullHit => unreachable!("full hits return above"),
                            }
                            tel.host_failed.incr();
                            tel.host_retries.add(retries as u64);
                            if served {
                                tel.degraded_taps.incr();
                            } else {
                                tel.dropped_taps.incr();
                            }
                        }
                    }
                }
            }
        }
        trace
    }

    /// [`access_texel`](Self::access_texel) with full validation: unknown
    /// textures, missing mip levels and out-of-range coordinates are
    /// reported as errors (in release builds too) instead of panicking.
    pub fn try_access_texel(
        &mut self,
        tid: TextureId,
        m: u32,
        u: u32,
        v: u32,
    ) -> Result<(), EngineError> {
        let dims = self
            .dims
            .get(tid.index() as usize)
            .and_then(|d| d.as_ref())
            .ok_or(EngineError::UnknownTexture(tid))?;
        let (width, height) = dims.get(m as usize).copied().unwrap_or((0, 0));
        if u >= width || v >= height {
            return Err(EngineError::CoordsOutOfRange {
                tid,
                m,
                u,
                v,
                width,
                height,
            });
        }
        self.access_texel(tid, m, u, v);
        Ok(())
    }

    /// Replays a whole frame trace (expanding each pixel request through the
    /// trace's filter mode) and closes the frame.
    ///
    /// # Panics
    ///
    /// Panics if the trace references a texture unknown to the engine.
    pub fn run_frame(&mut self, trace: &FrameTrace) {
        self.try_run_frame(trace).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`run_frame`](Self::run_frame), reporting unknown textures as
    /// [`EngineError::UnknownTexture`] instead of panicking.
    ///
    /// # Errors
    ///
    /// On error the frame is left open: taps replayed before the offending
    /// request stay in the current (unclosed) frame's counters and
    /// [`end_frame`](Self::end_frame) has not run.
    pub fn try_run_frame(&mut self, trace: &FrameTrace) -> Result<(), EngineError> {
        self.try_run_frame_as(trace, trace.filter)
    }

    /// [`try_run_frame`](Self::try_run_frame) with the filter mode
    /// overridden.
    ///
    /// A recorded request stream is filter-independent — the rasterizer
    /// emits one request per textured fragment regardless of filtering, and
    /// tap expansion happens here — so one canonical (point-filtered) trace
    /// can be replayed as bilinear or trilinear without re-rendering. This
    /// is what lets the experiment suite's trace store key traces without
    /// the filter.
    ///
    /// # Errors
    ///
    /// Same contract as [`try_run_frame`](Self::try_run_frame).
    pub fn try_run_frame_as(
        &mut self,
        trace: &FrameTrace,
        filter: FilterMode,
    ) -> Result<(), EngineError> {
        self.try_run_frame_requests(filter, trace.requests.iter().copied())
    }

    /// Replays one frame's pixel requests from any source — e.g. a
    /// [`FrameCursor`](mltc_trace::codec::FrameCursor) decoding straight
    /// out of a reused read buffer — expanding taps through `filter` and
    /// closing the frame. This is the batch fast path: the per-tap dynamic
    /// branches of [`access_texel_traced`](Self::access_texel_traced) are
    /// resolved once here and the loop runs monomorphized.
    ///
    /// # Errors
    ///
    /// Same contract as [`try_run_frame`](Self::try_run_frame).
    pub fn try_run_frame_requests<I>(
        &mut self,
        filter: FilterMode,
        requests: I,
    ) -> Result<(), EngineError>
    where
        I: IntoIterator<Item = PixelRequest>,
    {
        match filter {
            FilterMode::Point => self.replay_frame::<0, _>(requests),
            FilterMode::Bilinear => self.replay_frame::<1, _>(requests),
            FilterMode::Trilinear => self.replay_frame::<2, _>(requests),
        }
    }

    /// [`try_run_frame_as`](Self::try_run_frame_as) routed tap-by-tap
    /// through [`access_texel_traced`](Self::access_texel_traced), the
    /// canonical slow path. Counters, cache state and telemetry are
    /// bit-identical to the monomorphized fast path — the golden replay
    /// tests assert exactly that on every committed trace.
    ///
    /// # Errors
    ///
    /// Same contract as [`try_run_frame`](Self::try_run_frame).
    pub fn try_run_frame_as_traced(
        &mut self,
        trace: &FrameTrace,
        filter: FilterMode,
    ) -> Result<(), EngineError> {
        for req in &trace.requests {
            let dims = self
                .dims
                .get(req.tid.index() as usize)
                .and_then(|d| d.as_ref())
                .ok_or(EngineError::UnknownTexture(req.tid))?;
            let levels = dims.len() as u32;
            let taps = filter_taps(req, filter, levels, |m| dims[m as usize]);
            for tap in &taps {
                let _ = self.access_texel_traced(req.tid, tap.m, tap.u, tap.v);
            }
        }
        self.end_frame();
        Ok(())
    }

    /// Replays pre-expanded `(tid, m, u, v)` taps through the monomorphized
    /// fast path without closing the frame (the differential oracle's
    /// batch-replay hook; call [`end_frame`](Self::end_frame) yourself).
    ///
    /// # Panics
    ///
    /// Panics if a tap references a texture unknown to the engine (same
    /// contract as [`access_texel`](Self::access_texel)).
    pub fn replay_taps(&mut self, taps: &[(u32, u32, u32, u32)]) {
        let Self {
            cfg,
            layout,
            dims,
            l1,
            l2,
            tlb,
            host,
            current,
            tel,
            ..
        } = self;
        let tables = layout.tables();
        let l1_bytes = cfg.l1.line_bytes() as u64;
        let l2_block_bytes = cfg.tiling.l2().cache_bytes() as u64;
        macro_rules! pull {
            ($tel:expr) => {{
                let mut tel = $tel;
                for &(tid, m, u, v) in taps {
                    tap_pull(
                        TextureId::from_index(tid),
                        m,
                        u,
                        v,
                        l1_bytes,
                        l1,
                        host,
                        current,
                        &mut tel,
                    );
                }
            }};
        }
        macro_rules! ml {
            ($l2:expr, $tlb:expr, $tel:expr) => {{
                let (l2, mut tlb, mut tel) = ($l2, $tlb, $tel);
                let dl_full_miss = if l2.config().sector_mapping {
                    l1_bytes
                } else {
                    l2_block_bytes
                };
                let mut memo = TranslationMemo::default();
                for &(tid, m, u, v) in taps {
                    tap_ml(
                        TextureId::from_index(tid),
                        m,
                        u,
                        v,
                        l1_bytes,
                        dl_full_miss,
                        tables,
                        &mut memo,
                        dims,
                        l1,
                        l2,
                        host,
                        current,
                        &mut tlb,
                        &mut tel,
                    );
                }
            }};
        }
        match (l2.as_mut(), tlb.as_mut(), tel.as_deref_mut()) {
            (None, _, None) => pull!(TelOff),
            (None, _, Some(t)) => pull!(TelOn(t)),
            (Some(l2), None, None) => ml!(l2, TlbOff, TelOff),
            (Some(l2), None, Some(t)) => ml!(l2, TlbOff, TelOn(t)),
            (Some(l2), Some(tlb), None) => ml!(l2, TlbOn(tlb), TelOff),
            (Some(l2), Some(tlb), Some(t)) => ml!(l2, TlbOn(tlb), TelOn(t)),
        }
    }

    /// The monomorphized frame replay: one instantiation per
    /// (filter, L2 present, TLB present, telemetry attached) combination,
    /// so the million-tap loop carries no dynamic branches. `F` encodes the
    /// filter mode (0 = point, 1 = bilinear, 2 = trilinear).
    fn replay_frame<const F: u8, I>(&mut self, requests: I) -> Result<(), EngineError>
    where
        I: IntoIterator<Item = PixelRequest>,
    {
        {
            let Self {
                cfg,
                layout,
                dims,
                l1,
                l2,
                tlb,
                host,
                current,
                tel,
                ..
            } = self;
            let tables = layout.tables();
            match (l2.as_mut(), tlb.as_mut(), tel.as_deref_mut()) {
                (None, _, None) => {
                    replay_pull::<F, _, _>(requests, cfg, dims, l1, host, current, TelOff)
                }
                (None, _, Some(t)) => {
                    replay_pull::<F, _, _>(requests, cfg, dims, l1, host, current, TelOn(t))
                }
                (Some(l2), None, None) => replay_ml::<F, _, _, _>(
                    requests, cfg, tables, dims, l1, l2, host, current, TlbOff, TelOff,
                ),
                (Some(l2), None, Some(t)) => replay_ml::<F, _, _, _>(
                    requests,
                    cfg,
                    tables,
                    dims,
                    l1,
                    l2,
                    host,
                    current,
                    TlbOff,
                    TelOn(t),
                ),
                (Some(l2), Some(tlb), None) => replay_ml::<F, _, _, _>(
                    requests,
                    cfg,
                    tables,
                    dims,
                    l1,
                    l2,
                    host,
                    current,
                    TlbOn(tlb),
                    TelOff,
                ),
                (Some(l2), Some(tlb), Some(t)) => replay_ml::<F, _, _, _>(
                    requests,
                    cfg,
                    tables,
                    dims,
                    l1,
                    l2,
                    host,
                    current,
                    TlbOn(tlb),
                    TelOn(t),
                ),
            }?;
        }
        self.end_frame();
        Ok(())
    }

    /// Closes the current frame: pushes its counters and starts a new one.
    pub fn end_frame(&mut self) {
        if let Some(tel) = &mut self.tel {
            let clock = self.l2.as_ref().map(|l2| l2.clock_stats());
            tel.on_frame_end(self.frames.len() as u64, &self.current, clock);
        }
        self.frames.push(self.current);
        self.current = FrameCounters::default();
    }

    /// Counters of the most recently completed frame.
    ///
    /// # Panics
    ///
    /// Panics if no frame has been completed yet.
    pub fn frame_stats(&self) -> &FrameCounters {
        self.frames.last().expect("no completed frames")
    }

    /// Per-frame counters for all completed frames.
    pub fn frames(&self) -> &[FrameCounters] {
        &self.frames
    }

    /// Sum of all completed frames.
    pub fn totals(&self) -> FrameCounters {
        let mut t = FrameCounters::default();
        for f in &self.frames {
            t.merge(f);
        }
        t
    }

    /// The L2 cache, when configured (for clock statistics etc.).
    pub fn l2(&self) -> Option<&L2Cache> {
        self.l2.as_ref()
    }

    /// The host download link (for fault-injection statistics).
    pub fn host(&self) -> &HostLink {
        &self.host
    }

    /// Deletes a texture mid-run: deallocates its page-table entries and
    /// releases its L2 blocks. (L1 lines age out naturally; the design is
    /// non-inclusive.)
    pub fn delete_texture(&mut self, tid: TextureId) {
        if let (Some(l2), Some(tstart), Some(tlen)) =
            (&mut self.l2, self.layout.tstart(tid), self.layout.tlen(tid))
        {
            l2.deallocate_texture(tstart, tlen);
        }
    }
}

// ---------------------------------------------------------------------------
// Monomorphized replay fast path.
//
// `access_texel_traced` above is the canonical per-tap slow path: every
// dynamic decision (`Option<L2Cache>`, `Option<Tlb>`, attached telemetry,
// filter mode) is re-examined per texel. The batch replay entry points
// resolve those decisions once per frame and instantiate a specialized
// loop per combination; the tap bodies (crate::tap) are shared verbatim
// between the specializations — and with the multi-client service layer —
// so counters, cache state, host-link draws and telemetry stay
// bit-identical to the slow path (the differential oracle and the golden
// trace tests enforce this).
// ---------------------------------------------------------------------------

/// Pull-architecture frame loop (no L2, hence no translation and no TLB).
fn replay_pull<const F: u8, I, Te>(
    requests: I,
    cfg: &EngineConfig,
    dims: &[Option<Vec<(u32, u32)>>],
    l1: &mut L1TextureCache,
    host: &mut HostLink,
    current: &mut FrameCounters,
    mut tel: Te,
) -> Result<(), EngineError>
where
    I: IntoIterator<Item = PixelRequest>,
    Te: TelemetryMode,
{
    let l1_bytes = cfg.l1.line_bytes() as u64;
    for req in requests {
        let d = dims
            .get(req.tid.index() as usize)
            .and_then(|d| d.as_ref())
            .ok_or(EngineError::UnknownTexture(req.tid))?;
        let levels = d.len() as u32;
        let taps = filter_taps(&req, const_filter::<F>(), levels, |m| d[m as usize]);
        for tap in &taps {
            tap_pull(
                req.tid, tap.m, tap.u, tap.v, l1_bytes, l1, host, current, &mut tel,
            );
        }
    }
    Ok(())
}

/// Multi-level frame loop: per-frame constants (line/block bytes, full-miss
/// download size) and the translation memo are hoisted out of the tap loop.
#[allow(clippy::too_many_arguments)]
fn replay_ml<const F: u8, I, Tl, Te>(
    requests: I,
    cfg: &EngineConfig,
    tables: &TranslationTables,
    dims: &[Option<Vec<(u32, u32)>>],
    l1: &mut L1TextureCache,
    l2: &mut L2Cache,
    host: &mut HostLink,
    current: &mut FrameCounters,
    mut tlb: Tl,
    mut tel: Te,
) -> Result<(), EngineError>
where
    I: IntoIterator<Item = PixelRequest>,
    Tl: TlbMode,
    Te: TelemetryMode,
{
    let l1_bytes = cfg.l1.line_bytes() as u64;
    let l2_block_bytes = cfg.tiling.l2().cache_bytes() as u64;
    let dl_full_miss = if l2.config().sector_mapping {
        l1_bytes
    } else {
        l2_block_bytes
    };
    let mut memo = TranslationMemo::default();
    for req in requests {
        let d = dims
            .get(req.tid.index() as usize)
            .and_then(|d| d.as_ref())
            .ok_or(EngineError::UnknownTexture(req.tid))?;
        let levels = d.len() as u32;
        let taps = filter_taps(&req, const_filter::<F>(), levels, |m| d[m as usize]);
        for tap in &taps {
            tap_ml(
                req.tid,
                tap.m,
                tap.u,
                tap.v,
                l1_bytes,
                dl_full_miss,
                tables,
                &mut memo,
                dims,
                l1,
                l2,
                host,
                current,
                &mut tlb,
                &mut tel,
            );
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TextureBlackout;
    use mltc_texture::{synth, MipPyramid};
    use mltc_trace::{FilterMode, PixelRequest};

    fn registry(n: usize, dim: u32) -> TextureRegistry {
        let mut reg = TextureRegistry::new();
        for i in 0..n {
            reg.load(
                format!("t{i}"),
                MipPyramid::from_image(synth::checkerboard(dim, 4, [0; 3], [255; 3])),
            );
        }
        reg
    }

    fn sweep(engine: &mut SimEngine, tid: TextureId, dim: u32) {
        for v in 0..dim {
            for u in 0..dim {
                engine.access_texel(tid, 0, u, v);
            }
        }
        engine.end_frame();
    }

    #[test]
    fn pull_downloads_every_l1_miss() {
        let reg = registry(1, 64);
        let mut e = SimEngine::new(
            EngineConfig {
                l1: L1Config::kb(2),
                ..EngineConfig::default()
            },
            &reg,
        );
        sweep(&mut e, TextureId::from_index(0), 64);
        let f = e.frame_stats();
        assert_eq!(f.l1_accesses, 64 * 64);
        let misses = f.l1_accesses - f.l1_hits;
        assert_eq!(f.host_bytes, misses * 64);
        assert_eq!(f.l2_accesses(), 0);
        assert_eq!(f.l2_local_bytes, 0);
    }

    #[test]
    fn l2_absorbs_interframe_reuse() {
        let reg = registry(1, 128);
        let cfg = EngineConfig {
            l1: L1Config::kb(2),
            l2: Some(L2Config::mb(2)),
            ..EngineConfig::default()
        };
        let mut e = SimEngine::new(cfg, &reg);
        sweep(&mut e, TextureId::from_index(0), 128);
        sweep(&mut e, TextureId::from_index(0), 128);
        let first = e.frames()[0];
        let second = e.frames()[1];
        assert!(first.host_bytes > 0);
        assert_eq!(second.host_bytes, 0, "second frame served entirely from L2");
        assert!(second.l2_full_hit_rate() > 0.999);
        assert!(second.l2_local_bytes > 0);
    }

    #[test]
    fn partial_hits_download_sub_blocks_on_demand() {
        let reg = registry(1, 64);
        let cfg = EngineConfig {
            l1: L1Config::kb(2),
            l2: Some(L2Config::mb(2)),
            ..EngineConfig::default()
        };
        let mut e = SimEngine::new(cfg, &reg);
        // Touch one texel per L2 block: full misses only.
        for by in 0..4u32 {
            for bx in 0..4u32 {
                e.access_texel(TextureId::from_index(0), 0, bx * 16, by * 16);
            }
        }
        e.end_frame();
        let f1 = e.frames()[0];
        assert_eq!(f1.l2_full_misses, 16);
        assert_eq!(f1.l2_partial_hits, 0);
        // Now touch a different sub-block of each: partial hits.
        for by in 0..4u32 {
            for bx in 0..4u32 {
                e.access_texel(TextureId::from_index(0), 0, bx * 16 + 8, by * 16 + 8);
            }
        }
        e.end_frame();
        let f2 = e.frames()[1];
        assert_eq!(f2.l2_partial_hits, 16);
        assert_eq!(f2.l2_full_misses, 0);
        assert_eq!(f2.host_bytes, 16 * 64);
    }

    #[test]
    fn without_sector_mapping_misses_cost_whole_blocks() {
        let reg = registry(1, 64);
        let cfg = EngineConfig {
            l1: L1Config::kb(2),
            l2: Some(L2Config {
                sector_mapping: false,
                ..L2Config::mb(2)
            }),
            ..EngineConfig::default()
        };
        let mut e = SimEngine::new(cfg, &reg);
        e.access_texel(TextureId::from_index(0), 0, 0, 0);
        e.end_frame();
        assert_eq!(
            e.frame_stats().host_bytes,
            1024,
            "full 16x16x4B block downloaded"
        );
    }

    #[test]
    fn tlb_counters_track_l1_misses() {
        let reg = registry(2, 64);
        let cfg = EngineConfig {
            l1: L1Config::kb(2),
            l2: Some(L2Config::mb(2)),
            tlb_entries: 2,
            ..EngineConfig::default()
        };
        let mut e = SimEngine::new(cfg, &reg);
        sweep(&mut e, TextureId::from_index(0), 64);
        let f = e.frame_stats();
        let misses = f.l1_accesses - f.l1_hits;
        assert_eq!(f.tlb_accesses, misses);
        assert!(f.tlb_hits <= f.tlb_accesses);
        assert!(f.tlb_hits > 0, "sequential blocks re-hit the TLB");
    }

    #[test]
    fn run_frame_expands_filter_footprints() {
        let reg = registry(1, 64);
        let mut e = SimEngine::new(EngineConfig::default(), &reg);
        let mut t = FrameTrace::new(0, 8, 8, FilterMode::Trilinear);
        t.push(PixelRequest {
            tid: TextureId::from_index(0),
            u: 8.0,
            v: 8.0,
            lod: 0.5,
        });
        e.run_frame(&t);
        assert_eq!(e.frame_stats().l1_accesses, 8, "trilinear = 8 taps");
    }

    #[test]
    fn totals_accumulate_frames() {
        let reg = registry(1, 64);
        let mut e = SimEngine::new(EngineConfig::default(), &reg);
        sweep(&mut e, TextureId::from_index(0), 64);
        sweep(&mut e, TextureId::from_index(0), 64);
        let t = e.totals();
        assert_eq!(t.l1_accesses, 2 * 64 * 64);
        assert_eq!(e.frames().len(), 2);
    }

    #[test]
    fn delete_texture_releases_l2_blocks() {
        let reg = registry(2, 64);
        let cfg = EngineConfig {
            l1: L1Config::kb(2),
            l2: Some(L2Config::mb(2)),
            ..EngineConfig::default()
        };
        let mut e = SimEngine::new(cfg, &reg);
        sweep(&mut e, TextureId::from_index(0), 64);
        let used = e.l2().unwrap().blocks_in_use();
        assert!(used > 0);
        e.delete_texture(TextureId::from_index(0));
        assert_eq!(e.l2().unwrap().blocks_in_use(), 0);
    }

    #[test]
    fn try_new_reports_invalid_configs() {
        let reg = registry(1, 64);
        let empty = TextureRegistry::new();
        let ml = EngineConfig {
            l2: Some(L2Config::mb(2)),
            ..EngineConfig::default()
        };
        assert_eq!(
            SimEngine::try_new(ml, &empty).unwrap_err(),
            EngineError::EmptyPageTable
        );
        let bad_l1 = EngineConfig {
            l1: L1Config {
                size_bytes: 3072,
                ..L1Config::kb(2)
            },
            ..EngineConfig::default()
        };
        assert!(matches!(
            SimEngine::try_new(bad_l1, &reg).unwrap_err(),
            EngineError::InvalidGeometry(_)
        ));
        let tiny_l2 = EngineConfig {
            l2: Some(L2Config {
                size_bytes: 16,
                ..L2Config::mb(2)
            }),
            ..EngineConfig::default()
        };
        assert!(matches!(
            SimEngine::try_new(tiny_l2, &reg).unwrap_err(),
            EngineError::InvalidGeometry(_)
        ));
    }

    #[test]
    fn try_access_texel_validates_everything() {
        let reg = registry(1, 64);
        let mut e = SimEngine::try_new(EngineConfig::default(), &reg).unwrap();
        assert_eq!(
            e.try_access_texel(TextureId::from_index(9), 0, 0, 0),
            Err(EngineError::UnknownTexture(TextureId::from_index(9)))
        );
        let t = TextureId::from_index(0);
        assert_eq!(
            e.try_access_texel(t, 0, 64, 0),
            Err(EngineError::CoordsOutOfRange {
                tid: t,
                m: 0,
                u: 64,
                v: 0,
                width: 64,
                height: 64
            })
        );
        assert_eq!(
            e.try_access_texel(t, 99, 0, 0),
            Err(EngineError::CoordsOutOfRange {
                tid: t,
                m: 99,
                u: 0,
                v: 0,
                width: 0,
                height: 0
            })
        );
        assert!(e.try_access_texel(t, 0, 63, 63).is_ok());
        assert_eq!(e.current.l1_accesses, 1, "rejected accesses must not count");
    }

    #[test]
    fn no_fault_plan_is_byte_identical() {
        let reg = registry(1, 128);
        let cfg = EngineConfig {
            l1: L1Config::kb(2),
            l2: Some(L2Config::mb(2)),
            tlb_entries: 4,
            ..EngineConfig::default()
        };
        let mut plain = SimEngine::new(cfg, &reg);
        let mut faulted = SimEngine::new(cfg, &reg); // fault = FaultPlan::none()
        sweep(&mut plain, TextureId::from_index(0), 128);
        sweep(&mut faulted, TextureId::from_index(0), 128);
        assert_eq!(plain.frame_stats(), faulted.frame_stats());
        let f = faulted.frame_stats();
        assert_eq!(
            (
                f.retries,
                f.failed_transfers,
                f.degraded_taps,
                f.dropped_taps
            ),
            (0, 0, 0, 0)
        );
    }

    #[test]
    fn same_seed_same_counters() {
        let reg = registry(1, 128);
        let cfg = EngineConfig {
            l1: L1Config::kb(2),
            l2: Some(L2Config::mb(2)),
            fault: FaultPlan::with_rate(99, 100_000), // 10 %
            ..EngineConfig::default()
        };
        let mut a = SimEngine::new(cfg, &reg);
        let mut b = SimEngine::new(cfg, &reg);
        sweep(&mut a, TextureId::from_index(0), 128);
        sweep(&mut b, TextureId::from_index(0), 128);
        assert_eq!(a.frame_stats(), b.frame_stats());
        assert!(
            a.frame_stats().retries > 0,
            "10 % per attempt must retry sometimes"
        );
    }

    #[test]
    fn pull_drops_taps_when_the_link_is_dead() {
        let reg = registry(1, 64);
        let cfg = EngineConfig {
            l1: L1Config::kb(2),
            fault: FaultPlan::with_rate(1, 1_000_000), // every attempt fails
            ..EngineConfig::default()
        };
        let mut e = SimEngine::new(cfg, &reg);
        sweep(&mut e, TextureId::from_index(0), 64);
        let f = e.frame_stats();
        assert_eq!(f.host_bytes, 0, "nothing was ever delivered");
        assert_eq!(f.l1_hits, 0, "failed lines must not read as resident");
        assert_eq!(f.failed_transfers, f.l1_accesses);
        assert_eq!(f.dropped_taps, f.l1_accesses);
        assert_eq!(f.retries, 2 * f.l1_accesses, "3 attempts = 2 retries each");
        assert_eq!(f.degraded_taps, 0, "no L2 to degrade to");
    }

    #[test]
    fn l2_degrades_to_coarser_mips_when_available() {
        let reg = registry(1, 64);
        let t = TextureId::from_index(0);
        let base = EngineConfig {
            l1: L1Config::kb(2),
            l2: Some(L2Config::mb(2)),
            ..EngineConfig::default()
        };
        // Measure how many transfers warming mip level 1 takes (the
        // blackout below must start right after them). A never-firing
        // blackout keeps the link counting without injecting failures.
        let probe = TextureBlackout {
            tid: 0,
            from: u64::MAX,
            until: u64::MAX,
        };
        let mut warm = SimEngine::new(
            EngineConfig {
                fault: FaultPlan {
                    blackout: Some(probe),
                    ..FaultPlan::none()
                },
                ..base
            },
            &reg,
        );
        for v in 0..32 {
            for u in 0..32 {
                warm.access_texel(t, 1, u, v);
            }
        }
        let warm_transfers = warm.host().transfers();
        assert!(warm_transfers > 0);

        // Same warm-up, then a total blackout: every level-0 download
        // fails, and every failed tap finds its level-1 parent resident.
        let blackout = TextureBlackout {
            tid: 0,
            from: warm_transfers,
            until: u64::MAX,
        };
        let mut e = SimEngine::new(
            EngineConfig {
                fault: FaultPlan {
                    blackout: Some(blackout),
                    max_attempts: 2,
                    ..FaultPlan::none()
                },
                ..base
            },
            &reg,
        );
        for v in 0..32 {
            for u in 0..32 {
                e.access_texel(t, 1, u, v);
            }
        }
        e.end_frame();
        for v in 0..64 {
            for u in 0..64 {
                e.access_texel(t, 0, u, v);
            }
        }
        e.end_frame();
        let f = e.frames()[1];
        assert!(f.failed_transfers > 0);
        assert_eq!(
            f.degraded_taps, f.failed_transfers,
            "level 1 is fully resident"
        );
        assert_eq!(f.dropped_taps, 0);
        assert_eq!(
            f.host_bytes, 0,
            "the blackout blocks every level-0 download"
        );
        assert_eq!(
            f.retries, f.failed_transfers,
            "2 attempts = 1 retry per failure"
        );
    }

    #[test]
    fn faulty_runs_keep_cache_state_consistent() {
        // A 50 % link with retries: delivered lines hit later, failed lines
        // never read as resident, and counters reconcile.
        let reg = registry(1, 64);
        let cfg = EngineConfig {
            l1: L1Config::kb(2),
            l2: Some(L2Config::mb(2)),
            fault: FaultPlan::with_rate(5, 500_000).attempts(1),
            ..EngineConfig::default()
        };
        let mut e = SimEngine::new(cfg, &reg);
        sweep(&mut e, TextureId::from_index(0), 64);
        sweep(&mut e, TextureId::from_index(0), 64);
        let t = e.totals();
        assert!(t.failed_transfers > 0);
        assert!(t.host_bytes > 0);
        assert_eq!(t.degraded_taps + t.dropped_taps, t.failed_transfers);
        assert_eq!(t.retries, 0, "a single attempt never retries");
    }

    #[test]
    fn merge_is_associative() {
        let samples = [
            FrameCounters {
                l1_accesses: 7,
                l1_hits: 3,
                l2_full_hits: 2,
                l2_partial_hits: 1,
                l2_full_misses: 1,
                host_bytes: 640,
                l2_local_bytes: 192,
                tlb_accesses: 4,
                tlb_hits: 2,
                retries: 1,
                failed_transfers: 1,
                degraded_taps: 1,
                dropped_taps: 0,
            },
            FrameCounters {
                l1_accesses: 100,
                l1_hits: 90,
                dropped_taps: 5,
                ..FrameCounters::default()
            },
            FrameCounters {
                l2_full_misses: 13,
                host_bytes: 13 * 1024,
                retries: 26,
                ..FrameCounters::default()
            },
        ];
        let [a, b, c] = samples;
        // (a ⊕ b) ⊕ c
        let mut left = a;
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b;
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);
        assert_eq!(left, right);
        // Identity element.
        let mut with_id = left;
        with_id.merge(&FrameCounters::default());
        assert_eq!(with_id, left);
    }

    #[test]
    fn counters_bit_identical_with_telemetry_on_or_off() {
        use mltc_telemetry::Recorder;
        let reg = registry(2, 128);
        let cfg = EngineConfig {
            l1: L1Config::kb(2),
            l2: Some(L2Config::mb(2)),
            tlb_entries: 4,
            fault: FaultPlan::with_rate(7, 200_000), // some failures too
            ..EngineConfig::default()
        };
        let mut plain = SimEngine::new(cfg, &reg);
        let mut recorded = SimEngine::new(cfg, &reg);
        let rec = Recorder::enabled();
        recorded.attach_telemetry(&rec, "run0", "test");
        assert!(recorded.telemetry_attached());
        let mut detached = SimEngine::new(cfg, &reg);
        detached.attach_telemetry(&Recorder::disabled(), "run0", "test");
        assert!(!detached.telemetry_attached(), "disabled recorder detaches");

        for e in [&mut plain, &mut recorded, &mut detached] {
            sweep(e, TextureId::from_index(0), 128);
            sweep(e, TextureId::from_index(1), 128);
            sweep(e, TextureId::from_index(0), 128);
        }
        assert_eq!(plain.frames(), recorded.frames());
        assert_eq!(plain.frames(), detached.frames());

        // And the telemetry view reconciles with the engine's own counters.
        let t = recorded.totals();
        let snap = rec.snapshot();
        assert_eq!(snap.counters["engine/test/l1_hits"], t.l1_hits);
        assert_eq!(
            snap.counters["engine/test/l1_misses"],
            t.l1_accesses - t.l1_hits
        );
        assert_eq!(snap.counters["engine/test/l2_full_hits"], t.l2_full_hits);
        assert_eq!(
            snap.counters["engine/test/l2_full_misses"],
            t.l2_full_misses
        );
        assert_eq!(snap.counters["engine/test/tlb_hits"], t.tlb_hits);
        assert_eq!(
            snap.counters["engine/test/tlb_misses"],
            t.tlb_accesses - t.tlb_hits
        );
        assert_eq!(snap.counters["engine/test/host_retries"], t.retries);
        assert_eq!(snap.counters["engine/test/host_failed"], t.failed_transfers);
        assert_eq!(
            snap.counters["engine/test/degraded_taps"] + snap.counters["engine/test/dropped_taps"],
            t.degraded_taps + t.dropped_taps
        );
        // Every L2 access recorded a reuse observation (cold or distance).
        let reuse = &snap.hists["l2_reuse_pages/test"];
        assert_eq!(
            reuse.count + snap.counters["engine/test/l2_reuse_cold"],
            t.l2_accesses()
        );
        // Full misses each contributed one sweep-length sample.
        assert_eq!(snap.hists["clock_sweep_len/test"].count, t.l2_full_misses);
        assert_eq!(
            snap.hists["host_transfer_bytes/test"].count,
            snap.counters["engine/test/host_delivered"]
        );
    }

    #[test]
    fn frame_series_rows_match_frame_counters() {
        use mltc_telemetry::Recorder;
        let reg = registry(1, 128);
        let cfg = EngineConfig {
            l1: L1Config::kb(2),
            l2: Some(L2Config::mb(2)),
            tlb_entries: 4,
            ..EngineConfig::default()
        };
        let rec = Recorder::enabled();
        let mut e = SimEngine::new(cfg, &reg);
        e.attach_telemetry(&rec, "series-run", "test");
        sweep(&mut e, TextureId::from_index(0), 128);
        sweep(&mut e, TextureId::from_index(0), 128);
        let snap = rec.snapshot();
        let series = snap
            .series
            .iter()
            .find(|s| s.label == "series-run")
            .expect("series registered");
        assert_eq!(series.columns, crate::FRAME_SERIES_COLUMNS);
        assert_eq!(series.rows.len(), e.frames().len());
        for (i, (row, f)) in series.rows.iter().zip(e.frames()).enumerate() {
            assert_eq!(row[0], i as u64);
            assert_eq!(row[1], f.l1_accesses);
            assert_eq!(row[2], f.l1_hits);
            assert_eq!(row[3], f.l2_full_hits);
            assert_eq!(row[5], f.l2_full_misses);
            assert_eq!(row[6], f.host_bytes);
            assert_eq!(row[8], f.tlb_accesses);
        }
        // Per-frame sweep deltas sum to the cumulative clock stats.
        let cs = e.l2().unwrap().clock_stats();
        let sum_searches: u64 = series.rows.iter().map(|r| r[14]).sum();
        let sum_entries: u64 = series.rows.iter().map(|r| r[15]).sum();
        assert_eq!(sum_searches, cs.searches);
        assert_eq!(sum_entries, cs.entries_examined);
    }

    #[test]
    fn zero_access_frame_rates_are_zero_not_nan() {
        let f = FrameCounters::default();
        assert_eq!(f.l1_hit_rate(), 0.0);
        assert_eq!(f.l1_miss_rate(), 0.0, "no accesses is not a 100% miss rate");
        assert_eq!(f.l2_full_hit_rate(), 0.0);
        assert_eq!(f.l2_partial_hit_rate(), 0.0);
        assert_eq!(f.tlb_hit_rate(), 0.0);
    }

    #[test]
    fn traced_access_reports_the_same_story_as_the_counters() {
        let reg = registry(1, 64);
        let cfg = EngineConfig {
            l1: L1Config::kb(2),
            l2: Some(L2Config::mb(2)),
            tlb_entries: 2,
            ..EngineConfig::default()
        };
        let mut e = SimEngine::new(cfg, &reg);
        let t = TextureId::from_index(0);
        let miss = e.access_texel_traced(t, 0, 0, 0);
        assert!(!miss.l1_hit);
        assert_eq!(miss.l2, Some(L2Outcome::FullMiss));
        assert_eq!(miss.l2_block, Some(0));
        assert_eq!(miss.evicted_page, None, "cold cache evicts nothing");
        assert_eq!(miss.tlb_hit, Some(false));
        assert_eq!(miss.host_bytes, 64);
        let hit = e.access_texel_traced(t, 0, 0, 0);
        assert!(hit.l1_hit);
        assert_eq!(hit.l2, None, "L1 hits never consult the L2");
        assert_eq!(hit.host_bytes, 0);
        e.end_frame();
        let f = e.frame_stats();
        assert_eq!((f.l1_accesses, f.l1_hits), (2, 1));
        assert_eq!(f.host_bytes, 64);
    }

    #[test]
    fn plain_and_traced_access_update_counters_identically() {
        let reg = registry(1, 128);
        let cfg = EngineConfig {
            l1: L1Config::kb(2),
            l2: Some(L2Config::mb(2)),
            tlb_entries: 4,
            fault: FaultPlan::with_rate(3, 300_000),
            ..EngineConfig::default()
        };
        let mut plain = SimEngine::new(cfg, &reg);
        let mut traced = SimEngine::new(cfg, &reg);
        let t = TextureId::from_index(0);
        for v in 0..128 {
            for u in 0..128 {
                plain.access_texel(t, 0, u, v);
                let _ = traced.access_texel_traced(t, 0, u, v);
            }
        }
        plain.end_frame();
        traced.end_frame();
        assert_eq!(plain.frame_stats(), traced.frame_stats());
    }

    #[test]
    fn labels_are_descriptive() {
        let pull = EngineConfig {
            l1: L1Config::kb(2),
            ..EngineConfig::default()
        };
        assert_eq!(pull.label(), "2 KB L1, no L2");
        let ml = EngineConfig {
            l1: L1Config::kb(2),
            l2: Some(L2Config::mb(4)),
            ..pull
        };
        assert_eq!(ml.label(), "2 KB L1, 4 MB L2");
    }
}
