//! The transaction-accurate multi-level cache simulator (paper §3.3, §5.3).

use crate::{L1Config, L1TextureCache, L2Cache, L2Config, L2Outcome};
use mltc_cache::RoundRobinTlb;
use mltc_texture::{PageTableLayout, TextureId, TextureRegistry, TilingConfig};
use mltc_trace::{filter_taps, FrameTrace};

/// Full configuration of a simulated architecture.
///
/// * `l2: None` models the **pull** architecture (L1 misses download L1
///   tiles straight from host memory over AGP);
/// * `l2: Some(..)` models the proposed **multi-level** architecture.
///
/// ```
/// use mltc_core::EngineConfig;
/// let pull = EngineConfig::default();
/// assert!(pull.l2.is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// On-chip L1 texture cache.
    pub l1: L1Config,
    /// Optional local-memory L2 cache.
    pub l2: Option<L2Config>,
    /// Texture page-table TLB entries; `0` disables TLB modelling. Only
    /// meaningful when an L2 is present (§5.4.3).
    pub tlb_entries: usize,
    /// L2 block / L1 sub-block tiling.
    pub tiling: TilingConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            l1: L1Config::default(),
            l2: None,
            tlb_entries: 0,
            tiling: TilingConfig::PAPER_DEFAULT,
        }
    }
}

impl EngineConfig {
    /// Short human-readable description (used as series labels in the
    /// experiment harness).
    pub fn label(&self) -> String {
        let l1kb = self.l1.size_bytes / 1024;
        match self.l2 {
            None => format!("{l1kb} KB L1, no L2"),
            Some(l2) => format!("{l1kb} KB L1, {} MB L2", l2.size_bytes >> 20),
        }
    }
}

/// Per-frame traffic and hit counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrameCounters {
    /// Texel lookups presented to the L1.
    pub l1_accesses: u64,
    /// L1 hits.
    pub l1_hits: u64,
    /// L2 full hits (conditional on L1 miss).
    pub l2_full_hits: u64,
    /// L2 partial hits.
    pub l2_partial_hits: u64,
    /// L2 full misses.
    pub l2_full_misses: u64,
    /// Bytes downloaded from host memory over AGP.
    pub host_bytes: u64,
    /// Bytes moved through local L2 cache memory (reads on full hits,
    /// writes on downloads).
    pub l2_local_bytes: u64,
    /// TLB lookups (one per L1 miss when a TLB is modelled).
    pub tlb_accesses: u64,
    /// TLB hits.
    pub tlb_hits: u64,
}

impl FrameCounters {
    /// L1 hit rate.
    pub fn l1_hit_rate(&self) -> f64 {
        rate(self.l1_hits, self.l1_accesses)
    }

    /// L1 miss rate.
    pub fn l1_miss_rate(&self) -> f64 {
        1.0 - self.l1_hit_rate()
    }

    /// L2 full-hit rate given an L1 miss.
    pub fn l2_full_hit_rate(&self) -> f64 {
        rate(self.l2_full_hits, self.l2_accesses())
    }

    /// L2 partial-hit rate given an L1 miss.
    pub fn l2_partial_hit_rate(&self) -> f64 {
        rate(self.l2_partial_hits, self.l2_accesses())
    }

    /// L1 misses presented to the L2.
    pub fn l2_accesses(&self) -> u64 {
        self.l2_full_hits + self.l2_partial_hits + self.l2_full_misses
    }

    /// TLB hit rate.
    pub fn tlb_hit_rate(&self) -> f64 {
        rate(self.tlb_hits, self.tlb_accesses)
    }

    /// Host download traffic in megabytes.
    pub fn host_mb(&self) -> f64 {
        self.host_bytes as f64 / (1024.0 * 1024.0)
    }

    /// Accumulates another frame's counters.
    pub fn merge(&mut self, o: &FrameCounters) {
        self.l1_accesses += o.l1_accesses;
        self.l1_hits += o.l1_hits;
        self.l2_full_hits += o.l2_full_hits;
        self.l2_partial_hits += o.l2_partial_hits;
        self.l2_full_misses += o.l2_full_misses;
        self.host_bytes += o.host_bytes;
        self.l2_local_bytes += o.l2_local_bytes;
        self.tlb_accesses += o.tlb_accesses;
        self.tlb_hits += o.tlb_hits;
    }
}

fn rate(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// The simulator: one architecture configuration replaying texel accesses.
///
/// Control flow per texel (the paper's Fig. 7): compute the virtual block
/// address (step A); probe L1 (B); on a miss consult the page table —
/// through the TLB when modelled — and either serve from L2 (C/D), download
/// the missing L1 sub-block from host into L2 and L1 in parallel (F), or
/// run block replacement first (E). Without an L2, every L1 miss downloads
/// an L1 tile from host memory (pull architecture).
#[derive(Debug)]
pub struct SimEngine {
    cfg: EngineConfig,
    layout: PageTableLayout,
    /// Per-tid mip dims for filter expansion (`None` = deleted texture).
    dims: Vec<Option<Vec<(u32, u32)>>>,
    l1: L1TextureCache,
    l2: Option<L2Cache>,
    tlb: Option<RoundRobinTlb>,
    current: FrameCounters,
    frames: Vec<FrameCounters>,
}

impl SimEngine {
    /// Builds an engine for the textures of `registry`.
    ///
    /// # Panics
    ///
    /// Panics if an L2 is configured but the registry holds no textures
    /// (the page table would be empty), or on an invalid L1 geometry.
    pub fn new(cfg: EngineConfig, registry: &TextureRegistry) -> Self {
        let layout = PageTableLayout::new(registry, cfg.tiling);
        let mut dims = vec![None; registry.issued_count()];
        for (tid, pyr) in registry.iter() {
            dims[tid.index() as usize] =
                Some(pyr.iter().map(|l| (l.width(), l.height())).collect());
        }
        let l2 = cfg.l2.map(|c| L2Cache::new(c, cfg.tiling, layout.entry_count()));
        let tlb = (cfg.tlb_entries > 0).then(|| RoundRobinTlb::new(cfg.tlb_entries));
        Self {
            cfg,
            layout,
            dims,
            l1: L1TextureCache::new(cfg.l1),
            l2,
            tlb,
            current: FrameCounters::default(),
            frames: Vec::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> EngineConfig {
        self.cfg
    }

    /// Simulates one texel read: `(u, v)` are in-bounds texel coordinates of
    /// mip level `m` of `tid`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds for coordinate checks) if the texture is
    /// unknown or the coordinates are out of range.
    #[inline]
    pub fn access_texel(&mut self, tid: TextureId, m: u32, u: u32, v: u32) {
        self.current.l1_accesses += 1;
        if self.l1.access(tid, m, u, v) {
            self.current.l1_hits += 1;
            return;
        }

        let l1_bytes = self.cfg.l1.line_bytes() as u64;
        match &mut self.l2 {
            None => {
                // Pull architecture: L1 tile straight from host memory.
                self.current.host_bytes += l1_bytes;
            }
            Some(l2) => {
                let addr = self
                    .layout
                    .translate(tid, u, v, m)
                    .expect("texel access to texture unknown to the engine");
                let pt_index = self.layout.page_table_index(&addr);
                if let Some(tlb) = &mut self.tlb {
                    self.current.tlb_accesses += 1;
                    if tlb.access(pt_index as u64) {
                        self.current.tlb_hits += 1;
                    }
                }
                let l2_block_bytes = self.cfg.tiling.l2().cache_bytes() as u64;
                match l2.access(pt_index, addr.l1) {
                    L2Outcome::FullHit => {
                        self.current.l2_full_hits += 1;
                        self.current.l2_local_bytes += l1_bytes;
                    }
                    L2Outcome::PartialHit => {
                        self.current.l2_partial_hits += 1;
                        // Downloaded into L2 and L1 in parallel (step F).
                        self.current.host_bytes += l1_bytes;
                        self.current.l2_local_bytes += l1_bytes;
                    }
                    L2Outcome::FullMiss => {
                        self.current.l2_full_misses += 1;
                        let dl = if l2.config().sector_mapping { l1_bytes } else { l2_block_bytes };
                        self.current.host_bytes += dl;
                        self.current.l2_local_bytes += dl;
                    }
                }
            }
        }
    }

    /// Replays a whole frame trace (expanding each pixel request through the
    /// trace's filter mode) and closes the frame.
    pub fn run_frame(&mut self, trace: &FrameTrace) {
        for req in &trace.requests {
            let dims = self
                .dims
                .get(req.tid.index() as usize)
                .and_then(|d| d.as_ref())
                .expect("trace references texture unknown to the engine");
            let levels = dims.len() as u32;
            let taps = filter_taps(req, trace.filter, levels, |m| dims[m as usize]);
            for tap in &taps {
                self.access_texel(req.tid, tap.m, tap.u, tap.v);
            }
        }
        self.end_frame();
    }

    /// Closes the current frame: pushes its counters and starts a new one.
    pub fn end_frame(&mut self) {
        self.frames.push(self.current);
        self.current = FrameCounters::default();
    }

    /// Counters of the most recently completed frame.
    ///
    /// # Panics
    ///
    /// Panics if no frame has been completed yet.
    pub fn frame_stats(&self) -> &FrameCounters {
        self.frames.last().expect("no completed frames")
    }

    /// Per-frame counters for all completed frames.
    pub fn frames(&self) -> &[FrameCounters] {
        &self.frames
    }

    /// Sum of all completed frames.
    pub fn totals(&self) -> FrameCounters {
        let mut t = FrameCounters::default();
        for f in &self.frames {
            t.merge(f);
        }
        t
    }

    /// The L2 cache, when configured (for clock statistics etc.).
    pub fn l2(&self) -> Option<&L2Cache> {
        self.l2.as_ref()
    }

    /// Deletes a texture mid-run: deallocates its page-table entries and
    /// releases its L2 blocks. (L1 lines age out naturally; the design is
    /// non-inclusive.)
    pub fn delete_texture(&mut self, tid: TextureId) {
        if let (Some(l2), Some(tstart), Some(tlen)) =
            (&mut self.l2, self.layout.tstart(tid), self.layout.tlen(tid))
        {
            l2.deallocate_texture(tstart, tlen);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mltc_texture::{synth, MipPyramid};
    use mltc_trace::{FilterMode, PixelRequest};

    fn registry(n: usize, dim: u32) -> TextureRegistry {
        let mut reg = TextureRegistry::new();
        for i in 0..n {
            reg.load(
                format!("t{i}"),
                MipPyramid::from_image(synth::checkerboard(dim, 4, [0; 3], [255; 3])),
            );
        }
        reg
    }

    fn sweep(engine: &mut SimEngine, tid: TextureId, dim: u32) {
        for v in 0..dim {
            for u in 0..dim {
                engine.access_texel(tid, 0, u, v);
            }
        }
        engine.end_frame();
    }

    #[test]
    fn pull_downloads_every_l1_miss() {
        let reg = registry(1, 64);
        let mut e = SimEngine::new(
            EngineConfig { l1: L1Config::kb(2), ..EngineConfig::default() },
            &reg,
        );
        sweep(&mut e, TextureId::from_index(0), 64);
        let f = e.frame_stats();
        assert_eq!(f.l1_accesses, 64 * 64);
        let misses = f.l1_accesses - f.l1_hits;
        assert_eq!(f.host_bytes, misses * 64);
        assert_eq!(f.l2_accesses(), 0);
        assert_eq!(f.l2_local_bytes, 0);
    }

    #[test]
    fn l2_absorbs_interframe_reuse() {
        let reg = registry(1, 128);
        let cfg = EngineConfig {
            l1: L1Config::kb(2),
            l2: Some(L2Config::mb(2)),
            ..EngineConfig::default()
        };
        let mut e = SimEngine::new(cfg, &reg);
        sweep(&mut e, TextureId::from_index(0), 128);
        sweep(&mut e, TextureId::from_index(0), 128);
        let first = e.frames()[0];
        let second = e.frames()[1];
        assert!(first.host_bytes > 0);
        assert_eq!(second.host_bytes, 0, "second frame served entirely from L2");
        assert!(second.l2_full_hit_rate() > 0.999);
        assert!(second.l2_local_bytes > 0);
    }

    #[test]
    fn partial_hits_download_sub_blocks_on_demand() {
        let reg = registry(1, 64);
        let cfg = EngineConfig {
            l1: L1Config::kb(2),
            l2: Some(L2Config::mb(2)),
            ..EngineConfig::default()
        };
        let mut e = SimEngine::new(cfg, &reg);
        // Touch one texel per L2 block: full misses only.
        for by in 0..4u32 {
            for bx in 0..4u32 {
                e.access_texel(TextureId::from_index(0), 0, bx * 16, by * 16);
            }
        }
        e.end_frame();
        let f1 = e.frames()[0];
        assert_eq!(f1.l2_full_misses, 16);
        assert_eq!(f1.l2_partial_hits, 0);
        // Now touch a different sub-block of each: partial hits.
        for by in 0..4u32 {
            for bx in 0..4u32 {
                e.access_texel(TextureId::from_index(0), 0, bx * 16 + 8, by * 16 + 8);
            }
        }
        e.end_frame();
        let f2 = e.frames()[1];
        assert_eq!(f2.l2_partial_hits, 16);
        assert_eq!(f2.l2_full_misses, 0);
        assert_eq!(f2.host_bytes, 16 * 64);
    }

    #[test]
    fn without_sector_mapping_misses_cost_whole_blocks() {
        let reg = registry(1, 64);
        let cfg = EngineConfig {
            l1: L1Config::kb(2),
            l2: Some(L2Config { sector_mapping: false, ..L2Config::mb(2) }),
            ..EngineConfig::default()
        };
        let mut e = SimEngine::new(cfg, &reg);
        e.access_texel(TextureId::from_index(0), 0, 0, 0);
        e.end_frame();
        assert_eq!(e.frame_stats().host_bytes, 1024, "full 16x16x4B block downloaded");
    }

    #[test]
    fn tlb_counters_track_l1_misses() {
        let reg = registry(2, 64);
        let cfg = EngineConfig {
            l1: L1Config::kb(2),
            l2: Some(L2Config::mb(2)),
            tlb_entries: 2,
            ..EngineConfig::default()
        };
        let mut e = SimEngine::new(cfg, &reg);
        sweep(&mut e, TextureId::from_index(0), 64);
        let f = e.frame_stats();
        let misses = f.l1_accesses - f.l1_hits;
        assert_eq!(f.tlb_accesses, misses);
        assert!(f.tlb_hits <= f.tlb_accesses);
        assert!(f.tlb_hits > 0, "sequential blocks re-hit the TLB");
    }

    #[test]
    fn run_frame_expands_filter_footprints() {
        let reg = registry(1, 64);
        let mut e = SimEngine::new(EngineConfig::default(), &reg);
        let mut t = FrameTrace::new(0, 8, 8, FilterMode::Trilinear);
        t.push(PixelRequest { tid: TextureId::from_index(0), u: 8.0, v: 8.0, lod: 0.5 });
        e.run_frame(&t);
        assert_eq!(e.frame_stats().l1_accesses, 8, "trilinear = 8 taps");
    }

    #[test]
    fn totals_accumulate_frames() {
        let reg = registry(1, 64);
        let mut e = SimEngine::new(EngineConfig::default(), &reg);
        sweep(&mut e, TextureId::from_index(0), 64);
        sweep(&mut e, TextureId::from_index(0), 64);
        let t = e.totals();
        assert_eq!(t.l1_accesses, 2 * 64 * 64);
        assert_eq!(e.frames().len(), 2);
    }

    #[test]
    fn delete_texture_releases_l2_blocks() {
        let reg = registry(2, 64);
        let cfg = EngineConfig {
            l1: L1Config::kb(2),
            l2: Some(L2Config::mb(2)),
            ..EngineConfig::default()
        };
        let mut e = SimEngine::new(cfg, &reg);
        sweep(&mut e, TextureId::from_index(0), 64);
        let used = e.l2().unwrap().blocks_in_use();
        assert!(used > 0);
        e.delete_texture(TextureId::from_index(0));
        assert_eq!(e.l2().unwrap().blocks_in_use(), 0);
    }

    #[test]
    fn labels_are_descriptive() {
        let pull = EngineConfig { l1: L1Config::kb(2), ..EngineConfig::default() };
        assert_eq!(pull.label(), "2 KB L1, no L2");
        let ml = EngineConfig { l1: L1Config::kb(2), l2: Some(L2Config::mb(4)), ..pull };
        assert_eq!(ml.label(), "2 KB L1, 4 MB L2");
    }
}
