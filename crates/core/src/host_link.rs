//! The host → accelerator download link, with deterministic fault injection.
//!
//! Every byte the simulator "downloads over AGP" conceptually crosses this
//! link. The seed paper treats the link as perfect; real buses stall, drop
//! and time out, and a robustness study needs to know how the two
//! architectures degrade when they do. [`HostLink`] models the link as a
//! sequence of *transfers* (one per missing L1 sub-block or L2 block) that
//! each either deliver — possibly after bounded retries — or persistently
//! fail, according to a [`FaultPlan`].
//!
//! The plan is **fully deterministic**: outcomes depend only on the plan
//! (seed, rates, windows), the transfer ordinal and the texture being
//! fetched. Replaying the same trace through the same plan reproduces the
//! identical fault pattern, which is what makes fault-sweep experiments
//! comparable across architecture configurations.
//!
//! [`FaultPlan::none()`] is a guaranteed no-op: the link takes a fast path
//! that draws no random numbers and touches no counters, so a fault-free
//! engine is byte-identical to one built before this layer existed.

use mltc_texture::TextureId;

/// A blackout window for one texture: every transfer for `tid` whose
/// ordinal falls in `[from, until)` fails all attempts (modelling e.g. the
/// host paging that texture's backing store out mid-frame).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TextureBlackout {
    /// Index of the blacked-out texture (see [`TextureId::index`]).
    pub tid: u32,
    /// First link-wide transfer ordinal of the window (inclusive).
    pub from: u64,
    /// End of the window (exclusive).
    pub until: u64,
}

/// Deterministic description of how the host link misbehaves.
///
/// All probabilities are in **parts per million** so the plan stays `Copy`
/// and `Eq` and can live inside [`EngineConfig`] (which experiment sweeps
/// compare and copy by value).
///
/// ```
/// use mltc_core::FaultPlan;
/// assert!(FaultPlan::none().is_none());
/// let p = FaultPlan::with_rate(42, 10_000); // 1 % per attempt
/// assert!(!p.is_none());
/// assert_eq!(p.max_attempts, 3);
/// ```
///
/// [`EngineConfig`]: crate::EngineConfig
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for the per-attempt failure draws.
    pub seed: u64,
    /// Per-attempt failure probability in parts per million
    /// (`10_000` = 1 %). `0` disables random failures.
    pub fail_ppm: u32,
    /// Attempts per transfer before giving up (first try + retries).
    /// `0` is treated as `1` (no retries).
    pub max_attempts: u32,
    /// When non-zero, the link stalls periodically: of every
    /// `burst_period` transfers, the first [`burst_len`](Self::burst_len)
    /// fail all attempts regardless of `fail_ppm`.
    pub burst_period: u32,
    /// Length of each burst window (clamped to `burst_period` in effect).
    pub burst_len: u32,
    /// Optional per-texture blackout window.
    pub blackout: Option<TextureBlackout>,
}

impl FaultPlan {
    /// A perfect link. The engine's fast path for this plan draws no
    /// random numbers, so behaviour is identical to a fault-free build.
    pub const fn none() -> Self {
        Self {
            seed: 0,
            fail_ppm: 0,
            max_attempts: 0,
            burst_period: 0,
            burst_len: 0,
            blackout: None,
        }
    }

    /// Random per-attempt failures at `fail_ppm` parts per million, with
    /// the default retry budget of 3 attempts per transfer.
    pub const fn with_rate(seed: u64, fail_ppm: u32) -> Self {
        Self {
            seed,
            fail_ppm,
            max_attempts: 3,
            burst_period: 0,
            burst_len: 0,
            blackout: None,
        }
    }

    /// Same plan with a different retry budget.
    pub const fn attempts(mut self, max_attempts: u32) -> Self {
        self.max_attempts = max_attempts;
        self
    }

    /// Derives the plan a multi-client service scopes to one client: the
    /// same rates, windows and retry budget, but a seed mixed (SplitMix64
    /// finalizer) with the client id.
    ///
    /// Each client then owns an independent [`HostLink`] whose fault
    /// schedule depends only on `(plan, client)` and the client's **own**
    /// transfer ordinals — never on how clients interleave on the shared
    /// link — which is what keeps multi-client runs reproducible under any
    /// `--jobs` level and lets a survivor replay bit-identically solo.
    /// Client 0 keeps the base seed, so a single-client service is
    /// byte-identical to a plain engine running the base plan.
    pub const fn for_client(mut self, client: u32) -> Self {
        if client != 0 {
            let mut z = self.seed ^ (client as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            self.seed = z ^ (z >> 31);
        }
        self
    }

    /// True when the plan can never produce a failure.
    pub fn is_none(&self) -> bool {
        self.fail_ppm == 0
            && (self.burst_period == 0 || self.burst_len == 0)
            && self.blackout.is_none()
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

/// Outcome of one [`HostLink::transfer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transfer {
    /// The data arrived, after `retries` re-attempts (0 = first try).
    Delivered {
        /// Re-attempts beyond the first try.
        retries: u32,
    },
    /// Every attempt failed; the retry budget is spent.
    Failed {
        /// Re-attempts beyond the first try (= budget − 1).
        retries: u32,
    },
}

/// The download path from host memory into the accelerator, one per engine.
///
/// ```
/// use mltc_core::{FaultPlan, HostLink, Transfer};
/// use mltc_texture::TextureId;
/// let mut link = HostLink::new(FaultPlan::none());
/// let t = TextureId::from_index(0);
/// assert_eq!(link.transfer(t), Transfer::Delivered { retries: 0 });
/// ```
#[derive(Debug, Clone)]
pub struct HostLink {
    plan: FaultPlan,
    /// SplitMix64 state for the failure draws.
    rng: u64,
    /// Ordinal of the next transfer.
    transfers: u64,
}

impl HostLink {
    /// A link following `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            plan,
            rng: plan.seed,
            transfers: 0,
        }
    }

    /// The plan in force.
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }

    /// Transfers attempted so far (delivered or failed; a retried transfer
    /// counts once). Always `0` under [`FaultPlan::none`].
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Attempts one download for `tid`, retrying up to the plan's budget.
    pub fn transfer(&mut self, tid: TextureId) -> Transfer {
        if self.plan.is_none() {
            return Transfer::Delivered { retries: 0 };
        }
        let ordinal = self.transfers;
        self.transfers += 1;
        let attempts = self.plan.max_attempts.max(1);
        // Burst and blackout windows are keyed on the transfer ordinal, not
        // on random draws, so they hit the same logical downloads in every
        // replay of the same trace.
        if self.in_burst(ordinal) || self.in_blackout(tid, ordinal) {
            return Transfer::Failed {
                retries: attempts - 1,
            };
        }
        for attempt in 0..attempts {
            let draw = (self.next_rng() % 1_000_000) as u32;
            if draw >= self.plan.fail_ppm {
                return Transfer::Delivered { retries: attempt };
            }
        }
        Transfer::Failed {
            retries: attempts - 1,
        }
    }

    fn in_burst(&self, ordinal: u64) -> bool {
        self.plan.burst_period > 0
            && ordinal % (self.plan.burst_period as u64) < self.plan.burst_len as u64
    }

    fn in_blackout(&self, tid: TextureId, ordinal: u64) -> bool {
        self.plan
            .blackout
            .is_some_and(|b| b.tid == tid.index() && ordinal >= b.from && ordinal < b.until)
    }

    fn next_rng(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TextureId {
        TextureId::from_index(i)
    }

    #[test]
    fn perfect_link_always_delivers_and_stays_untouched() {
        let mut link = HostLink::new(FaultPlan::none());
        for _ in 0..1000 {
            assert_eq!(link.transfer(t(0)), Transfer::Delivered { retries: 0 });
        }
        assert_eq!(link.transfers(), 0, "fast path must not count transfers");
    }

    #[test]
    fn same_plan_same_sequence() {
        let plan = FaultPlan::with_rate(7, 200_000); // 20 %
        let mut a = HostLink::new(plan);
        let mut b = HostLink::new(plan);
        for i in 0..2000 {
            assert_eq!(a.transfer(t(i % 3)), b.transfer(t(i % 3)));
        }
    }

    #[test]
    fn certain_failure_exhausts_the_budget() {
        let mut link = HostLink::new(FaultPlan::with_rate(1, 1_000_000).attempts(5));
        assert_eq!(link.transfer(t(0)), Transfer::Failed { retries: 4 });
    }

    #[test]
    fn zero_attempts_means_one_try() {
        let mut link = HostLink::new(FaultPlan::with_rate(1, 1_000_000).attempts(0));
        assert_eq!(link.transfer(t(0)), Transfer::Failed { retries: 0 });
    }

    #[test]
    fn retries_recover_transient_failures() {
        // 50 % per attempt, 4 attempts: most transfers deliver, some with
        // retries, and the seeds make it deterministic.
        let mut link = HostLink::new(FaultPlan::with_rate(3, 500_000).attempts(4));
        let mut delivered = 0u32;
        let mut retried = 0u32;
        for _ in 0..1000 {
            match link.transfer(t(0)) {
                Transfer::Delivered { retries } => {
                    delivered += 1;
                    retried += (retries > 0) as u32;
                }
                Transfer::Failed { .. } => {}
            }
        }
        assert!(delivered > 900, "delivered={delivered}");
        assert!(retried > 100, "retried={retried}");
    }

    #[test]
    fn burst_windows_fail_deterministically() {
        let plan = FaultPlan {
            burst_period: 10,
            burst_len: 2,
            max_attempts: 3,
            ..FaultPlan::none()
        };
        let mut link = HostLink::new(plan);
        for i in 0..40u64 {
            let out = link.transfer(t(0));
            if i % 10 < 2 {
                assert_eq!(out, Transfer::Failed { retries: 2 }, "transfer {i}");
            } else {
                assert_eq!(out, Transfer::Delivered { retries: 0 }, "transfer {i}");
            }
        }
    }

    #[test]
    fn blackout_hits_only_its_texture() {
        let plan = FaultPlan {
            blackout: Some(TextureBlackout {
                tid: 1,
                from: 0,
                until: 100,
            }),
            max_attempts: 2,
            ..FaultPlan::none()
        };
        let mut link = HostLink::new(plan);
        assert_eq!(link.transfer(t(0)), Transfer::Delivered { retries: 0 });
        assert_eq!(link.transfer(t(1)), Transfer::Failed { retries: 1 });
        let mut late = HostLink::new(plan);
        late.transfers = 100; // past the window
        assert_eq!(late.transfer(t(1)), Transfer::Delivered { retries: 0 });
    }

    #[test]
    fn plans_compare_by_value() {
        assert_eq!(FaultPlan::none(), FaultPlan::default());
        assert_ne!(FaultPlan::none(), FaultPlan::with_rate(0, 1));
    }

    use proptest::prelude::*;

    /// Independent SplitMix64 replica, so the property below re-derives the
    /// fault schedule from the documented algorithm instead of trusting the
    /// link's own state.
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// For any plan and any transfer sequence, `retries` and
        /// `failed_transfers` accounting matches the injected fault
        /// schedule exactly: every single outcome equals what an
        /// independent replay of the documented schedule (ordinal-keyed
        /// burst/blackout windows, SplitMix64 per-attempt draws) predicts.
        #[test]
        fn accounting_matches_the_injected_schedule(
            seed in any::<u64>(),
            fail_ppm in 0u32..1_000_001,
            max_attempts in 0u32..5,
            burst_period in 0u32..8,
            burst_len in 0u32..4,
            black in any::<bool>(),
            bfrom in 0u64..64,
            blen in 0u64..64,
            tids in proptest::collection::vec(0u32..3, 1..200usize),
        ) {
            let plan = FaultPlan {
                seed,
                fail_ppm,
                max_attempts,
                burst_period,
                burst_len,
                blackout: black.then_some(TextureBlackout {
                    tid: 1,
                    from: bfrom,
                    until: bfrom + blen,
                }),
            };
            let mut link = HostLink::new(plan);
            let mut rng = seed;
            let mut ordinal = 0u64;
            let mut got = (0u64, 0u64); // (retries, failed)
            let mut want = (0u64, 0u64);
            let attempts = max_attempts.max(1);
            for &i in &tids {
                let out = link.transfer(t(i));
                let predicted = if plan.is_none() {
                    Transfer::Delivered { retries: 0 }
                } else {
                    let o = ordinal;
                    ordinal += 1;
                    let in_burst = burst_period > 0
                        && (o % burst_period as u64) < (burst_len as u64);
                    let in_black = plan
                        .blackout
                        .is_some_and(|b| b.tid == i && o >= b.from && o < b.until);
                    if in_burst || in_black {
                        Transfer::Failed { retries: attempts - 1 }
                    } else {
                        let mut res = Transfer::Failed { retries: attempts - 1 };
                        for attempt in 0..attempts {
                            let draw = (splitmix(&mut rng) % 1_000_000) as u32;
                            if draw >= fail_ppm {
                                res = Transfer::Delivered { retries: attempt };
                                break;
                            }
                        }
                        res
                    }
                };
                prop_assert_eq!(out, predicted, "transfer for tid {}", i);
                for (acc, o) in [(&mut got, out), (&mut want, predicted)] {
                    match o {
                        Transfer::Delivered { retries } => acc.0 += retries as u64,
                        Transfer::Failed { retries } => {
                            acc.0 += retries as u64;
                            acc.1 += 1;
                        }
                    }
                }
            }
            prop_assert_eq!(got, want);
            let counted = if plan.is_none() { 0 } else { tids.len() as u64 };
            prop_assert_eq!(link.transfers(), counted);
        }

        /// Multi-client scoping (the service containment contract): each
        /// client's fault sequence depends only on `(base plan, client)`
        /// and that client's own transfer ordinals. Replaying any
        /// interleaving of clients over their scoped links yields, per
        /// client, exactly the sequence that client sees running alone —
        /// so fault schedules are reproducible under any `--jobs` level or
        /// thread interleaving, and client 0 keeps the base plan.
        #[test]
        fn per_client_schedules_survive_any_interleaving(
            seed in any::<u64>(),
            fail_ppm in 0u32..1_000_001,
            burst_period in 0u32..8,
            burst_len in 0u32..4,
            schedule in proptest::collection::vec((0u32..4, 0u32..3), 1..300usize),
        ) {
            let base = FaultPlan {
                seed,
                fail_ppm,
                max_attempts: 3,
                burst_period,
                burst_len,
                blackout: None,
            };
            prop_assert_eq!(base.for_client(0), base, "client 0 keeps the base plan");
            // Interleaved run: one scoped link per client, transfers in an
            // arbitrary (proptest-chosen) global order.
            let mut links: Vec<HostLink> =
                (0..4).map(|c| HostLink::new(base.for_client(c))).collect();
            let mut got: Vec<Vec<Transfer>> = vec![Vec::new(); 4];
            for &(c, tid) in &schedule {
                got[c as usize].push(links[c as usize].transfer(t(tid)));
            }
            // Solo replay: each client alone, same per-client order.
            for c in 0..4u32 {
                let mut solo = HostLink::new(base.for_client(c));
                let want: Vec<Transfer> = schedule
                    .iter()
                    .filter(|&&(cc, _)| cc == c)
                    .map(|&(_, tid)| solo.transfer(t(tid)))
                    .collect();
                prop_assert_eq!(&got[c as usize], &want, "client {}", c);
            }
        }

        /// A plan that can never fail — whether it takes the `is_none` fast
        /// path or the slow path (never-firing blackout forces the latter) —
        /// is byte-identical to no fault wrapper at all: every transfer
        /// delivers on the first try, for any seed.
        #[test]
        fn zero_fault_plans_are_identical_to_no_wrapper(
            seed in any::<u64>(),
            tids in proptest::collection::vec(0u32..4, 1..300usize),
        ) {
            let fast = FaultPlan::with_rate(seed, 0);
            prop_assert!(fast.is_none());
            let slow = FaultPlan {
                blackout: Some(TextureBlackout {
                    tid: 0,
                    from: u64::MAX,
                    until: u64::MAX,
                }),
                ..fast
            };
            prop_assert!(!slow.is_none());
            let mut a = HostLink::new(fast);
            let mut b = HostLink::new(slow);
            for &i in &tids {
                prop_assert_eq!(a.transfer(t(i)), Transfer::Delivered { retries: 0 });
                prop_assert_eq!(b.transfer(t(i)), Transfer::Delivered { retries: 0 });
            }
            prop_assert_eq!(a.transfers(), 0, "fast path never counts");
            prop_assert_eq!(b.transfers(), tids.len() as u64);
        }
    }
}
