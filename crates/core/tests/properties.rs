//! Property-based tests: the L2 cache against a reference virtual-memory
//! model, and engine traffic invariants.

use mltc_core::{
    EngineConfig, L1Config, L2Cache, L2Config, L2Outcome, ReplacementPolicy, SimEngine,
};
use mltc_texture::{synth, MipPyramid, TextureId, TextureRegistry, TilingConfig};
use proptest::prelude::*;
use std::collections::HashMap;

/// Reference model of the paper's L2: a map from page-table index to the
/// set of resident sub-blocks, with true-LRU eviction at `capacity` pages.
struct ReferenceL2 {
    capacity: usize,
    /// Insertion/recency order: front = LRU.
    order: Vec<u32>,
    sectors: HashMap<u32, u64>,
}

impl ReferenceL2 {
    fn new(capacity: usize) -> Self {
        Self {
            capacity,
            order: Vec::new(),
            sectors: HashMap::new(),
        }
    }

    fn access(&mut self, pt: u32, sub: u16) -> L2Outcome {
        if let Some(pos) = self.order.iter().position(|&p| p == pt) {
            self.order.remove(pos);
            self.order.push(pt);
            let bits = self
                .sectors
                .get_mut(&pt)
                .expect("resident page has sectors");
            if *bits & (1 << sub) != 0 {
                L2Outcome::FullHit
            } else {
                *bits |= 1 << sub;
                L2Outcome::PartialHit
            }
        } else {
            if self.order.len() == self.capacity {
                let victim = self.order.remove(0);
                self.sectors.remove(&victim);
            }
            self.order.push(pt);
            self.sectors.insert(pt, 1u64 << sub);
            L2Outcome::FullMiss
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The LRU-policy L2 cache matches the reference virtual-memory model
    /// outcome-for-outcome on arbitrary access streams.
    #[test]
    fn l2_lru_matches_reference(
        blocks in 1usize..12,
        stream in proptest::collection::vec((0u32..24, 0u16..16), 1..500),
    ) {
        let tiling = TilingConfig::PAPER_DEFAULT;
        let mut l2 = L2Cache::new(
            L2Config {
                size_bytes: blocks * tiling.l2().cache_bytes(),
                policy: ReplacementPolicy::Lru,
                sector_mapping: true,
            },
            tiling,
            24,
        );
        let mut reference = ReferenceL2::new(blocks);
        for (i, (pt, sub)) in stream.iter().enumerate() {
            let got = l2.access(*pt, *sub);
            let want = reference.access(*pt, *sub);
            prop_assert_eq!(got, want, "step {} pt {} sub {}", i, pt, sub);
        }
        prop_assert!(l2.blocks_in_use() <= blocks);
        prop_assert_eq!(l2.blocks_in_use(), reference.order.len());
    }

    /// Whatever the policy, outcome counts add up and capacity is obeyed.
    #[test]
    fn l2_counters_consistent_for_all_policies(
        policy_pick in 0u8..3,
        blocks in 1usize..8,
        stream in proptest::collection::vec((0u32..16, 0u16..16), 1..300),
    ) {
        let policy = match policy_pick {
            0 => ReplacementPolicy::Clock,
            1 => ReplacementPolicy::Lru,
            _ => ReplacementPolicy::Fifo,
        };
        let tiling = TilingConfig::PAPER_DEFAULT;
        let mut l2 = L2Cache::new(
            L2Config {
                size_bytes: blocks * tiling.l2().cache_bytes(),
                policy,
                sector_mapping: true,
            },
            tiling,
            16,
        );
        for (pt, sub) in &stream {
            l2.access(*pt, *sub);
        }
        let s = l2.stats();
        prop_assert_eq!(s.accesses(), stream.len() as u64);
        prop_assert!(l2.blocks_in_use() <= blocks);
        prop_assert!(s.full_hit_rate() + s.partial_hit_rate() <= 1.0 + 1e-12);
    }

    /// A working set that fits never misses after the first pass, under any
    /// policy (all policies must respect capacity sufficiency).
    #[test]
    fn fitting_working_set_converges(policy_pick in 0u8..3, pages in 1u32..8) {
        let policy = match policy_pick {
            0 => ReplacementPolicy::Clock,
            1 => ReplacementPolicy::Lru,
            _ => ReplacementPolicy::Fifo,
        };
        let tiling = TilingConfig::PAPER_DEFAULT;
        let mut l2 = L2Cache::new(
            L2Config {
                size_bytes: 8 * tiling.l2().cache_bytes(),
                policy,
                sector_mapping: true,
            },
            tiling,
            8,
        );
        for round in 0..3 {
            for pt in 0..pages {
                for sub in 0..16u16 {
                    let out = l2.access(pt, sub);
                    if round > 0 {
                        prop_assert_eq!(out, L2Outcome::FullHit,
                            "round {} pt {} sub {} under {:?}", round, pt, sub, policy);
                    }
                }
            }
        }
    }

    /// Pull-architecture invariant: host bytes are exactly L1 misses times
    /// the line size, for arbitrary texel access streams.
    #[test]
    fn pull_traffic_equals_misses(
        stream in proptest::collection::vec((0u32..64, 0u32..64), 1..400),
    ) {
        let mut reg = TextureRegistry::new();
        let tid = reg.load("t", MipPyramid::from_image(
            synth::checkerboard(64, 8, [0; 3], [255; 3])));
        let _ = tid;
        let mut e = SimEngine::new(
            EngineConfig { l1: L1Config::kb(2), ..EngineConfig::default() }, &reg);
        for (u, v) in &stream {
            e.access_texel(TextureId::from_index(0), 0, *u, *v);
        }
        e.end_frame();
        let f = e.frame_stats();
        prop_assert_eq!(f.host_bytes, (f.l1_accesses - f.l1_hits) * 64);
        prop_assert_eq!(f.l1_accesses, stream.len() as u64);
    }

    /// Multi-level invariant: every L1 miss is accounted by exactly one L2
    /// outcome, and host traffic equals (partials + misses) × line bytes
    /// under sector mapping.
    #[test]
    fn multilevel_traffic_accounting(
        stream in proptest::collection::vec((0u32..128, 0u32..128), 1..400),
    ) {
        let mut reg = TextureRegistry::new();
        reg.load("t", MipPyramid::from_image(
            synth::checkerboard(128, 8, [0; 3], [255; 3])));
        let mut e = SimEngine::new(
            EngineConfig {
                l1: L1Config::kb(2),
                l2: Some(L2Config::mb(2)),
                ..EngineConfig::default()
            },
            &reg,
        );
        for (u, v) in &stream {
            e.access_texel(TextureId::from_index(0), 0, *u, *v);
        }
        e.end_frame();
        let f = e.frame_stats();
        let misses = f.l1_accesses - f.l1_hits;
        prop_assert_eq!(f.l2_accesses(), misses);
        prop_assert_eq!(f.host_bytes, (f.l2_partial_hits + f.l2_full_misses) * 64);
        prop_assert_eq!(f.l2_local_bytes,
            (f.l2_full_hits + f.l2_partial_hits + f.l2_full_misses) * 64);
    }

    /// An L2 never increases host traffic relative to the pull architecture
    /// on identical streams (it can only intercept downloads).
    #[test]
    fn l2_never_hurts_bandwidth(
        stream in proptest::collection::vec((0u32..256, 0u32..256), 1..300),
    ) {
        let mut reg = TextureRegistry::new();
        reg.load("t", MipPyramid::from_image(
            synth::checkerboard(256, 8, [0; 3], [255; 3])));
        let mk = |l2| SimEngine::new(EngineConfig {
            l1: L1Config::kb(2), l2, ..EngineConfig::default() }, &reg);
        let mut pull = mk(None);
        let mut ml = mk(Some(L2Config::mb(2)));
        for (u, v) in &stream {
            pull.access_texel(TextureId::from_index(0), 0, *u, *v);
            ml.access_texel(TextureId::from_index(0), 0, *u, *v);
        }
        pull.end_frame();
        ml.end_frame();
        prop_assert!(ml.frame_stats().host_bytes <= pull.frame_stats().host_bytes);
    }
}
