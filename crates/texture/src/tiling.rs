//! Tile-size configuration for 2-level texture tiling (paper §2.2).

use std::fmt;

/// Square tile edge length in texels.
///
/// The paper studies L1 tiles of 4×4 and 8×8 texels and L2 tiles of 8×8,
/// 16×16 and 32×32 texels.
///
/// ```
/// use mltc_texture::TileSize;
/// assert_eq!(TileSize::X16.texels(), 16);
/// assert_eq!(TileSize::X16.texel_count(), 256);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TileSize {
    /// 4×4 texels.
    X4,
    /// 8×8 texels.
    X8,
    /// 16×16 texels.
    X16,
    /// 32×32 texels.
    X32,
}

impl TileSize {
    /// Edge length in texels.
    #[inline]
    pub const fn texels(self) -> u32 {
        match self {
            TileSize::X4 => 4,
            TileSize::X8 => 8,
            TileSize::X16 => 16,
            TileSize::X32 => 32,
        }
    }

    /// `log2` of the edge length, for shift-based address arithmetic.
    #[inline]
    pub const fn shift(self) -> u32 {
        match self {
            TileSize::X4 => 2,
            TileSize::X8 => 3,
            TileSize::X16 => 4,
            TileSize::X32 => 5,
        }
    }

    /// Texels per tile.
    #[inline]
    pub const fn texel_count(self) -> u32 {
        let t = self.texels();
        t * t
    }

    /// Tile size in bytes at the accelerator's expanded 32-bit texel depth.
    #[inline]
    pub const fn cache_bytes(self) -> usize {
        self.texel_count() as usize * 4
    }
}

impl fmt::Display for TileSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let t = self.texels();
        write!(f, "{t}x{t}")
    }
}

/// Error building a [`TilingConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TilingError {
    /// The L1 tile does not fit strictly inside the L2 tile.
    L1NotSmallerThanL2 {
        /// Requested L2 tile size.
        l2: TileSize,
        /// Requested L1 tile size.
        l1: TileSize,
    },
}

impl fmt::Display for TilingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TilingError::L1NotSmallerThanL2 { l2, l1 } => {
                write!(f, "L1 tile {l1} must be strictly smaller than L2 tile {l2}")
            }
        }
    }
}

impl std::error::Error for TilingError {}

/// A 2-level tiling: L2 tiles of L1 sub-tiles ("tiles of tiles", §2.2).
///
/// ```
/// use mltc_texture::{TileSize, TilingConfig};
/// let t = TilingConfig::new(TileSize::X16, TileSize::X4).unwrap();
/// assert_eq!(t.l1_per_l2(), 16);
/// assert!(TilingConfig::new(TileSize::X4, TileSize::X8).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TilingConfig {
    l2: TileSize,
    l1: TileSize,
}

impl TilingConfig {
    /// The paper's reference configuration: 16×16 L2 tiles of 4×4 L1 tiles.
    pub const PAPER_DEFAULT: Self = Self {
        l2: TileSize::X16,
        l1: TileSize::X4,
    };

    /// Creates a tiling configuration.
    ///
    /// # Errors
    ///
    /// Returns [`TilingError::L1NotSmallerThanL2`] unless the L1 tile is
    /// strictly smaller than the L2 tile.
    pub fn new(l2: TileSize, l1: TileSize) -> Result<Self, TilingError> {
        if l1.texels() >= l2.texels() {
            return Err(TilingError::L1NotSmallerThanL2 { l2, l1 });
        }
        Ok(Self { l2, l1 })
    }

    /// L2 tile size.
    #[inline]
    pub const fn l2(self) -> TileSize {
        self.l2
    }

    /// L1 sub-tile size.
    #[inline]
    pub const fn l1(self) -> TileSize {
        self.l1
    }

    /// L1 sub-blocks per L2 block edge.
    #[inline]
    pub const fn l1_per_l2_edge(self) -> u32 {
        self.l2.texels() / self.l1.texels()
    }

    /// L1 sub-blocks per L2 block (the number of sector bits per page-table
    /// entry).
    #[inline]
    pub const fn l1_per_l2(self) -> u32 {
        let e = self.l1_per_l2_edge();
        e * e
    }
}

impl Default for TilingConfig {
    fn default() -> Self {
        Self::PAPER_DEFAULT
    }
}

impl fmt::Display for TilingConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L2 {} / L1 {}", self.l2, self.l1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_sizes() {
        assert_eq!(TileSize::X4.texel_count(), 16);
        assert_eq!(TileSize::X32.texel_count(), 1024);
        assert_eq!(TileSize::X8.cache_bytes(), 256);
    }

    #[test]
    fn shifts_match_sizes() {
        for t in [TileSize::X4, TileSize::X8, TileSize::X16, TileSize::X32] {
            assert_eq!(1u32 << t.shift(), t.texels());
        }
    }

    #[test]
    fn paper_default_is_16_over_4() {
        let t = TilingConfig::PAPER_DEFAULT;
        assert_eq!(t.l2(), TileSize::X16);
        assert_eq!(t.l1(), TileSize::X4);
        assert_eq!(t.l1_per_l2(), 16);
        assert_eq!(TilingConfig::default(), t);
    }

    #[test]
    fn sub_block_counts() {
        let t = TilingConfig::new(TileSize::X32, TileSize::X4).unwrap();
        assert_eq!(t.l1_per_l2_edge(), 8);
        assert_eq!(t.l1_per_l2(), 64);
        let t = TilingConfig::new(TileSize::X8, TileSize::X4).unwrap();
        assert_eq!(t.l1_per_l2(), 4);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(TilingConfig::new(TileSize::X4, TileSize::X4).is_err());
        assert!(TilingConfig::new(TileSize::X8, TileSize::X16).is_err());
        let err = TilingConfig::new(TileSize::X4, TileSize::X8).unwrap_err();
        assert!(err.to_string().contains("strictly smaller"));
    }

    #[test]
    fn display_formats() {
        assert_eq!(TileSize::X16.to_string(), "16x16");
        assert_eq!(TilingConfig::PAPER_DEFAULT.to_string(), "L2 16x16 / L1 4x4");
    }
}
