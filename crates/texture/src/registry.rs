//! Texture registry: `tid` assignment and texture lifetime tracking.

use crate::MipPyramid;
use std::fmt;

/// Unique identifier of a loaded texture (the paper's `tid`).
///
/// Identifiers are assigned sequentially by [`TextureRegistry::load`] and
/// never reused, so a `TextureId` remains a stable name for a texture even
/// after other textures are deleted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TextureId(pub(crate) u32);

impl TextureId {
    /// The raw index value.
    #[inline]
    pub const fn index(self) -> u32 {
        self.0
    }

    /// Builds an id from a raw index (for trace deserialisation).
    #[inline]
    pub const fn from_index(i: u32) -> Self {
        Self(i)
    }
}

impl fmt::Display for TextureId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tid{}", self.0)
    }
}

#[derive(Debug, Clone)]
struct Entry {
    name: String,
    pyramid: MipPyramid,
    live: bool,
}

/// Tracks textures as the application loads and deletes them, mirroring the
/// host-driver machinery the paper's §5.2 leverages ("the host software
/// driver keeps track of textures as the application loads and deletes
/// them").
///
/// ```
/// use mltc_texture::{Image, MipPyramid, TexelFormat, TextureRegistry};
/// let mut reg = TextureRegistry::new();
/// let img = Image::filled(32, 32, TexelFormat::Rgb565, [1, 2, 3]);
/// let tid = reg.load("wall", MipPyramid::from_image(img));
/// assert_eq!(reg.live_count(), 1);
/// assert!(reg.pyramid(tid).is_some());
/// reg.delete(tid);
/// assert!(reg.pyramid(tid).is_none());
/// ```
#[derive(Debug, Clone, Default)]
pub struct TextureRegistry {
    entries: Vec<Entry>,
}

impl TextureRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Loads a texture and returns its new `tid`.
    pub fn load(&mut self, name: impl Into<String>, pyramid: MipPyramid) -> TextureId {
        let id = TextureId(self.entries.len() as u32);
        self.entries.push(Entry {
            name: name.into(),
            pyramid,
            live: true,
        });
        id
    }

    /// Deletes a texture. Its `tid` is retired, never reused.
    ///
    /// Deleting an already-deleted or unknown texture is a no-op.
    pub fn delete(&mut self, tid: TextureId) {
        if let Some(e) = self.entries.get_mut(tid.0 as usize) {
            e.live = false;
        }
    }

    /// The mip pyramid of a live texture.
    pub fn pyramid(&self, tid: TextureId) -> Option<&MipPyramid> {
        self.entries
            .get(tid.0 as usize)
            .filter(|e| e.live)
            .map(|e| &e.pyramid)
    }

    /// The (human-readable) name of a live texture.
    pub fn name(&self, tid: TextureId) -> Option<&str> {
        self.entries
            .get(tid.0 as usize)
            .filter(|e| e.live)
            .map(|e| e.name.as_str())
    }

    /// Number of currently live textures.
    pub fn live_count(&self) -> usize {
        self.entries.iter().filter(|e| e.live).count()
    }

    /// Number of `tid`s ever issued (live + deleted).
    pub fn issued_count(&self) -> usize {
        self.entries.len()
    }

    /// Iterates over `(tid, pyramid)` for all live textures.
    pub fn iter(&self) -> impl Iterator<Item = (TextureId, &MipPyramid)> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.live)
            .map(|(i, e)| (TextureId(i as u32), &e.pyramid))
    }

    /// Total host-memory footprint of all live textures at original depth,
    /// including their mip levels (this is the "texture loaded into main
    /// memory" series of the paper's Fig. 4).
    pub fn host_byte_size(&self) -> usize {
        self.iter().map(|(_, p)| p.byte_size()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Image, TexelFormat};

    fn pyr(dim: u32) -> MipPyramid {
        MipPyramid::from_image(Image::filled(dim, dim, TexelFormat::Rgb565, [0; 3]))
    }

    #[test]
    fn ids_are_sequential() {
        let mut reg = TextureRegistry::new();
        let a = reg.load("a", pyr(8));
        let b = reg.load("b", pyr(8));
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
    }

    #[test]
    fn delete_retires_id() {
        let mut reg = TextureRegistry::new();
        let a = reg.load("a", pyr(8));
        reg.delete(a);
        let b = reg.load("b", pyr(8));
        assert_ne!(a, b, "tids must never be reused");
        assert_eq!(reg.live_count(), 1);
        assert_eq!(reg.issued_count(), 2);
    }

    #[test]
    fn name_lookup() {
        let mut reg = TextureRegistry::new();
        let a = reg.load("bricks", pyr(8));
        assert_eq!(reg.name(a), Some("bricks"));
        reg.delete(a);
        assert_eq!(reg.name(a), None);
    }

    #[test]
    fn delete_unknown_is_noop() {
        let mut reg = TextureRegistry::new();
        reg.delete(TextureId::from_index(42));
        assert_eq!(reg.live_count(), 0);
    }

    #[test]
    fn host_bytes_sum_live_only() {
        let mut reg = TextureRegistry::new();
        let a = reg.load("a", pyr(16));
        let _b = reg.load("b", pyr(16));
        let full = reg.host_byte_size();
        reg.delete(a);
        assert_eq!(reg.host_byte_size() * 2, full);
    }

    #[test]
    fn iter_skips_deleted() {
        let mut reg = TextureRegistry::new();
        let a = reg.load("a", pyr(8));
        let b = reg.load("b", pyr(8));
        reg.delete(a);
        let ids: Vec<TextureId> = reg.iter().map(|(t, _)| t).collect();
        assert_eq!(ids, vec![b]);
    }
}
