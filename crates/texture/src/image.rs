//! Raster images (single mip level of a texture).

use crate::format::TexelFormat;

/// A 2D raster image with power-of-two dimensions — one mip level of a
/// texture, stored in a host [`TexelFormat`].
///
/// ```
/// use mltc_texture::{Image, TexelFormat};
/// let mut img = Image::filled(4, 4, TexelFormat::Rgb565, [0, 0, 0]);
/// img.put_rgb(1, 2, [255, 0, 0]);
/// let [r, _, _, _] = mltc_texture::unpack_rgba(img.texel(1, 2));
/// assert!(r > 240);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    width: u32,
    height: u32,
    format: TexelFormat,
    data: Vec<u8>,
}

impl Image {
    /// Creates an image filled with `rgb`.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is zero or not a power of two, or
    /// exceeds 4096 (the largest texture the addressing scheme is sized for).
    pub fn filled(width: u32, height: u32, format: TexelFormat, rgb: [u8; 3]) -> Self {
        assert!(
            width.is_power_of_two() && height.is_power_of_two(),
            "image dimensions must be powers of two, got {width}x{height}"
        );
        assert!(
            width <= 4096 && height <= 4096,
            "image dimensions capped at 4096"
        );
        let texel = format.encode(rgb);
        let mut data = Vec::with_capacity((width * height) as usize * texel.len());
        for _ in 0..width * height {
            data.extend_from_slice(&texel);
        }
        Self {
            width,
            height,
            format,
            data,
        }
    }

    /// Creates an image by evaluating `f(x, y) -> [r, g, b]` at every texel.
    ///
    /// # Panics
    ///
    /// Same dimension constraints as [`Image::filled`].
    pub fn from_fn<F: FnMut(u32, u32) -> [u8; 3]>(
        width: u32,
        height: u32,
        format: TexelFormat,
        mut f: F,
    ) -> Self {
        let mut img = Image::filled(width, height, format, [0, 0, 0]);
        for y in 0..height {
            for x in 0..width {
                img.put_rgb(x, y, f(x, y));
            }
        }
        img
    }

    /// Image width in texels.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Image height in texels.
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Host storage format.
    #[inline]
    pub fn format(&self) -> TexelFormat {
        self.format
    }

    /// Host storage size in bytes (original depth).
    #[inline]
    pub fn byte_size(&self) -> usize {
        self.data.len()
    }

    /// Reads the texel at `(x, y)` expanded to packed 32-bit RGBA
    /// (0xAABBGGRR), applying wrap addressing to out-of-range coordinates.
    #[inline]
    pub fn texel_wrapped(&self, x: i64, y: i64) -> u32 {
        let x = x.rem_euclid(self.width as i64) as u32;
        let y = y.rem_euclid(self.height as i64) as u32;
        self.texel(x, y)
    }

    /// Reads the texel at `(x, y)` expanded to packed 32-bit RGBA.
    ///
    /// # Panics
    ///
    /// Panics if `(x, y)` is out of bounds.
    #[inline]
    pub fn texel(&self, x: u32, y: u32) -> u32 {
        assert!(
            x < self.width && y < self.height,
            "texel ({x},{y}) out of bounds for {}x{}",
            self.width,
            self.height
        );
        let bpt = self.format.bytes_per_texel();
        let off = (y as usize * self.width as usize + x as usize) * bpt;
        self.format.decode(&self.data[off..off + bpt])
    }

    /// Writes an RGB colour at `(x, y)` (encoded into the host format).
    ///
    /// # Panics
    ///
    /// Panics if `(x, y)` is out of bounds.
    pub fn put_rgb(&mut self, x: u32, y: u32, rgb: [u8; 3]) {
        assert!(x < self.width && y < self.height);
        let enc = self.format.encode(rgb);
        let bpt = self.format.bytes_per_texel();
        let off = (y as usize * self.width as usize + x as usize) * bpt;
        self.data[off..off + bpt].copy_from_slice(&enc);
    }

    /// Reads the texel at `(x, y)` as 8-bit RGB (after a decode round trip).
    pub fn rgb(&self, x: u32, y: u32) -> [u8; 3] {
        let [r, g, b, _] = crate::format::unpack_rgba(self.texel(x, y));
        [r, g, b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filled_has_uniform_colour() {
        let img = Image::filled(8, 4, TexelFormat::Rgba8888, [7, 8, 9]);
        assert_eq!(img.rgb(0, 0), [7, 8, 9]);
        assert_eq!(img.rgb(7, 3), [7, 8, 9]);
        assert_eq!(img.byte_size(), 8 * 4 * 4);
    }

    #[test]
    #[should_panic(expected = "powers of two")]
    fn non_power_of_two_rejected() {
        let _ = Image::filled(6, 4, TexelFormat::Rgb565, [0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "capped")]
    fn oversized_rejected() {
        let _ = Image::filled(8192, 8192, TexelFormat::L8, [0, 0, 0]);
    }

    #[test]
    fn from_fn_addresses_correctly() {
        let img = Image::from_fn(4, 4, TexelFormat::Rgba8888, |x, y| [x as u8, y as u8, 0]);
        assert_eq!(img.rgb(3, 1), [3, 1, 0]);
        assert_eq!(img.rgb(0, 2), [0, 2, 0]);
    }

    #[test]
    fn wrap_addressing() {
        let img = Image::from_fn(4, 4, TexelFormat::Rgba8888, |x, y| [x as u8, y as u8, 0]);
        assert_eq!(img.texel_wrapped(5, -1), img.texel(1, 3));
        assert_eq!(img.texel_wrapped(-4, 8), img.texel(0, 0));
    }

    #[test]
    fn put_then_get_roundtrip() {
        let mut img = Image::filled(4, 4, TexelFormat::Rgba8888, [0, 0, 0]);
        img.put_rgb(2, 2, [10, 20, 30]);
        assert_eq!(img.rgb(2, 2), [10, 20, 30]);
        assert_eq!(img.rgb(2, 1), [0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_read_panics() {
        let img = Image::filled(4, 4, TexelFormat::L8, [0, 0, 0]);
        let _ = img.texel(4, 0);
    }

    #[test]
    fn byte_size_tracks_format() {
        assert_eq!(
            Image::filled(16, 16, TexelFormat::Rgb565, [0; 3]).byte_size(),
            512
        );
        assert_eq!(
            Image::filled(16, 16, TexelFormat::L8, [0; 3]).byte_size(),
            256
        );
    }
}
