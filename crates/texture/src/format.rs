//! Texel storage formats.

use std::fmt;

/// Host-memory texel storage format.
///
/// The paper assumes textures live in system memory at their *original
/// depth* and are expanded to 32 bits by the accelerator for cache storage
/// (§3.2). The push-architecture baseline stores textures at original depth.
///
/// ```
/// use mltc_texture::TexelFormat;
/// assert_eq!(TexelFormat::Rgb565.bytes_per_texel(), 2);
/// assert_eq!(TexelFormat::Rgba8888.bytes_per_texel(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TexelFormat {
    /// 32-bit RGBA, 8 bits per channel.
    Rgba8888,
    /// 16-bit RGB, 5-6-5 bits — the typical "original depth" of mid-90s PC
    /// texture assets and the default host format in this study.
    #[default]
    Rgb565,
    /// 8-bit luminance.
    L8,
}

impl TexelFormat {
    /// Storage bytes per texel in this format.
    #[inline]
    pub const fn bytes_per_texel(self) -> usize {
        match self {
            TexelFormat::Rgba8888 => 4,
            TexelFormat::Rgb565 => 2,
            TexelFormat::L8 => 1,
        }
    }

    /// Encodes an `[r, g, b]` 8-bit colour into this format's byte
    /// representation (little-endian for multi-byte formats). Alpha is 255.
    pub fn encode(self, rgb: [u8; 3]) -> Vec<u8> {
        match self {
            TexelFormat::Rgba8888 => vec![rgb[0], rgb[1], rgb[2], 255],
            TexelFormat::Rgb565 => {
                let v: u16 = ((rgb[0] as u16 >> 3) << 11)
                    | ((rgb[1] as u16 >> 2) << 5)
                    | (rgb[2] as u16 >> 3);
                v.to_le_bytes().to_vec()
            }
            TexelFormat::L8 => {
                // ITU-R BT.601 luma weights, integer approximation.
                let l = (rgb[0] as u32 * 77 + rgb[1] as u32 * 150 + rgb[2] as u32 * 29) >> 8;
                vec![l as u8]
            }
        }
    }

    /// Decodes the texel starting at `bytes` into packed 0xAABBGGRR
    /// (RGBA little-endian, i.e. the accelerator's expanded 32-bit form).
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is shorter than [`Self::bytes_per_texel`].
    #[inline]
    pub fn decode(self, bytes: &[u8]) -> u32 {
        match self {
            TexelFormat::Rgba8888 => u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]),
            TexelFormat::Rgb565 => {
                let v = u16::from_le_bytes([bytes[0], bytes[1]]);
                let r5 = ((v >> 11) & 0x1f) as u32;
                let g6 = ((v >> 5) & 0x3f) as u32;
                let b5 = (v & 0x1f) as u32;
                // Expand with bit replication so pure white stays 255.
                let r = (r5 << 3) | (r5 >> 2);
                let g = (g6 << 2) | (g6 >> 4);
                let b = (b5 << 3) | (b5 >> 2);
                0xff00_0000 | (b << 16) | (g << 8) | r
            }
            TexelFormat::L8 => {
                let l = bytes[0] as u32;
                0xff00_0000 | (l << 16) | (l << 8) | l
            }
        }
    }
}

impl fmt::Display for TexelFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TexelFormat::Rgba8888 => "RGBA8888",
            TexelFormat::Rgb565 => "RGB565",
            TexelFormat::L8 => "L8",
        };
        f.write_str(s)
    }
}

/// Unpacks a 0xAABBGGRR texel into `[r, g, b, a]` channels.
///
/// ```
/// let px = mltc_texture::TexelFormat::Rgba8888.decode(&[10, 20, 30, 40]);
/// assert_eq!(mltc_texture::unpack_rgba(px), [10, 20, 30, 40]);
/// ```
#[inline]
pub fn unpack_rgba(texel: u32) -> [u8; 4] {
    texel.to_le_bytes()
}

/// Packs `[r, g, b, a]` channels into a 0xAABBGGRR texel.
#[inline]
pub fn pack_rgba(c: [u8; 4]) -> u32 {
    u32::from_le_bytes(c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_per_texel() {
        assert_eq!(TexelFormat::Rgba8888.bytes_per_texel(), 4);
        assert_eq!(TexelFormat::Rgb565.bytes_per_texel(), 2);
        assert_eq!(TexelFormat::L8.bytes_per_texel(), 1);
    }

    #[test]
    fn rgba_roundtrip_is_exact() {
        let enc = TexelFormat::Rgba8888.encode([1, 2, 3]);
        let px = TexelFormat::Rgba8888.decode(&enc);
        assert_eq!(unpack_rgba(px), [1, 2, 3, 255]);
    }

    #[test]
    fn rgb565_white_expands_to_full_white() {
        let enc = TexelFormat::Rgb565.encode([255, 255, 255]);
        assert_eq!(
            unpack_rgba(TexelFormat::Rgb565.decode(&enc)),
            [255, 255, 255, 255]
        );
    }

    #[test]
    fn rgb565_black_stays_black() {
        let enc = TexelFormat::Rgb565.encode([0, 0, 0]);
        assert_eq!(
            unpack_rgba(TexelFormat::Rgb565.decode(&enc)),
            [0, 0, 0, 255]
        );
    }

    #[test]
    fn rgb565_quantizes_within_channel_step() {
        let enc = TexelFormat::Rgb565.encode([100, 150, 200]);
        let [r, g, b, a] = unpack_rgba(TexelFormat::Rgb565.decode(&enc));
        assert!((r as i32 - 100).abs() <= 8, "r={r}");
        assert!((g as i32 - 150).abs() <= 4, "g={g}");
        assert!((b as i32 - 200).abs() <= 8, "b={b}");
        assert_eq!(a, 255);
    }

    #[test]
    fn l8_is_grey() {
        let enc = TexelFormat::L8.encode([128, 128, 128]);
        let [r, g, b, _] = unpack_rgba(TexelFormat::L8.decode(&enc));
        assert_eq!(r, g);
        assert_eq!(g, b);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let c = [9, 8, 7, 6];
        assert_eq!(unpack_rgba(pack_rgba(c)), c);
    }

    #[test]
    fn display_names() {
        assert_eq!(TexelFormat::Rgb565.to_string(), "RGB565");
    }
}
