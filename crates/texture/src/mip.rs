//! Mip-map pyramid construction (paper §2.1).

use crate::format::unpack_rgba;
use crate::Image;
#[cfg(test)]
use crate::TexelFormat;

/// A texture's full mip pyramid: `level(0)` is the original (finest) image
/// and each successive level is a one-quarter box-filtered image of the one
/// below, down to 1×1 (Williams' *pyramidal parametrics* scheme the paper
/// builds on).
///
/// ```
/// use mltc_texture::{Image, MipPyramid, TexelFormat};
/// let base = Image::filled(16, 16, TexelFormat::Rgb565, [100, 100, 100]);
/// let pyr = MipPyramid::from_image(base);
/// assert_eq!(pyr.level_count(), 5); // 16,8,4,2,1
/// assert_eq!(pyr.level(4).width(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MipPyramid {
    levels: Vec<Image>,
}

impl MipPyramid {
    /// Builds the full pyramid from a base image by repeated 2×2 box
    /// filtering. Non-square images reduce each dimension independently
    /// (clamping at 1) until both reach 1.
    pub fn from_image(base: Image) -> Self {
        let mut levels = vec![base];
        loop {
            let prev = levels.last().expect("pyramid always has a base");
            if prev.width() == 1 && prev.height() == 1 {
                break;
            }
            levels.push(downsample(prev));
        }
        Self { levels }
    }

    /// Builds a pyramid with a single level (no mip mapping).
    pub fn single_level(base: Image) -> Self {
        Self { levels: vec![base] }
    }

    /// Number of mip levels (≥ 1).
    #[inline]
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// The image at mip level `m` (0 = finest).
    ///
    /// # Panics
    ///
    /// Panics if `m >= level_count()`.
    #[inline]
    pub fn level(&self, m: usize) -> &Image {
        &self.levels[m]
    }

    /// Iterates over levels from finest to coarsest.
    pub fn iter(&self) -> std::slice::Iter<'_, Image> {
        self.levels.iter()
    }

    /// Total host-memory footprint of all levels, at original depth.
    pub fn byte_size(&self) -> usize {
        self.levels.iter().map(Image::byte_size).sum()
    }

    /// Total texel count across all levels.
    pub fn texel_count(&self) -> usize {
        self.levels
            .iter()
            .map(|l| (l.width() * l.height()) as usize)
            .sum()
    }
}

impl<'a> IntoIterator for &'a MipPyramid {
    type Item = &'a Image;
    type IntoIter = std::slice::Iter<'a, Image>;

    fn into_iter(self) -> Self::IntoIter {
        self.levels.iter()
    }
}

/// One step of 2×2 box filtering (halves each dimension, clamped at 1).
fn downsample(src: &Image) -> Image {
    let w = (src.width() / 2).max(1);
    let h = (src.height() / 2).max(1);
    let sx = src.width() / w; // 1 when the source dimension is already 1
    let sy = src.height() / h;
    Image::from_fn(w, h, src.format(), |x, y| {
        let mut acc = [0u32; 3];
        let mut n = 0u32;
        for dy in 0..sy {
            for dx in 0..sx {
                let [r, g, b, _] = unpack_rgba(src.texel(x * sx + dx, y * sy + dy));
                acc[0] += r as u32;
                acc[1] += g as u32;
                acc[2] += b as u32;
                n += 1;
            }
        }
        [(acc[0] / n) as u8, (acc[1] / n) as u8, (acc[2] / n) as u8]
    })
}

/// Returns the mip level count for a `w`×`h` base image.
///
/// ```
/// assert_eq!(mltc_texture::mip_level_count(256, 256), 9);
/// assert_eq!(mltc_texture::mip_level_count(8, 2), 4);
/// ```
pub fn mip_level_count(w: u32, h: u32) -> usize {
    let max = w.max(h).max(1);
    (32 - max.leading_zeros()) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_pyramid_level_dims_halve() {
        let pyr = MipPyramid::from_image(Image::filled(32, 32, TexelFormat::Rgba8888, [0; 3]));
        let dims: Vec<(u32, u32)> = pyr.iter().map(|l| (l.width(), l.height())).collect();
        assert_eq!(dims, [(32, 32), (16, 16), (8, 8), (4, 4), (2, 2), (1, 1)]);
    }

    #[test]
    fn non_square_pyramid_clamps_small_axis() {
        let pyr = MipPyramid::from_image(Image::filled(8, 2, TexelFormat::Rgba8888, [0; 3]));
        let dims: Vec<(u32, u32)> = pyr.iter().map(|l| (l.width(), l.height())).collect();
        assert_eq!(dims, [(8, 2), (4, 1), (2, 1), (1, 1)]);
    }

    #[test]
    fn box_filter_averages() {
        let base = Image::from_fn(2, 2, TexelFormat::Rgba8888, |x, y| {
            if x == 0 && y == 0 {
                [100, 0, 0]
            } else {
                [0, 0, 0]
            }
        });
        let pyr = MipPyramid::from_image(base);
        assert_eq!(pyr.level(1).rgb(0, 0), [25, 0, 0]);
    }

    #[test]
    fn uniform_image_stays_uniform() {
        let pyr =
            MipPyramid::from_image(Image::filled(16, 16, TexelFormat::Rgba8888, [60, 70, 80]));
        for lvl in &pyr {
            assert_eq!(lvl.rgb(0, 0), [60, 70, 80]);
        }
    }

    #[test]
    fn byte_size_is_about_four_thirds() {
        let pyr = MipPyramid::from_image(Image::filled(256, 256, TexelFormat::Rgb565, [0; 3]));
        let base = 256 * 256 * 2;
        let total = pyr.byte_size();
        assert!(total > base && total < base * 4 / 3 + 16, "total={total}");
    }

    #[test]
    fn level_count_helper_matches_pyramid() {
        for dim in [1u32, 2, 16, 64, 512] {
            let pyr = MipPyramid::from_image(Image::filled(dim, dim, TexelFormat::L8, [0; 3]));
            assert_eq!(pyr.level_count(), mip_level_count(dim, dim));
        }
    }

    #[test]
    fn single_level_pyramid() {
        let pyr = MipPyramid::single_level(Image::filled(64, 64, TexelFormat::L8, [0; 3]));
        assert_eq!(pyr.level_count(), 1);
    }
}
