//! Procedural texture synthesis.
//!
//! The paper's workloads use proprietary texture assets (Evans & Sutherland's
//! *Village*, UCLA's *City*). Cache behaviour depends only on *which texels*
//! are addressed — never on their colour values — so this module substitutes
//! deterministic procedural images (bricks, windows, foliage, asphalt, sky)
//! whose sizes and counts are calibrated to the paper's published memory
//! statistics (see DESIGN.md §1).
//!
//! All generators are pure functions of their arguments; generators with a
//! `seed` parameter use a seeded [`rand::rngs::StdRng`] so whole workloads
//! are bit-reproducible.

use crate::{Image, TexelFormat};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Default host format for synthesised assets ("original depth", §3.2).
pub const HOST_FORMAT: TexelFormat = TexelFormat::Rgb565;

/// Mixes two colours: `a*(1-t) + b*t`.
fn mix(a: [u8; 3], b: [u8; 3], t: f32) -> [u8; 3] {
    let t = t.clamp(0.0, 1.0);
    let m = |x: u8, y: u8| (x as f32 + (y as f32 - x as f32) * t) as u8;
    [m(a[0], b[0]), m(a[1], b[1]), m(a[2], b[2])]
}

/// A hash-based value noise in `[0, 1)`, deterministic in `(x, y, seed)`.
fn hash_noise(x: u32, y: u32, seed: u64) -> f32 {
    let mut h = seed ^ ((x as u64) << 32 | y as u64);
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 33;
    (h & 0xffff) as f32 / 65536.0
}

/// Classic checkerboard of `cell`-texel squares.
///
/// # Panics
///
/// Panics if `size` is not a power of two or `cell` is zero.
pub fn checkerboard(size: u32, cell: u32, a: [u8; 3], b: [u8; 3]) -> Image {
    assert!(cell > 0);
    Image::from_fn(size, size, HOST_FORMAT, |x, y| {
        if ((x / cell) + (y / cell)).is_multiple_of(2) {
            a
        } else {
            b
        }
    })
}

/// Running-bond brick pattern with mortar lines and per-brick shade
/// variation.
pub fn brick(size: u32, seed: u64, brick_rgb: [u8; 3], mortar_rgb: [u8; 3]) -> Image {
    let bw = (size / 8).max(4); // brick width
    let bh = (size / 16).max(2); // brick height
    Image::from_fn(size, size, HOST_FORMAT, |x, y| {
        let row = y / bh;
        let xoff = if row.is_multiple_of(2) { 0 } else { bw / 2 };
        let lx = (x + xoff) % bw;
        let ly = y % bh;
        if lx < 1 || ly < 1 {
            mortar_rgb
        } else {
            let col = (x + xoff) / bw;
            let shade = hash_noise(col, row, seed) * 0.35;
            mix(brick_rgb, [0, 0, 0], shade)
        }
    })
}

/// Value-noise texture between two colours (grass, gravel, water).
pub fn noise(size: u32, seed: u64, scale: u32, a: [u8; 3], b: [u8; 3]) -> Image {
    let scale = scale.max(1);
    Image::from_fn(size, size, HOST_FORMAT, |x, y| {
        // Bilinear interpolation of lattice noise for soft blotches.
        let fx = x as f32 / scale as f32;
        let fy = y as f32 / scale as f32;
        let (x0, y0) = (fx as u32, fy as u32);
        let (tx, ty) = (fx.fract(), fy.fract());
        let n00 = hash_noise(x0, y0, seed);
        let n10 = hash_noise(x0 + 1, y0, seed);
        let n01 = hash_noise(x0, y0 + 1, seed);
        let n11 = hash_noise(x0 + 1, y0 + 1, seed);
        let n = n00 * (1.0 - tx) * (1.0 - ty)
            + n10 * tx * (1.0 - ty)
            + n01 * (1.0 - tx) * ty
            + n11 * tx * ty;
        mix(a, b, n)
    })
}

/// Vertical gradient (sky dome).
pub fn gradient_v(size: u32, top: [u8; 3], bottom: [u8; 3]) -> Image {
    Image::from_fn(size, size, HOST_FORMAT, |_, y| {
        mix(top, bottom, y as f32 / size.max(2).saturating_sub(1) as f32)
    })
}

/// Building facade: a grid of lit/unlit windows on a wall colour.
pub fn window_grid(size: u32, seed: u64, wall: [u8; 3], lit: [u8; 3], dark: [u8; 3]) -> Image {
    let cell = (size / 8).max(4);
    let win = cell * 3 / 5;
    let margin = (cell - win) / 2;
    Image::from_fn(size, size, HOST_FORMAT, |x, y| {
        let (cx, cy) = (x / cell, y / cell);
        let (lx, ly) = (x % cell, y % cell);
        let in_window = lx >= margin && lx < margin + win && ly >= margin && ly < margin + win;
        if in_window {
            if hash_noise(cx, cy, seed) > 0.6 {
                lit
            } else {
                dark
            }
        } else {
            let shade = hash_noise(x, y, seed ^ 0x9e37) * 0.1;
            mix(wall, [0, 0, 0], shade)
        }
    })
}

/// Horizontal stripes (road markings, awnings).
pub fn stripes(size: u32, period: u32, duty: u32, a: [u8; 3], b: [u8; 3]) -> Image {
    let period = period.max(1);
    Image::from_fn(size, size, HOST_FORMAT, |_, y| {
        if y % period < duty {
            a
        } else {
            b
        }
    })
}

/// Asphalt with a dashed centre line (streets).
pub fn road(size: u32, seed: u64) -> Image {
    let asphalt = [52, 52, 56];
    let line = [200, 180, 60];
    Image::from_fn(size, size, HOST_FORMAT, |x, y| {
        let centre = (y as i32 - size as i32 / 2).unsigned_abs();
        let dashed = centre < size / 32 + 1 && (x / (size / 8).max(1)).is_multiple_of(2);
        if dashed {
            line
        } else {
            let n = hash_noise(x, y, seed) * 0.25;
            mix(asphalt, [90, 90, 95], n)
        }
    })
}

/// Foliage blotches for trees and hedges.
pub fn foliage(size: u32, seed: u64) -> Image {
    noise(size, seed, (size / 16).max(2), [20, 70, 25], [90, 160, 60])
}

/// Roof tiles: horizontal courses with per-tile shade.
pub fn roof_tiles(size: u32, seed: u64, tile_rgb: [u8; 3]) -> Image {
    let course = (size / 12).max(2);
    Image::from_fn(size, size, HOST_FORMAT, |x, y| {
        let row = y / course;
        let xoff = if row.is_multiple_of(2) { 0 } else { course / 2 };
        if y % course == 0 {
            mix(tile_rgb, [0, 0, 0], 0.5)
        } else {
            let col = (x + xoff) / course;
            mix(tile_rgb, [0, 0, 0], hash_noise(col, row, seed) * 0.3)
        }
    })
}

/// A random flat-ish colour in a pleasing mid-tone range, for generating the
/// City's many per-building facades.
pub fn random_tone(rng: &mut StdRng) -> [u8; 3] {
    [
        rng.gen_range(90..220u32) as u8,
        rng.gen_range(90..220u32) as u8,
        rng.gen_range(90..220u32) as u8,
    ]
}

/// Creates the deterministic RNG used by workload builders.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkerboard_alternates() {
        let img = checkerboard(16, 4, [0, 0, 0], [255, 255, 255]);
        assert_eq!(img.rgb(0, 0), img.rgb(8, 0));
        assert_ne!(img.texel(0, 0), img.texel(4, 0));
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(
            brick(32, 7, [170, 60, 40], [180, 180, 180]),
            brick(32, 7, [170, 60, 40], [180, 180, 180])
        );
        assert_eq!(
            noise(32, 1, 4, [0; 3], [255; 3]),
            noise(32, 1, 4, [0; 3], [255; 3])
        );
        assert_eq!(
            window_grid(32, 3, [100; 3], [255, 255, 200], [20; 3]),
            window_grid(32, 3, [100; 3], [255, 255, 200], [20; 3])
        );
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(
            noise(32, 1, 4, [0; 3], [255; 3]),
            noise(32, 2, 4, [0; 3], [255; 3])
        );
    }

    #[test]
    fn gradient_is_monotone() {
        let img = gradient_v(32, [0, 0, 0], [255, 255, 255]);
        let top = img.rgb(0, 0)[0] as i32;
        let mid = img.rgb(0, 16)[0] as i32;
        let bot = img.rgb(0, 31)[0] as i32;
        assert!(top <= mid && mid <= bot);
        assert!(bot > 200);
    }

    #[test]
    fn stripes_have_requested_period() {
        let img = stripes(16, 4, 2, [255, 0, 0], [0, 0, 255]);
        assert_eq!(img.rgb(0, 0), img.rgb(0, 4));
        assert_ne!(img.rgb(0, 0), img.rgb(0, 2));
    }

    #[test]
    fn all_generators_produce_requested_size() {
        for img in [
            checkerboard(64, 8, [0; 3], [255; 3]),
            brick(64, 1, [170, 60, 40], [180; 3]),
            noise(64, 1, 8, [0; 3], [255; 3]),
            gradient_v(64, [0; 3], [255; 3]),
            window_grid(64, 1, [100; 3], [255; 3], [0; 3]),
            stripes(64, 8, 4, [0; 3], [255; 3]),
            road(64, 1),
            foliage(64, 1),
            roof_tiles(64, 1, [150, 60, 50]),
        ] {
            assert_eq!((img.width(), img.height()), (64, 64));
            assert_eq!(img.format(), HOST_FORMAT);
        }
    }

    #[test]
    fn seeded_rng_reproducible() {
        let mut a = seeded_rng(99);
        let mut b = seeded_rng(99);
        assert_eq!(random_tone(&mut a), random_tone(&mut b));
    }
}
