//! Virtual texture block addressing ⟨tid, L2, L1⟩ (paper §2.2, Fig. 2).

use crate::{TextureId, TextureRegistry, TileSize, TilingConfig};

/// The virtual address of an L1 sub-block within the 2-level tiled
/// representation: texture `tid`, L2 block number `l2` (unique within the
/// texture, assigned sequentially across mip levels from the
/// lowest-resolution level up), and L1 sub-block number `l1` (unique only
/// within its parent L2 block).
///
/// ```
/// use mltc_texture::{TextureId, VirtualBlockAddr};
/// let a = VirtualBlockAddr::new(TextureId::from_index(3), 17, 5);
/// assert_eq!(VirtualBlockAddr::unpack(a.packed()), a);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VirtualBlockAddr {
    /// Texture identifier.
    pub tid: TextureId,
    /// L2 block number within the texture.
    pub l2: u32,
    /// L1 sub-block number within the L2 block.
    pub l1: u16,
}

impl VirtualBlockAddr {
    /// Creates an address from parts.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `l2` exceeds 24 bits or `l1` exceeds 8 bits
    /// (the packing limits; 32×32-texel L2 blocks of 4×4 L1 sub-blocks need
    /// only 64 `l1` values, and a 4096² texture with 8×8 L2 blocks needs
    /// fewer than 2²⁴ L2 blocks).
    #[inline]
    pub fn new(tid: TextureId, l2: u32, l1: u16) -> Self {
        debug_assert!(l2 < (1 << 24), "l2 block number {l2} exceeds packing limit");
        debug_assert!(
            l1 < (1 << 8),
            "l1 sub-block number {l1} exceeds packing limit"
        );
        Self { tid, l2, l1 }
    }

    /// Packs the address into a single `u64` cache tag.
    #[inline]
    pub fn packed(self) -> u64 {
        ((self.tid.index() as u64) << 32) | ((self.l2 as u64) << 8) | self.l1 as u64
    }

    /// Inverse of [`Self::packed`].
    #[inline]
    pub fn unpack(v: u64) -> Self {
        Self {
            tid: TextureId::from_index((v >> 32) as u32),
            l2: ((v >> 8) & 0xff_ffff) as u32,
            l1: (v & 0xff) as u16,
        }
    }

    /// The page-table key ⟨tid, L2⟩ with the sub-block number stripped.
    #[inline]
    pub fn page_key(self) -> u64 {
        self.packed() >> 8
    }
}

/// A tiling-independent identity for an L1 block: ⟨tid, mip level, block
/// column, block row⟩ packed into a `u64`.
///
/// The simulation methodology of paper §3.3 fixes the L1 tag calculation
/// across all L2 tile-size sweeps (it uses 16×16 L2 tiles for L1 tags
/// regardless of the simulated L2 tile size) so that L1 behaviour is
/// identical in every sweep; `L1BlockKey` realises the same idea directly:
/// it names an L1 block by its grid position, which is in one-to-one
/// correspondence with the ⟨tid, L2, L1⟩ tag for any fixed L2 tile size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct L1BlockKey(u64);

impl L1BlockKey {
    /// Builds the key for the L1 block containing texel `(u, v)` of mip
    /// level `m` of texture `tid`, with L1 tiles of `l1_tile`.
    #[inline]
    pub fn new(tid: TextureId, m: u32, u: u32, v: u32, l1_tile: TileSize) -> Self {
        let s = l1_tile.shift();
        let bx = (u >> s) as u64;
        let by = (v >> s) as u64;
        debug_assert!(m < 16 && bx < (1 << 12) && by < (1 << 12));
        Self(((tid.index() as u64) << 28) | ((m as u64) << 24) | (bx << 12) | by)
    }

    /// Builds the key directly from block-grid coordinates (for cache
    /// organisations whose lines are not square tiles, e.g. the linear
    /// storage format of the §2.3 ablation).
    #[inline]
    pub fn from_block_coords(tid: TextureId, m: u32, bx: u32, by: u32) -> Self {
        debug_assert!(m < 16 && bx < (1 << 12) && by < (1 << 12));
        Self(((tid.index() as u64) << 28) | ((m as u64) << 24) | ((bx as u64) << 12) | by as u64)
    }

    /// The raw packed value (usable directly as a cache tag).
    #[inline]
    pub fn packed(self) -> u64 {
        self.0
    }
}

/// Precomputed per-texture tiling layout for one [`TilingConfig`]: per-level
/// L2 block grids and the per-level base-offset table that makes
/// ⟨u,v,m⟩ → ⟨tid,L2,L1⟩ translation a matter of shifts, adds and one table
/// look-up (paper §2.2).
#[derive(Debug, Clone)]
pub struct TextureLayout {
    tid: TextureId,
    tiling: TilingConfig,
    /// Per mip level (index = level, 0 = finest): (width, height, grid_w,
    /// l2 base offset).
    levels: Vec<LevelLayout>,
    total_l2_blocks: u32,
}

#[derive(Debug, Clone, Copy)]
struct LevelLayout {
    width: u32,
    height: u32,
    grid_w: u32,
    base: u32,
}

impl TextureLayout {
    /// Builds the layout for a texture with the given per-level dimensions
    /// (finest first).
    ///
    /// L2 blocks are numbered sequentially from the first block of the
    /// lowest-resolution mip level to the last block of the
    /// highest-resolution one, each level starting on a fresh block, exactly
    /// as in the paper's Fig. 2.
    pub fn new(tid: TextureId, dims: &[(u32, u32)], tiling: TilingConfig) -> Self {
        let l2t = tiling.l2().texels();
        // Assign bases coarsest-first, then store levels finest-first.
        let mut bases = vec![0u32; dims.len()];
        let mut next = 0u32;
        for (i, &(w, h)) in dims.iter().enumerate().rev() {
            bases[i] = next;
            let gw = w.div_ceil(l2t);
            let gh = h.div_ceil(l2t);
            next += gw * gh;
        }
        let levels = dims
            .iter()
            .zip(&bases)
            .map(|(&(w, h), &base)| LevelLayout {
                width: w,
                height: h,
                grid_w: w.div_ceil(l2t),
                base,
            })
            .collect();
        Self {
            tid,
            tiling,
            levels,
            total_l2_blocks: next,
        }
    }

    /// Total number of L2 blocks across all mip levels (`tlen` in the
    /// paper's page-table machinery).
    #[inline]
    pub fn l2_block_count(&self) -> u32 {
        self.total_l2_blocks
    }

    /// Number of mip levels.
    #[inline]
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// `(width, height)` of mip level `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range.
    #[inline]
    pub fn level_dims(&self, m: u32) -> (u32, u32) {
        let l = &self.levels[m as usize];
        (l.width, l.height)
    }

    /// Translates in-bounds texel coordinates `(u, v)` of mip level `m` to
    /// the virtual block address of the containing L1 sub-block.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `m` or `(u, v)` is out of range.
    #[inline]
    pub fn translate(&self, u: u32, v: u32, m: u32) -> VirtualBlockAddr {
        let lvl = &self.levels[m as usize];
        debug_assert!(
            u < lvl.width && v < lvl.height,
            "texel ({u},{v}) out of bounds for level {m} ({}x{})",
            lvl.width,
            lvl.height
        );
        let l2s = self.tiling.l2().shift();
        let l1s = self.tiling.l1().shift();
        let bx = u >> l2s;
        let by = v >> l2s;
        let l2 = lvl.base + by * lvl.grid_w + bx;
        let sub_edge = self.tiling.l1_per_l2_edge();
        let su = (u & (self.tiling.l2().texels() - 1)) >> l1s;
        let sv = (v & (self.tiling.l2().texels() - 1)) >> l1s;
        let l1 = (sv * sub_edge + su) as u16;
        VirtualBlockAddr::new(self.tid, l2, l1)
    }
}

/// One row of [`TranslationTables`]: everything needed to turn an
/// in-bounds `(u, v)` of one mip level of one texture into a page-table
/// index with shifts, masks and a single multiply — the per-level base and
/// the texture's `tstart` are folded into `pt_base` so no per-access table
/// walk or `Option` probe remains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MipEntry {
    /// `tstart + level base`: `pt_index = pt_base + by * grid_w + bx`.
    pub pt_base: u32,
    /// L2 block-grid width of the level.
    pub grid_w: u32,
    /// Level width in texels.
    pub width: u32,
    /// Level height in texels.
    pub height: u32,
}

/// Flattened shift/mask translation tables over a whole
/// [`PageTableLayout`]: a dense per-(texture, mip) [`MipEntry`] array plus
/// the layout-wide tiling shifts. Equivalent to
/// [`PageTableLayout::translate`] + [`PageTableLayout::page_table_index`]
/// but branch-free on the hot path (no nested `Option`s, no
/// `VirtualBlockAddr` construction, no division anywhere).
#[derive(Debug, Clone)]
pub struct TranslationTables {
    /// log2 of the L2 tile edge in texels.
    l2_shift: u32,
    /// log2 of the L1 tile edge in texels.
    l1_shift: u32,
    /// log2 of L1 tiles per L2 tile edge (`l2_shift - l1_shift`).
    sub_shift: u32,
    /// `l2 texels - 1`: masks a coordinate down to its offset in the tile.
    l2_mask: u32,
    /// Per tid: (start index into `mips`, level count); `(0, 0)` for
    /// deleted or never-issued textures.
    slots: Vec<(u32, u32)>,
    mips: Vec<MipEntry>,
}

/// One-entry last-translation memo for [`TranslationTables::lookup`]: the
/// 4–8 taps of a bilinear/trilinear footprint almost always land in the
/// same L2 page, so caching the last `(tid, m, bx, by) → pt_index` mapping
/// skips the slot/entry loads and the `by * grid_w` multiply for the
/// common tap.
#[derive(Debug, Clone)]
pub struct TranslationMemo {
    /// Packed `(tid, m, bx, by)`; `u64::MAX` = empty (unreachable as a
    /// real key: it would need tid `u32::MAX` *and* a mip-15 block grid
    /// 2¹⁴ blocks wide, far beyond the packing limits asserted below).
    key: u64,
    pt_index: u32,
}

impl Default for TranslationMemo {
    fn default() -> Self {
        Self {
            key: u64::MAX,
            pt_index: 0,
        }
    }
}

impl TranslationTables {
    fn new(tiling: TilingConfig) -> Self {
        let l2_shift = tiling.l2().shift();
        let l1_shift = tiling.l1().shift();
        Self {
            l2_shift,
            l1_shift,
            sub_shift: l2_shift - l1_shift,
            l2_mask: tiling.l2().texels() - 1,
            slots: Vec::new(),
            mips: Vec::new(),
        }
    }

    fn push_texture(&mut self, tid: u32, tstart: u32, layout: &TextureLayout) {
        let idx = tid as usize;
        if self.slots.len() <= idx {
            self.slots.resize(idx + 1, (0, 0));
        }
        self.slots[idx] = (self.mips.len() as u32, layout.levels.len() as u32);
        for lvl in &layout.levels {
            self.mips.push(MipEntry {
                pt_base: tstart + lvl.base,
                grid_w: lvl.grid_w,
                width: lvl.width,
                height: lvl.height,
            });
        }
    }

    /// All levels of texture `tid` (finest first); empty for textures
    /// unknown to the layout.
    #[inline]
    pub fn levels(&self, tid: u32) -> &[MipEntry] {
        match self.slots.get(tid as usize) {
            Some(&(start, count)) => &self.mips[start as usize..(start + count) as usize],
            None => &[],
        }
    }

    /// The entry for mip level `m` of texture `tid`, if the texture is
    /// known and has that level.
    #[inline]
    pub fn entry(&self, tid: u32, m: u32) -> Option<&MipEntry> {
        self.levels(tid).get(m as usize)
    }

    /// `(page-table index, L1 sub-block number)` of the block containing
    /// texel `(u, v)` of the level described by `e` — pure shifts, masks
    /// and one multiply. Matches
    /// `page_table_index(&translate(tid, u, v, m))` bit for bit.
    #[inline]
    pub fn pt_and_sub(&self, e: &MipEntry, u: u32, v: u32) -> (u32, u16) {
        debug_assert!(u < e.width && v < e.height);
        let bx = u >> self.l2_shift;
        let by = v >> self.l2_shift;
        let pt = e.pt_base + by * e.grid_w + bx;
        (pt, self.sub(u, v))
    }

    /// The L1 sub-block number alone (row-major within the L2 tile).
    #[inline]
    pub fn sub(&self, u: u32, v: u32) -> u16 {
        let su = (u & self.l2_mask) >> self.l1_shift;
        let sv = (v & self.l2_mask) >> self.l1_shift;
        ((sv << self.sub_shift) | su) as u16
    }

    /// Memoized translation: `(page-table index, L1 sub-block number)` for
    /// texel `(u, v)` of mip `m` of texture `tid`, reusing `memo` when the
    /// tap lands in the same L2 block as the previous one.
    ///
    /// # Panics
    ///
    /// Panics if the texture is unknown to the layout (same contract as
    /// the engine's canonical translate-then-index path).
    #[inline]
    pub fn lookup(
        &self,
        memo: &mut TranslationMemo,
        tid: u32,
        m: u32,
        u: u32,
        v: u32,
    ) -> (u32, u16) {
        let bx = u >> self.l2_shift;
        let by = v >> self.l2_shift;
        debug_assert!(m < 16 && bx < (1 << 14) && by < (1 << 14));
        let key = ((tid as u64) << 32) | ((m as u64) << 28) | ((bx as u64) << 14) | by as u64;
        let sub = self.sub(u, v);
        if memo.key == key {
            return (memo.pt_index, sub);
        }
        let e = self
            .entry(tid, m)
            .expect("texel access to texture unknown to the engine");
        let pt = e.pt_base + by * e.grid_w + bx;
        *memo = TranslationMemo { key, pt_index: pt };
        (pt, sub)
    }
}

/// Page-table layout across a whole [`TextureRegistry`]: each live texture
/// gets a contiguous run of page-table entries `tstart .. tstart + tlen`
/// (one per L2 block), allocated by "host driver software" as in §5.2.
///
/// ```
/// use mltc_texture::{synth, MipPyramid, PageTableLayout, TextureRegistry, TilingConfig};
/// let mut reg = TextureRegistry::new();
/// let t = reg.load("t", MipPyramid::from_image(synth::checkerboard(32, 4, [0;3], [255;3])));
/// let layout = PageTableLayout::new(&reg, TilingConfig::PAPER_DEFAULT);
/// let addr = layout.translate(t, 0, 0, 0).unwrap();
/// assert!(layout.page_table_index(&addr) < layout.entry_count());
/// ```
#[derive(Debug, Clone)]
pub struct PageTableLayout {
    tiling: TilingConfig,
    /// Indexed by `tid`; `None` for deleted textures.
    textures: Vec<Option<(u32, TextureLayout)>>,
    entry_count: u32,
    tables: TranslationTables,
}

impl PageTableLayout {
    /// Builds the layout for all live textures in `registry`.
    pub fn new(registry: &TextureRegistry, tiling: TilingConfig) -> Self {
        let mut textures: Vec<Option<(u32, TextureLayout)>> =
            (0..registry.issued_count()).map(|_| None).collect();
        let mut tables = TranslationTables::new(tiling);
        let mut next = 0u32;
        for (tid, pyr) in registry.iter() {
            let dims: Vec<(u32, u32)> = pyr.iter().map(|img| (img.width(), img.height())).collect();
            let layout = TextureLayout::new(tid, &dims, tiling);
            let tlen = layout.l2_block_count();
            tables.push_texture(tid.index(), next, &layout);
            textures[tid.index() as usize] = Some((next, layout));
            next += tlen;
        }
        Self {
            tiling,
            textures,
            entry_count: next,
            tables,
        }
    }

    /// The precomputed shift/mask translation tables over this layout (the
    /// replay fast path's and degraded-serve probe's view of translation).
    #[inline]
    pub fn tables(&self) -> &TranslationTables {
        &self.tables
    }

    /// The tiling this layout was built for.
    #[inline]
    pub fn tiling(&self) -> TilingConfig {
        self.tiling
    }

    /// Total number of page-table entries (one per L2 block of every live
    /// texture).
    #[inline]
    pub fn entry_count(&self) -> u32 {
        self.entry_count
    }

    /// The `tstart` of a texture's contiguous page-table run.
    pub fn tstart(&self, tid: TextureId) -> Option<u32> {
        self.textures
            .get(tid.index() as usize)?
            .as_ref()
            .map(|(s, _)| *s)
    }

    /// The `tlen` (number of page-table entries) of a texture.
    pub fn tlen(&self, tid: TextureId) -> Option<u32> {
        self.textures
            .get(tid.index() as usize)?
            .as_ref()
            .map(|(_, l)| l.l2_block_count())
    }

    /// Per-texture layout.
    pub fn texture_layout(&self, tid: TextureId) -> Option<&TextureLayout> {
        self.textures
            .get(tid.index() as usize)?
            .as_ref()
            .map(|(_, l)| l)
    }

    /// Translates ⟨u,v,m⟩ of texture `tid` to a virtual block address, or
    /// `None` if the texture is unknown to this layout.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `(u, v, m)` is out of range for the texture.
    #[inline]
    pub fn translate(&self, tid: TextureId, u: u32, v: u32, m: u32) -> Option<VirtualBlockAddr> {
        Some(self.texture_layout(tid)?.translate(u, v, m))
    }

    /// Index into the texture page table for an address: `tstart + L2`
    /// (paper §5.2).
    ///
    /// # Panics
    ///
    /// Panics if the address's texture is unknown to this layout.
    #[inline]
    pub fn page_table_index(&self, addr: &VirtualBlockAddr) -> u32 {
        let (tstart, _) = self.textures[addr.tid.index() as usize]
            .as_ref()
            .expect("address refers to a texture absent from this layout");
        tstart + addr.l2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{synth, MipPyramid, TileSize};

    fn layout_for(dim: u32, tiling: TilingConfig) -> (TextureRegistry, TextureId, PageTableLayout) {
        let mut reg = TextureRegistry::new();
        let tid = reg.load(
            "t",
            MipPyramid::from_image(synth::checkerboard(dim, 4, [0; 3], [255; 3])),
        );
        let layout = PageTableLayout::new(&reg, tiling);
        (reg, tid, layout)
    }

    #[test]
    fn packed_roundtrip() {
        let a = VirtualBlockAddr::new(TextureId::from_index(65000), 0xabcdef, 63);
        assert_eq!(VirtualBlockAddr::unpack(a.packed()), a);
    }

    #[test]
    fn page_key_strips_l1() {
        let a = VirtualBlockAddr::new(TextureId::from_index(1), 7, 3);
        let b = VirtualBlockAddr::new(TextureId::from_index(1), 7, 9);
        assert_eq!(a.page_key(), b.page_key());
        let c = VirtualBlockAddr::new(TextureId::from_index(1), 8, 3);
        assert_ne!(a.page_key(), c.page_key());
    }

    #[test]
    fn translation_basics() {
        let (_reg, tid, layout) = layout_for(64, TilingConfig::PAPER_DEFAULT);
        let tl = layout.texture_layout(tid).unwrap();
        // Level 0 is 64x64 = 4x4 grid of 16x16 L2 blocks.
        let a = tl.translate(0, 0, 0);
        let b = tl.translate(15, 15, 0);
        assert_eq!(a.l2, b.l2, "same L2 block");
        assert_ne!(a.l1, b.l1, "different L1 sub-blocks");
        // Texel (16,0) starts the next L2 block to the right.
        assert_eq!(tl.translate(16, 0, 0).l2, a.l2 + 1);
        // Texel (0,16) starts the next L2 block row (grid_w = 4).
        assert_eq!(tl.translate(0, 16, 0).l2, a.l2 + 4);
    }

    #[test]
    fn l1_subblock_numbering_is_row_major() {
        let (_reg, tid, layout) = layout_for(64, TilingConfig::PAPER_DEFAULT);
        let tl = layout.texture_layout(tid).unwrap();
        assert_eq!(tl.translate(0, 0, 0).l1, 0);
        assert_eq!(tl.translate(4, 0, 0).l1, 1);
        assert_eq!(tl.translate(0, 4, 0).l1, 4);
        assert_eq!(tl.translate(15, 15, 0).l1, 15);
    }

    #[test]
    fn coarsest_level_gets_block_zero() {
        let (_reg, tid, layout) = layout_for(64, TilingConfig::PAPER_DEFAULT);
        let tl = layout.texture_layout(tid).unwrap();
        let coarsest = (tl.level_count() - 1) as u32;
        assert_eq!(tl.translate(0, 0, coarsest).l2, 0);
        // The finest level has the highest base.
        assert!(tl.translate(0, 0, 0).l2 > 0);
    }

    #[test]
    fn levels_never_share_l2_blocks() {
        let (_reg, tid, layout) = layout_for(64, TilingConfig::PAPER_DEFAULT);
        let tl = layout.texture_layout(tid).unwrap();
        let mut seen = std::collections::HashSet::new();
        for m in 0..tl.level_count() as u32 {
            let (w, h) = tl.level_dims(m);
            let mut level_blocks = std::collections::HashSet::new();
            for v in (0..h).step_by(16) {
                for u in (0..w).step_by(16) {
                    level_blocks.insert(tl.translate(u, v, m).l2);
                }
            }
            for b in level_blocks {
                assert!(seen.insert(b), "L2 block {b} reused across levels");
            }
        }
    }

    #[test]
    fn l2_block_count_matches_enumeration() {
        for tiling in [
            TilingConfig::new(TileSize::X8, TileSize::X4).unwrap(),
            TilingConfig::PAPER_DEFAULT,
            TilingConfig::new(TileSize::X32, TileSize::X8).unwrap(),
        ] {
            let (_reg, tid, layout) = layout_for(128, tiling);
            let tl = layout.texture_layout(tid).unwrap();
            let step = tiling.l2().texels() as usize;
            let mut blocks = std::collections::HashSet::new();
            for m in 0..tl.level_count() as u32 {
                let (w, h) = tl.level_dims(m);
                for v in (0..h as usize).step_by(step) {
                    for u in (0..w as usize).step_by(step) {
                        blocks.insert(tl.translate(u as u32, v as u32, m).l2);
                    }
                }
            }
            assert_eq!(blocks.len() as u32, tl.l2_block_count(), "tiling {tiling}");
        }
    }

    #[test]
    fn page_table_runs_are_contiguous_and_disjoint() {
        let mut reg = TextureRegistry::new();
        let a = reg.load(
            "a",
            MipPyramid::from_image(synth::checkerboard(64, 4, [0; 3], [255; 3])),
        );
        let b = reg.load(
            "b",
            MipPyramid::from_image(synth::checkerboard(32, 4, [0; 3], [255; 3])),
        );
        let layout = PageTableLayout::new(&reg, TilingConfig::PAPER_DEFAULT);
        let (sa, la) = (layout.tstart(a).unwrap(), layout.tlen(a).unwrap());
        let (sb, lb) = (layout.tstart(b).unwrap(), layout.tlen(b).unwrap());
        assert_eq!(sa, 0);
        assert_eq!(sb, la);
        assert_eq!(layout.entry_count(), la + lb);
    }

    #[test]
    fn deleted_textures_absent_from_layout() {
        let mut reg = TextureRegistry::new();
        let a = reg.load(
            "a",
            MipPyramid::from_image(synth::checkerboard(32, 4, [0; 3], [255; 3])),
        );
        reg.delete(a);
        let layout = PageTableLayout::new(&reg, TilingConfig::PAPER_DEFAULT);
        assert!(layout.translate(a, 0, 0, 0).is_none());
        assert_eq!(layout.entry_count(), 0);
    }

    #[test]
    fn l1_block_key_distinguishes_blocks_and_levels() {
        let t = TextureId::from_index(2);
        let a = L1BlockKey::new(t, 0, 0, 0, TileSize::X4);
        assert_eq!(a, L1BlockKey::new(t, 0, 3, 3, TileSize::X4));
        assert_ne!(a, L1BlockKey::new(t, 0, 4, 0, TileSize::X4));
        assert_ne!(a, L1BlockKey::new(t, 1, 0, 0, TileSize::X4));
        assert_ne!(
            a,
            L1BlockKey::new(TextureId::from_index(3), 0, 0, 0, TileSize::X4)
        );
    }

    #[test]
    fn translation_tables_match_translate_everywhere() {
        for tiling in [
            TilingConfig::new(TileSize::X8, TileSize::X4).unwrap(),
            TilingConfig::PAPER_DEFAULT,
            TilingConfig::new(TileSize::X32, TileSize::X8).unwrap(),
        ] {
            let mut reg = TextureRegistry::new();
            let a = reg.load(
                "a",
                MipPyramid::from_image(synth::checkerboard(128, 4, [0; 3], [255; 3])),
            );
            let b = reg.load(
                "b",
                MipPyramid::from_image(synth::checkerboard(64, 4, [0; 3], [255; 3])),
            );
            let layout = PageTableLayout::new(&reg, tiling);
            let tables = layout.tables();
            for tid in [a, b] {
                let tl = layout.texture_layout(tid).unwrap();
                let levels = tables.levels(tid.index());
                assert_eq!(levels.len(), tl.level_count());
                let mut memo = TranslationMemo::default();
                for m in 0..tl.level_count() as u32 {
                    let (w, h) = tl.level_dims(m);
                    for v in 0..h {
                        for u in 0..w {
                            let addr = layout.translate(tid, u, v, m).unwrap();
                            let want = (layout.page_table_index(&addr), addr.l1);
                            let e = &levels[m as usize];
                            assert_eq!(tables.pt_and_sub(e, u, v), want, "tiling {tiling}");
                            assert_eq!(
                                tables.lookup(&mut memo, tid.index(), m, u, v),
                                want,
                                "memoized lookup, tiling {tiling}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn translation_tables_skip_deleted_textures() {
        let mut reg = TextureRegistry::new();
        let a = reg.load(
            "a",
            MipPyramid::from_image(synth::checkerboard(32, 4, [0; 3], [255; 3])),
        );
        let b = reg.load(
            "b",
            MipPyramid::from_image(synth::checkerboard(32, 4, [0; 3], [255; 3])),
        );
        reg.delete(a);
        let layout = PageTableLayout::new(&reg, TilingConfig::PAPER_DEFAULT);
        let tables = layout.tables();
        assert!(tables.levels(a.index()).is_empty());
        assert!(tables.entry(a.index(), 0).is_none());
        assert!(tables.entry(99, 0).is_none(), "never-issued tid");
        assert!(!tables.levels(b.index()).is_empty());
        // The survivor's entries still agree with the canonical path.
        let addr = layout.translate(b, 17, 5, 0).unwrap();
        let e = tables.entry(b.index(), 0).unwrap();
        assert_eq!(
            tables.pt_and_sub(e, 17, 5),
            (layout.page_table_index(&addr), addr.l1)
        );
    }

    #[test]
    fn translation_memo_survives_block_changes() {
        let (_reg, tid, layout) = layout_for(64, TilingConfig::PAPER_DEFAULT);
        let tables = layout.tables();
        let mut memo = TranslationMemo::default();
        // Same block twice (second is the memo hit), then a different
        // block, a different level, then back: every answer must match the
        // memo-free path.
        for (u, v, m) in [(0, 0, 0), (3, 3, 0), (16, 0, 0), (0, 0, 1), (3, 3, 0)] {
            let addr = layout.translate(tid, u, v, m).unwrap();
            assert_eq!(
                tables.lookup(&mut memo, tid.index(), m, u, v),
                (layout.page_table_index(&addr), addr.l1),
                "({u},{v},{m})"
            );
        }
    }

    #[test]
    fn non_square_translation() {
        let tid = TextureId::from_index(0);
        // 64x16 level: grid 4x1 with 16x16 tiles.
        let tl = TextureLayout::new(tid, &[(64, 16)], TilingConfig::PAPER_DEFAULT);
        assert_eq!(tl.l2_block_count(), 4);
        assert_eq!(tl.translate(63, 15, 0).l2, 3);
    }
}
