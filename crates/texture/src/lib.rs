//! Tiled, mip-mapped texture storage with hierarchical virtual addressing.
//!
//! This crate implements the *hierarchical texture storage* framework of the
//! paper's §2.2: every texture is identified by a `tid`, partitioned into
//! **L2 blocks** (8×8, 16×16 or 32×32 texels), each of which is further
//! partitioned into **L1 sub-blocks** (4×4 or 8×8 texels). The concatenation
//! ⟨tid, L2, L1⟩ is a *virtual texture block address*, unique across all the
//! textures of an application, and is what both the L1 and L2 cache
//! simulators in `mltc-core` tag with.
//!
//! Within a texture, L2 block numbers are assigned sequentially from the
//! first block of the lowest-resolution mip level to the last block of the
//! highest-resolution level; each new mip level begins with a fresh L2 block
//! (paper Fig. 2). L1 sub-blocks are numbered only within the scope of their
//! parent L2 block. Translation from ⟨u,v,m⟩ to the tiled representation is
//! integer shifts, adds and a per-level base-offset table look-up, exactly as
//! the paper describes.
//!
//! # Example
//!
//! ```
//! use mltc_texture::{synth, MipPyramid, PageTableLayout, TextureRegistry,
//!                    TilingConfig, TileSize};
//!
//! let mut reg = TextureRegistry::new();
//! let img = synth::checkerboard(64, 8, [255, 0, 0], [255, 255, 255]);
//! let tid = reg.load("checker", MipPyramid::from_image(img));
//!
//! let tiling = TilingConfig::new(TileSize::X16, TileSize::X4).unwrap();
//! let layout = PageTableLayout::new(&reg, tiling);
//! let addr = layout.translate(tid, 5, 9, 0).unwrap();
//! assert_eq!(addr.tid, tid);
//! ```

mod address;
mod format;
mod image;
mod mip;
mod registry;
pub mod synth;
mod tiling;

pub use address::{
    L1BlockKey, MipEntry, PageTableLayout, TextureLayout, TranslationMemo, TranslationTables,
    VirtualBlockAddr,
};
pub use format::{pack_rgba, unpack_rgba, TexelFormat};
pub use image::Image;
pub use mip::{mip_level_count, MipPyramid};
pub use registry::{TextureId, TextureRegistry};
pub use tiling::{TileSize, TilingConfig, TilingError};
