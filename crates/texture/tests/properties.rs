//! Property-based tests for tiling, addressing and formats.

use mltc_texture::{
    synth, MipPyramid, PageTableLayout, TexelFormat, TextureId, TextureLayout, TextureRegistry,
    TileSize, TilingConfig, VirtualBlockAddr,
};
use proptest::prelude::*;

fn tile_sizes() -> impl Strategy<Value = TileSize> {
    prop_oneof![
        Just(TileSize::X4),
        Just(TileSize::X8),
        Just(TileSize::X16),
        Just(TileSize::X32),
    ]
}

fn tilings() -> impl Strategy<Value = TilingConfig> {
    (tile_sizes(), tile_sizes()).prop_filter_map("l1 must be smaller than l2", |(l2, l1)| {
        TilingConfig::new(l2, l1).ok()
    })
}

fn pow2_dim() -> impl Strategy<Value = u32> {
    (4u32..=9).prop_map(|s| 1 << s) // 16..=512
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Packing a virtual block address into a u64 tag and back is lossless.
    #[test]
    fn packed_address_roundtrip(tid in 0u32..65_536, l2 in 0u32..(1 << 24), l1 in 0u16..256) {
        let a = VirtualBlockAddr::new(TextureId::from_index(tid), l2, l1);
        prop_assert_eq!(VirtualBlockAddr::unpack(a.packed()), a);
    }

    /// Distinct addresses never collide after packing.
    #[test]
    fn packing_is_injective(
        a in (0u32..1000, 0u32..10_000, 0u16..64),
        b in (0u32..1000, 0u32..10_000, 0u16..64),
    ) {
        let av = VirtualBlockAddr::new(TextureId::from_index(a.0), a.1, a.2);
        let bv = VirtualBlockAddr::new(TextureId::from_index(b.0), b.1, b.2);
        prop_assert_eq!(av == bv, av.packed() == bv.packed());
    }

    /// Translation stays within the advertised block counts for any texture
    /// size, tiling and texel coordinate.
    #[test]
    fn translation_respects_bounds(
        dim in pow2_dim(),
        tiling in tilings(),
        frac in (0.0f64..1.0, 0.0f64..1.0),
        level_pick in 0.0f64..1.0,
    ) {
        let dims: Vec<(u32, u32)> = (0..)
            .map(|m| ((dim >> m).max(1), (dim >> m).max(1)))
            .take_while(|&(w, _)| w >= 1)
            .scan(false, |done, d| {
                if *done { None } else { *done = d.0 == 1; Some(d) }
            })
            .collect();
        let tl = TextureLayout::new(TextureId::from_index(0), &dims, tiling);
        let m = ((level_pick * dims.len() as f64) as u32).min(dims.len() as u32 - 1);
        let (w, h) = tl.level_dims(m);
        let u = (frac.0 * w as f64) as u32;
        let v = (frac.1 * h as f64) as u32;
        let (u, v) = (u.min(w - 1), v.min(h - 1));
        let addr = tl.translate(u, v, m);
        prop_assert!(addr.l2 < tl.l2_block_count());
        prop_assert!((addr.l1 as u32) < tiling.l1_per_l2());
    }

    /// Texels in the same L2-aligned tile translate to the same block;
    /// texels in different tiles never share (L2, L1).
    #[test]
    fn translation_is_consistent_with_grid(
        dim in pow2_dim(),
        tiling in tilings(),
        a in (0u32..512, 0u32..512),
        b in (0u32..512, 0u32..512),
    ) {
        let tl = TextureLayout::new(TextureId::from_index(0), &[(dim, dim)], tiling);
        let (au, av) = (a.0 % dim, a.1 % dim);
        let (bu, bv) = (b.0 % dim, b.1 % dim);
        let aa = tl.translate(au, av, 0);
        let bb = tl.translate(bu, bv, 0);
        let l1t = tiling.l1().texels();
        let same_l1_tile = (au / l1t, av / l1t) == (bu / l1t, bv / l1t);
        prop_assert_eq!(same_l1_tile, aa == bb,
            "texels ({},{}) and ({},{}) with {}", au, av, bu, bv, tiling);
    }

    /// Page-table indices across a registry are unique per (texture, L2
    /// block) and stay below `entry_count`.
    #[test]
    fn page_table_indices_unique_and_bounded(
        dims in proptest::collection::vec(pow2_dim(), 1..5),
        tiling in tilings(),
    ) {
        let mut reg = TextureRegistry::new();
        for (i, d) in dims.iter().enumerate() {
            reg.load(format!("t{i}"),
                MipPyramid::from_image(synth::checkerboard(*d, 4, [0; 3], [255; 3])));
        }
        let layout = PageTableLayout::new(&reg, tiling);
        let mut seen = std::collections::HashSet::new();
        for (tid, pyr) in reg.iter() {
            let step = tiling.l2().texels() as usize;
            for m in 0..pyr.level_count() {
                let lvl = pyr.level(m);
                for v in (0..lvl.height() as usize).step_by(step) {
                    for u in (0..lvl.width() as usize).step_by(step) {
                        let addr = layout.translate(tid, u as u32, v as u32, m as u32).unwrap();
                        let idx = layout.page_table_index(&addr);
                        prop_assert!(idx < layout.entry_count());
                        prop_assert!(seen.insert(idx), "duplicate page-table index {idx}");
                    }
                }
            }
        }
        prop_assert_eq!(seen.len() as u32, layout.entry_count());
    }

    /// RGB565 encode/decode is idempotent (decode(encode(x)) is a fixed
    /// point) and each channel error is within the quantisation step.
    #[test]
    fn rgb565_quantisation(r in 0u8..=255, g in 0u8..=255, b in 0u8..=255) {
        let enc = TexelFormat::Rgb565.encode([r, g, b]);
        let px = TexelFormat::Rgb565.decode(&enc);
        let [r2, g2, b2, a2] = mltc_texture::unpack_rgba(px);
        prop_assert_eq!(a2, 255);
        prop_assert!((r as i32 - r2 as i32).abs() <= 8);
        prop_assert!((g as i32 - g2 as i32).abs() <= 4);
        prop_assert!((b as i32 - b2 as i32).abs() <= 8);
        // Idempotence: re-encoding the decoded value reproduces it exactly.
        let enc2 = TexelFormat::Rgb565.encode([r2, g2, b2]);
        prop_assert_eq!(enc, enc2);
    }

    /// Mip pyramids preserve the mean intensity of uniform images exactly
    /// and never invent out-of-range values for arbitrary ones.
    #[test]
    fn mip_pyramid_dims_halve(dim_exp in 2u32..9) {
        let dim = 1u32 << dim_exp;
        let pyr = MipPyramid::from_image(
            synth::noise(dim, 7, 4, [10, 20, 30], [200, 180, 160]));
        prop_assert_eq!(pyr.level_count() as u32, dim_exp + 1);
        for (m, lvl) in pyr.iter().enumerate() {
            prop_assert_eq!(lvl.width(), (dim >> m).max(1));
        }
    }
}
