//! Property and metamorphic tests over the differential oracle.
//!
//! Access streams are generated from raw integer tuples and shaped in-body
//! (the vendored proptest supports the `proptest!` macro with basic
//! strategies only): skewed texture ids (texture 0 is hot), mip-level
//! walks, and frame-coherent re-touch (the whole stream optionally replays
//! a second time, modelling the next frame touching the same texels).

use mltc_core::{
    EngineConfig, FaultPlan, L1Config, L2Config, L2Outcome, ReplacementPolicy, SimEngine,
};
use mltc_oracle::{DiffHarness, OracleEngine, TexelAccess};
use mltc_texture::{synth, MipPyramid, TextureId, TextureRegistry};
use proptest::prelude::*;

const TEX_DIM: u32 = 64;
const TEX_COUNT: u32 = 3;

fn registry() -> TextureRegistry {
    let mut reg = TextureRegistry::new();
    for i in 0..TEX_COUNT {
        reg.load(
            format!("t{i}"),
            MipPyramid::from_image(synth::checkerboard(TEX_DIM, 4, [0; 3], [255; 3])),
        );
    }
    reg
}

/// Shapes raw tuples into a valid access stream. `tid_sel` is skewed so
/// texture 0 dominates (cache contention on a hot texture); `walk` turns an
/// access into a short mip-level walk (the trilinear pattern); `retouch`
/// replays the whole stream once more, frame-coherently.
fn shape_stream(raw: &[(u8, u8, u32, u32, u8)], retouch: bool) -> Vec<TexelAccess> {
    let mut stream = Vec::new();
    for &(tid_sel, m_raw, u_raw, v_raw, walk) in raw {
        // Skew: 0..=4 -> texture 0, 5..=6 -> 1, 7 -> 2.
        let tid = match tid_sel % 8 {
            0..=4 => 0,
            5 | 6 => 1,
            _ => 2,
        };
        let m0 = (m_raw % 4) as u32; // dims 64,32,16,8 at m 0..=3
        let walk_len = if walk % 4 == 0 { 2 } else { 1 };
        for step in 0..walk_len {
            let m = (m0 + step).min(3);
            let dim = TEX_DIM >> m;
            stream.push(TexelAccess {
                tid,
                m,
                u: u_raw % dim,
                v: v_raw % dim,
            });
        }
    }
    if retouch {
        let first: Vec<TexelAccess> = stream.clone();
        stream.extend(first);
    }
    stream
}

fn config(l2_sel: u8, policy_sel: u8, tlb_sel: u8, sector: bool, fault_sel: u8) -> EngineConfig {
    // Small L2 sizes keep eviction pressure high: 4 KB is 4 blocks.
    let l2 = match l2_sel % 4 {
        0 => None,
        1 => Some(4 * 1024),
        2 => Some(8 * 1024),
        _ => Some(32 * 1024),
    };
    let policy = match policy_sel % 3 {
        0 => ReplacementPolicy::Clock,
        1 => ReplacementPolicy::Lru,
        _ => ReplacementPolicy::Fifo,
    };
    let fault = match fault_sel % 3 {
        0 => FaultPlan::none(),
        1 => FaultPlan::with_rate(0x0bad_5eed, 200_000), // 20 % per attempt
        _ => FaultPlan {
            burst_period: 7,
            burst_len: 2,
            ..FaultPlan::with_rate(0xfeed_face, 50_000)
        },
    };
    EngineConfig {
        l1: L1Config::kb(2),
        l2: l2.map(|size_bytes| L2Config {
            size_bytes,
            policy,
            sector_mapping: sector,
        }),
        tlb_entries: [0usize, 2, 8][(tlb_sel % 3) as usize],
        fault,
        ..EngineConfig::default()
    }
}

fn full_hits(cfg: EngineConfig, reg: &TextureRegistry, stream: &[TexelAccess]) -> u64 {
    let mut engine = SimEngine::new(cfg, reg);
    let mut hits = 0;
    for a in stream {
        let t = engine.access_texel_traced(TextureId::from_index(a.tid), a.m, a.u, a.v);
        if t.l2 == Some(L2Outcome::FullHit) {
            hits += 1;
        }
    }
    hits
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The tentpole invariant: for any configuration in the modelled space
    /// and any shaped access stream, the optimized engine and the naive
    /// oracle agree access-by-access (classification, bytes, victims, clock
    /// hand) — and, on roughly half the cases, the monomorphized batch fast
    /// path replays to the same end state as the per-tap traced path. A
    /// divergence here is a real bug in one of the three models.
    #[test]
    fn engine_matches_oracle_on_random_configs_and_streams(
        raw in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u32>(), any::<u32>(), any::<u8>()), 1..120),
        retouch in any::<bool>(),
        l2_sel in any::<u8>(),
        policy_sel in any::<u8>(),
        tlb_sel in any::<u8>(),
        sector in any::<bool>(),
        fault_sel in any::<u8>(),
        check_fast in any::<bool>(),
    ) {
        let reg = registry();
        let stream = shape_stream(&raw, retouch);
        let cfg = config(l2_sel, policy_sel, tlb_sel, sector, fault_sel);
        let harness = DiffHarness::new(cfg, &reg).expect("generated configs are valid");
        if let Err(div) = harness.replay_mode(&stream, check_fast) {
            let shrunk = harness.shrink(&stream);
            prop_assert!(false, "{div}\nshrunk to {} accesses", shrunk.len());
        }
    }

    /// Metamorphic: under LRU, the L2 full-hit count is monotone
    /// non-decreasing in L2 size on a fixed trace (the stack/inclusion
    /// property of LRU). Deliberately restricted to LRU — clock and FIFO
    /// exhibit Belady's anomaly, where more capacity can hit *less*.
    #[test]
    fn lru_full_hits_monotone_in_l2_size(
        raw in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u32>(), any::<u32>(), any::<u8>()), 1..150),
        retouch in any::<bool>(),
        sector in any::<bool>(),
        tlb_sel in any::<u8>(),
    ) {
        let reg = registry();
        let stream = shape_stream(&raw, retouch);
        let sizes = [4 * 1024usize, 8 * 1024, 16 * 1024, 64 * 1024];
        let mut prev = None;
        for size in sizes {
            let cfg = EngineConfig {
                l1: L1Config::kb(2),
                l2: Some(L2Config {
                    size_bytes: size,
                    policy: ReplacementPolicy::Lru,
                    sector_mapping: sector,
                }),
                tlb_entries: [0usize, 2, 8][(tlb_sel % 3) as usize],
                ..EngineConfig::default()
            };
            let hits = full_hits(cfg, &reg, &stream);
            if let Some(prev) = prev {
                prop_assert!(
                    hits >= prev,
                    "LRU full hits dropped from {prev} to {hits} when L2 grew to {size} bytes"
                );
            }
            prev = Some(hits);
        }
    }

    /// Structural invariant: after any replay, every resident sector's page
    /// owns a block, and the page table and block-owner maps agree
    /// (sector ⊆ page residency inclusion), checked on the oracle's flat
    /// state where the relation is explicit.
    #[test]
    fn sector_residency_implies_page_residency(
        raw in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u32>(), any::<u32>(), any::<u8>()), 1..120),
        l2_sel in 1u8..4,
        policy_sel in any::<u8>(),
        sector in any::<bool>(),
        fault_sel in any::<u8>(),
    ) {
        let reg = registry();
        let stream = shape_stream(&raw, false);
        let cfg = config(l2_sel, policy_sel, 0, sector, fault_sel);
        let mut oracle = OracleEngine::new(cfg, &reg);
        for a in &stream {
            oracle.access_texel(TextureId::from_index(a.tid), a.m, a.u, a.v);
            if let Err(e) = oracle.check_invariants() {
                prop_assert!(false, "invariant broken mid-stream: {e}");
            }
        }
    }

    /// Conservation: with a perfect host link, every byte the engine
    /// reports downloading is explained by its own per-access
    /// classification — L1-line-sized pulls on partial hits (and no-L2
    /// misses), block- or line-sized downloads on full misses depending on
    /// sector mapping — and the per-access sum equals the frame totals.
    #[test]
    fn bytes_downloaded_match_miss_classification_without_faults(
        raw in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u32>(), any::<u32>(), any::<u8>()), 1..150),
        retouch in any::<bool>(),
        l2_sel in any::<u8>(),
        policy_sel in any::<u8>(),
        tlb_sel in any::<u8>(),
        sector in any::<bool>(),
    ) {
        let reg = registry();
        let stream = shape_stream(&raw, retouch);
        let cfg = config(l2_sel, policy_sel, tlb_sel, sector, 0);
        let line = cfg.l1.line_bytes() as u64;
        let block = cfg.tiling.l2().cache_bytes() as u64;
        let mut engine = SimEngine::new(cfg, &reg);
        let mut summed = 0u64;
        for a in &stream {
            let t = engine.access_texel_traced(TextureId::from_index(a.tid), a.m, a.u, a.v);
            let expected = match (t.l1_hit, t.l2) {
                (true, _) => 0,
                (false, Some(L2Outcome::FullHit)) => 0,
                (false, Some(L2Outcome::PartialHit)) => line,
                (false, Some(L2Outcome::FullMiss)) => if sector { line } else { block },
                (false, None) => line, // no L2: every L1 miss pulls a line
            };
            prop_assert_eq!(
                t.host_bytes, expected,
                "access ({}, {}, {}, {}) classified {:?}", a.tid, a.m, a.u, a.v, t.l2
            );
            summed += t.host_bytes;
        }
        engine.end_frame();
        prop_assert_eq!(engine.totals().host_bytes, summed);
    }

    /// Conservation: L2 outcomes partition L1 misses — full hits + partial
    /// hits + full misses add up to exactly the L1 misses (when an L2 is
    /// present), and the engine counted every access we issued.
    #[test]
    fn l2_outcomes_partition_l1_misses(
        raw in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u32>(), any::<u32>(), any::<u8>()), 1..150),
        retouch in any::<bool>(),
        l2_sel in 1u8..4,
        policy_sel in any::<u8>(),
        tlb_sel in any::<u8>(),
        sector in any::<bool>(),
        fault_sel in any::<u8>(),
    ) {
        let reg = registry();
        let stream = shape_stream(&raw, retouch);
        let cfg = config(l2_sel, policy_sel, tlb_sel, sector, fault_sel);
        let mut engine = SimEngine::new(cfg, &reg);
        for a in &stream {
            engine.access_texel_traced(TextureId::from_index(a.tid), a.m, a.u, a.v);
        }
        engine.end_frame();
        let t = engine.totals();
        prop_assert_eq!(t.l1_accesses, stream.len() as u64);
        prop_assert_eq!(
            t.l2_full_hits + t.l2_partial_hits + t.l2_full_misses,
            t.l1_accesses - t.l1_hits,
            "L2 outcomes must partition L1 misses"
        );
        // TLB lookups happen exactly once per L1 miss when modelled.
        if cfg.tlb_entries > 0 {
            prop_assert_eq!(t.tlb_accesses, t.l1_accesses - t.l1_hits);
        }
    }
}
