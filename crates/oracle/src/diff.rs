//! Lockstep differential replay: engine vs oracle, access by access.

use crate::model::OracleEngine;
use mltc_core::{AccessTrace, EngineConfig, EngineError, SimEngine};
use mltc_texture::{TextureId, TextureRegistry};
use mltc_trace::{filter_taps, FilterMode, FrameTrace};
use std::fmt;

/// One texel access of an access stream: plain numbers, no packing, so
/// streams serialize trivially and shrink element-wise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TexelAccess {
    /// Texture index.
    pub tid: u32,
    /// Mip level.
    pub m: u32,
    /// In-bounds texel column of level `m`.
    pub u: u32,
    /// In-bounds texel row of level `m`.
    pub v: u32,
}

/// Expands a recorded frame trace into the flat texel-access stream the
/// engine would replay (one access per filter tap), using the same
/// authoritative [`filter_taps`] expansion the engine itself uses.
pub fn expand_frame(
    trace: &FrameTrace,
    filter: FilterMode,
    registry: &TextureRegistry,
    out: &mut Vec<TexelAccess>,
) -> Result<(), EngineError> {
    for req in &trace.requests {
        let pyr = registry
            .pyramid(req.tid)
            .ok_or(EngineError::UnknownTexture(req.tid))?;
        let dims: Vec<(u32, u32)> = pyr.iter().map(|l| (l.width(), l.height())).collect();
        let taps = filter_taps(req, filter, dims.len() as u32, |m| dims[m as usize]);
        for tap in &taps {
            out.push(TexelAccess {
                tid: req.tid.index(),
                m: tap.m,
                u: tap.u,
                v: tap.v,
            });
        }
    }
    Ok(())
}

/// Where and how the engine and the oracle disagreed.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Index of the diverging access in the replayed stream.
    pub index: usize,
    /// The access itself.
    pub access: TexelAccess,
    /// What the engine reported.
    pub engine: AccessTrace,
    /// What the oracle reported.
    pub oracle: AccessTrace,
    /// Human-readable detail (names the first differing field, including
    /// the clock hand, which is compared beyond the traces).
    pub detail: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "divergence at access #{} (tid={} m={} u={} v={}): {}",
            self.index, self.access.tid, self.access.m, self.access.u, self.access.v, self.detail
        )
    }
}

fn describe(engine: &AccessTrace, oracle: &AccessTrace, hands: Option<(usize, usize)>) -> String {
    macro_rules! diff {
        ($field:ident) => {
            if engine.$field != oracle.$field {
                return format!(
                    concat!(stringify!($field), ": engine {:?} vs oracle {:?}"),
                    engine.$field, oracle.$field
                );
            }
        };
    }
    diff!(l1_hit);
    diff!(tlb_hit);
    diff!(l2);
    diff!(l2_block);
    diff!(evicted_page);
    diff!(host_bytes);
    diff!(retries);
    diff!(failed);
    diff!(degraded);
    diff!(dropped);
    if let Some((e, o)) = hands {
        if e != o {
            return format!("clock hand: engine {e} vs oracle {o}");
        }
    }
    "traces equal (spurious)".to_string()
}

/// Replays access streams through a [`SimEngine`] and an [`OracleEngine`]
/// built from the same configuration and registry, asserting per-access
/// agreement on classification (L1/TLB/L2), byte counts, replacement
/// victims and — for the clock policy — the hand position.
pub struct DiffHarness<'a> {
    cfg: EngineConfig,
    registry: &'a TextureRegistry,
}

impl<'a> DiffHarness<'a> {
    /// Builds a harness; fails exactly when [`SimEngine::try_new`] would.
    pub fn new(cfg: EngineConfig, registry: &'a TextureRegistry) -> Result<Self, EngineError> {
        // Probe-build the engine once so invalid configs fail here, loudly,
        // rather than on every replay.
        SimEngine::try_new(cfg, registry)?;
        Ok(Self { cfg, registry })
    }

    /// The configuration under test.
    pub fn config(&self) -> EngineConfig {
        self.cfg
    }

    /// Replays `accesses` in lockstep; returns the first divergence
    /// (boxed: the two embedded traces make it a large payload for the hot
    /// `Ok` path). Also replays the same stream through the engine's
    /// monomorphized batch fast path ([`SimEngine::replay_taps`]) and
    /// checks it against the per-access traced replay — three models, one
    /// verdict.
    pub fn replay(&self, accesses: &[TexelAccess]) -> Result<(), Box<Divergence>> {
        self.replay_mode(accesses, true)
    }

    /// [`replay`](Self::replay) with the fast-path cross-check optional
    /// (property tests toggle it so shrinking an oracle divergence does not
    /// pay for the extra engine on every candidate).
    pub fn replay_mode(
        &self,
        accesses: &[TexelAccess],
        check_fast: bool,
    ) -> Result<(), Box<Divergence>> {
        let mut engine = SimEngine::try_new(self.cfg, self.registry)
            .expect("config was validated in DiffHarness::new");
        let mut oracle = OracleEngine::new(self.cfg, self.registry);
        for (index, &a) in accesses.iter().enumerate() {
            let tid = TextureId::from_index(a.tid);
            let e = engine.access_texel_traced(tid, a.m, a.u, a.v);
            let o = oracle.access_texel(tid, a.m, a.u, a.v);
            let engine_hand = engine.l2().and_then(|l2| l2.clock_hand());
            let oracle_hand = oracle.clock_hand();
            if e != o || engine_hand != oracle_hand {
                let hands = engine_hand.zip(oracle_hand);
                return Err(Box::new(Divergence {
                    index,
                    access: a,
                    engine: e,
                    oracle: o,
                    detail: describe(&e, &o, hands),
                }));
            }
        }
        if check_fast {
            self.check_fast_path(&mut engine, accesses)?;
        }
        Ok(())
    }

    /// Replays `accesses` through a third engine via the batch fast path
    /// and compares its end state (frame counters, clock hand, host-link
    /// draw count) to `traced`, whose state was built tap by tap through
    /// [`SimEngine::access_texel_traced`]. The two paths share their tap
    /// bodies, so any mismatch is a specialization bug.
    fn check_fast_path(
        &self,
        traced: &mut SimEngine,
        accesses: &[TexelAccess],
    ) -> Result<(), Box<Divergence>> {
        let mut fast = SimEngine::try_new(self.cfg, self.registry)
            .expect("config was validated in DiffHarness::new");
        let taps: Vec<(u32, u32, u32, u32)> =
            accesses.iter().map(|a| (a.tid, a.m, a.u, a.v)).collect();
        fast.replay_taps(&taps);
        fast.end_frame();
        traced.end_frame();
        let mismatch = if fast.frames() != traced.frames() {
            Some(format!(
                "frame counters: fast {:?} vs traced {:?}",
                fast.frames().last(),
                traced.frames().last()
            ))
        } else if fast.l2().and_then(|l2| l2.clock_hand())
            != traced.l2().and_then(|l2| l2.clock_hand())
        {
            Some(format!(
                "clock hand: fast {:?} vs traced {:?}",
                fast.l2().and_then(|l2| l2.clock_hand()),
                traced.l2().and_then(|l2| l2.clock_hand())
            ))
        } else if fast.host().transfers() != traced.host().transfers() {
            Some(format!(
                "host transfers: fast {} vs traced {}",
                fast.host().transfers(),
                traced.host().transfers()
            ))
        } else {
            None
        };
        if let Some(detail) = mismatch {
            return Err(Box::new(Divergence {
                index: accesses.len(),
                access: accesses.last().copied().unwrap_or(TexelAccess {
                    tid: 0,
                    m: 0,
                    u: 0,
                    v: 0,
                }),
                engine: AccessTrace::default(),
                oracle: AccessTrace::default(),
                detail: format!("fast-path replay diverged: {detail}"),
            }));
        }
        Ok(())
    }

    /// Delta-minimizes a diverging stream: returns the smallest sub-stream
    /// (in replay order) this harness could find that still diverges. If
    /// `accesses` does not diverge it is returned unchanged.
    ///
    /// Classic ddmin over chunk complements, followed by a greedy
    /// one-at-a-time pass; every candidate replays both models from a cold
    /// state, so minimization is deterministic.
    pub fn shrink(&self, accesses: &[TexelAccess]) -> Vec<TexelAccess> {
        let mut current = accesses.to_vec();
        if self.replay(&current).is_ok() {
            return current;
        }
        let mut n = 2usize;
        while current.len() >= 2 {
            let chunk = current.len().div_ceil(n);
            let mut reduced = false;
            let mut start = 0usize;
            while start < current.len() {
                let end = (start + chunk).min(current.len());
                let mut candidate = Vec::with_capacity(current.len() - (end - start));
                candidate.extend_from_slice(&current[..start]);
                candidate.extend_from_slice(&current[end..]);
                if !candidate.is_empty() && self.replay(&candidate).is_err() {
                    current = candidate;
                    n = n.saturating_sub(1).max(2);
                    reduced = true;
                    break;
                }
                start = end;
            }
            if !reduced {
                if n >= current.len() {
                    break;
                }
                n = (n * 2).min(current.len());
            }
        }
        // Greedy polish: try dropping each remaining access once more.
        let mut i = 0;
        while current.len() > 1 && i < current.len() {
            let mut candidate = current.clone();
            candidate.remove(i);
            if self.replay(&candidate).is_err() {
                current = candidate;
            } else {
                i += 1;
            }
        }
        current
    }
}

/// Replays a pre-built engine/oracle pair (used by tests that deliberately
/// mismatch configurations to exercise divergence reporting; `replay` can
/// never diverge-on-demand since both sides are built from one config).
pub fn replay_pair(
    engine: &mut SimEngine,
    oracle: &mut OracleEngine,
    accesses: &[TexelAccess],
) -> Result<(), Box<Divergence>> {
    for (index, &a) in accesses.iter().enumerate() {
        let tid = TextureId::from_index(a.tid);
        let e = engine.access_texel_traced(tid, a.m, a.u, a.v);
        let o = oracle.access_texel(tid, a.m, a.u, a.v);
        let engine_hand = engine.l2().and_then(|l2| l2.clock_hand());
        let oracle_hand = oracle.clock_hand();
        if e != o || engine_hand != oracle_hand {
            let hands = engine_hand.zip(oracle_hand);
            return Err(Box::new(Divergence {
                index,
                access: a,
                engine: e,
                oracle: o,
                detail: describe(&e, &o, hands),
            }));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mltc_core::{L1Config, L2Config};
    use mltc_texture::{synth, MipPyramid};

    fn registry(n: usize, dim: u32) -> TextureRegistry {
        let mut reg = TextureRegistry::new();
        for i in 0..n {
            reg.load(
                format!("t{i}"),
                MipPyramid::from_image(synth::checkerboard(dim, 4, [0; 3], [255; 3])),
            );
        }
        reg
    }

    fn ml_cfg() -> EngineConfig {
        EngineConfig {
            l1: L1Config::kb(2),
            l2: Some(L2Config {
                size_bytes: 8 * 1024, // 8 blocks: evictions happen fast
                ..L2Config::mb(1)
            }),
            tlb_entries: 2,
            ..EngineConfig::default()
        }
    }

    fn sweep_stream(dim: u32) -> Vec<TexelAccess> {
        let mut s = Vec::new();
        for v in (0..dim).step_by(4) {
            for u in (0..dim).step_by(4) {
                s.push(TexelAccess { tid: 0, m: 0, u, v });
            }
        }
        s
    }

    #[test]
    fn engine_and_oracle_agree_on_a_sweep() {
        let reg = registry(2, 64);
        let h = DiffHarness::new(ml_cfg(), &reg).unwrap();
        h.replay(&sweep_stream(64)).unwrap();
    }

    #[test]
    fn invalid_configs_are_rejected_up_front() {
        let reg = registry(1, 64);
        let bad = EngineConfig {
            l1: L1Config {
                size_bytes: 3072,
                ..L1Config::kb(2)
            },
            ..EngineConfig::default()
        };
        assert!(DiffHarness::new(bad, &reg).is_err());
    }

    #[test]
    fn mismatched_pair_diverges_and_shrinks() {
        // Engine with 8 blocks vs oracle with 4: replay_pair must catch the
        // first decision the extra capacity changes, and the divergence
        // message must name a concrete field.
        let reg = registry(1, 64);
        let big = ml_cfg();
        let small = EngineConfig {
            l2: Some(L2Config {
                size_bytes: 4 * 1024,
                ..big.l2.unwrap()
            }),
            ..big
        };
        let stream = sweep_stream(64);
        let mut engine = SimEngine::new(big, &reg);
        let mut oracle = OracleEngine::new(small, &reg);
        let div = replay_pair(&mut engine, &mut oracle, &stream).unwrap_err();
        assert!(
            !div.detail.contains("spurious"),
            "divergence must name a field: {}",
            div.detail
        );
        assert!(div.index < stream.len());
    }

    #[test]
    fn shrink_returns_non_diverging_streams_unchanged() {
        let reg = registry(1, 64);
        let h = DiffHarness::new(ml_cfg(), &reg).unwrap();
        let stream = sweep_stream(64);
        assert_eq!(h.shrink(&stream), stream);
    }
}
