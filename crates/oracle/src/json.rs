//! A minimal hand-rolled JSON subset: objects, arrays, strings, unsigned
//! integers and booleans. That is all the repro format needs, serde is not
//! available offline, and keeping numbers unsigned-integer-only avoids the
//! u64-through-f64 precision loss a general parser would introduce for
//! 64-bit fault seeds.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value (subset: no floats, no null, no escapes beyond the
/// basics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// Unsigned integer (covers every number the repro schema uses,
    /// including full-range u64 seeds).
    Num(u64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with deterministic (sorted) key order.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value as an integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// A member of an object, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Serializes with stable key order and 2-space indentation.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent + 1);
        let close_pad = "  ".repeat(indent);
        match self {
            Json::Num(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Str(s) => render_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                // Arrays of scalars render on one line; nested ones wrap.
                let scalar = items
                    .iter()
                    .all(|i| matches!(i, Json::Num(_) | Json::Bool(_) | Json::Str(_)));
                if scalar {
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        item.render_into(out, indent);
                    }
                    out.push(']');
                } else {
                    out.push_str("[\n");
                    for (i, item) in items.iter().enumerate() {
                        out.push_str(&pad);
                        item.render_into(out, indent + 1);
                        if i + 1 < items.len() {
                            out.push(',');
                        }
                        out.push('\n');
                    }
                    out.push_str(&close_pad);
                    out.push(']');
                }
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in map.iter().enumerate() {
                    out.push_str(&pad);
                    render_string(out, k);
                    out.push_str(": ");
                    v.render_into(out, indent + 1);
                    if i + 1 < map.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&close_pad);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (of the supported subset).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

fn render_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at byte {} (found {:?})",
            c as char,
            *pos,
            b.get(*pos).map(|&x| x as char)
        ))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                expect(b, pos, b':')?;
                let value = parse_value(b, pos)?;
                map.insert(key, value);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    other => {
                        return Err(format!(
                            "expected ',' or '}}' at byte {pos} (found {:?})",
                            other.map(|&x| x as char),
                            pos = *pos
                        ))
                    }
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    other => {
                        return Err(format!(
                            "expected ',' or ']' at byte {pos} (found {:?})",
                            other.map(|&x| x as char),
                            pos = *pos
                        ))
                    }
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => {
            if b[*pos..].starts_with(b"true") {
                *pos += 4;
                Ok(Json::Bool(true))
            } else {
                Err(format!("bad literal at byte {pos}", pos = *pos))
            }
        }
        Some(b'f') => {
            if b[*pos..].starts_with(b"false") {
                *pos += 5;
                Ok(Json::Bool(false))
            } else {
                Err(format!("bad literal at byte {pos}", pos = *pos))
            }
        }
        Some(c) if c.is_ascii_digit() => {
            let start = *pos;
            while *pos < b.len() && b[*pos].is_ascii_digit() {
                *pos += 1;
            }
            let text = std::str::from_utf8(&b[start..*pos]).unwrap();
            text.parse::<u64>()
                .map(Json::Num)
                .map_err(|e| format!("bad number {text:?}: {e}"))
        }
        Some(&c) => Err(format!(
            "unexpected character {:?} at byte {}",
            c as char, *pos
        )),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("bad \\u escape".to_string())?);
                        *pos += 4;
                    }
                    other => {
                        return Err(format!("bad escape {:?}", other.map(|&x| x as char)));
                    }
                }
                *pos += 1;
            }
            Some(&c) => {
                // Consume one UTF-8 scalar (multi-byte sequences pass
                // through unchanged).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let ch = rest.chars().next().unwrap_or(c as char);
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut obj = BTreeMap::new();
        obj.insert("seed".into(), Json::Num(u64::MAX));
        obj.insert("on".into(), Json::Bool(true));
        obj.insert("name".into(), Json::Str("a \"quoted\"\nline".into()));
        obj.insert(
            "rows".into(),
            Json::Arr(vec![
                Json::Arr(vec![Json::Num(1), Json::Num(2)]),
                Json::Arr(vec![]),
            ]),
        );
        let doc = Json::Obj(obj);
        let text = doc.render();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn full_range_u64_survives() {
        let doc = Json::parse("{\"x\": 18446744073709551615}").unwrap();
        assert_eq!(doc.get("x").and_then(Json::as_u64), Some(u64::MAX));
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("nope").is_err());
        assert!(Json::parse("{\"x\": 1} trailing").is_err());
        assert!(Json::parse("-5").is_err(), "negative numbers unsupported");
    }
}
