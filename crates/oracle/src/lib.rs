//! Differential oracle for the texture-cache hierarchy.
//!
//! The simulator in `mltc-core` is optimized: packed tags, shift-based
//! addressing, intrusive replacement lists. This crate holds a second,
//! deliberately naive implementation of the same architecture — flat maps,
//! linear scans, textbook replacement policies — and a harness that replays
//! access streams through **both** models in lockstep, asserting per-access
//! agreement on:
//!
//! - L1 hit/miss classification,
//! - TLB hit/miss classification,
//! - L2 outcome (full hit / partial hit / full miss) and the block chosen,
//! - the eviction victim (page index), including the clock hand position,
//! - host-link byte counts, retries and fault outcomes.
//!
//! Because the two implementations share no code, a bug has to be made
//! *twice, identically* to escape: the oracle turns the paper's
//! architectural contract into an executable invariant.
//!
//! When the models disagree, [`DiffHarness::shrink`] delta-minimizes the
//! access stream and [`Repro`] persists it (with the engine configuration
//! and texture geometry) as a self-contained JSON file under
//! `results/repros/` — reproducible with `tracetool shrink` or a four-line
//! test.
//!
//! The conformance front-end (`conformance` binary in `mltc-experiments`)
//! replays every cached `.mltct` trace through this harness across a
//! configuration matrix; [`TraceKey`] rebuilds each trace's workload from
//! the key string embedded in the file, so conformance runs need no
//! rendering.

mod diff;
mod json;
mod key;
mod model;
mod repro;

pub use diff::{expand_frame, replay_pair, DiffHarness, Divergence, TexelAccess};
pub use json::Json;
pub use key::TraceKey;
pub use model::OracleEngine;
pub use repro::{config_from_json, config_to_json, Repro};
