//! The deliberately-naive reference model of the full cache hierarchy.
//!
//! Every structure here is written the *obvious* way — flat maps, linear
//! scans, bit-by-bit loops — with none of the packing, 6D-index or intrusive
//! -list tricks the engine uses. The point is independence: the oracle and
//! [`mltc_core::SimEngine`] should only agree because they implement the
//! same architecture, not because they share code. The one thing they *do*
//! share is the architectural contract itself: the L1 set-hash constants,
//! the coarsest-first L2 block numbering, the replacement policies' victim
//! order and the host link's SplitMix64 fault schedule are all part of the
//! specification being checked, and are restated here from the paper /
//! design doc rather than imported.

use mltc_core::{AccessTrace, EngineConfig, L2Outcome, ReplacementPolicy, Transfer};
use mltc_texture::{TextureId, TextureRegistry};

/// Naive L1: a vector of sets, each a vector of lines, scanned linearly.
struct NaiveL1 {
    sets: Vec<Vec<NaiveLine>>,
    tick: u64,
    tile_shift: u32,
    linear_storage: bool,
}

#[derive(Clone, Copy)]
struct NaiveLine {
    valid: bool,
    tag: u64,
    stamp: u64,
}

/// Interleaves the low 16 bits of `x` and `y`, one bit at a time.
fn morton_bit_by_bit(x: u32, y: u32) -> u32 {
    let mut out = 0u32;
    for bit in 0..16 {
        out |= ((x >> bit) & 1) << (2 * bit);
        out |= ((y >> bit) & 1) << (2 * bit + 1);
    }
    out
}

impl NaiveL1 {
    fn new(cfg: &EngineConfig) -> Self {
        let sets = cfg.l1.sets();
        let ways = cfg.l1.ways;
        Self {
            sets: vec![
                vec![
                    NaiveLine {
                        valid: false,
                        tag: 0,
                        stamp: 0
                    };
                    ways
                ];
                sets
            ],
            tick: 0,
            tile_shift: cfg.l1.tile.shift(),
            linear_storage: matches!(cfg.l1.storage, mltc_core::StorageFormat::Linear),
        }
    }

    fn block_coords(&self, u: u32, v: u32) -> (u32, u32) {
        if self.linear_storage {
            (u >> (2 * self.tile_shift), v)
        } else {
            (u >> self.tile_shift, v >> self.tile_shift)
        }
    }

    /// The architecture's set hash (design contract, restated): Morton
    /// coordinates perturbed by level and texture id, XOR-folded down to
    /// the set bits.
    fn set_index(&self, tid: u32, m: u32, bx: u32, by: u32) -> usize {
        let set_count = self.sets.len() as u32;
        let mut h = morton_bit_by_bit(bx, by)
            ^ m.wrapping_mul(0x85eb_ca6b)
            ^ tid.wrapping_mul(0x9e37_79b1).rotate_right(16);
        let bits = set_count.trailing_zeros().max(1);
        let mut shift = bits;
        while shift < 32 {
            h ^= h >> shift;
            shift += bits;
        }
        (h & (set_count - 1)) as usize
    }

    fn locate(&self, tid: u32, m: u32, u: u32, v: u32) -> (u64, usize) {
        let (bx, by) = self.block_coords(u, v);
        // ⟨tid, m, bx, by⟩ packed exactly as the L1BlockKey contract.
        let tag = ((tid as u64) << 28) | ((m as u64) << 24) | ((bx as u64) << 12) | by as u64;
        (tag, self.set_index(tid, m, bx, by))
    }

    fn access(&mut self, tid: u32, m: u32, u: u32, v: u32) -> bool {
        let (tag, set) = self.locate(tid, m, u, v);
        self.tick += 1;
        let lines = &mut self.sets[set];
        let mut victim = 0usize;
        let mut victim_stamp = u64::MAX;
        for (i, line) in lines.iter_mut().enumerate() {
            if line.valid && line.tag == tag {
                line.stamp = self.tick;
                return true;
            }
            // Invalid lines rank as stamp 0; first minimum wins.
            let key = if line.valid { line.stamp } else { 0 };
            if key < victim_stamp {
                victim_stamp = key;
                victim = i;
            }
        }
        lines[victim] = NaiveLine {
            valid: true,
            tag,
            stamp: self.tick,
        };
        false
    }

    fn invalidate(&mut self, tid: u32, m: u32, u: u32, v: u32) {
        let (tag, set) = self.locate(tid, m, u, v);
        for line in &mut self.sets[set] {
            if line.valid && line.tag == tag {
                line.valid = false;
            }
        }
    }
}

/// Flat page table: one slot per level of every live texture, bases
/// assigned coarsest level first within a texture, textures in registry
/// iteration order — the paper's Fig. 2 numbering, recomputed from scratch.
struct FlatPageTable {
    /// Indexed by tid; `None` for deleted or never-issued slots.
    textures: Vec<Option<FlatTexture>>,
    l2_shift: u32,
    l2_texels: u32,
    l1_shift: u32,
    sub_edge: u32,
}

struct FlatTexture {
    tstart: u32,
    /// Per level, finest first: (width, height, grid_w, base).
    levels: Vec<(u32, u32, u32, u32)>,
}

impl FlatPageTable {
    fn new(cfg: &EngineConfig, registry: &TextureRegistry) -> Self {
        let l2_texels = cfg.tiling.l2().texels();
        let mut textures: Vec<Option<FlatTexture>> =
            (0..registry.issued_count()).map(|_| None).collect();
        let mut next_start = 0u32;
        for (tid, pyr) in registry.iter() {
            let dims: Vec<(u32, u32)> = pyr.iter().map(|img| (img.width(), img.height())).collect();
            let mut bases = vec![0u32; dims.len()];
            let mut next = 0u32;
            for i in (0..dims.len()).rev() {
                bases[i] = next;
                next += dims[i].0.div_ceil(l2_texels) * dims[i].1.div_ceil(l2_texels);
            }
            let levels = dims
                .iter()
                .zip(&bases)
                .map(|(&(w, h), &base)| (w, h, w.div_ceil(l2_texels), base))
                .collect();
            textures[tid.index() as usize] = Some(FlatTexture {
                tstart: next_start,
                levels,
            });
            next_start += next;
        }
        Self {
            textures,
            l2_shift: cfg.tiling.l2().shift(),
            l2_texels,
            l1_shift: cfg.tiling.l1().shift(),
            sub_edge: cfg.tiling.l1_per_l2_edge(),
        }
    }

    fn level_count(&self, tid: u32) -> u32 {
        self.textures
            .get(tid as usize)
            .and_then(|t| t.as_ref())
            .map_or(0, |t| t.levels.len() as u32)
    }

    fn level_dims(&self, tid: u32, m: u32) -> Option<(u32, u32)> {
        let t = self.textures.get(tid as usize)?.as_ref()?;
        let &(w, h, _, _) = t.levels.get(m as usize)?;
        Some((w, h))
    }

    /// ⟨u,v,m⟩ → (page-table index, L1 sub-block number).
    fn locate(&self, tid: u32, m: u32, u: u32, v: u32) -> Option<(u32, u16)> {
        let t = self.textures.get(tid as usize)?.as_ref()?;
        let &(_, _, grid_w, base) = t.levels.get(m as usize)?;
        let l2 = base + (v >> self.l2_shift) * grid_w + (u >> self.l2_shift);
        let su = (u % self.l2_texels) >> self.l1_shift;
        let sv = (v % self.l2_texels) >> self.l1_shift;
        let sub = (sv * self.sub_edge + su) as u16;
        Some((t.tstart + l2, sub))
    }
}

/// Naive L2: a flat page vector, a flat owner vector, and textbook
/// replacement (clock sweep over a bool vector, O(n) LRU order vector,
/// FIFO queue).
struct NaiveL2 {
    /// Per page-table entry: the physical block (if any) and which
    /// sub-blocks are resident.
    pages: Vec<NaivePage>,
    /// Per physical block: the 0-based page-table index owning it.
    owners: Vec<Option<u32>>,
    policy: ReplacementPolicy,
    sector_mapping: bool,
    subs: usize,
    // Clock state: one "recently used" bit per block plus the hand.
    active: Vec<bool>,
    hand: usize,
    // LRU state: block indices, front = least recently used.
    lru_order: Vec<usize>,
    // FIFO state: free blocks (popped from the back) and allocation order.
    fifo_free: Vec<usize>,
    fifo_queue: Vec<usize>,
}

#[derive(Clone)]
struct NaivePage {
    block: Option<usize>,
    sectors: Vec<bool>,
}

impl NaiveL2 {
    fn new(cfg: &EngineConfig, page_table_entries: usize) -> Option<Self> {
        let l2cfg = cfg.l2?;
        let blocks = l2cfg.size_bytes / cfg.tiling.l2().cache_bytes();
        let subs = cfg.tiling.l1_per_l2() as usize;
        Some(Self {
            pages: vec![
                NaivePage {
                    block: None,
                    sectors: vec![false; subs]
                };
                page_table_entries
            ],
            owners: vec![None; blocks],
            policy: l2cfg.policy,
            sector_mapping: l2cfg.sector_mapping,
            subs,
            active: vec![false; blocks],
            hand: 0,
            lru_order: (0..blocks).collect(),
            fifo_free: (0..blocks).rev().collect(),
            fifo_queue: Vec::with_capacity(blocks),
        })
    }

    fn touch(&mut self, b: usize) {
        match self.policy {
            ReplacementPolicy::Clock => self.active[b] = true,
            ReplacementPolicy::Lru => {
                // Move to the back (most recently used) — unless already there.
                if *self.lru_order.last().unwrap() != b {
                    self.lru_order.retain(|&x| x != b);
                    self.lru_order.push(b);
                }
            }
            ReplacementPolicy::Fifo => {}
        }
    }

    fn find_victim(&mut self) -> usize {
        match self.policy {
            ReplacementPolicy::Clock => loop {
                let i = self.hand;
                self.hand = (self.hand + 1) % self.active.len();
                if self.active[i] {
                    self.active[i] = false;
                } else {
                    return i;
                }
            },
            ReplacementPolicy::Lru => self.lru_order[0],
            ReplacementPolicy::Fifo => match self.fifo_free.pop() {
                Some(b) => b,
                None => self.fifo_queue.remove(0),
            },
        }
    }

    /// Registers ownership after a victim was chosen (the "assign" half of
    /// the replacement contract; also counts as a touch).
    fn assign(&mut self, b: usize, pt: u32) {
        self.owners[b] = Some(pt);
        match self.policy {
            ReplacementPolicy::Clock => self.active[b] = true,
            ReplacementPolicy::Lru => {
                self.lru_order.retain(|&x| x != b);
                self.lru_order.push(b);
            }
            ReplacementPolicy::Fifo => self.fifo_queue.push(b),
        }
    }

    fn release(&mut self, b: usize) {
        self.owners[b] = None;
        match self.policy {
            ReplacementPolicy::Clock => self.active[b] = false,
            ReplacementPolicy::Lru => {
                // Freed blocks move to the front so they are reused first.
                if self.lru_order[0] != b {
                    self.lru_order.retain(|&x| x != b);
                    self.lru_order.insert(0, b);
                }
            }
            ReplacementPolicy::Fifo => {
                self.fifo_queue.retain(|&x| x != b);
                self.fifo_free.push(b);
            }
        }
    }

    /// Fig. 7 steps C–F, naively. Returns (outcome, serving block, evicted
    /// page).
    fn access(&mut self, pt: u32, sub: u16) -> (L2Outcome, u32, Option<u32>) {
        let ti = pt as usize;
        let sub = sub as usize;
        assert!(sub < self.subs, "sub-block out of range");
        if let Some(b) = self.pages[ti].block {
            self.touch(b);
            let resident = !self.sector_mapping || self.pages[ti].sectors[sub];
            if resident {
                (L2Outcome::FullHit, b as u32, None)
            } else {
                self.pages[ti].sectors[sub] = true;
                (L2Outcome::PartialHit, b as u32, None)
            }
        } else {
            let b = self.find_victim();
            let evicted = self.owners[b];
            if let Some(old) = evicted {
                self.pages[old as usize].block = None;
                self.pages[old as usize].sectors.fill(false);
            }
            self.assign(b, pt);
            self.pages[ti].block = Some(b);
            self.pages[ti].sectors.fill(!self.sector_mapping);
            if self.sector_mapping {
                self.pages[ti].sectors[sub] = true;
            }
            (L2Outcome::FullMiss, b as u32, evicted)
        }
    }

    fn is_resident(&self, pt: u32, sub: u16) -> bool {
        let page = &self.pages[pt as usize];
        page.block.is_some() && (!self.sector_mapping || page.sectors[sub as usize])
    }

    fn fail_download(&mut self, pt: u32, sub: u16) {
        let ti = pt as usize;
        let Some(b) = self.pages[ti].block else {
            return;
        };
        if self.sector_mapping {
            self.pages[ti].sectors[sub as usize] = false;
        } else {
            self.release(b);
            self.pages[ti].block = None;
            self.pages[ti].sectors.fill(false);
        }
    }

    fn clock_hand(&self) -> Option<usize> {
        matches!(self.policy, ReplacementPolicy::Clock).then_some(self.hand)
    }

    /// Structural invariants any correct run must preserve; returns a
    /// description of the first violation found.
    fn check_invariants(&self) -> Result<(), String> {
        for (ti, page) in self.pages.iter().enumerate() {
            if let Some(b) = page.block {
                if self.owners.get(b).copied().flatten() != Some(ti as u32) {
                    return Err(format!(
                        "page {ti} claims block {b} but owners[{b}] = {:?}",
                        self.owners.get(b)
                    ));
                }
            } else if page.sectors.iter().any(|&s| s) {
                return Err(format!("page {ti} has resident sectors but no block"));
            }
        }
        for (b, owner) in self.owners.iter().enumerate() {
            if let Some(pt) = owner {
                if self.pages[*pt as usize].block != Some(b) {
                    return Err(format!(
                        "owners[{b}] = {pt} but that page maps {:?}",
                        self.pages[*pt as usize].block
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Independent replica of the host link's deterministic fault schedule.
struct NaiveHost {
    plan: mltc_core::FaultPlan,
    rng: u64,
    ordinal: u64,
}

impl NaiveHost {
    fn new(plan: mltc_core::FaultPlan) -> Self {
        Self {
            plan,
            rng: plan.seed,
            ordinal: 0,
        }
    }

    fn splitmix(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn transfer(&mut self, tid: u32) -> Transfer {
        if self.plan.is_none() {
            return Transfer::Delivered { retries: 0 };
        }
        let ordinal = self.ordinal;
        self.ordinal += 1;
        let attempts = self.plan.max_attempts.max(1);
        let in_burst = self.plan.burst_period > 0
            && (ordinal % self.plan.burst_period as u64) < self.plan.burst_len as u64;
        let in_blackout = self
            .plan
            .blackout
            .is_some_and(|b| b.tid == tid && ordinal >= b.from && ordinal < b.until);
        if in_burst || in_blackout {
            return Transfer::Failed {
                retries: attempts - 1,
            };
        }
        for attempt in 0..attempts {
            let draw = (self.splitmix() % 1_000_000) as u32;
            if draw >= self.plan.fail_ppm {
                return Transfer::Delivered { retries: attempt };
            }
        }
        Transfer::Failed {
            retries: attempts - 1,
        }
    }
}

/// The reference model of a whole [`mltc_core::SimEngine`]: replays texel
/// accesses through naive L1 → TLB → L2 → host models and reports each one
/// as an [`AccessTrace`], directly comparable with
/// [`SimEngine::access_texel_traced`](mltc_core::SimEngine::access_texel_traced).
pub struct OracleEngine {
    cfg: EngineConfig,
    l1: NaiveL1,
    table: FlatPageTable,
    l2: Option<NaiveL2>,
    /// Naive TLB: an Option vector scanned linearly, round-robin refill.
    tlb_entries: Vec<Option<u64>>,
    tlb_next: usize,
    host: NaiveHost,
}

impl OracleEngine {
    /// Builds the oracle for the same `(config, registry)` pair an engine
    /// would be built from. Invalid configurations are the engine's concern
    /// (`SimEngine::try_new`); the oracle assumes a buildable one.
    pub fn new(cfg: EngineConfig, registry: &TextureRegistry) -> Self {
        let table = FlatPageTable::new(&cfg, registry);
        let total: u32 = table
            .textures
            .iter()
            .flatten()
            .map(|t| {
                t.levels
                    .iter()
                    .map(|&(_, h, gw, _)| gw * h.div_ceil(cfg.tiling.l2().texels()))
                    .sum::<u32>()
            })
            .sum();
        let l2 = NaiveL2::new(&cfg, total as usize);
        Self {
            cfg,
            l1: NaiveL1::new(&cfg),
            table,
            l2,
            tlb_entries: vec![None; cfg.tlb_entries],
            tlb_next: 0,
            host: NaiveHost::new(cfg.fault),
        }
    }

    /// One texel access through the whole hierarchy, mirroring the engine's
    /// Fig. 7 control flow step by step.
    pub fn access_texel(&mut self, tid: TextureId, m: u32, u: u32, v: u32) -> AccessTrace {
        let tid = tid.index();
        let mut trace = AccessTrace::default();
        if self.l1.access(tid, m, u, v) {
            trace.l1_hit = true;
            return trace;
        }
        let l1_bytes = self.cfg.l1.line_bytes() as u64;
        match &mut self.l2 {
            None => match self.host.transfer(tid) {
                Transfer::Delivered { retries } => {
                    trace.retries = retries;
                    trace.host_bytes = l1_bytes;
                }
                Transfer::Failed { retries } => {
                    trace.retries = retries;
                    trace.failed = true;
                    trace.dropped = true;
                    self.l1.invalidate(tid, m, u, v);
                }
            },
            Some(l2) => {
                let (pt, sub) = self
                    .table
                    .locate(tid, m, u, v)
                    .expect("texel access to texture unknown to the oracle");
                if !self.tlb_entries.is_empty() {
                    let hit = {
                        let hit = self.tlb_entries.contains(&Some(pt as u64));
                        if !hit {
                            self.tlb_entries[self.tlb_next] = Some(pt as u64);
                            self.tlb_next = (self.tlb_next + 1) % self.tlb_entries.len();
                        }
                        hit
                    };
                    trace.tlb_hit = Some(hit);
                }
                let (outcome, block, evicted) = l2.access(pt, sub);
                trace.l2 = Some(outcome);
                trace.l2_block = Some(block);
                trace.evicted_page = evicted;
                let dl = match outcome {
                    L2Outcome::FullHit => return trace,
                    L2Outcome::PartialHit => l1_bytes,
                    L2Outcome::FullMiss => {
                        if l2.sector_mapping {
                            l1_bytes
                        } else {
                            self.cfg.tiling.l2().cache_bytes() as u64
                        }
                    }
                };
                match self.host.transfer(tid) {
                    Transfer::Delivered { retries } => {
                        trace.retries = retries;
                        trace.host_bytes = dl;
                    }
                    Transfer::Failed { retries } => {
                        trace.retries = retries;
                        trace.failed = true;
                        l2.fail_download(pt, sub);
                        self.l1.invalidate(tid, m, u, v);
                        // Degrade to the nearest coarser resident mip level.
                        let mut served = false;
                        for cm in (m + 1)..self.table.level_count(tid) {
                            let Some((cw, ch)) = self.table.level_dims(tid, cm) else {
                                continue;
                            };
                            let cu = (u >> (cm - m)).min(cw.saturating_sub(1));
                            let cv = (v >> (cm - m)).min(ch.saturating_sub(1));
                            if let Some((cpt, csub)) = self.table.locate(tid, cm, cu, cv) {
                                if l2.is_resident(cpt, csub) {
                                    served = true;
                                    break;
                                }
                            }
                        }
                        if served {
                            trace.degraded = true;
                        } else {
                            trace.dropped = true;
                        }
                    }
                }
            }
        }
        trace
    }

    /// Clock-hand position of the naive L2 (`None` without an L2 or for
    /// non-clock policies) — compared against
    /// [`L2Cache::clock_hand`](mltc_core::L2Cache::clock_hand) each step.
    pub fn clock_hand(&self) -> Option<usize> {
        self.l2.as_ref().and_then(|l2| l2.clock_hand())
    }

    /// Whether sub-block `sub` of page `pt` is resident (read-only).
    pub fn is_resident(&self, pt: u32, sub: u16) -> bool {
        self.l2.as_ref().is_some_and(|l2| l2.is_resident(pt, sub))
    }

    /// Number of page-table entries the model derived (for cross-checking
    /// against [`PageTableLayout::entry_count`](mltc_texture::PageTableLayout)).
    pub fn page_table_entries(&self) -> usize {
        self.l2.as_ref().map_or(0, |l2| l2.pages.len())
    }

    /// Structural self-check: page↔block ownership is a bijection and no
    /// sector is resident without a backing block. These are the *inclusion*
    /// invariants of the design — sector residency ⊆ page residency ⊆
    /// physical allocation.
    pub fn check_invariants(&self) -> Result<(), String> {
        match &self.l2 {
            Some(l2) => l2.check_invariants(),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mltc_core::{L1Config, L2Config};
    use mltc_texture::{synth, MipPyramid};

    fn registry(n: usize, dim: u32) -> TextureRegistry {
        let mut reg = TextureRegistry::new();
        for i in 0..n {
            reg.load(
                format!("t{i}"),
                MipPyramid::from_image(synth::checkerboard(dim, 4, [0; 3], [255; 3])),
            );
        }
        reg
    }

    #[test]
    fn morton_matches_closed_form() {
        // The naive loop against a couple of hand-computed values.
        assert_eq!(morton_bit_by_bit(0, 0), 0);
        assert_eq!(morton_bit_by_bit(1, 0), 1);
        assert_eq!(morton_bit_by_bit(0, 1), 2);
        assert_eq!(morton_bit_by_bit(3, 3), 0b1111);
        assert_eq!(morton_bit_by_bit(0xffff, 0), 0x5555_5555);
    }

    #[test]
    fn page_table_entry_count_matches_layout() {
        let reg = registry(3, 64);
        let cfg = EngineConfig {
            l1: L1Config::kb(2),
            l2: Some(L2Config::mb(1)),
            ..EngineConfig::default()
        };
        let oracle = OracleEngine::new(cfg, &reg);
        let layout = mltc_texture::PageTableLayout::new(&reg, cfg.tiling);
        assert_eq!(oracle.page_table_entries(), layout.entry_count() as usize);
    }

    #[test]
    fn cold_access_is_a_full_miss_with_download() {
        let reg = registry(1, 64);
        let cfg = EngineConfig {
            l1: L1Config::kb(2),
            l2: Some(L2Config::mb(1)),
            tlb_entries: 2,
            ..EngineConfig::default()
        };
        let mut oracle = OracleEngine::new(cfg, &reg);
        let t = TextureId::from_index(0);
        let a = oracle.access_texel(t, 0, 0, 0);
        assert!(!a.l1_hit);
        assert_eq!(a.l2, Some(L2Outcome::FullMiss));
        assert_eq!(a.tlb_hit, Some(false));
        assert_eq!(a.host_bytes, 64);
        let b = oracle.access_texel(t, 0, 0, 0);
        assert!(b.l1_hit);
        assert_eq!(b.l2, None);
        oracle.check_invariants().unwrap();
    }
}
