//! Self-contained divergence repros.
//!
//! When the harness catches the engine and the oracle disagreeing, the
//! shrunk access stream alone is not enough to reproduce the bug: the
//! engine configuration and the texture set shape every replacement
//! decision. A [`Repro`] bundles all three into one JSON file under
//! `results/repros/`, named by a content hash so re-running a broken build
//! is idempotent. Texture *content* is irrelevant to cache behaviour (only
//! level geometry feeds the page table), so textures are recorded as base
//! dimensions and rebuilt as flat-colour images.

use crate::diff::TexelAccess;
use crate::json::Json;
use mltc_core::{
    EngineConfig, FaultPlan, L1Config, L2Config, ReplacementPolicy, StorageFormat, TextureBlackout,
};
use mltc_texture::{Image, MipPyramid, TexelFormat, TextureRegistry, TileSize, TilingConfig};
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

/// A minimized, self-contained reproduction of a divergence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Repro {
    /// Free-text description of the divergence (first differing field,
    /// index, ...).
    pub note: String,
    /// Engine configuration under which the divergence occurred.
    pub config: EngineConfig,
    /// Base dimensions of each texture-id slot, in id order. `None` marks a
    /// deleted slot: ids are never reused, so the slot must be burned when
    /// rebuilding the registry to keep later ids aligned.
    pub textures: Vec<Option<(u32, u32)>>,
    /// The shrunk access stream.
    pub accesses: Vec<TexelAccess>,
}

impl Repro {
    /// Captures a repro for `accesses` against the registry that produced
    /// the divergence.
    pub fn capture(
        note: impl Into<String>,
        config: EngineConfig,
        registry: &TextureRegistry,
        accesses: &[TexelAccess],
    ) -> Self {
        let textures = (0..registry.issued_count() as u32)
            .map(|i| {
                registry
                    .pyramid(mltc_texture::TextureId::from_index(i))
                    .map(|p| {
                        let base = p.iter().next().expect("pyramid has a base level");
                        (base.width(), base.height())
                    })
            })
            .collect();
        Self {
            note: note.into(),
            config,
            textures,
            accesses: accesses.to_vec(),
        }
    }

    /// Rebuilds a texture registry with the recorded id layout. Deleted
    /// slots are burned with a placeholder texture that is immediately
    /// deleted, so every recorded id maps to the same geometry it had when
    /// the divergence was captured.
    pub fn build_registry(&self) -> TextureRegistry {
        let mut reg = TextureRegistry::new();
        for (i, slot) in self.textures.iter().enumerate() {
            match slot {
                Some((w, h)) => {
                    let img = Image::filled(*w, *h, TexelFormat::Rgb565, [128, 128, 128]);
                    reg.load(format!("repro{i}"), MipPyramid::from_image(img));
                }
                None => {
                    let img = Image::filled(1, 1, TexelFormat::Rgb565, [0, 0, 0]);
                    let tid = reg.load(format!("deleted{i}"), MipPyramid::from_image(img));
                    reg.delete(tid);
                }
            }
        }
        reg
    }

    /// Serializes to the repro JSON schema.
    pub fn to_json(&self) -> Json {
        let mut root = BTreeMap::new();
        root.insert("note".into(), Json::Str(self.note.clone()));
        root.insert("config".into(), config_to_json(&self.config));
        root.insert(
            "textures".into(),
            Json::Arr(
                self.textures
                    .iter()
                    .map(|slot| match slot {
                        Some((w, h)) => Json::Arr(vec![Json::Num(*w as u64), Json::Num(*h as u64)]),
                        None => Json::Arr(vec![]),
                    })
                    .collect(),
            ),
        );
        root.insert(
            "accesses".into(),
            Json::Arr(
                self.accesses
                    .iter()
                    .map(|a| {
                        Json::Arr(vec![
                            Json::Num(a.tid as u64),
                            Json::Num(a.m as u64),
                            Json::Num(a.u as u64),
                            Json::Num(a.v as u64),
                        ])
                    })
                    .collect(),
            ),
        );
        Json::Obj(root)
    }

    /// Parses the repro JSON schema.
    pub fn parse(text: &str) -> Result<Self, String> {
        let doc = Json::parse(text)?;
        let note = doc
            .get("note")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string();
        let config = config_from_json(doc.get("config").ok_or("missing \"config\"")?)?;
        let mut textures = Vec::new();
        for slot in doc
            .get("textures")
            .and_then(Json::as_arr)
            .ok_or("missing \"textures\" array")?
        {
            let dims = slot.as_arr().ok_or("texture slot must be an array")?;
            textures.push(match dims {
                [] => None,
                [w, h] => Some((
                    u64_field(w, "texture width")? as u32,
                    u64_field(h, "texture height")? as u32,
                )),
                _ => return Err("texture slot must be [] or [w, h]".into()),
            });
        }
        let mut accesses = Vec::new();
        for item in doc
            .get("accesses")
            .and_then(Json::as_arr)
            .ok_or("missing \"accesses\" array")?
        {
            match item.as_arr().ok_or("access must be an array")? {
                [tid, m, u, v] => accesses.push(TexelAccess {
                    tid: u64_field(tid, "tid")? as u32,
                    m: u64_field(m, "m")? as u32,
                    u: u64_field(u, "u")? as u32,
                    v: u64_field(v, "v")? as u32,
                }),
                _ => return Err("access must be [tid, m, u, v]".into()),
            }
        }
        Ok(Self {
            note,
            config,
            textures,
            accesses,
        })
    }

    /// Writes the repro to `<dir>/repro-<hash>.json` (creating `dir`) and
    /// returns the path. The name is a content hash, so identical repros
    /// overwrite rather than accumulate.
    pub fn write(&self, dir: &Path) -> io::Result<PathBuf> {
        let text = self.to_json().render();
        let path = dir.join(format!("repro-{:016x}.json", fnv1a(text.as_bytes())));
        std::fs::create_dir_all(dir)?;
        std::fs::write(&path, text)?;
        Ok(path)
    }
}

fn u64_field(j: &Json, what: &str) -> Result<u64, String> {
    j.as_u64().ok_or_else(|| format!("{what} must be a number"))
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn tile_to_json(t: TileSize) -> Json {
    Json::Num(t.texels() as u64)
}

fn tile_from_json(j: &Json, what: &str) -> Result<TileSize, String> {
    match u64_field(j, what)? {
        4 => Ok(TileSize::X4),
        8 => Ok(TileSize::X8),
        16 => Ok(TileSize::X16),
        32 => Ok(TileSize::X32),
        n => Err(format!("{what}: unsupported tile edge {n}")),
    }
}

/// Serializes an [`EngineConfig`] (flat schema, omitting absent L2 / default
/// fault plans).
pub fn config_to_json(cfg: &EngineConfig) -> Json {
    let mut root = BTreeMap::new();

    let mut l1 = BTreeMap::new();
    l1.insert("bytes".into(), Json::Num(cfg.l1.size_bytes as u64));
    l1.insert("ways".into(), Json::Num(cfg.l1.ways as u64));
    l1.insert("tile".into(), tile_to_json(cfg.l1.tile));
    l1.insert(
        "storage".into(),
        Json::Str(
            match cfg.l1.storage {
                StorageFormat::Tiled => "tiled",
                StorageFormat::Linear => "linear",
            }
            .into(),
        ),
    );
    root.insert("l1".into(), Json::Obj(l1));

    if let Some(l2) = cfg.l2 {
        let mut o = BTreeMap::new();
        o.insert("bytes".into(), Json::Num(l2.size_bytes as u64));
        o.insert("policy".into(), Json::Str(l2.policy.to_string()));
        o.insert("sector".into(), Json::Bool(l2.sector_mapping));
        root.insert("l2".into(), Json::Obj(o));
    }

    root.insert("tlb_entries".into(), Json::Num(cfg.tlb_entries as u64));

    let mut tiling = BTreeMap::new();
    tiling.insert("l2".into(), tile_to_json(cfg.tiling.l2()));
    tiling.insert("l1".into(), tile_to_json(cfg.tiling.l1()));
    root.insert("tiling".into(), Json::Obj(tiling));

    if !cfg.fault.is_none() {
        let mut f = BTreeMap::new();
        f.insert("seed".into(), Json::Num(cfg.fault.seed));
        f.insert("fail_ppm".into(), Json::Num(cfg.fault.fail_ppm as u64));
        f.insert(
            "max_attempts".into(),
            Json::Num(cfg.fault.max_attempts as u64),
        );
        f.insert(
            "burst_period".into(),
            Json::Num(cfg.fault.burst_period as u64),
        );
        f.insert("burst_len".into(), Json::Num(cfg.fault.burst_len as u64));
        if let Some(b) = cfg.fault.blackout {
            f.insert(
                "blackout".into(),
                Json::Arr(vec![
                    Json::Num(b.tid as u64),
                    Json::Num(b.from),
                    Json::Num(b.until),
                ]),
            );
        }
        root.insert("fault".into(), Json::Obj(f));
    }

    Json::Obj(root)
}

/// Parses the flat [`EngineConfig`] schema produced by [`config_to_json`].
/// Structural validity only; semantic validation (power-of-two sizes etc.)
/// stays with [`SimEngine::try_new`](mltc_core::SimEngine::try_new).
pub fn config_from_json(doc: &Json) -> Result<EngineConfig, String> {
    let l1_doc = doc.get("l1").ok_or("missing \"l1\"")?;
    let l1 = L1Config {
        size_bytes: u64_field(l1_doc.get("bytes").ok_or("missing l1.bytes")?, "l1.bytes")? as usize,
        ways: u64_field(l1_doc.get("ways").ok_or("missing l1.ways")?, "l1.ways")? as usize,
        tile: tile_from_json(l1_doc.get("tile").ok_or("missing l1.tile")?, "l1.tile")?,
        storage: match l1_doc.get("storage").and_then(Json::as_str) {
            Some("tiled") | None => StorageFormat::Tiled,
            Some("linear") => StorageFormat::Linear,
            Some(other) => return Err(format!("unknown l1.storage {other:?}")),
        },
    };

    let l2 = match doc.get("l2") {
        None => None,
        Some(o) => Some(L2Config {
            size_bytes: u64_field(o.get("bytes").ok_or("missing l2.bytes")?, "l2.bytes")? as usize,
            policy: match o.get("policy").and_then(Json::as_str) {
                Some("clock") | None => ReplacementPolicy::Clock,
                Some("lru") => ReplacementPolicy::Lru,
                Some("fifo") => ReplacementPolicy::Fifo,
                Some(other) => return Err(format!("unknown l2.policy {other:?}")),
            },
            sector_mapping: o.get("sector").and_then(Json::as_bool).unwrap_or(true),
        }),
    };

    let tlb_entries = match doc.get("tlb_entries") {
        Some(n) => u64_field(n, "tlb_entries")? as usize,
        None => 0,
    };

    let tiling = match doc.get("tiling") {
        None => TilingConfig::PAPER_DEFAULT,
        Some(t) => TilingConfig::new(
            tile_from_json(t.get("l2").ok_or("missing tiling.l2")?, "tiling.l2")?,
            tile_from_json(t.get("l1").ok_or("missing tiling.l1")?, "tiling.l1")?,
        )
        .map_err(|e| e.to_string())?,
    };

    let fault = match doc.get("fault") {
        None => FaultPlan::none(),
        Some(f) => FaultPlan {
            seed: match f.get("seed") {
                Some(n) => u64_field(n, "fault.seed")?,
                None => 0,
            },
            fail_ppm: match f.get("fail_ppm") {
                Some(n) => u64_field(n, "fault.fail_ppm")? as u32,
                None => 0,
            },
            max_attempts: match f.get("max_attempts") {
                Some(n) => u64_field(n, "fault.max_attempts")? as u32,
                None => 1,
            },
            burst_period: match f.get("burst_period") {
                Some(n) => u64_field(n, "fault.burst_period")? as u32,
                None => 0,
            },
            burst_len: match f.get("burst_len") {
                Some(n) => u64_field(n, "fault.burst_len")? as u32,
                None => 0,
            },
            blackout: match f.get("blackout") {
                None => None,
                Some(b) => match b.as_arr().ok_or("fault.blackout must be an array")? {
                    [tid, from, until] => Some(TextureBlackout {
                        tid: u64_field(tid, "blackout tid")? as u32,
                        from: u64_field(from, "blackout from")?,
                        until: u64_field(until, "blackout until")?,
                    }),
                    _ => return Err("fault.blackout must be [tid, from, until]".into()),
                },
            },
        },
    };

    Ok(EngineConfig {
        l1,
        l2,
        tlb_entries,
        tiling,
        fault,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spicy_config() -> EngineConfig {
        EngineConfig {
            l1: L1Config {
                size_bytes: 4096,
                ways: 4,
                tile: TileSize::X8,
                storage: StorageFormat::Linear,
            },
            l2: Some(L2Config {
                size_bytes: 64 * 1024,
                policy: ReplacementPolicy::Fifo,
                sector_mapping: false,
            }),
            tlb_entries: 8,
            tiling: TilingConfig::new(TileSize::X32, TileSize::X8).unwrap(),
            fault: FaultPlan {
                seed: u64::MAX - 7,
                fail_ppm: 10_000,
                max_attempts: 3,
                burst_period: 100,
                burst_len: 5,
                blackout: Some(TextureBlackout {
                    tid: 2,
                    from: 10,
                    until: 20,
                }),
            },
        }
    }

    #[test]
    fn config_roundtrips_including_fault_plan() {
        let cfg = spicy_config();
        let parsed = config_from_json(&config_to_json(&cfg)).unwrap();
        assert_eq!(parsed, cfg);

        let plain = EngineConfig::default();
        assert_eq!(config_from_json(&config_to_json(&plain)).unwrap(), plain);
    }

    #[test]
    fn repro_roundtrips_and_rebuilds_registry() {
        let repro = Repro {
            note: "l2_block: engine Some(3) vs oracle Some(1)".into(),
            config: spicy_config(),
            textures: vec![Some((64, 64)), None, Some((128, 32))],
            accesses: vec![
                TexelAccess {
                    tid: 0,
                    m: 1,
                    u: 3,
                    v: 5,
                },
                TexelAccess {
                    tid: 2,
                    m: 0,
                    u: 100,
                    v: 17,
                },
            ],
        };
        let text = repro.to_json().render();
        let parsed = Repro::parse(&text).unwrap();
        assert_eq!(parsed, repro);

        let reg = parsed.build_registry();
        assert_eq!(reg.issued_count(), 3);
        assert!(reg
            .pyramid(mltc_texture::TextureId::from_index(1))
            .is_none());
        let p2 = reg
            .pyramid(mltc_texture::TextureId::from_index(2))
            .expect("slot 2 is live");
        let base = p2.iter().next().unwrap();
        assert_eq!((base.width(), base.height()), (128, 32));
    }

    #[test]
    fn write_is_content_addressed() {
        let dir = std::env::temp_dir().join("mltc-oracle-repro-test");
        let repro = Repro {
            note: "x".into(),
            config: EngineConfig::default(),
            textures: vec![Some((4, 4))],
            accesses: vec![],
        };
        let a = repro.write(&dir).unwrap();
        let b = repro.write(&dir).unwrap();
        assert_eq!(a, b);
        assert!(Repro::parse(&std::fs::read_to_string(&a).unwrap()).is_ok());
        let _ = std::fs::remove_file(a);
    }
}
