//! Rebuilding workloads from the key string embedded in `.mltct` trace
//! files.
//!
//! The trace store writes every cached trace with a self-describing key
//! (see `TraceStore` in `mltc-experiments`):
//!
//! ```text
//! mltc-trace kind=city w=64 h=48 frames=4 ts=8 seed=0x5eed zprepass=false traversal=scanline
//! ```
//!
//! Workload construction is deterministic in `(kind, params)`, so parsing
//! that key is enough to regenerate the exact texture registry the trace
//! was rendered against — which is what the diff harness needs to replay a
//! trace file without re-rendering anything.

use mltc_scene::{Workload, WorkloadKind, WorkloadParams};

/// A parsed trace key: enough to rebuild the workload the trace came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceKey {
    /// Which scene generator produced the trace.
    pub kind: WorkloadKind,
    /// Generator parameters (screen size, frames, texture scale, seed).
    pub params: WorkloadParams,
    /// Whether the trace was rendered with a depth pre-pass.
    pub zprepass: bool,
    /// Rasterizer traversal tag (`scanline` or `tiled<edge>`); recorded for
    /// provenance only — replay is traversal-independent once the trace
    /// exists.
    pub traversal: String,
}

impl TraceKey {
    /// Parses a key string as written by the trace store.
    pub fn parse(key: &str) -> Result<Self, String> {
        let mut words = key.split_whitespace();
        if words.next() != Some("mltc-trace") {
            return Err(format!("not an mltc-trace key: {key:?}"));
        }
        let mut kind = None;
        let mut params = WorkloadParams {
            width: 0,
            height: 0,
            frames: 0,
            texture_scale: 0,
            seed: 0,
        };
        let mut zprepass = None;
        let mut traversal = None;
        for word in words {
            let (name, value) = word
                .split_once('=')
                .ok_or_else(|| format!("malformed key field {word:?}"))?;
            match name {
                "kind" => {
                    kind = Some(match value {
                        "village" => WorkloadKind::Village,
                        "city" => WorkloadKind::City,
                        "future-city" => WorkloadKind::FutureCity,
                        other => return Err(format!("unknown workload kind {other:?}")),
                    })
                }
                "w" => params.width = parse_u32(name, value)?,
                "h" => params.height = parse_u32(name, value)?,
                "frames" => params.frames = parse_u32(name, value)?,
                "ts" => params.texture_scale = parse_u32(name, value)?,
                "seed" => {
                    let hex = value
                        .strip_prefix("0x")
                        .ok_or_else(|| format!("seed must be hex, got {value:?}"))?;
                    params.seed = u64::from_str_radix(hex, 16)
                        .map_err(|e| format!("bad seed {value:?}: {e}"))?;
                }
                "zprepass" => {
                    zprepass = Some(match value {
                        "true" => true,
                        "false" => false,
                        other => return Err(format!("bad zprepass {other:?}")),
                    })
                }
                "traversal" => traversal = Some(value.to_string()),
                // Forward compatibility: ignore fields added by newer
                // writers rather than refusing the whole trace.
                _ => {}
            }
        }
        Ok(Self {
            kind: kind.ok_or("key missing kind=")?,
            params,
            zprepass: zprepass.ok_or("key missing zprepass=")?,
            traversal: traversal.ok_or("key missing traversal=")?,
        })
    }

    /// Regenerates the workload (scene, textures, camera path) the trace
    /// was rendered from.
    pub fn workload(&self) -> Workload {
        self.kind.build(&self.params)
    }
}

fn parse_u32(name: &str, value: &str) -> Result<u32, String> {
    value
        .parse::<u32>()
        .map_err(|e| format!("bad {name} {value:?}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_store_formatted_key() {
        let key = "mltc-trace kind=city w=64 h=48 frames=4 ts=8 seed=0x5eed \
                   zprepass=false traversal=scanline";
        let parsed = TraceKey::parse(key).unwrap();
        assert_eq!(parsed.kind, WorkloadKind::City);
        assert_eq!(parsed.params, WorkloadParams::tiny());
        assert!(!parsed.zprepass);
        assert_eq!(parsed.traversal, "scanline");
    }

    #[test]
    fn rejects_foreign_and_truncated_keys() {
        assert!(TraceKey::parse("something-else v=1").is_err());
        assert!(TraceKey::parse("mltc-trace kind=city w=64").is_err());
        assert!(TraceKey::parse(
            "mltc-trace kind=moon w=1 h=1 frames=1 ts=1 seed=0x0 zprepass=true traversal=scanline"
        )
        .is_err());
    }

    #[test]
    fn rebuilt_workload_matches_a_direct_build() {
        let key = "mltc-trace kind=village w=64 h=48 frames=4 ts=8 seed=0x5eed \
                   zprepass=false traversal=scanline";
        let parsed = TraceKey::parse(key).unwrap();
        let wl = parsed.workload();
        let direct = WorkloadKind::Village.build(&WorkloadParams::tiny());
        assert_eq!(
            wl.scene().registry().issued_count(),
            direct.scene().registry().issued_count()
        );
    }
}
