//! Inspect recorded trace files and shrink divergences against the oracle.
//!
//! ```text
//! tracetool <trace-file> [--per-frame]
//! tracetool stats <trace-file> [--per-frame] [--out <file>]
//! tracetool shrink <trace-file> --config <json|file> [--out <dir>] [--filter <mode>]
//! ```
//!
//! The bare form prints a human summary. `stats` is machine-oriented: with
//! `--per-frame` it dumps one CSV row per frame (request count, nominal
//! texel-tap count at the recorded filter mode, distinct textures) through
//! the shared `mltc-telemetry` time-series exporter, so the columns match
//! the engine's own telemetry exports byte for byte.
//!
//! `shrink` replays a cached `.mltct` trace through the differential
//! harness under the given engine configuration (inline JSON, a path to a
//! config file, or a previously written repro file, whose embedded config
//! is reused). On divergence it delta-minimizes the access stream and
//! writes a self-contained repro JSON (default `results/repros/`), exiting
//! nonzero; with no divergence it exits zero.

use mltc_oracle::{
    config_from_json, expand_frame, DiffHarness, Json, Repro, TexelAccess, TraceKey,
};
use mltc_telemetry::{export, SeriesSnapshot};
use mltc_trace::codec::{CodecError, TraceFileReader, TraceReader};
use mltc_trace::FilterMode;
use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::fs::File;
use std::io::{BufReader, Write};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: tracetool <trace-file> [--per-frame]\n\
         \x20      tracetool stats <trace-file> [--per-frame] [--out <file>]\n\
         \x20      tracetool shrink <trace-file> --config <json|file> [--out <dir>] [--filter <mode>]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("stats") => return stats_main(&args[1..]),
        Some("shrink") => return shrink_main(&args[1..]),
        _ => {}
    }
    let Some(path) = args.iter().find(|a| !a.starts_with("--")) else {
        return usage();
    };
    let per_frame = args.iter().any(|a| a == "--per-frame");

    let mut reader = match AnyReader::open(path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot open {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut frames = 0u64;
    let mut requests = 0u64;
    let mut depth_sum = 0.0f64;
    let mut tids: BTreeMap<u32, u64> = BTreeMap::new();
    let mut lod_min = f32::INFINITY;
    let mut lod_max = f32::NEG_INFINITY;
    let mut dims = (0u32, 0u32);
    let mut filter = None;

    if per_frame {
        println!("{:>6} {:>10} {:>8}", "frame", "requests", "d");
    }
    loop {
        match reader.read_frame() {
            Ok(Some(t)) => {
                frames += 1;
                requests += t.requests.len() as u64;
                depth_sum += t.depth_complexity();
                dims = (t.width, t.height);
                filter = Some(t.filter);
                for r in &t.requests {
                    *tids.entry(r.tid.index()).or_insert(0) += 1;
                    lod_min = lod_min.min(r.lod);
                    lod_max = lod_max.max(r.lod);
                }
                if per_frame {
                    println!(
                        "{:>6} {:>10} {:>8.2}",
                        t.frame,
                        t.requests.len(),
                        t.depth_complexity()
                    );
                }
            }
            Ok(None) => break,
            Err(e) => {
                eprintln!("corrupt trace after {frames} frames: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if frames == 0 {
        println!("{path}: empty trace");
        return ExitCode::SUCCESS;
    }

    println!("\n{path}:");
    println!("  frames           : {frames}");
    println!("  resolution       : {}x{}", dims.0, dims.1);
    println!(
        "  filter           : {}",
        filter.map(|f| f.name()).unwrap_or("?")
    );
    println!("  total requests   : {requests}");
    println!("  mean depth compl.: {:.2}", depth_sum / frames as f64);
    println!("  distinct textures: {}", tids.len());
    println!("  lod range        : {lod_min:.2} .. {lod_max:.2}");
    let mut top: Vec<(u32, u64)> = tids.into_iter().collect();
    top.sort_by_key(|(_, n)| std::cmp::Reverse(*n));
    println!("  hottest textures :");
    for (tid, n) in top.into_iter().take(5) {
        println!(
            "    tid{tid:<6} {:>6.2}% of requests",
            n as f64 * 100.0 / requests as f64
        );
    }
    ExitCode::SUCCESS
}

/// `tracetool stats`: machine-readable per-frame counts.
fn stats_main(args: &[String]) -> ExitCode {
    let mut path = None;
    let mut per_frame = false;
    let mut out: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--per-frame" => per_frame = true,
            "--out" => match it.next() {
                Some(f) => out = Some(f.clone()),
                None => return usage(),
            },
            other if !other.starts_with("--") && path.is_none() => path = Some(other.to_string()),
            _ => return usage(),
        }
    }
    let Some(path) = path else {
        return usage();
    };

    let series = match per_frame_series(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if per_frame {
        let written = match out {
            Some(ref f) => File::create(f)
                .and_then(|file| {
                    let mut w = std::io::BufWriter::new(file);
                    export::write_single_series_csv(&series, &mut w)?;
                    w.flush()
                })
                .map(|()| eprintln!("wrote {f}")),
            None => {
                let stdout = std::io::stdout();
                export::write_single_series_csv(&series, &mut stdout.lock())
            }
        };
        if let Err(e) = written {
            eprintln!("cannot write per-frame CSV: {e}");
            return ExitCode::FAILURE;
        }
    } else {
        let frames = series.rows.len();
        let requests: u64 = series.rows.iter().map(|r| r[1]).sum();
        let taps: u64 = series.rows.iter().map(|r| r[2]).sum();
        println!("{path}: {frames} frames, {requests} requests, {taps} taps");
    }
    ExitCode::SUCCESS
}

/// `tracetool shrink`: differential replay + delta minimization.
fn shrink_main(args: &[String]) -> ExitCode {
    let mut path = None;
    let mut config_arg = None;
    let mut out_dir = PathBuf::from("results/repros");
    let mut filter_override = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--config" => match it.next() {
                Some(c) => config_arg = Some(c.clone()),
                None => return usage(),
            },
            "--out" => match it.next() {
                Some(d) => out_dir = PathBuf::from(d),
                None => return usage(),
            },
            "--filter" => match it.next().map(String::as_str) {
                Some("point") => filter_override = Some(FilterMode::Point),
                Some("bilinear") => filter_override = Some(FilterMode::Bilinear),
                Some("trilinear") => filter_override = Some(FilterMode::Trilinear),
                other => {
                    eprintln!("unknown --filter {other:?} (point|bilinear|trilinear)");
                    return usage();
                }
            },
            other if !other.starts_with("--") && path.is_none() => path = Some(other.to_string()),
            _ => return usage(),
        }
    }
    let (Some(path), Some(config_arg)) = (path, config_arg) else {
        return usage();
    };

    let config = match load_config(&config_arg) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("bad --config: {e}");
            return ExitCode::FAILURE;
        }
    };

    match run_shrink(&path, config, filter_override, &out_dir) {
        Ok(None) => {
            println!("{path}: no divergence");
            ExitCode::SUCCESS
        }
        Ok(Some((detail, len, repro_path))) => {
            eprintln!("{path}: DIVERGENCE — {detail}");
            eprintln!("shrunk to {len} accesses; repro: {}", repro_path.display());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("{path}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Accepts inline JSON, a path to a config JSON file, or a path to a full
/// repro file (whose `config` member is reused).
fn load_config(arg: &str) -> Result<mltc_core::EngineConfig, String> {
    let text = if std::path::Path::new(arg).exists() {
        std::fs::read_to_string(arg).map_err(|e| format!("{arg}: {e}"))?
    } else {
        arg.to_string()
    };
    let doc = Json::parse(&text)?;
    let config_doc = doc.get("config").unwrap_or(&doc);
    config_from_json(config_doc)
}

fn run_shrink(
    path: &str,
    config: mltc_core::EngineConfig,
    filter_override: Option<FilterMode>,
    out_dir: &std::path::Path,
) -> Result<Option<(String, usize, PathBuf)>, String> {
    let mut reader =
        TraceFileReader::new(BufReader::new(File::open(path).map_err(|e| e.to_string())?))
            .map_err(|e| format!("not a .mltct container: {e}"))?;
    let key = TraceKey::parse(reader.key())?;
    let workload = key.workload();
    let registry = workload.scene().registry();

    let mut stream: Vec<TexelAccess> = Vec::new();
    for _ in 0..reader.frame_count() {
        let frame = reader.read_frame().map_err(|e| e.to_string())?;
        let filter = filter_override.unwrap_or(frame.filter);
        expand_frame(&frame, filter, registry, &mut stream).map_err(|e| e.to_string())?;
    }

    let harness = DiffHarness::new(config, registry).map_err(|e| format!("config: {e}"))?;
    match harness.replay(&stream) {
        Ok(()) => Ok(None),
        Err(div) => {
            let shrunk = harness.shrink(&stream);
            let detail = harness
                .replay(&shrunk)
                .expect_err("shrunk stream still diverges")
                .to_string();
            let repro = Repro::capture(&detail, config, registry, &shrunk);
            let repro_path = repro.write(out_dir).map_err(|e| e.to_string())?;
            let _ = div; // first divergence superseded by the shrunk one
            Ok(Some((detail, shrunk.len(), repro_path)))
        }
    }
}

fn invalid(e: impl std::fmt::Display) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
}

/// Reads frames from either trace format: the versioned `.mltct` container
/// (`MLTS` header, as the trace store writes) or a bare `MLTC` frame stream
/// (as `examples/record_replay.rs` writes).
enum AnyReader {
    Container {
        reader: TraceFileReader<BufReader<File>>,
        remaining: u32,
    },
    Bare(TraceReader<BufReader<File>>),
}

impl AnyReader {
    fn open(path: &str) -> std::io::Result<Self> {
        match TraceFileReader::new(BufReader::new(File::open(path)?)) {
            Ok(reader) => {
                let remaining = reader.frame_count();
                Ok(AnyReader::Container { reader, remaining })
            }
            // Not a container: re-open and read it as a bare frame stream.
            Err(CodecError::BadFileMagic(_)) => Ok(AnyReader::Bare(TraceReader::new(
                BufReader::new(File::open(path)?),
            ))),
            Err(e) => Err(invalid(e)),
        }
    }

    fn read_frame(&mut self) -> std::io::Result<Option<mltc_trace::FrameTrace>> {
        match self {
            AnyReader::Container { reader, remaining } => {
                if *remaining == 0 {
                    return Ok(None);
                }
                *remaining -= 1;
                reader.read_frame().map(Some).map_err(invalid)
            }
            AnyReader::Bare(reader) => reader.read_frame().map_err(invalid),
        }
    }
}

/// Decodes `path` into one row per frame: request count, nominal tap count
/// (requests × the filter mode's maximum taps — point 1, bilinear 4,
/// trilinear 8), and distinct textures touched.
fn per_frame_series(path: &str) -> std::io::Result<SeriesSnapshot> {
    let mut series = SeriesSnapshot {
        label: path.to_string(),
        columns: ["frame", "requests", "taps", "distinct_textures"]
            .iter()
            .map(|c| c.to_string())
            .collect(),
        rows: Vec::new(),
    };
    let mut reader = AnyReader::open(path)?;
    while let Some(t) = reader.read_frame()? {
        let requests = t.requests.len() as u64;
        let tids: BTreeSet<u32> = t.requests.iter().map(|r| r.tid.index()).collect();
        series.rows.push(vec![
            u64::from(t.frame),
            requests,
            requests * t.filter.max_taps() as u64,
            tids.len() as u64,
        ]);
    }
    Ok(series)
}
