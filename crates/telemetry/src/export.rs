//! Exporters: JSONL / CSV time series, histogram summaries as a JSON
//! fragment for `BENCH_experiments.json`, and Chrome trace-event files.
//!
//! All JSON is hand-rolled (the workspace carries no serde); strings go
//! through one escaping routine and numbers are plain `u64`/`f64`
//! formatting, so the output is loadable by any JSON parser and by
//! `chrome://tracing` / Perfetto for the span file.

use std::fmt::Write as _;
use std::fs;
use std::io::{self, Write};
use std::path::Path;

use crate::recorder::{SeriesSnapshot, TelemetrySnapshot};
use crate::span::{chrome_trace_json, json_string};

/// Writes one JSON object per row: series label, row sequence number, then
/// each column. One physical line per row (JSONL).
pub fn write_series_jsonl(series: &[SeriesSnapshot], out: &mut impl Write) -> io::Result<()> {
    for s in series {
        for (seq, row) in s.rows.iter().enumerate() {
            let mut line = String::with_capacity(64 + 16 * row.len());
            let _ = write!(
                line,
                "{{\"series\":{},\"seq\":{}",
                json_string(&s.label),
                seq
            );
            for (col, v) in s.columns.iter().zip(row) {
                let _ = write!(line, ",{}:{}", json_string(col), v);
            }
            line.push('}');
            writeln!(out, "{line}")?;
        }
    }
    Ok(())
}

/// Writes all series as one CSV: `series,seq,<union of columns>`, blank
/// cells where a series lacks a column.
pub fn write_series_csv(series: &[SeriesSnapshot], out: &mut impl Write) -> io::Result<()> {
    let mut columns: Vec<&str> = Vec::new();
    for s in series {
        for c in &s.columns {
            if !columns.contains(&c.as_str()) {
                columns.push(c);
            }
        }
    }
    write!(out, "series,seq")?;
    for c in &columns {
        write!(out, ",{}", csv_field(c))?;
    }
    writeln!(out)?;
    for s in series {
        for (seq, row) in s.rows.iter().enumerate() {
            write!(out, "{},{}", csv_field(&s.label), seq)?;
            for c in &columns {
                match s.columns.iter().position(|sc| sc == c) {
                    Some(i) => write!(out, ",{}", row[i])?,
                    None => write!(out, ",")?,
                }
            }
            writeln!(out)?;
        }
    }
    Ok(())
}

/// Writes a single-series CSV with just that series' columns — the shape
/// `tracetool stats --per-frame` emits.
pub fn write_single_series_csv(series: &SeriesSnapshot, out: &mut impl Write) -> io::Result<()> {
    writeln!(
        out,
        "{}",
        series
            .columns
            .iter()
            .map(|c| csv_field(c))
            .collect::<Vec<_>>()
            .join(",")
    )?;
    for row in &series.rows {
        writeln!(
            out,
            "{}",
            row.iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(",")
        )?;
    }
    Ok(())
}

fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Renders counter values and histogram summaries (count/mean/min/max and
/// p50/p90/p99) as one JSON object — the fragment the experiments binary
/// merges into each `BENCH_experiments.json` run record.
pub fn summaries_json(snap: &TelemetrySnapshot) -> String {
    let mut out = String::from("{\"counters\":{");
    for (i, (name, v)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{}", json_string(name), v);
    }
    out.push_str("},\"histograms\":{");
    for (i, (name, h)) in snap.hists.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let min = if h.count == 0 { 0 } else { h.min };
        let _ = write!(
            out,
            "{}:{{\"count\":{},\"mean\":{:.3},\"min\":{},\"max\":{},\
             \"p50\":{},\"p90\":{},\"p99\":{}}}",
            json_string(name),
            h.count,
            h.mean(),
            min,
            h.max,
            h.p50(),
            h.p90(),
            h.p99()
        );
    }
    let _ = write!(
        out,
        "}},\"spans\":{},\"dropped_spans\":{}}}",
        snap.spans.len(),
        snap.dropped_spans
    );
    out
}

/// Writes the span ring as a Chrome trace-event JSON file.
pub fn write_chrome_trace(snap: &TelemetrySnapshot, out: &mut impl Write) -> io::Result<()> {
    out.write_all(chrome_trace_json(&snap.spans).as_bytes())
}

/// Writes the full snapshot into `dir`: `metrics.jsonl`, `metrics.csv`,
/// `summary.json` (counters + histogram percentiles), and
/// `trace_events.json`. Creates the directory if needed.
pub fn export_dir(snap: &TelemetrySnapshot, dir: &Path) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    let mut jsonl = io::BufWriter::new(fs::File::create(dir.join("metrics.jsonl"))?);
    write_series_jsonl(&snap.series, &mut jsonl)?;
    jsonl.flush()?;
    let mut csv = io::BufWriter::new(fs::File::create(dir.join("metrics.csv"))?);
    write_series_csv(&snap.series, &mut csv)?;
    csv.flush()?;
    fs::write(dir.join("summary.json"), summaries_json(snap))?;
    let mut trace = io::BufWriter::new(fs::File::create(dir.join("trace_events.json"))?);
    write_chrome_trace(snap, &mut trace)?;
    trace.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    fn sample_snapshot() -> TelemetrySnapshot {
        let rec = Recorder::enabled();
        rec.counter("renders").add(2);
        let h = rec.histogram("lat");
        h.record(0);
        h.record(1);
        h.record(300);
        let s = rec.series("runA", &["frame", "hits"]);
        s.push_row(&[0, 10]);
        s.push_row(&[1, 12]);
        let t = rec.series("runB", &["frame", "misses"]);
        t.push_row(&[0, 3]);
        rec.span("work").end();
        rec.snapshot()
    }

    #[test]
    fn jsonl_is_one_object_per_row() {
        let snap = sample_snapshot();
        let mut buf = Vec::new();
        write_series_jsonl(&snap.series, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("{\"series\":\"runA\",\"seq\":0"));
        assert!(lines[0].contains("\"hits\":10"));
        assert!(lines[2].contains("\"misses\":3"));
        for l in lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
        }
    }

    #[test]
    fn csv_unions_columns_with_blanks() {
        let snap = sample_snapshot();
        let mut buf = Vec::new();
        write_series_csv(&snap.series, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "series,seq,frame,hits,misses");
        assert_eq!(lines[1], "runA,0,0,10,");
        assert_eq!(lines[3], "runB,0,0,,3");
    }

    #[test]
    fn single_series_csv_has_plain_header() {
        let snap = sample_snapshot();
        let mut buf = Vec::new();
        write_single_series_csv(&snap.series[0], &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().next().unwrap(), "frame,hits");
        assert_eq!(text.lines().count(), 3);
    }

    #[test]
    fn summaries_json_carries_percentiles() {
        let snap = sample_snapshot();
        let json = summaries_json(&snap);
        assert!(json.contains("\"counters\":{\"renders\":2}"));
        assert!(json.contains("\"lat\":{\"count\":3"));
        assert!(json.contains("\"p50\":1"));
        assert!(json.contains("\"spans\":1"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn export_dir_writes_all_four_files() {
        let dir = std::env::temp_dir().join(format!("mltc_tel_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let snap = sample_snapshot();
        export_dir(&snap, &dir).unwrap();
        for f in [
            "metrics.jsonl",
            "metrics.csv",
            "summary.json",
            "trace_events.json",
        ] {
            assert!(dir.join(f).is_file(), "{f} missing");
        }
        let trace = std::fs::read_to_string(dir.join("trace_events.json")).unwrap();
        assert!(trace.contains("\"traceEvents\""));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
