//! Hierarchical timed spans and the bounded event ring they land in.
//!
//! A [`Span`](crate::Span) guard is opened by
//! [`Recorder::span`](crate::Recorder::span) and measures wall time until it
//! is dropped (or explicitly [`end`](crate::Span::end)ed). Closing a span
//! pushes one [`SpanEvent`] into a bounded ring buffer — the only
//! mutex-guarded structure in the recorder, taken once per span close, never
//! on the per-texel path. When the ring is full the oldest event is
//! overwritten and a drop counter ticks, so a long suite run can never grow
//! without bound.
//!
//! Nesting is tracked per thread with a saturating depth counter:
//! out-of-order drops (a parent guard dropped before its child) never
//! underflow or panic — the child simply records at its captured depth and
//! the counter re-converges to zero once every guard is gone.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;

/// Default ring capacity (events kept before the oldest are overwritten).
pub const DEFAULT_SPAN_CAPACITY: usize = 1 << 16;

/// One closed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span label.
    pub name: String,
    /// Start, in microseconds since the recorder's epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Small dense id of the thread that ran the span.
    pub tid: u32,
    /// Nesting depth at open (0 = top level on its thread).
    pub depth: u32,
}

/// Bounded MPMC ring of closed spans.
#[derive(Debug)]
pub(crate) struct SpanRing {
    buf: Mutex<VecDeque<SpanEvent>>,
    capacity: usize,
    dropped: AtomicU64,
}

impl SpanRing {
    pub(crate) fn new(capacity: usize) -> Self {
        Self {
            buf: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
            capacity: capacity.max(1),
            dropped: AtomicU64::new(0),
        }
    }

    pub(crate) fn push(&self, ev: SpanEvent) {
        let mut buf = self.buf.lock().unwrap();
        if buf.len() == self.capacity {
            buf.pop_front();
            self.dropped.fetch_add(1, Relaxed);
        }
        buf.push_back(ev);
    }

    /// Events in arrival order plus how many were overwritten before them.
    pub(crate) fn snapshot(&self) -> (Vec<SpanEvent>, u64) {
        let buf = self.buf.lock().unwrap();
        (buf.iter().cloned().collect(), self.dropped.load(Relaxed))
    }
}

thread_local! {
    static SPAN_DEPTH: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
    static THREAD_TID: std::cell::Cell<u32> = const { std::cell::Cell::new(u32::MAX) };
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

/// A small dense id for the current thread (stable for its lifetime), used
/// as the `tid` of Chrome trace events.
pub(crate) fn thread_tid() -> u32 {
    THREAD_TID.with(|c| {
        let mut t = c.get();
        if t == u32::MAX {
            t = NEXT_TID.fetch_add(1, Relaxed) as u32;
            c.set(t);
        }
        t
    })
}

/// Opens a nesting level; returns the depth the span runs at.
pub(crate) fn enter_span() -> u32 {
    SPAN_DEPTH.with(|c| {
        let d = c.get();
        c.set(d.saturating_add(1));
        d
    })
}

/// Closes a nesting level (saturating: unbalanced closes are harmless).
pub(crate) fn exit_span() {
    SPAN_DEPTH.with(|c| c.set(c.get().saturating_sub(1)));
}

/// The current thread's span nesting depth (for tests).
pub fn current_span_depth() -> u32 {
    SPAN_DEPTH.with(|c| c.get())
}

/// Renders events as a Chrome trace-event JSON document that
/// `chrome://tracing` / Perfetto load directly (complete `"X"` events).
pub fn chrome_trace_json(events: &[SpanEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 64);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":{},\"cat\":\"mltc\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":1,\"tid\":{},\"args\":{{\"depth\":{}}}}}",
            json_string(&ev.name),
            ev.start_us,
            ev.dur_us,
            ev.tid,
            ev.depth
        ));
    }
    out.push_str("]}");
    out
}

/// Escapes a string as a JSON string literal (quotes included).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let ring = SpanRing::new(2);
        for i in 0..5u64 {
            ring.push(SpanEvent {
                name: format!("e{i}"),
                start_us: i,
                dur_us: 1,
                tid: 0,
                depth: 0,
            });
        }
        let (events, dropped) = ring.snapshot();
        assert_eq!(dropped, 3);
        let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["e3", "e4"]);
    }

    #[test]
    fn depth_saturates_on_unbalanced_close() {
        assert_eq!(current_span_depth(), 0);
        exit_span(); // unbalanced: must not underflow
        assert_eq!(current_span_depth(), 0);
        assert_eq!(enter_span(), 0);
        assert_eq!(enter_span(), 1);
        exit_span();
        exit_span();
        exit_span(); // one too many, still fine
        assert_eq!(current_span_depth(), 0);
    }

    #[test]
    fn chrome_json_escapes_names() {
        let ev = SpanEvent {
            name: "weird \"name\"\n\\".to_string(),
            start_us: 10,
            dur_us: 5,
            tid: 3,
            depth: 1,
        };
        let json = chrome_trace_json(&[ev]);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\\\"name\\\""));
        assert!(json.contains("\\n"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":10"));
        // Balanced braces — a cheap structural sanity check.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn tids_are_stable_per_thread_and_distinct_across() {
        let a = thread_tid();
        assert_eq!(a, thread_tid());
        let b = std::thread::spawn(thread_tid).join().unwrap();
        assert_ne!(a, b);
    }
}
