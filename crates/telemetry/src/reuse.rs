//! Exact LRU reuse-distance measurement over an access stream.
//!
//! The reuse distance of an access is the number of *distinct* other keys
//! touched since the previous access to the same key — the classic stack
//! distance that fully determines hit rates for any LRU-like cache size
//! (cf. Ling et al., *Fast Modeling L2 Cache Reuse Distance Histograms*).
//! The engine feeds L2 *page* indices through this to characterise a
//! workload's L2 locality independent of any one cache capacity.
//!
//! Implementation: the standard Fenwick-tree formulation. Each key remembers
//! the timestamp of its latest access; a bit-indexed tree over timestamps
//! holds a `1` exactly at each key's latest access, so the distance is a
//! prefix-sum difference — `O(log n)` per access. Timestamps grow with the
//! stream, so the tree is periodically *compacted*: live keys are re-stamped
//! in order, which preserves every distance and bounds memory by the number
//! of distinct keys, not the stream length.

use std::collections::HashMap;

/// Fenwick (binary indexed) tree of `u32` counts with 1-based internals.
#[derive(Debug, Clone)]
struct Fenwick {
    tree: Vec<u32>,
}

impl Fenwick {
    fn new(n: usize) -> Self {
        Self {
            tree: vec![0; n + 1],
        }
    }

    fn len(&self) -> usize {
        self.tree.len() - 1
    }

    /// Adds `delta` at 0-based position `i`.
    fn add(&mut self, i: usize, delta: i32) {
        let mut i = i + 1;
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as i64 + delta as i64) as u32;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of positions `0 ..= i` (0-based).
    fn prefix(&self, i: usize) -> u64 {
        let mut i = i + 1;
        let mut s = 0u64;
        while i > 0 {
            s += self.tree[i] as u64;
            i -= i & i.wrapping_neg();
        }
        s
    }
}

/// Streaming exact reuse-distance tracker.
///
/// ```
/// use mltc_telemetry::ReuseDistance;
/// let mut rd = ReuseDistance::new();
/// assert_eq!(rd.record(10), None);     // cold
/// assert_eq!(rd.record(20), None);     // cold
/// assert_eq!(rd.record(10), Some(1));  // one distinct key (20) in between
/// assert_eq!(rd.record(10), Some(0));  // immediate re-reference
/// ```
#[derive(Debug, Clone)]
pub struct ReuseDistance {
    /// key → timestamp of its latest access.
    last: HashMap<u64, usize>,
    /// `1` at each key's latest-access timestamp.
    bits: Fenwick,
    /// Next timestamp to hand out.
    time: usize,
    /// Cold (first-ever) accesses seen.
    cold: u64,
}

const INITIAL_SLOTS: usize = 1024;

impl Default for ReuseDistance {
    fn default() -> Self {
        Self::new()
    }
}

impl ReuseDistance {
    /// An empty tracker.
    pub fn new() -> Self {
        Self {
            last: HashMap::new(),
            bits: Fenwick::new(INITIAL_SLOTS),
            time: 0,
            cold: 0,
        }
    }

    /// Distinct keys currently tracked.
    pub fn distinct_keys(&self) -> usize {
        self.last.len()
    }

    /// Cold (first-ever) accesses recorded so far.
    pub fn cold_accesses(&self) -> u64 {
        self.cold
    }

    /// Records an access to `key`. Returns `None` for the first-ever access
    /// to the key, otherwise `Some(d)` where `d` counts the distinct other
    /// keys accessed since the key's previous access.
    pub fn record(&mut self, key: u64) -> Option<u64> {
        if self.time == self.bits.len() {
            self.compact();
        }
        let now = self.time;
        self.time += 1;
        match self.last.insert(key, now) {
            None => {
                self.cold += 1;
                self.bits.add(now, 1);
                None
            }
            Some(prev) => {
                // Keys whose latest access lies strictly between prev and now.
                let d = self.bits.prefix(now - 1) - self.bits.prefix(prev);
                self.bits.add(prev, -1);
                self.bits.add(now, 1);
                Some(d)
            }
        }
    }

    /// Re-stamps live keys densely in access order. Relative order — and
    /// therefore every future distance — is preserved.
    fn compact(&mut self) {
        let mut live: Vec<(usize, u64)> = self.last.iter().map(|(&k, &t)| (t, k)).collect();
        live.sort_unstable();
        // Grow only when the live set actually crowds the slot space;
        // otherwise dead timestamps were the problem and the size holds.
        let slots = (live.len() * 2).max(INITIAL_SLOTS);
        self.bits = Fenwick::new(slots);
        for (i, &(_, key)) in live.iter().enumerate() {
            self.last.insert(key, i);
            self.bits.add(i, 1);
        }
        self.time = live.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force oracle: scan the raw access list backwards.
    fn oracle(stream: &[u64]) -> Vec<Option<u64>> {
        let mut out = Vec::new();
        for (i, &k) in stream.iter().enumerate() {
            let mut seen = std::collections::HashSet::new();
            let mut found = None;
            for j in (0..i).rev() {
                if stream[j] == k {
                    found = Some(seen.len() as u64);
                    break;
                }
                seen.insert(stream[j]);
            }
            out.push(found);
        }
        out
    }

    #[test]
    fn matches_brute_force_oracle() {
        let stream: Vec<u64> = (0..4000u64).map(|i| (i * i + i / 7) % 97).collect();
        let mut rd = ReuseDistance::new();
        let got: Vec<Option<u64>> = stream.iter().map(|&k| rd.record(k)).collect();
        assert_eq!(got, oracle(&stream));
        assert_eq!(rd.distinct_keys(), 97);
        assert_eq!(rd.cold_accesses(), 97);
    }

    #[test]
    fn compaction_preserves_distances() {
        // Far more accesses than INITIAL_SLOTS over few keys: many compactions.
        let stream: Vec<u64> = (0..10 * INITIAL_SLOTS as u64).map(|i| i % 5).collect();
        let mut rd = ReuseDistance::new();
        for (i, &k) in stream.iter().enumerate() {
            let d = rd.record(k);
            if i >= 5 {
                assert_eq!(d, Some(4), "access {i}: cyclic sweep over 5 keys");
            }
        }
        assert!(rd.bits.len() <= 2 * INITIAL_SLOTS, "memory stays bounded");
    }

    #[test]
    fn immediate_reuse_is_distance_zero() {
        let mut rd = ReuseDistance::new();
        rd.record(1);
        assert_eq!(rd.record(1), Some(0));
        assert_eq!(rd.record(1), Some(0));
    }
}
