//! The [`Recorder`] handle and its registries.
//!
//! A recorder is either *enabled* — backed by shared registries of counters,
//! histograms, time series and a span ring — or *disabled*, in which case it
//! is a `None` and every operation on it (and on any handle it vends) is a
//! single not-taken branch. Handles are cheap to clone and safe to share
//! across threads; all hot-path mutation is relaxed atomics, with short
//! mutexes only on span close, series row push, and registry lookups (done
//! once at setup, never per texel).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::hist::{AtomicHistogram, HistSnapshot, Histogram};
use crate::span::{enter_span, exit_span, thread_tid, SpanEvent, SpanRing, DEFAULT_SPAN_CAPACITY};

/// A named monotonic counter. Disabled handles drop every increment.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// A handle that drops every increment.
    pub fn disabled() -> Self {
        Self(None)
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Relaxed);
        }
    }

    /// Adds 1.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Relaxed))
    }
}

/// Shared row buffer behind [`Series`] handles.
#[derive(Debug)]
pub(crate) struct SeriesBuf {
    pub(crate) label: String,
    pub(crate) columns: Vec<String>,
    pub(crate) rows: Mutex<Vec<Vec<u64>>>,
}

/// A labelled time series: fixed columns, one row appended per tick
/// (typically per frame). Disabled handles drop every row.
#[derive(Debug, Clone, Default)]
pub struct Series(pub(crate) Option<Arc<SeriesBuf>>);

impl Series {
    /// A handle that drops every row.
    pub fn disabled() -> Self {
        Self(None)
    }

    /// Whether rows are being kept.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// The label rows are filed under (empty when disabled).
    pub fn label(&self) -> &str {
        self.0.as_ref().map_or("", |s| s.label.as_str())
    }

    /// Appends one row. `values` must match the column count declared at
    /// registration.
    pub fn push_row(&self, values: &[u64]) {
        if let Some(s) = &self.0 {
            assert_eq!(
                values.len(),
                s.columns.len(),
                "series '{}' expects {} columns",
                s.label,
                s.columns.len()
            );
            s.rows.lock().unwrap().push(values.to_vec());
        }
    }

    /// Rows recorded so far.
    pub fn len(&self) -> usize {
        self.0.as_ref().map_or(0, |s| s.rows.lock().unwrap().len())
    }

    /// Whether no rows have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A point-in-time copy of one time series.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeriesSnapshot {
    /// Series label (e.g. one replay run).
    pub label: String,
    /// Column names, in row order.
    pub columns: Vec<String>,
    /// Rows, each as long as `columns`.
    pub rows: Vec<Vec<u64>>,
}

/// A point-in-time copy of everything a recorder has gathered.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram snapshots by name.
    pub hists: BTreeMap<String, HistSnapshot>,
    /// All registered series, label-sorted.
    pub series: Vec<SeriesSnapshot>,
    /// Closed spans still in the ring, oldest first.
    pub spans: Vec<SpanEvent>,
    /// Spans overwritten because the ring filled.
    pub dropped_spans: u64,
}

#[derive(Debug)]
struct Inner {
    epoch: Instant,
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    hists: Mutex<BTreeMap<String, Arc<AtomicHistogram>>>,
    series: Mutex<BTreeMap<String, Arc<SeriesBuf>>>,
    ring: SpanRing,
}

/// The instrumentation entry point. See the module docs for the
/// enabled/disabled contract.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
    /// Scope applied to every name this handle vends (see
    /// [`scoped`](Self::scoped)); `None` = root.
    prefix: Option<Arc<str>>,
}

impl Recorder {
    /// A recorder that records nothing; every operation is one branch.
    pub fn disabled() -> Self {
        Self {
            inner: None,
            prefix: None,
        }
    }

    /// An active recorder with the default span-ring capacity.
    pub fn enabled() -> Self {
        Self::with_span_capacity(DEFAULT_SPAN_CAPACITY)
    }

    /// An active recorder keeping at most `capacity` closed spans.
    pub fn with_span_capacity(capacity: usize) -> Self {
        Self {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                counters: Mutex::new(BTreeMap::new()),
                hists: Mutex::new(BTreeMap::new()),
                series: Mutex::new(BTreeMap::new()),
                ring: SpanRing::new(capacity),
            })),
            prefix: None,
        }
    }

    /// Whether this recorder keeps anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A handle onto the same registries with every vended name (counters,
    /// histograms, series labels, spans) prefixed by `scope` + `/`: the
    /// per-client keying used by multi-client runs, so one shared recorder
    /// yields `client3/engine/village/l1_hits` without any consumer
    /// changes. Scopes nest; a disabled recorder stays disabled.
    pub fn scoped(&self, scope: &str) -> Recorder {
        Recorder {
            inner: self.inner.clone(),
            prefix: Some(match &self.prefix {
                None => Arc::from(scope),
                Some(p) => Arc::from(format!("{p}/{scope}").as_str()),
            }),
        }
    }

    /// `name` under this handle's scope.
    fn scoped_name(&self, name: &str) -> String {
        match &self.prefix {
            None => name.to_string(),
            Some(p) => format!("{p}/{name}"),
        }
    }

    /// The named counter, created on first use. Same name → same counter.
    pub fn counter(&self, name: &str) -> Counter {
        match &self.inner {
            None => Counter::disabled(),
            Some(inner) => {
                let mut map = inner.counters.lock().unwrap();
                let c = map
                    .entry(self.scoped_name(name))
                    .or_insert_with(|| Arc::new(AtomicU64::new(0)));
                Counter(Some(Arc::clone(c)))
            }
        }
    }

    /// The named histogram, created on first use. Same name → same
    /// histogram, so parallel runs of one workload merge naturally.
    pub fn histogram(&self, name: &str) -> Histogram {
        match &self.inner {
            None => Histogram::disabled(),
            Some(inner) => {
                let mut map = inner.hists.lock().unwrap();
                let h = map
                    .entry(self.scoped_name(name))
                    .or_insert_with(|| Arc::new(AtomicHistogram::new()));
                Histogram(Some(Arc::clone(h)))
            }
        }
    }

    /// Registers a fresh time series. Labels are unique: a taken label gets
    /// a `#2`, `#3`, … suffix so concurrent runs never interleave rows.
    pub fn series(&self, label: &str, columns: &[&str]) -> Series {
        match &self.inner {
            None => Series::disabled(),
            Some(inner) => {
                let mut map = inner.series.lock().unwrap();
                let label = self.scoped_name(label);
                let mut unique = label.clone();
                let mut n = 1usize;
                while map.contains_key(&unique) {
                    n += 1;
                    unique = format!("{label}#{n}");
                }
                let buf = Arc::new(SeriesBuf {
                    label: unique.clone(),
                    columns: columns.iter().map(|c| c.to_string()).collect(),
                    rows: Mutex::new(Vec::new()),
                });
                map.insert(unique, Arc::clone(&buf));
                Series(Some(buf))
            }
        }
    }

    /// Opens a timed span; it closes (and lands in the ring) when the
    /// returned guard drops or [`Span::end`] is called.
    pub fn span(&self, name: &str) -> Span {
        match &self.inner {
            None => Span { active: None },
            Some(inner) => Span {
                active: Some(ActiveSpan {
                    inner: Arc::clone(inner),
                    name: self.scoped_name(name),
                    start: Instant::now(),
                    depth: enter_span(),
                }),
            },
        }
    }

    /// A point-in-time copy of everything recorded (empty when disabled).
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let Some(inner) = &self.inner else {
            return TelemetrySnapshot::default();
        };
        let counters = inner
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Relaxed)))
            .collect();
        let hists = inner
            .hists
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        let series = inner
            .series
            .lock()
            .unwrap()
            .values()
            .map(|s| SeriesSnapshot {
                label: s.label.clone(),
                columns: s.columns.clone(),
                rows: s.rows.lock().unwrap().clone(),
            })
            .collect();
        let (spans, dropped_spans) = inner.ring.snapshot();
        TelemetrySnapshot {
            counters,
            hists,
            series,
            spans,
            dropped_spans,
        }
    }
}

#[derive(Debug)]
struct ActiveSpan {
    inner: Arc<Inner>,
    name: String,
    start: Instant,
    depth: u32,
}

/// RAII guard for a timed span. Dropping it (in any order relative to its
/// siblings) closes the span; nothing panics on unbalanced closes.
#[derive(Debug)]
#[must_use = "a span measures until dropped; bind it with `let _span = ...`"]
pub struct Span {
    active: Option<ActiveSpan>,
}

impl Span {
    /// A guard that measures nothing (what a disabled recorder vends).
    pub fn disabled() -> Self {
        Self { active: None }
    }

    /// Whether this guard will record an event on close.
    pub fn is_enabled(&self) -> bool {
        self.active.is_some()
    }

    /// Closes the span now instead of at end of scope.
    pub fn end(self) {
        drop(self);
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(a) = self.active.take() {
            let end = Instant::now();
            let start_us = a.start.duration_since(a.inner.epoch).as_micros() as u64;
            let dur_us = end.duration_since(a.start).as_micros() as u64;
            a.inner.ring.push(SpanEvent {
                name: a.name,
                start_us,
                dur_us,
                tid: thread_tid(),
                depth: a.depth,
            });
            exit_span();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_vends_inert_handles() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        let c = rec.counter("x");
        c.add(5);
        assert_eq!(c.get(), 0);
        let h = rec.histogram("y");
        h.record(9);
        assert_eq!(h.snapshot().count, 0);
        let s = rec.series("z", &["a"]);
        s.push_row(&[1]);
        assert_eq!(s.len(), 0);
        rec.span("w").end();
        let snap = rec.snapshot();
        assert!(snap.counters.is_empty() && snap.spans.is_empty());
    }

    #[test]
    fn counters_merge_by_name() {
        let rec = Recorder::enabled();
        rec.counter("hits").add(3);
        rec.counter("hits").add(4);
        assert_eq!(rec.snapshot().counters["hits"], 7);
    }

    #[test]
    fn scoped_handles_share_the_registry_under_a_prefix() {
        let rec = Recorder::enabled();
        let c0 = rec.scoped("c0");
        let c1 = rec.scoped("c1");
        rec.counter("hits").add(1);
        c0.counter("hits").add(2);
        c0.counter("hits").add(3);
        c1.counter("hits").add(4);
        c1.histogram("lat").record(9);
        c0.series("frames", &["v"]).push_row(&[7]);
        c1.span("frame").end();
        let snap = rec.snapshot();
        assert_eq!(snap.counters["hits"], 1);
        assert_eq!(snap.counters["c0/hits"], 5);
        assert_eq!(snap.counters["c1/hits"], 4);
        assert_eq!(snap.hists["c1/lat"].count, 1);
        assert_eq!(snap.series[0].label, "c0/frames");
        assert_eq!(snap.spans[0].name, "c1/frame");
    }

    #[test]
    fn scopes_nest_and_disabled_scopes_stay_disabled() {
        let rec = Recorder::enabled();
        let nested = rec.scoped("svc").scoped("c3");
        nested.counter("taps").add(2);
        assert_eq!(rec.snapshot().counters["svc/c3/taps"], 2);

        let off = Recorder::disabled().scoped("c9");
        assert!(!off.is_enabled());
        off.counter("x").add(1);
        assert!(off.snapshot().counters.is_empty());
    }

    #[test]
    fn series_labels_get_dedup_suffixes() {
        let rec = Recorder::enabled();
        let a = rec.series("run", &["v"]);
        let b = rec.series("run", &["v"]);
        a.push_row(&[1]);
        b.push_row(&[2]);
        let snap = rec.snapshot();
        let labels: Vec<&str> = snap.series.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(labels, ["run", "run#2"]);
        assert_eq!(snap.series[0].rows, vec![vec![1]]);
        assert_eq!(snap.series[1].rows, vec![vec![2]]);
    }

    #[test]
    #[should_panic(expected = "expects 2 columns")]
    fn series_row_width_is_checked() {
        let rec = Recorder::enabled();
        rec.series("s", &["a", "b"]).push_row(&[1]);
    }

    #[test]
    fn spans_nest_and_record_depth() {
        let rec = Recorder::enabled();
        {
            let _outer = rec.span("outer");
            let _inner = rec.span("inner");
        }
        let snap = rec.snapshot();
        assert_eq!(snap.spans.len(), 2);
        // Inner closes first (reverse drop order).
        assert_eq!(snap.spans[0].name, "inner");
        assert_eq!(snap.spans[0].depth, 1);
        assert_eq!(snap.spans[1].name, "outer");
        assert_eq!(snap.spans[1].depth, 0);
        assert!(snap.spans[1].start_us <= snap.spans[0].start_us);
        assert_eq!(crate::span::current_span_depth(), 0);
    }

    #[test]
    fn out_of_order_span_drop_is_harmless() {
        let rec = Recorder::enabled();
        let outer = rec.span("outer");
        let inner = rec.span("inner");
        drop(outer); // parent first — must not panic or underflow
        drop(inner);
        assert_eq!(rec.snapshot().spans.len(), 2);
        assert_eq!(crate::span::current_span_depth(), 0);
    }
}
