//! # mltc-telemetry — near-zero-overhead instrumentation
//!
//! Counters, log2-bucketed histograms, hierarchical timed spans and
//! per-frame time series for the MLTC simulator, with three exporters:
//! JSONL/CSV time series, histogram summaries (p50/p90/p99, mean) as a JSON
//! fragment for `BENCH_experiments.json`, and Chrome trace-event JSON
//! loadable in `chrome://tracing`.
//!
//! ## The overhead contract
//!
//! Every handle — [`Recorder`], [`Counter`], [`Histogram`], [`Series`],
//! [`Span`] — is an `Option` around shared state. A **disabled** handle is
//! `None`, so each operation on it compiles to a single predictable
//! not-taken branch; the simulator's per-texel path pays exactly one such
//! branch per dynamic exit (guarded by a criterion bench and an assertion
//! test in the workspace). An **enabled** handle records with relaxed
//! atomics; the only mutexes are taken on span close and series row push —
//! per frame or per store operation, never per texel. Telemetry only
//! observes: simulator counters are bit-identical with recording on or off.
//!
//! ## Shape
//!
//! ```
//! use mltc_telemetry::{export, Recorder};
//!
//! let rec = Recorder::enabled();
//! let hits = rec.counter("l1_hits");
//! let sweep = rec.histogram("clock_sweep");
//! let frames = rec.series("run0", &["frame", "l1_hits"]);
//! {
//!     let _span = rec.span("frame/0");
//!     hits.add(7);
//!     sweep.record(3);
//!     frames.push_row(&[0, hits.get()]);
//! }
//! let snap = rec.snapshot();
//! assert_eq!(snap.counters["l1_hits"], 7);
//! assert_eq!(snap.spans.len(), 1);
//! let json = export::summaries_json(&snap);
//! assert!(json.contains("\"l1_hits\":7"));
//! ```
//!
//! [`ReuseDistance`] is the odd one out: it is *not* thread-shared (the
//! engine owns one per instance) and always computes when present — the
//! enable/disable decision is whether the engine holds one at all.

pub mod export;
mod hist;
mod recorder;
mod reuse;
mod span;

pub use hist::{bucket_of, bucket_upper_bound, HistSnapshot, Histogram, BUCKETS};
pub use recorder::{Counter, Recorder, Series, SeriesSnapshot, Span, TelemetrySnapshot};
pub use reuse::ReuseDistance;
pub use span::{chrome_trace_json, current_span_depth, SpanEvent, DEFAULT_SPAN_CAPACITY};
