//! Lock-free log2-bucketed histograms.
//!
//! A [`Histogram`] handle records `u64` samples into power-of-two buckets:
//! bucket 0 holds the value `0`, bucket `k ≥ 1` holds `2^(k-1) ..= 2^k - 1`
//! (so bucket 64 tops out at `u64::MAX`). Recording is a couple of relaxed
//! atomic adds — safe to call from replay worker threads without
//! coordination — and a [`HistSnapshot`] taken later derives count, mean,
//! min/max and bucket-resolution percentiles.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

/// Bucket count: one for zero plus one per bit position of a `u64`.
pub const BUCKETS: usize = 65;

/// The log2 bucket index of a value.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper bound of a bucket (the value percentiles report).
#[inline]
pub fn bucket_upper_bound(bucket: usize) -> u64 {
    match bucket {
        0 => 0,
        64 => u64::MAX,
        k => (1u64 << k) - 1,
    }
}

/// Shared atomic histogram state behind [`Histogram`] handles.
#[derive(Debug)]
pub(crate) struct AtomicHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    /// Sum of samples, saturating at `u64::MAX` (CAS loop, still lock-free).
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl AtomicHistogram {
    pub(crate) fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    pub(crate) fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        // fetch_add would wrap; saturate instead so the mean of huge samples
        // degrades predictably.
        let mut cur = self.sum.load(Relaxed);
        loop {
            let next = cur.saturating_add(v);
            match self.sum.compare_exchange_weak(cur, next, Relaxed, Relaxed) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        self.min.fetch_min(v, Relaxed);
        self.max.fetch_max(v, Relaxed);
    }

    pub(crate) fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Relaxed)),
            count: self.count.load(Relaxed),
            sum: self.sum.load(Relaxed),
            min: self.min.load(Relaxed),
            max: self.max.load(Relaxed),
        }
    }
}

/// A recording handle. Disabled handles (from a disabled
/// [`Recorder`](crate::Recorder)) make [`record`](Self::record) a single
/// not-taken branch.
#[derive(Debug, Clone, Default)]
pub struct Histogram(pub(crate) Option<Arc<AtomicHistogram>>);

impl Histogram {
    /// A handle that drops every sample.
    pub fn disabled() -> Self {
        Self(None)
    }

    /// Whether samples are being kept.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(h) = &self.0 {
            h.record(v);
        }
    }

    /// A point-in-time copy of the distribution (empty when disabled).
    pub fn snapshot(&self) -> HistSnapshot {
        match &self.0 {
            Some(h) => h.snapshot(),
            None => HistSnapshot::default(),
        }
    }
}

/// A point-in-time copy of a histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket sample counts (see [`bucket_of`]).
    pub buckets: [u64; BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of samples (saturating).
    pub sum: u64,
    /// Smallest sample (`u64::MAX` when empty).
    pub min: u64,
    /// Largest sample (`0` when empty).
    pub max: u64,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        Self {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl HistSnapshot {
    /// Exact mean of the recorded samples (0 when empty; saturated if the
    /// sum overflowed `u64`).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) at bucket resolution: the inclusive
    /// upper bound of the first bucket whose cumulative count reaches
    /// `ceil(q * count)`. Deterministic, monotone in `q`, and exact for
    /// single-valued buckets (0 and 1).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Never report past the true extremes.
                return bucket_upper_bound(i).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist() -> Histogram {
        Histogram(Some(Arc::new(AtomicHistogram::new())))
    }

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of((1 << 20) - 1), 20);
        assert_eq!(bucket_of(1 << 20), 21);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
        // Every bucket's upper bound maps back into that bucket.
        for k in 0..BUCKETS {
            assert_eq!(bucket_of(bucket_upper_bound(k)), k, "bucket {k}");
        }
    }

    #[test]
    fn zero_one_and_max_are_distinct_buckets() {
        let h = hist();
        h.record(0);
        h.record(1);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[64], 1);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.p50(), 1);
        assert_eq!(s.p99(), u64::MAX);
    }

    #[test]
    fn sum_saturates_instead_of_wrapping() {
        let h = hist();
        h.record(u64::MAX);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.sum, u64::MAX);
        assert!(s.mean() > 0.0);
    }

    #[test]
    fn quantiles_are_monotone_and_clamped_to_extremes() {
        let h = hist();
        for v in [3u64, 3, 3, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.p50(), 3, "three of five samples are 3");
        assert!(s.p50() <= s.p90() && s.p90() <= s.p99());
        assert!(s.p99() <= s.max, "never past the true max");
        assert!(s.quantile(0.0) >= s.min);
        assert_eq!(s.quantile(1.0), s.max.min(bucket_upper_bound(10)));
        assert!((s.mean() - (3.0 * 3.0 + 100.0 + 1000.0) / 5.0).abs() < 1e-9);
    }

    #[test]
    fn empty_and_disabled_snapshots_are_inert() {
        let s = HistSnapshot::default();
        assert_eq!(s.p50(), 0);
        assert_eq!(s.mean(), 0.0);
        let d = Histogram::disabled();
        d.record(42);
        assert!(!d.is_enabled());
        assert_eq!(d.snapshot().count, 0);
    }

    #[test]
    fn concurrent_records_never_lose_samples() {
        let h = hist();
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 10_000 + i);
                    }
                });
            }
        });
        assert_eq!(h.snapshot().count, 40_000);
    }
}
