//! Multi-client texture service simulation: N independent camera streams
//! replayed through one shared L2 on worker threads.
//!
//! This is the experiment-harness face of [`mltc_core::TextureService`].
//! Each client is a [`ClientSpec`]: a filter, a *phase offset* into the
//! shared animation (the same [`TraceStore`] trace, rotated — N cameras
//! walking the same scene out of phase), an optional fault-plan override
//! and an optional injected panic (chaos testing). Frames flow from one
//! producer over **bounded** per-client queues — [`MultiClientConfig::
//! queue_depth`] frames of backpressure — into one worker thread per
//! client; each worker's panics are caught per frame and converted into a
//! quarantine, so a poisoned client never takes the service down.
//!
//! Containment contract (enforced by tests here and in `tests/`):
//!
//! * **Partitioned** L2: every client is bit-identical to a solo
//!   [`SimEngine`] running [`TextureService::solo_config`] — no matter
//!   what the other clients do (panic, 100 % fault plans, shed frames).
//! * **Unified** L2: clients share one cache and one page table; a
//!   [`Turnstile`] serialises frame execution in round-robin client
//!   order so results are deterministic run to run (they still depend on
//!   the population — that is the point of the experiment).
//! * A quarantined client retires from its queue and the turnstile; the
//!   producer drops its sender and keeps feeding the survivors.

use crate::runner::{mb, panic_message, pct, RunError};
use crate::store::{stream_trace_file_raw, TraceHandle, TraceStore};
use crate::{Outputs, Scale, TextTable};
use mltc_cache::jain_fairness;
use mltc_core::{
    ClientServiceStats, EngineError, FaultPlan, FrameCounters, L1Config, L2Config, L2PartitionMode,
    QuarantineReason, ServiceConfig, ServiceError, SharedL2Contention, SimEngine, TextureService,
};
use mltc_scene::Workload;
use mltc_telemetry::Recorder;
use mltc_texture::TextureRegistry;
use mltc_trace::codec::frame_cursor;
use mltc_trace::{FilterMode, FrameTrace};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering::Relaxed};
use std::sync::mpsc::{sync_channel, TrySendError};
use std::sync::{Arc, Condvar, Mutex};

/// One client of the service: which filter it samples with, where in the
/// shared animation its camera starts, and its chaos knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClientSpec {
    /// Tap expansion applied at replay time (traces are point-sampled).
    pub filter: FilterMode,
    /// Frame index this client's camera starts at (wraps around).
    pub phase_offset: usize,
    /// Overrides the service's scoped fault plan for this client only
    /// (used as-is, not re-scoped — chaos tests inject exact plans).
    pub fault_override: Option<FaultPlan>,
    /// Panic this client's worker just before running the given frame
    /// index (chaos testing; the panic is injected outside the L2 lock).
    pub panic_at_frame: Option<usize>,
}

impl ClientSpec {
    /// A well-behaved client with no phase offset.
    pub fn new(filter: FilterMode) -> Self {
        Self {
            filter,
            phase_offset: 0,
            fault_override: None,
            panic_at_frame: None,
        }
    }
}

/// Configuration of one multi-client run.
#[derive(Debug, Clone, Copy)]
pub struct MultiClientConfig {
    /// The shared-hierarchy configuration (total L2, partition mode,
    /// per-client admission control, base fault plan).
    pub service: ServiceConfig,
    /// Bounded per-client frame-queue depth; the producer stalls (and
    /// counts the stall) when a queue is full. Clamped to at least 1.
    pub queue_depth: usize,
    /// Frames each client replays; `None` = one full pass over the trace.
    pub steps: Option<usize>,
}

impl Default for MultiClientConfig {
    fn default() -> Self {
        Self {
            service: ServiceConfig::default(),
            queue_depth: 4,
            steps: None,
        }
    }
}

/// What one client did during a run.
#[derive(Debug, Clone)]
pub struct ClientReport {
    /// Client id (index into the spec slice).
    pub id: u32,
    /// Per-frame counters for every frame the client completed.
    pub frames: Vec<FrameCounters>,
    /// Sum over `frames`.
    pub totals: FrameCounters,
    /// Service-layer bookkeeping (denied transfers, shed taps/frames,
    /// peak degradation tier).
    pub service: ClientServiceStats,
    /// Why the client was quarantined, when it was.
    pub quarantined: Option<QuarantineReason>,
    /// A non-quarantine failure (engine error, worker death).
    pub error: Option<RunError>,
    /// Producer stalls on this client's bounded queue (backpressure
    /// events; scheduling noise, never part of the simulated counters).
    pub queue_stalls: u64,
}

impl ClientReport {
    /// Whether the client finished its stream unharmed.
    pub fn is_survivor(&self) -> bool {
        self.quarantined.is_none() && self.error.is_none()
    }

    /// Fraction of taps served without a host transfer (L1 hits + L2
    /// full hits over all taps); the per-client service quality that
    /// fairness is computed over. Zero taps count as rate 0.
    pub fn local_rate(&self) -> f64 {
        local_rate_of(&self.totals)
    }

    /// Plain L1 hit rate.
    pub fn l1_hit_rate(&self) -> f64 {
        if self.totals.l1_accesses == 0 {
            0.0
        } else {
            self.totals.l1_hits as f64 / self.totals.l1_accesses as f64
        }
    }
}

fn local_rate_of(c: &FrameCounters) -> f64 {
    if c.l1_accesses == 0 {
        0.0
    } else {
        (c.l1_hits + c.l2_full_hits) as f64 / c.l1_accesses as f64
    }
}

/// The outcome of one [`run_multi_client`] call.
#[derive(Debug, Clone)]
pub struct MultiClientReport {
    /// One report per client, in spec order.
    pub clients: Vec<ClientReport>,
    /// Shared-L2 lock contention over the whole run.
    pub contention: SharedL2Contention,
    /// Jain's fairness index over the survivors' [`ClientReport::
    /// local_rate`] (1.0 = perfectly fair; `k/n` = k clients starved).
    pub fairness: f64,
    /// Frames each client was fed.
    pub steps: usize,
}

impl MultiClientReport {
    /// Clients that finished unharmed.
    pub fn survivors(&self) -> impl Iterator<Item = &ClientReport> {
        self.clients.iter().filter(|c| c.is_survivor())
    }

    /// Ids of the quarantined clients.
    pub fn quarantined_ids(&self) -> Vec<u32> {
        self.clients
            .iter()
            .filter(|c| c.quarantined.is_some())
            .map(|c| c.id)
            .collect()
    }
}

/// Round-robin frame scheduler for **unified** L2 runs: client `i` may
/// only run frame `k` after every active client before it in rotation has
/// run its frame `k`. This pins the interleaving, making unified results
/// deterministic run to run. Retired (quarantined / finished) clients
/// drop out of the rotation so survivors keep flowing.
///
/// Deadlock-freedom with the bounded queues: the producer feeds clients
/// in the same round-robin order the turnstile enforces, so with a queue
/// depth ≥ 1 the turn holder's next frame is always already delivered.
struct Turnstile {
    state: Mutex<TurnstileState>,
    cv: Condvar,
}

struct TurnstileState {
    next: usize,
    active: Vec<bool>,
}

impl TurnstileState {
    fn advance(&mut self) {
        let n = self.active.len();
        for step in 1..=n {
            let cand = (self.next + step) % n;
            if self.active[cand] {
                self.next = cand;
                return;
            }
        }
        self.next = n; // nobody left in rotation
    }
}

impl Turnstile {
    fn new(clients: usize) -> Self {
        Self {
            state: Mutex::new(TurnstileState {
                next: 0,
                active: vec![true; clients],
            }),
            cv: Condvar::new(),
        }
    }

    fn wait_turn(&self, id: usize) {
        let mut s = self.state.lock().unwrap();
        while s.next != id {
            s = self.cv.wait(s).unwrap();
        }
    }

    fn done(&self, id: usize) {
        let mut s = self.state.lock().unwrap();
        debug_assert_eq!(s.next, id);
        s.advance();
        drop(s);
        self.cv.notify_all();
    }

    /// Removes `id` from the rotation (idempotent; also yields the turn
    /// when `id` holds it).
    fn retire(&self, id: usize) {
        let mut s = self.state.lock().unwrap();
        s.active[id] = false;
        if s.next == id {
            s.advance();
        }
        drop(s);
        self.cv.notify_all();
    }
}

/// Replays `specs.len()` phase-offset camera streams over `frames`
/// through one shared [`TextureService`], one worker thread per client.
///
/// Per-client failures never abort the run: a panicking or shed-budget
/// client lands in its [`ClientReport`] as quarantined, an engine error
/// as `error`, and the survivors finish their streams. Only *construction*
/// failures (invalid service geometry, empty inputs) return `Err`.
///
/// When `recorder` is enabled, every client gets its own scoped recorder
/// (`c<id>/…`) so counters, per-frame series and histograms are keyed per
/// client in one shared registry.
pub fn run_multi_client(
    registry: &TextureRegistry,
    frames: &[Arc<FrameTrace>],
    specs: &[ClientSpec],
    cfg: &MultiClientConfig,
    recorder: &Recorder,
) -> Result<MultiClientReport, RunError> {
    if frames.is_empty() {
        return Err(RunError::Engine(EngineError::InvalidGeometry(
            "multi-client run needs at least one frame".into(),
        )));
    }
    if specs.is_empty() {
        return Err(RunError::Engine(EngineError::InvalidGeometry(
            "multi-client run needs at least one client".into(),
        )));
    }
    let service = TextureService::try_new(cfg.service, registry, specs.len() as u32)?;
    let shared = service.shared_l2();
    let turnstile = shared.is_unified().then(|| Turnstile::new(specs.len()));
    let steps = cfg.steps.unwrap_or(frames.len());
    let depth = cfg.queue_depth.max(1);
    let mut stalls = vec![0u64; specs.len()];

    let clients = std::thread::scope(|scope| -> Result<Vec<ClientReport>, RunError> {
        let mut senders = Vec::with_capacity(specs.len());
        let mut handles = Vec::with_capacity(specs.len());
        for (i, spec) in specs.iter().enumerate() {
            let (tx, rx) = sync_channel::<Arc<FrameTrace>>(depth);
            senders.push(Some(tx));
            let mut engine = match spec.fault_override {
                Some(plan) => service.client_with_fault(i as u32, plan),
                None => service.client(i as u32),
            }?;
            if recorder.is_enabled() {
                engine.attach_telemetry(&recorder.scoped(&format!("c{i}")), &format!("c{i}"), "mc");
            }
            let spec = *spec;
            let turnstile = turnstile.as_ref();
            handles.push(scope.spawn(move || {
                let mut error = None;
                for (frame_idx, trace) in rx.into_iter().enumerate() {
                    if let Some(t) = turnstile {
                        t.wait_turn(i);
                    }
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        if spec.panic_at_frame == Some(frame_idx) {
                            panic!("injected client panic at frame {frame_idx}");
                        }
                        engine.run_frame(shared, &trace, spec.filter)
                    }));
                    match outcome {
                        Ok(Ok(())) => {
                            if let Some(t) = turnstile {
                                t.done(i);
                            }
                        }
                        Ok(Err(ServiceError::Quarantined { .. })) => break,
                        Ok(Err(ServiceError::Engine(e))) => {
                            error = Some(RunError::Engine(e));
                            break;
                        }
                        Err(payload) => {
                            engine.quarantine(QuarantineReason::Panicked(panic_message(
                                payload.as_ref(),
                            )));
                            break;
                        }
                    }
                }
                // Leaves the rotation on every exit path — including the
                // break arms above, where the worker still holds its turn.
                if let Some(t) = turnstile {
                    t.retire(i);
                }
                (engine, error)
            }));
        }

        // The producer: one pass over the schedule, fanning each client
        // its phase-rotated frame. try_send first so a full queue is
        // observable as a backpressure stall before we block on it.
        for step in 0..steps {
            for (i, spec) in specs.iter().enumerate() {
                let mut dead = false;
                if let Some(tx) = &senders[i] {
                    let f = Arc::clone(&frames[(step + spec.phase_offset) % frames.len()]);
                    match tx.try_send(f) {
                        Ok(()) => {}
                        Err(TrySendError::Full(f)) => {
                            stalls[i] += 1;
                            dead = tx.send(f).is_err();
                        }
                        Err(TrySendError::Disconnected(_)) => dead = true,
                    }
                } else {
                    continue;
                }
                if dead {
                    // Quarantined client: its worker dropped the receiver.
                    senders[i] = None;
                }
            }
        }
        drop(senders);

        let mut clients = Vec::with_capacity(handles.len());
        for (i, h) in handles.into_iter().enumerate() {
            clients.push(match h.join() {
                Ok((engine, error)) => ClientReport {
                    id: i as u32,
                    frames: engine.frames().to_vec(),
                    totals: engine.totals(),
                    service: engine.service_stats(),
                    quarantined: engine.quarantined().cloned(),
                    error,
                    queue_stalls: stalls[i],
                },
                // The worker body catches client panics itself; a join
                // failure would be a harness bug — report, don't unwind.
                Err(payload) => ClientReport {
                    id: i as u32,
                    frames: Vec::new(),
                    totals: FrameCounters::default(),
                    service: ClientServiceStats::default(),
                    quarantined: None,
                    error: Some(RunError::Panicked(panic_message(payload.as_ref()))),
                    queue_stalls: stalls[i],
                },
            });
        }
        Ok(clients)
    })?;

    let rates: Vec<f64> = clients
        .iter()
        .filter(|c| c.is_survivor())
        .map(|c| c.local_rate())
        .collect();
    Ok(MultiClientReport {
        fairness: jain_fairness(&rates),
        contention: shared.contention(),
        clients,
        steps,
    })
}

/// The solo baseline for client `i` of a would-be service over `frames`:
/// a plain [`SimEngine`] under [`TextureService::solo_config`], fed the
/// same phase-rotated stream. In partitioned mode the service client must
/// match this bit for bit — the containment oracle used by the tests and
/// the `multiclient` chaos binary.
pub fn solo_baseline(
    registry: &TextureRegistry,
    frames: &[Arc<FrameTrace>],
    specs: &[ClientSpec],
    cfg: &MultiClientConfig,
    client: usize,
) -> Result<SimEngine, RunError> {
    let service = TextureService::try_new(cfg.service, registry, specs.len() as u32)?;
    let spec = &specs[client];
    let mut solo_cfg = service.solo_config(client as u32);
    if let Some(plan) = spec.fault_override {
        // Mirror run_multi_client: an override replaces the scoped plan
        // verbatim, so the baseline must replay under the same link.
        solo_cfg.fault = plan;
    }
    let mut solo = SimEngine::try_new(solo_cfg, registry)?;
    let steps = cfg.steps.unwrap_or(frames.len());
    for step in 0..steps {
        let trace = &frames[(step + spec.phase_offset) % frames.len()];
        solo.try_run_frame_as(trace, spec.filter)?;
    }
    Ok(solo)
}

/// Materialises the workload's trace as shared in-memory frames whatever
/// the store's handle state (memory / disk / uncached).
pub fn collect_frames(store: &TraceStore, w: &Workload) -> Result<Vec<Arc<FrameTrace>>, RunError> {
    match store.get_or_render(w, false, mltc_raster::Traversal::Scanline) {
        TraceHandle::Memory(set) => Ok(set.frames.clone()),
        TraceHandle::Disk(path) => {
            let mut frames = Vec::new();
            let mut bad = None;
            stream_trace_file_raw(&path, |bytes| match frame_cursor(bytes) {
                Ok((cursor, _)) => frames.push(Arc::new(cursor.into_frame())),
                Err(e) => bad = Some(e),
            })
            .map_err(|e| RunError::Trace(format!("{}: {e}", path.display())))?;
            match bad {
                Some(e) => Err(RunError::Trace(format!("{}: {e}", path.display()))),
                None => Ok(frames),
            }
        }
        TraceHandle::Uncached => {
            let mut frames = Vec::new();
            w.render_animation(FilterMode::Point, false, |t| frames.push(Arc::new(t)));
            Ok(frames)
        }
    }
}

/// `--clients` override for the `multiclient` experiment; `0` = sweep.
static CLIENTS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);
/// `--partition` override: 0 = both modes, 1 = partitioned, 2 = unified.
static PARTITION_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Pins the `multiclient` experiment to one population (`0` restores the
/// default 1/2/4/8 sweep).
pub fn set_multiclient_clients(n: usize) {
    CLIENTS_OVERRIDE.store(n, Relaxed);
}

/// Pins the `multiclient` experiment to one partition mode (`None`
/// restores the default of running both).
pub fn set_multiclient_partition(mode: Option<L2PartitionMode>) {
    PARTITION_OVERRIDE.store(
        match mode {
            None => 0,
            Some(L2PartitionMode::Partitioned) => 1,
            Some(L2PartitionMode::Unified) => 2,
        },
        Relaxed,
    );
}

fn populations() -> Vec<u32> {
    match CLIENTS_OVERRIDE.load(Relaxed) {
        0 => vec![1, 2, 4, 8],
        n => vec![n as u32],
    }
}

fn partition_modes() -> Vec<L2PartitionMode> {
    match PARTITION_OVERRIDE.load(Relaxed) {
        1 => vec![L2PartitionMode::Partitioned],
        2 => vec![L2PartitionMode::Unified],
        _ => vec![L2PartitionMode::Partitioned, L2PartitionMode::Unified],
    }
}

/// The service configuration the `multiclient` experiment sweeps: a
/// fixed **total** L2 budget shared by however many clients run.
pub fn experiment_service_config(partition: L2PartitionMode) -> ServiceConfig {
    ServiceConfig {
        l1: L1Config::kb(4),
        l2: Some(L2Config::mb(4)),
        partition,
        tlb_entries: 16,
        ..ServiceConfig::default()
    }
}

fn p99(mut values: Vec<f64>) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_by(f64::total_cmp);
    let idx = ((values.len() as f64) * 0.99).ceil() as usize;
    values[idx.clamp(1, values.len()) - 1]
}

/// The `multiclient` experiment: contention and fairness of the shared
/// L2 as the client population grows, for both sharded (partitioned, one
/// page table per client) and unified (one page table) organisations.
///
/// Summary CSV: one row per (population, partition mode) with Jain's
/// fairness over per-client local-service rates, min/mean/max rates, the
/// p99 per-frame miss rate and lock contention. Per-client CSV: one row
/// per client with its rates, traffic and backpressure stalls.
pub fn multiclient(scale: &Scale, out: &Outputs, store: &TraceStore) -> Result<(), RunError> {
    let w = scale.village();
    let frames = collect_frames(store, &w)?;
    let mut summary = TextTable::new(&[
        "clients",
        "partition",
        "fairness",
        "min_rate_pct",
        "mean_rate_pct",
        "max_rate_pct",
        "p99_frame_miss_pct",
        "contended_pct",
        "host_mb",
        "denied",
        "shed_taps",
        "stalls",
    ]);
    let mut per_client = TextTable::new(&[
        "clients",
        "partition",
        "client",
        "local_rate_pct",
        "l1_hit_rate_pct",
        "host_mb",
        "denied_transfers",
        "shed_taps",
        "queue_stalls",
        "quarantined",
    ]);
    for &n in &populations() {
        for &mode in &partition_modes() {
            let specs: Vec<ClientSpec> = (0..n as usize)
                .map(|i| ClientSpec {
                    phase_offset: i * frames.len() / n as usize,
                    ..ClientSpec::new(FilterMode::Bilinear)
                })
                .collect();
            let cfg = MultiClientConfig {
                service: experiment_service_config(mode),
                ..MultiClientConfig::default()
            };
            let report = run_multi_client(w.registry(), &frames, &specs, &cfg, &store.recorder())?;
            // With no faults and no admission budgets every client must
            // finish; anything else is a bug worth failing the suite for.
            for c in &report.clients {
                if let Some(e) = &c.error {
                    return Err(e.clone());
                }
                if let Some(q) = &c.quarantined {
                    return Err(RunError::Panicked(format!(
                        "client {} unexpectedly quarantined: {q}",
                        c.id
                    )));
                }
            }
            let mode_name = match mode {
                L2PartitionMode::Partitioned => "partitioned",
                L2PartitionMode::Unified => "unified",
            };
            let rates: Vec<f64> = report.clients.iter().map(|c| c.local_rate()).collect();
            let frame_misses: Vec<f64> = report
                .clients
                .iter()
                .flat_map(|c| c.frames.iter().map(|f| 1.0 - local_rate_of(f)))
                .collect();
            let min = rates.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = rates.iter().cloned().fold(0.0, f64::max);
            let mean = rates.iter().sum::<f64>() / rates.len() as f64;
            let cont = &report.contention;
            let contended_pct = if cont.acquisitions == 0 {
                0.0
            } else {
                cont.contended as f64 / cont.acquisitions as f64
            };
            let host: u64 = report.clients.iter().map(|c| c.totals.host_bytes).sum();
            let denied: u64 = report
                .clients
                .iter()
                .map(|c| c.service.denied_transfers)
                .sum();
            let shed: u64 = report.clients.iter().map(|c| c.service.shed_taps).sum();
            let stalls: u64 = report.clients.iter().map(|c| c.queue_stalls).sum();
            summary.row(vec![
                n.to_string(),
                mode_name.to_string(),
                format!("{:.4}", report.fairness),
                pct(min),
                pct(mean),
                pct(max),
                pct(p99(frame_misses)),
                pct(contended_pct),
                mb(host),
                denied.to_string(),
                shed.to_string(),
                stalls.to_string(),
            ]);
            for c in &report.clients {
                per_client.row(vec![
                    n.to_string(),
                    mode_name.to_string(),
                    c.id.to_string(),
                    pct(c.local_rate()),
                    pct(c.l1_hit_rate()),
                    mb(c.totals.host_bytes),
                    c.service.denied_transfers.to_string(),
                    c.service.shed_taps.to_string(),
                    c.queue_stalls.to_string(),
                    c.quarantined
                        .as_ref()
                        .map(|q| q.to_string())
                        .unwrap_or_else(|| "-".to_string()),
                ]);
            }
        }
    }
    out.table(
        "multiclient",
        "Shared-L2 contention and fairness vs client population (Village)",
        &summary,
    );
    out.table(
        "multiclient_clients",
        "Per-client service quality by population and partition mode",
        &per_client,
    );
    out.note(
        "local rate = taps served without a host transfer (L1 hits + L2 full hits).\n\
         fairness = Jain's index over per-client local rates (1.0 = perfectly fair).\n\
         partitioned = total L2 split N ways (sharded page tables, bit-identical to\n\
         solo baselines); unified = one cache + page table shared by all clients.",
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mltc_core::AdmissionControl;
    use mltc_scene::WorkloadParams;

    fn tiny_village() -> Workload {
        Workload::village(&WorkloadParams::tiny())
    }

    fn specs(n: usize, frames: usize) -> Vec<ClientSpec> {
        (0..n)
            .map(|i| ClientSpec {
                phase_offset: i * frames / n,
                ..ClientSpec::new(FilterMode::Bilinear)
            })
            .collect()
    }

    fn faulty_cfg(mode: L2PartitionMode) -> MultiClientConfig {
        MultiClientConfig {
            service: ServiceConfig {
                fault: FaultPlan::with_rate(0x4d4c_5443, 50_000),
                ..experiment_service_config(mode)
            },
            ..MultiClientConfig::default()
        }
    }

    #[test]
    fn partitioned_clients_match_their_solo_baselines() {
        let w = tiny_village();
        let store = TraceStore::in_memory();
        let frames = collect_frames(&store, &w).unwrap();
        let specs = specs(4, frames.len());
        let cfg = faulty_cfg(L2PartitionMode::Partitioned);
        let report =
            run_multi_client(w.registry(), &frames, &specs, &cfg, &Recorder::disabled()).unwrap();
        assert_eq!(report.quarantined_ids(), Vec::<u32>::new());
        assert!((report.fairness - 1.0).abs() < 0.5, "{}", report.fairness);
        for c in &report.clients {
            let solo = solo_baseline(w.registry(), &frames, &specs, &cfg, c.id as usize).unwrap();
            assert_eq!(
                c.frames,
                solo.frames(),
                "client {} must be bit-identical to its solo baseline",
                c.id
            );
        }
    }

    #[test]
    fn injected_panic_quarantines_one_client_and_spares_the_rest() {
        let w = tiny_village();
        let store = TraceStore::in_memory();
        let frames = collect_frames(&store, &w).unwrap();
        let mut specs = specs(4, frames.len());
        specs[2].panic_at_frame = Some(1);
        let cfg = faulty_cfg(L2PartitionMode::Partitioned);
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let report =
            run_multi_client(w.registry(), &frames, &specs, &cfg, &Recorder::disabled()).unwrap();
        std::panic::set_hook(prev_hook);
        assert_eq!(report.quarantined_ids(), vec![2]);
        let poisoned = &report.clients[2];
        assert!(matches!(
            poisoned.quarantined,
            Some(QuarantineReason::Panicked(ref m)) if m.contains("injected")
        ));
        // The panic fired before frame 1 started: exactly one frame done.
        assert_eq!(poisoned.frames.len(), 1);
        for c in report.survivors() {
            let solo = solo_baseline(w.registry(), &frames, &specs, &cfg, c.id as usize).unwrap();
            assert_eq!(
                c.frames,
                solo.frames(),
                "survivor {} must be unaffected by the poisoned client",
                c.id
            );
            assert_eq!(c.frames.len(), frames.len());
        }
    }

    #[test]
    fn hundred_percent_fault_override_is_scoped_to_its_client() {
        let w = tiny_village();
        let store = TraceStore::in_memory();
        let frames = collect_frames(&store, &w).unwrap();
        let mut specs = specs(3, frames.len());
        specs[1].fault_override = Some(FaultPlan {
            max_attempts: 1,
            ..FaultPlan::with_rate(7, 1_000_000)
        });
        let cfg = MultiClientConfig {
            service: experiment_service_config(L2PartitionMode::Partitioned),
            ..MultiClientConfig::default()
        };
        let report =
            run_multi_client(w.registry(), &frames, &specs, &cfg, &Recorder::disabled()).unwrap();
        assert!(report.clients[1].totals.failed_transfers > 0);
        assert_eq!(report.clients[1].totals.host_bytes, 0);
        assert_eq!(report.clients[0].totals.failed_transfers, 0);
        assert_eq!(report.clients[2].totals.failed_transfers, 0);
        // Every client — including the 100%-faulted one — matches its
        // solo baseline (the baseline honours the override).
        for id in [0usize, 1, 2] {
            let solo = solo_baseline(w.registry(), &frames, &specs, &cfg, id).unwrap();
            assert_eq!(report.clients[id].frames, solo.frames(), "client {id}");
        }
    }

    #[test]
    fn queue_depth_only_affects_scheduling() {
        let w = tiny_village();
        let store = TraceStore::in_memory();
        let frames = collect_frames(&store, &w).unwrap();
        let specs = specs(3, frames.len());
        let narrow = MultiClientConfig {
            queue_depth: 1,
            ..faulty_cfg(L2PartitionMode::Partitioned)
        };
        let wide = MultiClientConfig {
            queue_depth: 64,
            ..narrow
        };
        let a = run_multi_client(
            w.registry(),
            &frames,
            &specs,
            &narrow,
            &Recorder::disabled(),
        )
        .unwrap();
        let b =
            run_multi_client(w.registry(), &frames, &specs, &wide, &Recorder::disabled()).unwrap();
        for (x, y) in a.clients.iter().zip(&b.clients) {
            assert_eq!(x.frames, y.frames, "backpressure must not change results");
        }
    }

    #[test]
    fn unified_mode_is_deterministic_run_to_run() {
        let w = tiny_village();
        let store = TraceStore::in_memory();
        let frames = collect_frames(&store, &w).unwrap();
        let specs = specs(4, frames.len());
        let cfg = faulty_cfg(L2PartitionMode::Unified);
        let a =
            run_multi_client(w.registry(), &frames, &specs, &cfg, &Recorder::disabled()).unwrap();
        let b =
            run_multi_client(w.registry(), &frames, &specs, &cfg, &Recorder::disabled()).unwrap();
        for (x, y) in a.clients.iter().zip(&b.clients) {
            assert_eq!(x.frames, y.frames, "turnstile must pin the interleaving");
        }
        assert!(a.contention.acquisitions > 0);
    }

    #[test]
    fn shed_budget_quarantine_retires_the_client_gracefully() {
        let w = tiny_village();
        let store = TraceStore::in_memory();
        let frames = collect_frames(&store, &w).unwrap();
        let specs = specs(2, frames.len());
        let cfg = MultiClientConfig {
            service: ServiceConfig {
                admission: AdmissionControl {
                    soft_transfers_per_frame: 1,
                    hard_transfers_per_frame: 1,
                    quarantine_after_shed_frames: 1,
                },
                ..experiment_service_config(L2PartitionMode::Partitioned)
            },
            ..MultiClientConfig::default()
        };
        let report =
            run_multi_client(w.registry(), &frames, &specs, &cfg, &Recorder::disabled()).unwrap();
        assert_eq!(report.quarantined_ids(), vec![0, 1]);
        for c in &report.clients {
            assert!(matches!(
                c.quarantined,
                Some(QuarantineReason::ShedBudget { .. })
            ));
            assert!(c.service.shed_taps > 0);
        }
    }

    #[test]
    fn per_client_telemetry_is_scoped() {
        let w = tiny_village();
        let store = TraceStore::in_memory();
        let frames = collect_frames(&store, &w).unwrap();
        let specs = specs(2, frames.len());
        let cfg = MultiClientConfig {
            service: experiment_service_config(L2PartitionMode::Partitioned),
            ..MultiClientConfig::default()
        };
        let rec = Recorder::enabled();
        let report = run_multi_client(w.registry(), &frames, &specs, &cfg, &rec).unwrap();
        let snap = rec.snapshot();
        for c in &report.clients {
            let key = format!("c{}/engine/mc/l1_hits", c.id);
            assert_eq!(snap.counters[&key], c.totals.l1_hits);
        }
    }

    #[test]
    fn experiment_writes_summary_and_per_client_csv() {
        let dir = std::env::temp_dir().join(format!("mltc-multiclient-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let out = Outputs::quiet(&dir);
        let store = TraceStore::in_memory();
        multiclient(&Scale::tiny(), &out, &store).unwrap();
        let summary = std::fs::read_to_string(out.artefact_path("multiclient.csv")).unwrap();
        // Header + (4 populations × 2 modes).
        assert_eq!(summary.lines().count(), 9, "{summary}");
        let per_client =
            std::fs::read_to_string(out.artefact_path("multiclient_clients.csv")).unwrap();
        // Header + (1+2+4+8) clients × 2 modes.
        assert_eq!(per_client.lines().count(), 31, "{per_client}");
        assert!(summary.lines().nth(1).unwrap().starts_with("1,partitioned"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
