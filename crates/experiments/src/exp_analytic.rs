//! Analytic experiments: Fig. 3 and Table 4 (no simulation required).

use crate::runner::RunError;
use crate::store::TraceStore;
use crate::{Outputs, Scale, TextTable};
use mltc_core::model;
use mltc_texture::TilingConfig;

/// **Fig. 3** — expected inter-frame working set `W` as a function of
/// resolution, depth complexity and block utilization (§4.1).
pub fn fig3(_scale: &Scale, out: &Outputs, _store: &TraceStore) -> Result<(), RunError> {
    let resolutions: [(&str, u64); 5] = [
        ("640x480", 640 * 480),
        ("800x600", 800 * 600),
        ("1024x768", 1024 * 768),
        ("1280x1024", 1280 * 1024),
        ("1600x1200", 1600 * 1200),
    ];
    let utils = [0.1, 0.25, 0.5, 1.0, 5.0];
    let mut headers = vec!["resolution".to_string(), "depth".to_string()];
    headers.extend(utils.iter().map(|u| format!("W_MB(util={u})")));
    let mut t = TextTable::new(&headers.iter().map(String::as_str).collect::<Vec<_>>());
    for (name, pixels) in resolutions {
        for d in [1.0f64, 2.0, 3.0] {
            let mut row = vec![name.to_string(), format!("{d}")];
            for u in utils {
                let w = model::expected_working_set(pixels, d, u);
                row.push(format!("{:.1}", w / (1 << 20) as f64));
            }
            t.row(row);
        }
    }
    out.table(
        "fig3",
        "Fig. 3 — expected inter-frame working set W (MB)",
        &t,
    );
    out.note(
        "Paper: W < 64 MB for utilization >= 0.25 at reasonable depth/resolution; \
              W < 16 MB at utilization >= 0.5 and depth 1.",
    );
    Ok(())
}

/// **Table 4** — memory requirements of the L2 caching structures, for
/// 16×16 L2 tiles of 4×4 sub-blocks (§5.4.1).
pub fn table4(_scale: &Scale, out: &Outputs, _store: &TraceStore) -> Result<(), RunError> {
    let tiling = TilingConfig::PAPER_DEFAULT;
    let l2_sizes = [2u64, 4, 8];

    let mut t = TextTable::new(&["structure", "2 MB L2", "4 MB L2", "8 MB L2", "paper"]);
    let host_rows: [(u64, &str); 5] = [
        (16, "64 KB"),
        (32, "128 KB"),
        (64, "256 KB"),
        (256, "1024 KB"),
        (1024, "4096 KB"),
    ];
    for (host_mb, paper) in host_rows {
        let mut row = vec![format!("page table, {host_mb} MB host texture")];
        for l2 in l2_sizes {
            let s = model::structure_sizes(l2 << 20, host_mb << 20, tiling);
            row.push(format!("{} KB", s.page_table_bytes >> 10));
        }
        row.push(paper.to_string());
        t.row(row);
    }
    let mut active = vec!["BRL active bits only".to_string()];
    let mut sans = vec!["BRL sans active bits".to_string()];
    for l2 in l2_sizes {
        let s = model::structure_sizes(l2 << 20, 32 << 20, tiling);
        active.push(format!("{:.2} KB", s.brl_active_bytes as f64 / 1024.0));
        sans.push(format!("{} KB", s.brl_t_index_bytes >> 10));
    }
    active.push(".25 / .5 / 1 KB".to_string());
    sans.push("8 / 16 / 32 KB".to_string());
    t.row(active);
    t.row(sans);

    out.table(
        "table4",
        "Table 4 — memory requirements of L2 caching structures",
        &t,
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outputs() -> (Outputs, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!("mltc_analytic_{}", std::process::id()));
        (Outputs::quiet(&dir), dir)
    }

    #[test]
    fn fig3_and_table4_produce_csvs() {
        let (out, dir) = outputs();
        let store = TraceStore::in_memory();
        fig3(&Scale::quick(), &out, &store).unwrap();
        table4(&Scale::quick(), &out, &store).unwrap();
        let fig3_csv = std::fs::read_to_string(dir.join("fig3.csv")).unwrap();
        assert_eq!(fig3_csv.lines().count(), 1 + 15, "5 resolutions x 3 depths");
        let t4 = std::fs::read_to_string(dir.join("table4.csv")).unwrap();
        // Page-table size depends only on host texture capacity (not L2 size).
        assert!(t4.contains("\"page table, 32 MB host texture\",128 KB,128 KB,128 KB"));
        assert!(t4.contains("BRL sans active bits,8 KB,16 KB,32 KB"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fig3_matches_paper_shape() {
        // At 1024x768, d = 1, util = 0.5 the paper puts W under 16 MB.
        let w = model::expected_working_set(1024 * 768, 1.0, 0.5);
        assert!(w < 16.0 * (1 << 20) as f64);
        // And under 64 MB for util 0.25 at depth 3.
        let w = model::expected_working_set(1024 * 768, 3.0, 0.25);
        assert!(w < 64.0 * (1 << 20) as f64);
    }
}
