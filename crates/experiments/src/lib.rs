//! Experiment harness: regenerates every table and figure of the paper.
//!
//! Each experiment is a function taking a [`Scale`] (how big a run: quick /
//! default / full paper scale) and an [`Outputs`] sink (stdout tables plus
//! CSV files). The `experiments` binary dispatches on experiment id:
//!
//! ```text
//! experiments all            # every table and figure at the default scale
//! experiments fig10 --quick  # one experiment, small scale
//! experiments table3 --full  # paper scale (1024x768, 411/525 frames)
//! ```
//!
//! | id | paper artefact |
//! |----|----------------|
//! | `fig3` | expected working set W(R, d, utilization) |
//! | `table1` | workload statistics and expected working sets |
//! | `fig4` | per-frame minimum memory: push vs L2 tile sizes |
//! | `fig5` | total vs new L2 memory per frame (16×16) |
//! | `fig6` | minimum L1 download bandwidth, total vs new |
//! | `fig9`/`table2` | L1 miss rates / hit rates by cache size |
//! | `fig10`/`table3` | download bandwidth with and without L2 |
//! | `table4` | sizes of the L2 implementation structures |
//! | `table5_6` | measured L1/L2 hit rates (Village, City) |
//! | `table7` | fractional advantage f of L2 caching |
//! | `fig11`/`table8` | texture page-table TLB hit rates |
//! | `fig12` | workload snapshots (PPM) |
//! | `ablate-replacement` | clock vs LRU vs FIFO L2 replacement |
//! | `ablate-zprepass` | z-buffer-before-texture (paper §6) |
//! | `ablate-sector` | sector mapping on/off |
//! | `future-workloads` | §6's "workloads of the future" scaling study |
//! | `ablate-storage` | tiled vs linear texture storage (§2.3) |
//! | `ablate-traversal` | scanline vs tiled rasterization order (§2.3) |
//! | `l2-tile-sweep` | L2 tile sizes 8/16/32 (§5.3.2's "similar results") |
//! | `l1-assoc-sweep` | L1 associativity (Hakura's 2-way argument) |
//! | `fault` | host-link fault sweep: pull vs multi-level degradation |

mod exp_ablate;
mod exp_analytic;
mod exp_cache;
mod exp_extended;
mod exp_fault;
mod exp_stats;
mod exp_tlb;
mod exp_visual;
mod multiclient;
mod outputs;
mod runner;
mod scale;
mod store;

pub use exp_ablate::{ablate_replacement, ablate_sector, ablate_zprepass, future_workloads};
pub use exp_analytic::{fig3, table4};
pub use exp_cache::{
    fig10, fig9, host_bytes_by_architecture, perf_model, table2, table3, table5_6, table7,
};
pub use exp_extended::{ablate_storage, ablate_traversal, l1_assoc_sweep, l2_tile_sweep};
pub use exp_fault::exp_fault;
pub use exp_stats::{calibrate, fig4, fig5, fig6, table1};
pub use exp_tlb::{fig11, table8};
pub use exp_visual::fig12;
pub use multiclient::{
    collect_frames, experiment_service_config, multiclient, run_multi_client,
    set_multiclient_clients, set_multiclient_partition, solo_baseline, ClientReport, ClientSpec,
    MultiClientConfig, MultiClientReport,
};
pub use outputs::{Outputs, TextTable};
pub use runner::{
    engine_run, engine_run_all, engine_run_traversal, engine_run_traversal_all, max_replay_jobs,
    replay_run, set_max_replay_jobs, stats_run, RunError,
};
pub use scale::Scale;
pub use store::{
    StatsBundle, StoreStats, TraceHandle, TraceKey, TraceSet, TraceStore, DEFAULT_MEM_BUDGET,
};

/// An experiment entry point. Experiments report run failures instead of
/// panicking so a suite run can record the failure and move on. The
/// [`TraceStore`] supplies (and memoizes) every rendered trace.
pub type ExperimentFn = fn(&Scale, &Outputs, &TraceStore) -> Result<(), RunError>;

/// Every experiment id in run order, with its runner.
pub const EXPERIMENTS: &[(&str, ExperimentFn)] = &[
    ("fig3", fig3),
    ("table1", table1),
    ("fig4", fig4),
    ("fig5", fig5),
    ("fig6", fig6),
    ("fig9", fig9),
    ("table2", table2),
    ("fig10", fig10),
    ("table3", table3),
    ("table4", table4),
    ("table5_6", table5_6),
    ("table7", table7),
    ("fig11", fig11),
    ("table8", table8),
    ("fig12", fig12),
    ("ablate-replacement", ablate_replacement),
    ("ablate-zprepass", ablate_zprepass),
    ("ablate-sector", ablate_sector),
    ("future-workloads", future_workloads),
    ("ablate-storage", ablate_storage),
    ("ablate-traversal", ablate_traversal),
    ("l2-tile-sweep", l2_tile_sweep),
    ("l1-assoc-sweep", l1_assoc_sweep),
    ("fault", exp_fault),
    ("multiclient", multiclient),
    ("perf-model", perf_model),
    ("calibrate", calibrate),
];

/// Looks an experiment up by id.
pub fn find_experiment(id: &str) -> Option<ExperimentFn> {
    EXPERIMENTS.iter().find(|(n, _)| *n == id).map(|(_, f)| *f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_every_paper_artifact() {
        for id in [
            "fig3", "table1", "fig4", "fig5", "fig6", "fig9", "table2", "fig10", "table3",
            "table4", "table5_6", "table7", "fig11", "table8", "fig12",
        ] {
            assert!(find_experiment(id).is_some(), "missing experiment {id}");
        }
    }

    #[test]
    fn unknown_experiment_is_none() {
        assert!(find_experiment("fig99").is_none());
    }
}
