//! Fault sweep: how the pull and multi-level architectures degrade when
//! the host download link starts failing.
//!
//! The paper assumes a perfect AGP link; this robustness study injects
//! deterministic per-transfer failures ([`FaultPlan`]) at increasing rates
//! and compares the two architectures. The multi-level design can fall
//! back to a coarser mip level already resident in L2 (a blurrier but
//! correct texel); the pull architecture has nowhere to fall back to and
//! must drop the tap outright.

use crate::runner::{engine_run_all, pct, RunError};
use crate::store::TraceStore;
use crate::{Outputs, Scale, TextTable};
use mltc_core::{EngineConfig, FaultPlan, L1Config, L2Config};
use mltc_trace::FilterMode;

/// Per-attempt failure rates swept, in parts per million.
const FAIL_PPM: [u32; 4] = [0, 1_000, 10_000, 50_000];

/// Seed for every plan in the sweep: outcomes must differ only by rate and
/// architecture, never by accidental reseeding.
const SWEEP_SEED: u64 = 0x4d4c_5443; // "MLTC"

fn sweep_configs() -> Vec<EngineConfig> {
    let mut configs = Vec::with_capacity(FAIL_PPM.len() * 2);
    for &ppm in &FAIL_PPM {
        let fault = FaultPlan::with_rate(SWEEP_SEED, ppm);
        // Pull architecture: 2 KB L1, no L2.
        configs.push(EngineConfig {
            l1: L1Config::kb(2),
            fault,
            ..EngineConfig::default()
        });
        // Multi-level: 2 KB L1 + 2 MB L2, the paper's headline pair.
        configs.push(EngineConfig {
            l1: L1Config::kb(2),
            l2: Some(L2Config::mb(2)),
            fault,
            ..EngineConfig::default()
        });
    }
    configs
}

/// **Fault sweep** — download failure rates 0 / 0.1 / 1 / 5 % per attempt
/// (3 attempts per transfer) against both architectures on the Village.
pub fn exp_fault(scale: &Scale, out: &Outputs, store: &TraceStore) -> Result<(), RunError> {
    let village = store.village(&scale.params);
    let engines = engine_run_all(
        store,
        &village,
        FilterMode::Trilinear,
        &sweep_configs(),
        false,
    )?;

    let mut t = TextTable::new(&[
        "fail %/attempt",
        "architecture",
        "avg MB/frame",
        "retries",
        "failed transfers",
        "degraded taps",
        "dropped taps",
        "taps lost %",
    ]);
    for e in &engines {
        let tot = e.totals();
        let fault = e.config().fault;
        let arch = if e.config().l2.is_some() {
            "multi-level"
        } else {
            "pull"
        };
        t.row(vec![
            format!("{:.1}", fault.fail_ppm as f64 / 10_000.0),
            arch.to_string(),
            format!("{:.2}", tot.host_mb() / village.frame_count as f64),
            tot.retries.to_string(),
            tot.failed_transfers.to_string(),
            tot.degraded_taps.to_string(),
            tot.dropped_taps.to_string(),
            pct(tot.dropped_taps as f64 / tot.l1_accesses.max(1) as f64),
        ]);
    }
    out.table(
        "fault",
        "Fault sweep — host-link failures, pull vs multi-level (Village)",
        &t,
    );
    out.note(
        "A failed transfer moves no bytes. The multi-level architecture degrades \
              most failed taps to a coarser mip already resident in L2; the pull \
              architecture must drop them.",
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mltc_scene::WorkloadParams;

    #[test]
    fn fault_sweep_writes_all_rows_and_prefers_multilevel() {
        let dir = std::env::temp_dir().join(format!("mltc_fault_{}", std::process::id()));
        let out = Outputs::quiet(&dir);
        let scale = Scale {
            name: "tiny",
            params: WorkloadParams::tiny(),
        };
        exp_fault(&scale, &out, &TraceStore::in_memory()).unwrap();
        let csv = std::fs::read_to_string(dir.join("fault.csv")).unwrap();
        assert_eq!(
            csv.lines().count(),
            1 + FAIL_PPM.len() * 2,
            "2 architectures per rate"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_rate_rows_report_no_faults() {
        let scale = Scale {
            name: "tiny",
            params: WorkloadParams::tiny(),
        };
        let store = TraceStore::in_memory();
        let engines = engine_run_all(
            &store,
            &store.village(&scale.params),
            FilterMode::Trilinear,
            &sweep_configs(),
            false,
        )
        .unwrap();
        for e in engines.iter().take(2) {
            let tot = e.totals();
            assert_eq!(tot.retries, 0);
            assert_eq!(tot.failed_transfers, 0);
            assert_eq!(tot.degraded_taps, 0);
            assert_eq!(tot.dropped_taps, 0);
        }
        // Nonzero rates produce at least some retries somewhere in the sweep.
        let faulted: u64 = engines.iter().skip(2).map(|e| e.totals().retries).sum();
        assert!(faulted > 0, "the sweep should exercise the fault path");
    }
}
