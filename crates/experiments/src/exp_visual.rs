//! Fig. 12 — shaded snapshots of the workloads.

use crate::runner::RunError;
use crate::store::TraceStore;
use crate::{Outputs, Scale, TextTable};
use mltc_trace::FilterMode;

/// **Fig. 12** — renders shaded snapshots of both animations at four points
/// along each path, as binary PPM images in the results directory.
pub fn fig12(scale: &Scale, out: &Outputs, store: &TraceStore) -> Result<(), RunError> {
    let mut t = TextTable::new(&["workload", "frame", "file"]);
    for w in [store.village(&scale.params), store.city(&scale.params)] {
        for q in 0..4u32 {
            let frame = (w.frame_count - 1) * q / 3;
            let fb = w.render_snapshot(frame, FilterMode::Bilinear);
            let path = out.artefact_path(&format!("fig12_{}_{frame:04}.ppm", w.name));
            fb.save_ppm(&path).expect("write ppm snapshot");
            t.row(vec![
                w.name.to_string(),
                frame.to_string(),
                path.display().to_string(),
            ]);
        }
    }
    out.table("fig12", "Fig. 12 — animation snapshots (PPM)", &t);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mltc_scene::WorkloadParams;

    #[test]
    fn snapshots_are_valid_ppms() {
        let dir = std::env::temp_dir().join(format!("mltc_fig12_{}", std::process::id()));
        let out = Outputs::quiet(&dir);
        let scale = Scale {
            name: "tiny",
            params: WorkloadParams::tiny(),
        };
        fig12(&scale, &out, &TraceStore::in_memory()).unwrap();
        let mut count = 0;
        for entry in std::fs::read_dir(&dir).unwrap() {
            let p = entry.unwrap().path();
            if p.extension().is_some_and(|e| e == "ppm") {
                let bytes = std::fs::read(&p).unwrap();
                assert!(bytes.starts_with(b"P6\n"), "{p:?} is not a PPM");
                assert!(bytes.len() > 64 * 48, "{p:?} too small");
                count += 1;
            }
        }
        assert_eq!(count, 8, "4 snapshots per workload");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
