//! Output sinks: aligned stdout tables and CSV files.

use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// An aligned text table that can also serialise itself as CSV.
///
/// ```
/// let mut t = mltc_experiments::TextTable::new(&["workload", "d"]);
/// t.row(vec!["village".into(), "3.8".into()]);
/// let s = t.to_string();
/// assert!(s.contains("village"));
/// assert_eq!(t.csv_string().lines().count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// CSV form (headers + rows, comma-separated, quotes on demand).
    pub fn csv_string(&self) -> String {
        let esc = |s: &String| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut out = String::new();
        let line = |cells: &[String]| cells.iter().map(esc).collect::<Vec<_>>().join(",");
        out.push_str(&line(&self.headers));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&line(r));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut line = String::new();
        for (i, h) in self.headers.iter().enumerate() {
            let _ = write!(line, "{:<w$}  ", h, w = widths[i]);
        }
        writeln!(f, "{}", line.trim_end())?;
        writeln!(f, "{}", "-".repeat(line.trim_end().len()))?;
        for r in &self.rows {
            let mut line = String::new();
            for (i, c) in r.iter().enumerate() {
                let _ = write!(line, "{:<w$}  ", c, w = widths[i]);
            }
            writeln!(f, "{}", line.trim_end())?;
        }
        Ok(())
    }
}

/// Where experiment results go: a directory for CSV/PPM artefacts plus
/// echoing to stdout (suppressible for tests).
#[derive(Debug, Clone)]
pub struct Outputs {
    dir: PathBuf,
    quiet: bool,
}

impl Outputs {
    /// Results rooted at `dir` (created on demand), echoing to stdout.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            quiet: false,
        }
    }

    /// Like [`Outputs::new`] but silent on stdout (tests).
    pub fn quiet(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            quiet: true,
        }
    }

    /// The results directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Prints a section heading and table to stdout and writes
    /// `<name>.csv` into the results directory.
    ///
    /// # Panics
    ///
    /// Panics if the results directory or file cannot be written.
    pub fn table(&self, name: &str, title: &str, table: &TextTable) {
        if !self.quiet {
            println!("\n== {title} ==\n{table}");
        }
        fs::create_dir_all(&self.dir).expect("create results dir");
        let path = self.dir.join(format!("{name}.csv"));
        let mut f = fs::File::create(&path).expect("create csv");
        f.write_all(table.csv_string().as_bytes())
            .expect("write csv");
    }

    /// Prints a free-form note to stdout.
    pub fn note(&self, text: &str) {
        if !self.quiet {
            println!("{text}");
        }
    }

    /// Path for an auxiliary artefact (e.g. a PPM snapshot), creating the
    /// results directory.
    ///
    /// # Panics
    ///
    /// Panics if the results directory cannot be created.
    pub fn artefact_path(&self, name: &str) -> PathBuf {
        fs::create_dir_all(&self.dir).expect("create results dir");
        self.dir.join(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment_and_csv() {
        let mut t = TextTable::new(&["a", "long_header"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["longer".into(), "2".into()]);
        let s = t.to_string();
        assert!(s.contains("long_header"));
        assert!(s.lines().count() >= 4);
        let csv = t.csv_string();
        assert_eq!(csv, "a,long_header\nx,1\nlonger,2\n");
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = TextTable::new(&["v"]);
        t.row(vec!["a,b".into()]);
        t.row(vec!["say \"hi\"".into()]);
        let csv = t.csv_string();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn ragged_rows_rejected() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn outputs_write_csv_files() {
        let dir = std::env::temp_dir().join(format!("mltc_out_{}", std::process::id()));
        let out = Outputs::quiet(&dir);
        let mut t = TextTable::new(&["x"]);
        t.row(vec!["1".into()]);
        out.table("demo", "Demo", &t);
        let written = std::fs::read_to_string(dir.join("demo.csv")).unwrap();
        assert_eq!(written, "x\n1\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
