//! Shared run machinery: rasterize once, simulate many configurations.

use crossbeam::channel::bounded;
use mltc_core::{EngineConfig, SimEngine};
use mltc_scene::Workload;
use mltc_trace::{FilterMode, FrameStatsCollector, FrameTrace, FrameWorkingSet, WorkloadSummary};
use std::sync::Arc;

/// Renders the whole animation with point sampling and collects the §4
/// per-frame working-set statistics.
pub fn stats_run(workload: &Workload) -> (Vec<FrameWorkingSet>, WorkloadSummary) {
    let mut collector = FrameStatsCollector::new(workload.registry());
    let mut frames = Vec::with_capacity(workload.frame_count as usize);
    workload.render_animation(FilterMode::Point, false, |t| {
        frames.push(collector.process_frame(&t));
    });
    let summary = WorkloadSummary::from_frames(&frames, workload.width, workload.height);
    (frames, summary)
}

/// Renders the animation once and replays every frame through each cache
/// configuration — one worker thread per configuration, frames streamed in
/// order over bounded channels (the paper's rasterize-once, trace-driven
/// methodology, parallelised across the *configurations*, never across
/// frames: cache state must carry between frames to capture inter-frame
/// locality).
///
/// `zprepass` applies the §6 z-buffer-before-texture ablation to the
/// generated traces.
///
/// Returns one finished [`SimEngine`] per configuration, in input order.
pub fn engine_run(
    workload: &Workload,
    filter: FilterMode,
    configs: &[EngineConfig],
    zprepass: bool,
) -> Vec<SimEngine> {
    engine_run_traversal(workload, filter, configs, zprepass, mltc_raster::Traversal::Scanline)
}

/// [`engine_run`] with an explicit fragment traversal order (for the
/// tiled-rasterization ablation of §2.3).
pub fn engine_run_traversal(
    workload: &Workload,
    filter: FilterMode,
    configs: &[EngineConfig],
    zprepass: bool,
    traversal: mltc_raster::Traversal,
) -> Vec<SimEngine> {
    std::thread::scope(|scope| {
        let mut senders = Vec::with_capacity(configs.len());
        let mut handles = Vec::with_capacity(configs.len());
        for cfg in configs {
            let (tx, rx) = bounded::<Arc<FrameTrace>>(4);
            senders.push(tx);
            let registry = workload.registry();
            let cfg = *cfg;
            handles.push(scope.spawn(move || {
                let mut engine = SimEngine::new(cfg, registry);
                for trace in rx {
                    engine.run_frame(&trace);
                }
                engine
            }));
        }
        workload.render_animation_traversal(filter, zprepass, traversal, |t| {
            let shared = Arc::new(t);
            for tx in &senders {
                tx.send(shared.clone()).expect("engine worker died");
            }
        });
        drop(senders);
        handles
            .into_iter()
            .map(|h| h.join().expect("engine worker panicked"))
            .collect()
    })
}

/// Formats bytes as megabytes with two decimals.
pub(crate) fn mb(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / (1 << 20) as f64)
}

/// Formats an f64 byte count as megabytes with two decimals.
pub(crate) fn mb_f(bytes: f64) -> String {
    format!("{:.2}", bytes / (1 << 20) as f64)
}

/// Formats a rate as a percentage with two decimals.
pub(crate) fn pct(rate: f64) -> String {
    format!("{:.2}", rate * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mltc_core::{L1Config, L2Config};
    use mltc_scene::WorkloadParams;

    fn tiny_village() -> Workload {
        Workload::village(&WorkloadParams::tiny())
    }

    #[test]
    fn stats_run_covers_all_frames() {
        let w = tiny_village();
        let (frames, summary) = stats_run(&w);
        assert_eq!(frames.len(), w.frame_count as usize);
        assert_eq!(summary.frames, frames.len());
        assert!(summary.depth_complexity > 1.0);
    }

    #[test]
    fn engine_run_returns_engines_in_config_order() {
        let w = tiny_village();
        let configs = [
            EngineConfig { l1: L1Config::kb(2), ..EngineConfig::default() },
            EngineConfig { l1: L1Config::kb(16), ..EngineConfig::default() },
        ];
        let engines = engine_run(&w, FilterMode::Bilinear, &configs, false);
        assert_eq!(engines.len(), 2);
        assert_eq!(engines[0].config().l1.size_bytes, 2048);
        assert_eq!(engines[1].config().l1.size_bytes, 16 * 1024);
        for e in &engines {
            assert_eq!(e.frames().len(), w.frame_count as usize);
            assert!(e.totals().l1_accesses > 0);
        }
        // Identical trace: both saw the same number of texel accesses.
        assert_eq!(engines[0].totals().l1_accesses, engines[1].totals().l1_accesses);
        // The bigger L1 downloads less.
        assert!(engines[1].totals().host_bytes <= engines[0].totals().host_bytes);
    }

    #[test]
    fn l2_reduces_host_traffic_on_the_real_workload() {
        let w = tiny_village();
        let configs = [
            EngineConfig { l1: L1Config::kb(2), ..EngineConfig::default() },
            EngineConfig { l1: L1Config::kb(2), l2: Some(L2Config::mb(2)), ..EngineConfig::default() },
        ];
        let engines = engine_run(&w, FilterMode::Bilinear, &configs, false);
        let pull = engines[0].totals().host_bytes;
        let ml = engines[1].totals().host_bytes;
        assert!(ml < pull, "L2 must cut download traffic ({ml} vs {pull})");
    }

    #[test]
    fn formatters() {
        assert_eq!(mb(2 << 20), "2.00");
        assert_eq!(pct(0.1234), "12.34");
        assert_eq!(mb_f(1.5 * (1 << 20) as f64), "1.50");
    }
}
