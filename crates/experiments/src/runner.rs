//! Shared run machinery: look up (or render once) a trace, replay it
//! through many cache configurations.
//!
//! The historical shape — rasterize the animation inside every
//! `engine_run` call — is gone: every entry point now asks the
//! [`TraceStore`] for the trace and *replays* it. Three replay paths
//! cover the store's handle states:
//!
//! * **memory** ([`TraceHandle::Memory`]): each configuration's worker
//!   iterates the shared frames directly — no channels, no copies;
//! * **disk** ([`TraceHandle::Disk`]): one reader streams frames out of
//!   the persisted file and fans them out over bounded channels;
//! * **uncached** ([`TraceHandle::Uncached`]): the workload renders live,
//!   exactly the pre-store behaviour.
//!
//! Because stored traces are point-sampled (filter-independent — see the
//! [store docs](crate::store)), replays apply the requested filter via
//! [`SimEngine::try_run_frame_as`].

use crate::store::{stream_trace_file_raw, trav_tag, StatsBundle, TraceHandle, TraceStore};
use mltc_core::{EngineConfig, EngineError, SimEngine};
use mltc_scene::Workload;
use mltc_telemetry::Recorder;
use mltc_texture::TextureRegistry;
use mltc_trace::codec::frame_cursor;
use mltc_trace::{FilterMode, FrameTrace};
use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};
use std::sync::mpsc::{sync_channel, SyncSender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// Cap on concurrently replaying configurations; `0` means "ask the OS"
/// (see [`max_replay_jobs`]).
static MAX_REPLAY_JOBS: AtomicUsize = AtomicUsize::new(0);

/// Caps the number of configurations replayed concurrently (the `--jobs`
/// flag). `0` restores the default: one worker per available core.
pub fn set_max_replay_jobs(jobs: usize) {
    MAX_REPLAY_JOBS.store(jobs, Relaxed);
}

/// The effective concurrency cap: the value of [`set_max_replay_jobs`],
/// or the machine's available parallelism when unset.
pub fn max_replay_jobs() -> usize {
    match MAX_REPLAY_JOBS.load(Relaxed) {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    }
}

/// Locks `m`, recovering from poisoning. State under the harness's locks
/// is plain bookkeeping (permit counts, memo maps, counters) that stays
/// consistent even when a holder panicked mid-update, and one poisoned
/// worker must never cascade a panic into every other thread — worker
/// failures are reported as typed [`RunError`]s instead.
pub(crate) fn lock_clean<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A counting semaphore bounding how many configuration workers simulate
/// a frame at any instant (the `--jobs` cap).
///
/// Every worker thread is still spawned up front — the producer side
/// (disk streamer, live renderer) runs exactly once and fans frames out
/// to all of them — but workers take a permit per *frame*, so at most
/// `jobs` of them burn CPU simultaneously while the rest sit parked in
/// `acquire` or on their bounded channel. Gating per frame (not per
/// whole replay) is what keeps the single producer safe: an ungated
/// worker whose channel filled up would block the producer, which the
/// permit holders are waiting on.
struct Gate {
    permits: Mutex<usize>,
    cv: Condvar,
}

impl Gate {
    fn new(permits: usize) -> Self {
        Self {
            permits: Mutex::new(permits.max(1)),
            cv: Condvar::new(),
        }
    }

    /// Blocks until a permit is free; the guard returns it on drop (also
    /// on panic, so a dying worker never strands the others).
    fn acquire(&self) -> GateGuard<'_> {
        let mut p = lock_clean(&self.permits);
        while *p == 0 {
            p = self.cv.wait(p).unwrap_or_else(PoisonError::into_inner);
        }
        *p -= 1;
        GateGuard(self)
    }
}

struct GateGuard<'a>(&'a Gate);

impl Drop for GateGuard<'_> {
    fn drop(&mut self) {
        *lock_clean(&self.0.permits) += 1;
        self.0.cv.notify_one();
    }
}

/// Why one configuration's replay produced no finished engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The engine rejected the configuration or the trace.
    Engine(EngineError),
    /// The worker thread panicked; the payload's message when it had one.
    Panicked(String),
    /// A persisted trace file failed mid-replay (corruption detected
    /// after streaming began), so the replay's counters are unusable.
    Trace(String),
    /// A service client was quarantined mid-run (multi-client replays);
    /// the payload is the rendered [`QuarantineReason`]
    /// (`mltc_core::QuarantineReason`).
    Quarantined(String),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Engine(e) => write!(f, "engine error: {e}"),
            RunError::Panicked(msg) => write!(f, "engine worker panicked: {msg}"),
            RunError::Trace(msg) => write!(f, "trace replay failed: {msg}"),
            RunError::Quarantined(msg) => write!(f, "client quarantined: {msg}"),
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::Engine(e) => Some(e),
            RunError::Panicked(_) | RunError::Trace(_) | RunError::Quarantined(_) => None,
        }
    }
}

impl From<EngineError> for RunError {
    fn from(e: EngineError) -> Self {
        RunError::Engine(e)
    }
}

/// The §4 per-frame working-set statistics for `workload`, computed at
/// most once per process (memoized in the store, derived from the cached
/// trace).
pub fn stats_run(store: &TraceStore, workload: &Workload) -> Arc<StatsBundle> {
    store.stats_bundle(workload)
}

/// Replays already-rendered frames through each cache configuration — one
/// worker thread per configuration, every worker reading the same shared
/// frames (the paper's rasterize-once, trace-driven methodology,
/// parallelised across the *configurations*, never across frames: cache
/// state must carry between frames to capture inter-frame locality).
///
/// `filter` selects the tap expansion applied at simulation time; the
/// frames themselves are filter-independent.
///
/// Returns one result per configuration, in input order. A configuration
/// whose worker fails yields `Err` for that slot only; the surviving
/// configurations finish normally.
pub fn replay_run(
    registry: &TextureRegistry,
    frames: &[Arc<FrameTrace>],
    filter: FilterMode,
    configs: &[EngineConfig],
) -> Vec<Result<SimEngine, RunError>> {
    replay_with(
        registry,
        frames,
        filter,
        configs,
        &Recorder::disabled(),
        &|cfg, reg| SimEngine::try_new(cfg, reg),
    )
}

/// Looks up (or renders once) the workload's trace and replays it through
/// each configuration. See [`replay_run`] for the per-configuration
/// failure contract.
///
/// `zprepass` applies the §6 z-buffer-before-texture ablation to the
/// trace.
pub fn engine_run(
    store: &TraceStore,
    workload: &Workload,
    filter: FilterMode,
    configs: &[EngineConfig],
    zprepass: bool,
) -> Vec<Result<SimEngine, RunError>> {
    engine_run_traversal(
        store,
        workload,
        filter,
        configs,
        zprepass,
        mltc_raster::Traversal::Scanline,
    )
}

/// [`engine_run`] with an explicit fragment traversal order (for the
/// tiled-rasterization ablation of §2.3).
pub fn engine_run_traversal(
    store: &TraceStore,
    workload: &Workload,
    filter: FilterMode,
    configs: &[EngineConfig],
    zprepass: bool,
    traversal: mltc_raster::Traversal,
) -> Vec<Result<SimEngine, RunError>> {
    engine_run_traversal_with(
        store,
        workload,
        filter,
        configs,
        zprepass,
        traversal,
        &|cfg, reg| SimEngine::try_new(cfg, reg),
    )
}

/// All-or-nothing [`engine_run`]: the first failed configuration aborts the
/// whole batch. Most experiments use this — their configurations are static
/// and a failure is a bug worth surfacing, not routing around.
pub fn engine_run_all(
    store: &TraceStore,
    workload: &Workload,
    filter: FilterMode,
    configs: &[EngineConfig],
    zprepass: bool,
) -> Result<Vec<SimEngine>, RunError> {
    engine_run(store, workload, filter, configs, zprepass)
        .into_iter()
        .collect()
}

/// All-or-nothing [`engine_run_traversal`].
pub fn engine_run_traversal_all(
    store: &TraceStore,
    workload: &Workload,
    filter: FilterMode,
    configs: &[EngineConfig],
    zprepass: bool,
    traversal: mltc_raster::Traversal,
) -> Result<Vec<SimEngine>, RunError> {
    engine_run_traversal(store, workload, filter, configs, zprepass, traversal)
        .into_iter()
        .collect()
}

/// The engine-construction seam: tests inject factories that fail or panic
/// to exercise worker isolation without needing a genuinely broken engine.
type EngineFactory<'a> =
    dyn Fn(EngineConfig, &TextureRegistry) -> Result<SimEngine, EngineError> + Sync + 'a;

fn engine_run_traversal_with(
    store: &TraceStore,
    workload: &Workload,
    filter: FilterMode,
    configs: &[EngineConfig],
    zprepass: bool,
    traversal: mltc_raster::Traversal,
    factory: &EngineFactory<'_>,
) -> Vec<Result<SimEngine, RunError>> {
    let rec = store.recorder();
    // One tag per (workload, render options, filter) run: engine series
    // labels hang off it, so rows from different runs never interleave.
    let run_tag = format!(
        "{}/{}/{}/{:?}",
        workload.kind.name(),
        if zprepass { "zpre" } else { "late" },
        trav_tag(traversal),
        filter
    );
    let _run_span = rec.span(&format!("run/{run_tag}"));
    let group = workload.kind.name();
    let wrapped = |cfg: EngineConfig, reg: &TextureRegistry| -> Result<SimEngine, EngineError> {
        let mut engine = factory(cfg, reg)?;
        if rec.is_enabled() {
            engine.attach_telemetry(&rec, &format!("{run_tag}/{}", cfg.label()), group);
        }
        Ok(engine)
    };
    let handle = store.get_or_render(workload, zprepass, traversal);
    let start = Instant::now();
    let results = match &handle {
        TraceHandle::Memory(set) => replay_with(
            workload.registry(),
            &set.frames,
            filter,
            configs,
            &rec,
            &wrapped,
        ),
        TraceHandle::Disk(path) => {
            stream_replay_with(workload.registry(), path, filter, configs, &rec, &wrapped)
        }
        TraceHandle::Uncached => run_live(
            workload, filter, configs, zprepass, traversal, &rec, &wrapped,
        ),
    };
    let taps: u64 = results
        .iter()
        .filter_map(|r| r.as_ref().ok())
        .map(|e| e.totals().l1_accesses)
        .sum();
    store.note_sim(taps, start.elapsed().as_nanos() as u64);
    results
}

/// Memory-resident replay: no channels — every worker walks the shared
/// frame list at its own pace, taking a [`Gate`] permit per frame so at
/// most [`max_replay_jobs`] configurations simulate at any instant.
fn replay_with(
    registry: &TextureRegistry,
    frames: &[Arc<FrameTrace>],
    filter: FilterMode,
    configs: &[EngineConfig],
    rec: &Recorder,
    factory: &EngineFactory<'_>,
) -> Vec<Result<SimEngine, RunError>> {
    let gate = Gate::new(max_replay_jobs());
    std::thread::scope(|scope| {
        let handles: Vec<_> = configs
            .iter()
            .map(|cfg| {
                let cfg = *cfg;
                let rec = rec.clone();
                let gate = &gate;
                scope.spawn(move || -> Result<SimEngine, RunError> {
                    let _span = rec.span(&format!("replay/{}", cfg.label()));
                    let mut engine = factory(cfg, registry).map_err(RunError::Engine)?;
                    for trace in frames {
                        let _permit = gate.acquire();
                        engine
                            .try_run_frame_as(trace, filter)
                            .map_err(RunError::Engine)?;
                    }
                    Ok(engine)
                })
            })
            .collect();
        handles.into_iter().map(join_worker).collect()
    })
}

/// Disk streaming replay: one reader validates each encoded frame and fans
/// the *raw bytes* out over bounded channels; workers decode in place with
/// [`frame_cursor`] and feed the borrowed request iterator straight into
/// the engine — no per-frame `Vec<PixelRequest>` is ever materialized, and
/// the reader recycles frame buffers once every worker drops them.
///
/// A codec failure mid-stream taints every still-successful configuration
/// with [`RunError::Trace`] — their engines only saw a prefix of the
/// animation. The file is streamed and validated exactly once no matter
/// how many configurations replay it; the [`Gate`] keeps at most
/// [`max_replay_jobs`] of them simulating at any instant.
fn stream_replay_with(
    registry: &TextureRegistry,
    path: &Path,
    filter: FilterMode,
    configs: &[EngineConfig],
    rec: &Recorder,
    factory: &EngineFactory<'_>,
) -> Vec<Result<SimEngine, RunError>> {
    let gate = Gate::new(max_replay_jobs());
    std::thread::scope(|scope| {
        let mut senders: Vec<Option<SyncSender<Arc<Vec<u8>>>>> = Vec::with_capacity(configs.len());
        let mut handles = Vec::with_capacity(configs.len());
        for cfg in configs {
            let (tx, rx) = sync_channel::<Arc<Vec<u8>>>(4);
            senders.push(Some(tx));
            let cfg = *cfg;
            let rec = rec.clone();
            let gate = &gate;
            handles.push(scope.spawn(move || -> Result<SimEngine, RunError> {
                let _span = rec.span(&format!("replay/{}", cfg.label()));
                let mut engine = factory(cfg, registry).map_err(RunError::Engine)?;
                for bytes in rx {
                    let _permit = gate.acquire();
                    // The streamer already validated the frame end to
                    // end, so a decode error here is a logic bug, but
                    // report it as a tainted replay rather than panic.
                    let (cursor, _) = frame_cursor(&bytes)
                        .map_err(|e| RunError::Trace(format!("re-decode: {e}")))?;
                    engine
                        .try_run_frame_requests(filter, cursor.requests())
                        .map_err(RunError::Engine)?;
                }
                Ok(engine)
            }));
        }
        let stream_span = rec.span("replay/disk-stream");
        let streamed = stream_trace_file_raw(path, |shared| {
            for slot in &mut senders {
                if let Some(tx) = slot {
                    if tx.send(shared.clone()).is_err() {
                        *slot = None;
                    }
                }
            }
        });
        stream_span.end();
        drop(senders);
        let mut results: Vec<Result<SimEngine, RunError>> =
            handles.into_iter().map(join_worker).collect();
        if let Err(e) = streamed {
            let msg = format!("{}: {e}", path.display());
            for r in &mut results {
                if r.is_ok() {
                    *r = Err(RunError::Trace(msg.clone()));
                }
            }
        }
        results
    })
}

/// Live-render replay for uncached traces: the pre-store code path,
/// rendering with the requested filter and streaming frames to workers as
/// they finish. The animation is rasterized exactly once no matter how
/// many configurations consume it; the [`Gate`] keeps at most
/// [`max_replay_jobs`] of them simulating at any instant.
fn run_live(
    workload: &Workload,
    filter: FilterMode,
    configs: &[EngineConfig],
    zprepass: bool,
    traversal: mltc_raster::Traversal,
    rec: &Recorder,
    factory: &EngineFactory<'_>,
) -> Vec<Result<SimEngine, RunError>> {
    let gate = Gate::new(max_replay_jobs());
    std::thread::scope(|scope| {
        let mut senders: Vec<Option<SyncSender<Arc<FrameTrace>>>> =
            Vec::with_capacity(configs.len());
        let mut handles = Vec::with_capacity(configs.len());
        for cfg in configs {
            let (tx, rx) = sync_channel::<Arc<FrameTrace>>(4);
            senders.push(Some(tx));
            let registry = workload.registry();
            let cfg = *cfg;
            let rec = rec.clone();
            let gate = &gate;
            handles.push(scope.spawn(move || -> Result<SimEngine, RunError> {
                let _span = rec.span(&format!("replay/{}", cfg.label()));
                let mut engine = factory(cfg, registry).map_err(RunError::Engine)?;
                for trace in rx {
                    let _permit = gate.acquire();
                    engine.try_run_frame(&trace).map_err(RunError::Engine)?;
                }
                Ok(engine)
            }));
        }
        let render_span = rec.span("replay/live-render");
        workload.render_animation_traversal(filter, zprepass, traversal, |t| {
            let shared = Arc::new(t);
            for slot in &mut senders {
                // A failed worker closes its receiver. Drop its sender
                // and keep feeding the survivors; join() reports the
                // failure.
                if let Some(tx) = slot {
                    if tx.send(shared.clone()).is_err() {
                        *slot = None;
                    }
                }
            }
        });
        render_span.end();
        drop(senders);
        handles.into_iter().map(join_worker).collect()
    })
}

fn join_worker(
    handle: std::thread::ScopedJoinHandle<'_, Result<SimEngine, RunError>>,
) -> Result<SimEngine, RunError> {
    match handle.join() {
        Ok(result) => result,
        Err(payload) => Err(RunError::Panicked(panic_message(payload.as_ref()))),
    }
}

pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Formats bytes as megabytes with two decimals.
pub(crate) fn mb(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / (1 << 20) as f64)
}

/// Formats an f64 byte count as megabytes with two decimals.
pub(crate) fn mb_f(bytes: f64) -> String {
    format!("{:.2}", bytes / (1 << 20) as f64)
}

/// Formats a rate as a percentage with two decimals.
pub(crate) fn pct(rate: f64) -> String {
    format!("{:.2}", rate * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mltc_core::{L1Config, L2Config};
    use mltc_scene::WorkloadParams;

    fn tiny_village() -> Workload {
        Workload::village(&WorkloadParams::tiny())
    }

    #[test]
    fn stats_run_covers_all_frames() {
        let store = TraceStore::in_memory();
        let w = tiny_village();
        let bundle = stats_run(&store, &w);
        assert_eq!(bundle.frames.len(), w.frame_count as usize);
        assert_eq!(bundle.summary.frames, bundle.frames.len());
        assert!(bundle.summary.depth_complexity > 1.0);
    }

    #[test]
    fn engine_run_returns_engines_in_config_order() {
        let store = TraceStore::in_memory();
        let w = tiny_village();
        let configs = [
            EngineConfig {
                l1: L1Config::kb(2),
                ..EngineConfig::default()
            },
            EngineConfig {
                l1: L1Config::kb(16),
                ..EngineConfig::default()
            },
        ];
        let engines = engine_run_all(&store, &w, FilterMode::Bilinear, &configs, false).unwrap();
        assert_eq!(engines.len(), 2);
        assert_eq!(engines[0].config().l1.size_bytes, 2048);
        assert_eq!(engines[1].config().l1.size_bytes, 16 * 1024);
        for e in &engines {
            assert_eq!(e.frames().len(), w.frame_count as usize);
            assert!(e.totals().l1_accesses > 0);
        }
        // Identical trace: both saw the same number of texel accesses.
        assert_eq!(
            engines[0].totals().l1_accesses,
            engines[1].totals().l1_accesses
        );
        // The bigger L1 downloads less.
        assert!(engines[1].totals().host_bytes <= engines[0].totals().host_bytes);
        // And the animation was rendered exactly once.
        assert_eq!(store.snapshot().renders, 1);
    }

    #[test]
    fn repeated_runs_share_one_render() {
        let store = TraceStore::in_memory();
        let w = tiny_village();
        let cfg = EngineConfig::default();
        for filter in [
            FilterMode::Point,
            FilterMode::Bilinear,
            FilterMode::Trilinear,
        ] {
            engine_run_all(&store, &w, filter, &[cfg], false).unwrap();
        }
        let s = store.snapshot();
        assert_eq!(s.renders, 1, "filters must share one point-sampled trace");
        assert_eq!(s.mem_hits, 2);
        assert!(s.taps_simulated > 0);
        assert!(s.sim_nanos > 0);
    }

    #[test]
    fn store_replay_matches_a_direct_render_per_filter() {
        let w = tiny_village();
        let cfg = EngineConfig {
            l1: L1Config::kb(2),
            l2: Some(L2Config::mb(2)),
            ..EngineConfig::default()
        };
        for filter in [
            FilterMode::Point,
            FilterMode::Bilinear,
            FilterMode::Trilinear,
        ] {
            let store = TraceStore::in_memory();
            let via_store = engine_run_all(&store, &w, filter, &[cfg], false).unwrap();
            let mut direct = SimEngine::try_new(cfg, w.registry()).unwrap();
            w.render_animation(filter, false, |t| direct.try_run_frame(&t).unwrap());
            assert_eq!(
                via_store[0].totals(),
                direct.totals(),
                "filter {filter:?} must replay identically through the store"
            );
        }
    }

    #[test]
    fn disk_streamed_replay_matches_memory_replay() {
        let dir = std::env::temp_dir().join(format!("mltc-runner-disk-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let w = tiny_village();
        let cfg = EngineConfig::default();
        let mem_store = TraceStore::in_memory();
        let from_memory =
            engine_run_all(&mem_store, &w, FilterMode::Bilinear, &[cfg], false).unwrap();
        // A tiny budget forces the persistent store to stream from disk.
        let disk_store = TraceStore::persistent(&dir).with_budget(64);
        let from_disk =
            engine_run_all(&disk_store, &w, FilterMode::Bilinear, &[cfg], false).unwrap();
        assert_eq!(from_memory[0].totals(), from_disk[0].totals());
        assert_eq!(from_memory[0].frames(), from_disk[0].frames());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_config_fails_alone_and_survivors_finish() {
        let store = TraceStore::in_memory();
        let w = tiny_village();
        let configs = [
            EngineConfig {
                l1: L1Config::kb(2),
                ..EngineConfig::default()
            },
            // 3 KB L1 = 24 sets: rejected as invalid geometry.
            EngineConfig {
                l1: L1Config {
                    size_bytes: 3072,
                    ..L1Config::kb(2)
                },
                ..EngineConfig::default()
            },
            EngineConfig {
                l1: L1Config::kb(16),
                ..EngineConfig::default()
            },
        ];
        let results = engine_run(&store, &w, FilterMode::Bilinear, &configs, false);
        assert_eq!(results.len(), 3);
        assert!(matches!(
            &results[1],
            Err(RunError::Engine(EngineError::InvalidGeometry(_)))
        ));
        for idx in [0, 2] {
            let e = results[idx]
                .as_ref()
                .unwrap_or_else(|e| panic!("config {idx}: {e}"));
            assert_eq!(
                e.frames().len(),
                w.frame_count as usize,
                "survivor {idx} must see every frame"
            );
        }
        // And the all-or-nothing wrapper surfaces the failure.
        assert!(engine_run_all(&store, &w, FilterMode::Bilinear, &configs, false).is_err());
    }

    #[test]
    fn panicking_worker_fails_alone_and_survivors_finish() {
        let store = TraceStore::in_memory();
        let w = tiny_village();
        let configs = [
            EngineConfig {
                l1: L1Config::kb(2),
                ..EngineConfig::default()
            },
            EngineConfig {
                l1: L1Config::kb(4),
                ..EngineConfig::default()
            },
            EngineConfig {
                l1: L1Config::kb(16),
                ..EngineConfig::default()
            },
        ];
        // Suppress the expected panic's default stderr backtrace.
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let results = engine_run_traversal_with(
            &store,
            &w,
            FilterMode::Bilinear,
            &configs,
            false,
            mltc_raster::Traversal::Scanline,
            &|cfg, reg| {
                if cfg.l1.size_bytes == 4096 {
                    panic!("injected worker failure");
                }
                SimEngine::try_new(cfg, reg)
            },
        );
        std::panic::set_hook(prev_hook);
        assert_eq!(results.len(), 3);
        match &results[1] {
            Err(RunError::Panicked(msg)) => assert!(msg.contains("injected"), "{msg}"),
            other => panic!("expected a panic report, got {other:?}"),
        }
        for idx in [0, 2] {
            let e = results[idx].as_ref().expect("survivors must finish");
            assert_eq!(e.frames().len(), w.frame_count as usize);
        }
    }

    #[test]
    fn mid_stream_corruption_taints_the_batch_with_typed_errors() {
        let dir = std::env::temp_dir().join(format!("mltc-runner-taint-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let w = tiny_village();
        let cfg = EngineConfig::default();
        {
            // Persist the trace, then truncate it mid-body.
            let store = TraceStore::persistent(&dir);
            engine_run_all(&store, &w, FilterMode::Point, &[cfg], false).unwrap();
        }
        let file = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .find(|e| e.path().extension().is_some_and(|x| x == "mltct"))
            .expect("a persisted trace")
            .path();
        let bytes = std::fs::read(&file).unwrap();
        std::fs::write(&file, &bytes[..bytes.len() - 7]).unwrap();
        // A tiny budget forces streaming; the truncated tail must surface
        // as RunError::Trace on every config, not a panic.
        let store = TraceStore::persistent(&dir).with_budget(64);
        let results = engine_run(&store, &w, FilterMode::Point, &[cfg, cfg], false);
        for r in &results {
            match r {
                Err(RunError::Trace(msg)) => assert!(msg.contains("mltct"), "{msg}"),
                other => panic!("expected RunError::Trace, got {other:?}"),
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn engine_run_records_telemetry_through_the_store() {
        let rec = Recorder::enabled();
        let store = TraceStore::in_memory().with_recorder(rec.clone());
        let w = tiny_village();
        let cfg = EngineConfig {
            l1: L1Config::kb(2),
            l2: Some(L2Config::mb(2)),
            ..EngineConfig::default()
        };
        let engines = engine_run_all(&store, &w, FilterMode::Bilinear, &[cfg], false).unwrap();
        let totals = engines[0].totals();
        let snap = rec.snapshot();
        // Engine counters flowed into the recorder under the workload group.
        assert_eq!(snap.counters["engine/village/l1_hits"], totals.l1_hits);
        assert_eq!(
            snap.counters["engine/village/l2_full_hits"],
            totals.l2_full_hits
        );
        // Spans: the whole run plus one replay worker per configuration.
        assert!(snap
            .spans
            .iter()
            .any(|s| s.name.starts_with("run/village/")));
        assert!(snap.spans.iter().any(|s| s.name.starts_with("replay/")));
        // One per-frame series row per animation frame, labelled by run+config.
        let series = snap
            .series
            .iter()
            .find(|s| s.label.ends_with(&cfg.label()))
            .unwrap_or_else(|| panic!("no series for {:?}", cfg.label()));
        assert!(series.label.starts_with("village/late/scanline/Bilinear/"));
        assert_eq!(series.rows.len(), w.frame_count as usize);
        // The L2 reuse-distance histogram is exported per workload.
        let reuse = &snap.hists["l2_reuse_pages/village"];
        assert_eq!(
            reuse.count + snap.counters["engine/village/l2_reuse_cold"],
            totals.l2_accesses()
        );
    }

    #[test]
    fn disabled_recorder_store_runs_clean() {
        // The default store recorder is disabled: nothing registers, and
        // replays produce identical counters to an instrumented store.
        let w = tiny_village();
        let cfg = EngineConfig {
            l1: L1Config::kb(2),
            l2: Some(L2Config::mb(2)),
            ..EngineConfig::default()
        };
        let plain = TraceStore::in_memory();
        let a = engine_run_all(&plain, &w, FilterMode::Bilinear, &[cfg], false).unwrap();
        let rec = Recorder::enabled();
        let recorded = TraceStore::in_memory().with_recorder(rec.clone());
        let b = engine_run_all(&recorded, &w, FilterMode::Bilinear, &[cfg], false).unwrap();
        assert_eq!(a[0].totals(), b[0].totals(), "telemetry only observes");
        assert_eq!(a[0].frames(), b[0].frames());
        assert!(plain.recorder().snapshot().series.is_empty());
        assert!(!rec.snapshot().series.is_empty());
    }

    #[test]
    fn jobs_cap_serializes_replay_without_changing_results() {
        let store = TraceStore::in_memory();
        let w = tiny_village();
        let configs = [
            EngineConfig {
                l1: L1Config::kb(2),
                ..EngineConfig::default()
            },
            EngineConfig {
                l1: L1Config::kb(4),
                ..EngineConfig::default()
            },
            EngineConfig {
                l1: L1Config::kb(16),
                ..EngineConfig::default()
            },
        ];
        let unbounded = engine_run_all(&store, &w, FilterMode::Bilinear, &configs, false).unwrap();
        set_max_replay_jobs(1);
        let serial = engine_run_all(&store, &w, FilterMode::Bilinear, &configs, false).unwrap();
        set_max_replay_jobs(0);
        assert_eq!(serial.len(), unbounded.len());
        for (a, b) in unbounded.iter().zip(&serial) {
            assert_eq!(a.config().l1.size_bytes, b.config().l1.size_bytes);
            assert_eq!(
                a.totals(),
                b.totals(),
                "jobs cap must only affect scheduling"
            );
            assert_eq!(a.frames(), b.frames());
        }
        assert!(max_replay_jobs() >= 1);
    }

    #[test]
    fn run_errors_format_usefully() {
        let e = RunError::Engine(EngineError::EmptyPageTable);
        assert!(e.to_string().contains("page table"));
        assert!(RunError::Panicked("boom".into())
            .to_string()
            .contains("boom"));
        assert!(RunError::Trace("bad file".into())
            .to_string()
            .contains("bad file"));
        assert!(RunError::Quarantined("client 3: worker panicked".into())
            .to_string()
            .contains("quarantined"));
        assert_eq!(RunError::from(EngineError::EmptyPageTable), e);
    }

    #[test]
    fn formatters() {
        assert_eq!(mb(2 << 20), "2.00");
        assert_eq!(pct(0.1234), "12.34");
        assert_eq!(mb_f(1.5 * (1 << 20) as f64), "1.50");
    }
}
