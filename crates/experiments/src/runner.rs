//! Shared run machinery: rasterize once, simulate many configurations.

use mltc_core::{EngineConfig, EngineError, SimEngine};
use mltc_scene::Workload;
use mltc_texture::TextureRegistry;
use mltc_trace::{FilterMode, FrameStatsCollector, FrameTrace, FrameWorkingSet, WorkloadSummary};
use std::fmt;
use std::sync::mpsc::{sync_channel, SyncSender};
use std::sync::Arc;

/// Why one configuration's replay produced no finished engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The engine rejected the configuration or the trace.
    Engine(EngineError),
    /// The worker thread panicked; the payload's message when it had one.
    Panicked(String),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Engine(e) => write!(f, "engine error: {e}"),
            RunError::Panicked(msg) => write!(f, "engine worker panicked: {msg}"),
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::Engine(e) => Some(e),
            RunError::Panicked(_) => None,
        }
    }
}

impl From<EngineError> for RunError {
    fn from(e: EngineError) -> Self {
        RunError::Engine(e)
    }
}

/// Renders the whole animation with point sampling and collects the §4
/// per-frame working-set statistics.
pub fn stats_run(workload: &Workload) -> (Vec<FrameWorkingSet>, WorkloadSummary) {
    let mut collector = FrameStatsCollector::new(workload.registry());
    let mut frames = Vec::with_capacity(workload.frame_count as usize);
    workload.render_animation(FilterMode::Point, false, |t| {
        frames.push(collector.process_frame(&t));
    });
    let summary = WorkloadSummary::from_frames(&frames, workload.width, workload.height);
    (frames, summary)
}

/// Renders the animation once and replays every frame through each cache
/// configuration — one worker thread per configuration, frames streamed in
/// order over bounded channels (the paper's rasterize-once, trace-driven
/// methodology, parallelised across the *configurations*, never across
/// frames: cache state must carry between frames to capture inter-frame
/// locality).
///
/// `zprepass` applies the §6 z-buffer-before-texture ablation to the
/// generated traces.
///
/// Returns one result per configuration, in input order. A configuration
/// whose worker fails — invalid geometry, a trace referencing an unknown
/// texture, or an outright panic — yields `Err` for that slot only; the
/// surviving configurations keep receiving frames and finish normally.
pub fn engine_run(
    workload: &Workload,
    filter: FilterMode,
    configs: &[EngineConfig],
    zprepass: bool,
) -> Vec<Result<SimEngine, RunError>> {
    engine_run_traversal(
        workload,
        filter,
        configs,
        zprepass,
        mltc_raster::Traversal::Scanline,
    )
}

/// [`engine_run`] with an explicit fragment traversal order (for the
/// tiled-rasterization ablation of §2.3).
pub fn engine_run_traversal(
    workload: &Workload,
    filter: FilterMode,
    configs: &[EngineConfig],
    zprepass: bool,
    traversal: mltc_raster::Traversal,
) -> Vec<Result<SimEngine, RunError>> {
    run_with(
        workload,
        filter,
        configs,
        zprepass,
        traversal,
        &|cfg, reg| SimEngine::try_new(cfg, reg),
    )
}

/// All-or-nothing [`engine_run`]: the first failed configuration aborts the
/// whole batch. Most experiments use this — their configurations are static
/// and a failure is a bug worth surfacing, not routing around.
pub fn engine_run_all(
    workload: &Workload,
    filter: FilterMode,
    configs: &[EngineConfig],
    zprepass: bool,
) -> Result<Vec<SimEngine>, RunError> {
    engine_run(workload, filter, configs, zprepass)
        .into_iter()
        .collect()
}

/// All-or-nothing [`engine_run_traversal`].
pub fn engine_run_traversal_all(
    workload: &Workload,
    filter: FilterMode,
    configs: &[EngineConfig],
    zprepass: bool,
    traversal: mltc_raster::Traversal,
) -> Result<Vec<SimEngine>, RunError> {
    engine_run_traversal(workload, filter, configs, zprepass, traversal)
        .into_iter()
        .collect()
}

/// The engine-construction seam: tests inject factories that fail or panic
/// to exercise worker isolation without needing a genuinely broken engine.
type EngineFactory =
    dyn Fn(EngineConfig, &TextureRegistry) -> Result<SimEngine, EngineError> + Sync;

fn run_with(
    workload: &Workload,
    filter: FilterMode,
    configs: &[EngineConfig],
    zprepass: bool,
    traversal: mltc_raster::Traversal,
    factory: &EngineFactory,
) -> Vec<Result<SimEngine, RunError>> {
    std::thread::scope(|scope| {
        let mut senders: Vec<Option<SyncSender<Arc<FrameTrace>>>> =
            Vec::with_capacity(configs.len());
        let mut handles = Vec::with_capacity(configs.len());
        for cfg in configs {
            let (tx, rx) = sync_channel::<Arc<FrameTrace>>(4);
            senders.push(Some(tx));
            let registry = workload.registry();
            let cfg = *cfg;
            handles.push(scope.spawn(move || -> Result<SimEngine, RunError> {
                let mut engine = factory(cfg, registry).map_err(RunError::Engine)?;
                for trace in rx {
                    engine.try_run_frame(&trace).map_err(RunError::Engine)?;
                }
                Ok(engine)
            }));
        }
        workload.render_animation_traversal(filter, zprepass, traversal, |t| {
            let shared = Arc::new(t);
            for slot in &mut senders {
                // A failed worker closes its receiver. Drop its sender and
                // keep feeding the survivors; join() reports the failure.
                if let Some(tx) = slot {
                    if tx.send(shared.clone()).is_err() {
                        *slot = None;
                    }
                }
            }
        });
        drop(senders);
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(result) => result,
                Err(payload) => Err(RunError::Panicked(panic_message(payload.as_ref()))),
            })
            .collect()
    })
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Formats bytes as megabytes with two decimals.
pub(crate) fn mb(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / (1 << 20) as f64)
}

/// Formats an f64 byte count as megabytes with two decimals.
pub(crate) fn mb_f(bytes: f64) -> String {
    format!("{:.2}", bytes / (1 << 20) as f64)
}

/// Formats a rate as a percentage with two decimals.
pub(crate) fn pct(rate: f64) -> String {
    format!("{:.2}", rate * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mltc_core::{L1Config, L2Config};
    use mltc_scene::WorkloadParams;

    fn tiny_village() -> Workload {
        Workload::village(&WorkloadParams::tiny())
    }

    #[test]
    fn stats_run_covers_all_frames() {
        let w = tiny_village();
        let (frames, summary) = stats_run(&w);
        assert_eq!(frames.len(), w.frame_count as usize);
        assert_eq!(summary.frames, frames.len());
        assert!(summary.depth_complexity > 1.0);
    }

    #[test]
    fn engine_run_returns_engines_in_config_order() {
        let w = tiny_village();
        let configs = [
            EngineConfig {
                l1: L1Config::kb(2),
                ..EngineConfig::default()
            },
            EngineConfig {
                l1: L1Config::kb(16),
                ..EngineConfig::default()
            },
        ];
        let engines = engine_run_all(&w, FilterMode::Bilinear, &configs, false).unwrap();
        assert_eq!(engines.len(), 2);
        assert_eq!(engines[0].config().l1.size_bytes, 2048);
        assert_eq!(engines[1].config().l1.size_bytes, 16 * 1024);
        for e in &engines {
            assert_eq!(e.frames().len(), w.frame_count as usize);
            assert!(e.totals().l1_accesses > 0);
        }
        // Identical trace: both saw the same number of texel accesses.
        assert_eq!(
            engines[0].totals().l1_accesses,
            engines[1].totals().l1_accesses
        );
        // The bigger L1 downloads less.
        assert!(engines[1].totals().host_bytes <= engines[0].totals().host_bytes);
    }

    #[test]
    fn l2_reduces_host_traffic_on_the_real_workload() {
        let w = tiny_village();
        let configs = [
            EngineConfig {
                l1: L1Config::kb(2),
                ..EngineConfig::default()
            },
            EngineConfig {
                l1: L1Config::kb(2),
                l2: Some(L2Config::mb(2)),
                ..EngineConfig::default()
            },
        ];
        let engines = engine_run_all(&w, FilterMode::Bilinear, &configs, false).unwrap();
        let pull = engines[0].totals().host_bytes;
        let ml = engines[1].totals().host_bytes;
        assert!(ml < pull, "L2 must cut download traffic ({ml} vs {pull})");
    }

    #[test]
    fn bad_config_fails_alone_and_survivors_finish() {
        let w = tiny_village();
        let configs = [
            EngineConfig {
                l1: L1Config::kb(2),
                ..EngineConfig::default()
            },
            // 3 KB L1 = 24 sets: rejected as invalid geometry.
            EngineConfig {
                l1: L1Config {
                    size_bytes: 3072,
                    ..L1Config::kb(2)
                },
                ..EngineConfig::default()
            },
            EngineConfig {
                l1: L1Config::kb(16),
                ..EngineConfig::default()
            },
        ];
        let results = engine_run(&w, FilterMode::Bilinear, &configs, false);
        assert_eq!(results.len(), 3);
        assert!(matches!(
            &results[1],
            Err(RunError::Engine(EngineError::InvalidGeometry(_)))
        ));
        for idx in [0, 2] {
            let e = results[idx]
                .as_ref()
                .unwrap_or_else(|e| panic!("config {idx}: {e}"));
            assert_eq!(
                e.frames().len(),
                w.frame_count as usize,
                "survivor {idx} must see every frame"
            );
        }
        // And the all-or-nothing wrapper surfaces the failure.
        assert!(engine_run_all(&w, FilterMode::Bilinear, &configs, false).is_err());
    }

    #[test]
    fn panicking_worker_fails_alone_and_survivors_finish() {
        let w = tiny_village();
        let configs = [
            EngineConfig {
                l1: L1Config::kb(2),
                ..EngineConfig::default()
            },
            EngineConfig {
                l1: L1Config::kb(4),
                ..EngineConfig::default()
            },
            EngineConfig {
                l1: L1Config::kb(16),
                ..EngineConfig::default()
            },
        ];
        // Suppress the expected panic's default stderr backtrace.
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let results = run_with(
            &w,
            FilterMode::Bilinear,
            &configs,
            false,
            mltc_raster::Traversal::Scanline,
            &|cfg, reg| {
                if cfg.l1.size_bytes == 4096 {
                    panic!("injected worker failure");
                }
                SimEngine::try_new(cfg, reg)
            },
        );
        std::panic::set_hook(prev_hook);
        assert_eq!(results.len(), 3);
        match &results[1] {
            Err(RunError::Panicked(msg)) => assert!(msg.contains("injected"), "{msg}"),
            other => panic!("expected a panic report, got {other:?}"),
        }
        for idx in [0, 2] {
            let e = results[idx].as_ref().expect("survivors must finish");
            assert_eq!(e.frames().len(), w.frame_count as usize);
        }
    }

    #[test]
    fn run_errors_format_usefully() {
        let e = RunError::Engine(EngineError::EmptyPageTable);
        assert!(e.to_string().contains("page table"));
        assert!(RunError::Panicked("boom".into())
            .to_string()
            .contains("boom"));
        assert_eq!(RunError::from(EngineError::EmptyPageTable), e);
    }

    #[test]
    fn formatters() {
        assert_eq!(mb(2 << 20), "2.00");
        assert_eq!(pct(0.1234), "12.34");
        assert_eq!(mb_f(1.5 * (1 << 20) as f64), "1.50");
    }
}
