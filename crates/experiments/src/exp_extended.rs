//! Extended studies around the paper's §2.2–2.3 design decisions: storage
//! format, rasterization traversal order, L2 tile size and L1 associativity.
//!
//! The paper fixes each of these after citing Hakura's ISCA'97 analysis;
//! these experiments re-derive the evidence on our workloads.

use crate::runner::{engine_run_all, engine_run_traversal_all, pct, RunError};
use crate::store::TraceStore;
use crate::{Outputs, Scale, TextTable};
use mltc_core::{EngineConfig, L1Config, L2Config, StorageFormat};
use mltc_raster::Traversal;
use mltc_texture::{TileSize, TilingConfig};
use mltc_trace::FilterMode;

/// **Storage format** — tiled vs linear texture storage (§2.3: "advantage
/// can be taken … by storing texture images in tiles rather than linearly").
pub fn ablate_storage(scale: &Scale, out: &Outputs, store: &TraceStore) -> Result<(), RunError> {
    let village = store.village(&scale.params);
    let mut t = TextTable::new(&["L1 size", "storage", "BL hit %", "TL hit %"]);
    for kb in [2usize, 16] {
        for storage in [StorageFormat::Tiled, StorageFormat::Linear] {
            let cfg = EngineConfig {
                l1: L1Config {
                    storage,
                    ..L1Config::kb(kb)
                },
                ..EngineConfig::default()
            };
            let bl = engine_run_all(store, &village, FilterMode::Bilinear, &[cfg], false)?;
            let tl = engine_run_all(store, &village, FilterMode::Trilinear, &[cfg], false)?;
            t.row(vec![
                format!("{kb} KB"),
                format!("{storage:?}").to_lowercase(),
                pct(bl[0].totals().l1_hit_rate()),
                pct(tl[0].totals().l1_hit_rate()),
            ]);
        }
    }
    out.table(
        "ablate_storage",
        "Storage format — tiled vs linear lines (Village)",
        &t,
    );
    out.note(
        "Hakura/§2.3: tiled storage captures 2D texture locality that linear \
              scanline storage wastes.",
    );
    Ok(())
}

/// **Traversal order** — scanline vs tiled rasterization (§2.3: tiled
/// rasterization improves texture locality but is not always
/// cost-effective; the paper studies scanline order).
pub fn ablate_traversal(scale: &Scale, out: &Outputs, store: &TraceStore) -> Result<(), RunError> {
    let village = store.village(&scale.params);
    let mut t = TextTable::new(&["L1 size", "traversal", "BL hit %", "BL misses"]);
    for kb in [2usize, 16] {
        for (label, traversal) in [
            ("scanline", Traversal::Scanline),
            ("tiled 8x8", Traversal::Tiled(8)),
        ] {
            let cfg = EngineConfig {
                l1: L1Config::kb(kb),
                ..EngineConfig::default()
            };
            let engines = engine_run_traversal_all(
                store,
                &village,
                FilterMode::Bilinear,
                &[cfg],
                false,
                traversal,
            )?;
            let tot = engines[0].totals();
            t.row(vec![
                format!("{kb} KB"),
                label.to_string(),
                pct(tot.l1_hit_rate()),
                (tot.l1_accesses - tot.l1_hits).to_string(),
            ]);
        }
    }
    out.table(
        "ablate_traversal",
        "Rasterization order — scanline vs tiled (Village)",
        &t,
    );
    out.note(
        "Hakura/§2.3: tiled rasterization gives better texture locality; the paper \
              assumes scanline order because tiled traversal lowers hardware utilization \
              on small triangles.",
    );
    Ok(())
}

/// **L2 tile size sweep** — the paper reports "similar results were
/// observed for tiles 8x8 and 32x32" (§5.3.2); this regenerates that check.
pub fn l2_tile_sweep(scale: &Scale, out: &Outputs, store: &TraceStore) -> Result<(), RunError> {
    let mut t = TextTable::new(&[
        "workload",
        "L2 tile",
        "avg MB/frame (TL)",
        "L2 full hit %",
        "L2 partial hit %",
    ]);
    for w in [store.village(&scale.params), store.city(&scale.params)] {
        let configs: Vec<EngineConfig> = [TileSize::X8, TileSize::X16, TileSize::X32]
            .iter()
            .map(|&l2t| EngineConfig {
                l1: L1Config::kb(2),
                l2: Some(L2Config::mb(2)),
                tiling: TilingConfig::new(l2t, TileSize::X4).expect("valid tiling"),
                ..EngineConfig::default()
            })
            .collect();
        let engines = engine_run_all(store, &w, FilterMode::Trilinear, &configs, false)?;
        for e in &engines {
            let tot = e.totals();
            t.row(vec![
                w.name.to_string(),
                e.config().tiling.l2().to_string(),
                format!("{:.2}", tot.host_mb() / w.frame_count as f64),
                pct(tot.l2_full_hit_rate()),
                pct(tot.l2_partial_hit_rate()),
            ]);
        }
    }
    out.table(
        "l2_tile_sweep",
        "L2 tile size sweep (2 KB L1 + 2 MB L2, trilinear)",
        &t,
    );
    out.note(
        "Paper §5.3.2: bandwidth results for 8x8 and 32x32 L2 tiles are similar to \
              16x16 — the page table/sector split, not the tile size, does the work.",
    );
    Ok(())
}

/// **L1 associativity sweep** — Hakura argues 2-way suffices to avoid
/// conflict misses under trilinear interpolation (§2.3).
pub fn l1_assoc_sweep(scale: &Scale, out: &Outputs, store: &TraceStore) -> Result<(), RunError> {
    let village = store.village(&scale.params);
    let mut t = TextTable::new(&["ways", "BL hit %", "TL hit %"]);
    let configs: Vec<EngineConfig> = [1usize, 2, 4, 8]
        .iter()
        .map(|&ways| EngineConfig {
            l1: L1Config {
                ways,
                ..L1Config::kb(16)
            },
            ..EngineConfig::default()
        })
        .collect();
    let bl = engine_run_all(store, &village, FilterMode::Bilinear, &configs, false)?;
    let tl = engine_run_all(store, &village, FilterMode::Trilinear, &configs, false)?;
    for (b, l) in bl.iter().zip(&tl) {
        t.row(vec![
            b.config().l1.ways.to_string(),
            pct(b.totals().l1_hit_rate()),
            pct(l.totals().l1_hit_rate()),
        ]);
    }
    out.table(
        "l1_assoc_sweep",
        "L1 associativity sweep (16 KB, Village)",
        &t,
    );
    out.note(
        "Hakura/§2.3: 2-way set-associativity suffices to avoid trilinear conflict \
              misses; more ways buy little.",
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mltc_scene::WorkloadParams;

    fn tiny_scale() -> Scale {
        Scale {
            name: "tiny",
            params: WorkloadParams::tiny(),
        }
    }

    fn temp_out(tag: &str) -> (Outputs, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!("mltc_ext_{tag}_{}", std::process::id()));
        (Outputs::quiet(&dir), dir)
    }

    #[test]
    fn storage_ablation_shows_tiled_advantage() {
        let (out, dir) = temp_out("storage");
        ablate_storage(&tiny_scale(), &out, &TraceStore::in_memory()).unwrap();
        let csv = std::fs::read_to_string(dir.join("ablate_storage.csv")).unwrap();
        let rows: Vec<Vec<String>> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(str::to_string).collect())
            .collect();
        assert_eq!(rows.len(), 4);
        // For each L1 size: tiled bilinear hit rate >= linear.
        for pair in rows.chunks(2) {
            let tiled: f64 = pair[0][2].parse().unwrap();
            let linear: f64 = pair[1][2].parse().unwrap();
            assert!(tiled >= linear - 0.5, "tiled {tiled} vs linear {linear}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tile_sweep_produces_all_rows() {
        let (out, dir) = temp_out("tiles");
        l2_tile_sweep(&tiny_scale(), &out, &TraceStore::in_memory()).unwrap();
        let csv = std::fs::read_to_string(dir.join("l2_tile_sweep.csv")).unwrap();
        assert_eq!(csv.lines().count(), 1 + 6, "2 workloads x 3 tile sizes");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn associativity_is_monotone_enough() {
        let (out, dir) = temp_out("assoc");
        l1_assoc_sweep(&tiny_scale(), &out, &TraceStore::in_memory()).unwrap();
        let csv = std::fs::read_to_string(dir.join("l1_assoc_sweep.csv")).unwrap();
        let rates: Vec<f64> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(1).unwrap().parse().unwrap())
            .collect();
        // Direct-mapped should not beat 8-way.
        assert!(rates[3] >= rates[0] - 0.5, "{rates:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
