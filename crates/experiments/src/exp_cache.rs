//! Cache-simulation experiments: Figs. 9–10 and Tables 2, 3, 5–7 (§5.3–5.4).

use crate::runner::{engine_run_all, pct, RunError};
use crate::store::TraceStore;
use crate::{Outputs, Scale, TextTable};
use mltc_core::{model, EngineConfig, L1Config, L2Config, SimEngine};
use mltc_scene::Workload;
use mltc_trace::FilterMode;

/// The L1 size sweep of Fig. 9 / Table 2 (KB).
const L1_SIZES_KB: [usize; 5] = [2, 4, 8, 16, 32];

fn l1_sweep_configs() -> Vec<EngineConfig> {
    L1_SIZES_KB
        .iter()
        .map(|&kb| EngineConfig {
            l1: L1Config::kb(kb),
            ..EngineConfig::default()
        })
        .collect()
}

/// The architecture comparison set of Fig. 10 / Table 3.
fn arch_configs() -> Vec<EngineConfig> {
    let base = EngineConfig::default();
    vec![
        EngineConfig {
            l1: L1Config::kb(2),
            ..base
        },
        EngineConfig {
            l1: L1Config::kb(16),
            ..base
        },
        EngineConfig {
            l1: L1Config::kb(2),
            l2: Some(L2Config::mb(2)),
            ..base
        },
        EngineConfig {
            l1: L1Config::kb(2),
            l2: Some(L2Config::mb(4)),
            ..base
        },
        EngineConfig {
            l1: L1Config::kb(2),
            l2: Some(L2Config::mb(8)),
            ..base
        },
    ]
}

/// **Fig. 9** — per-frame L1 miss rate by cache size (Village).
pub fn fig9(scale: &Scale, out: &Outputs, store: &TraceStore) -> Result<(), RunError> {
    let village = store.village(&scale.params);
    for filter in [FilterMode::Bilinear, FilterMode::Trilinear] {
        let engines = engine_run_all(store, &village, filter, &l1_sweep_configs(), false)?;
        let mut per_frame = TextTable::new(
            &std::iter::once("frame".to_string())
                .chain(L1_SIZES_KB.iter().map(|kb| format!("miss_{kb}KB")))
                .collect::<Vec<_>>()
                .iter()
                .map(String::as_str)
                .collect::<Vec<_>>(),
        );
        for f in 0..village.frame_count as usize {
            let mut row = vec![f.to_string()];
            for e in &engines {
                row.push(format!("{:.4}", e.frames()[f].l1_miss_rate()));
            }
            per_frame.row(row);
        }
        let csv = out.artefact_path(&format!("fig9_{}_frames.csv", filter.name()));
        std::fs::write(&csv, per_frame.csv_string()).expect("write per-frame csv");

        let mut t = TextTable::new(&["L1 size", "avg miss %", "peak miss %"]);
        for (e, kb) in engines.iter().zip(L1_SIZES_KB) {
            let peak = e
                .frames()
                .iter()
                .map(|f| f.l1_miss_rate())
                .fold(0.0f64, f64::max);
            t.row(vec![
                format!("{kb} KB"),
                pct(1.0 - e.totals().l1_hit_rate()),
                pct(peak),
            ]);
        }
        out.table(
            &format!("fig9_{}", filter.name()),
            &format!("Fig. 9 — L1 miss rate by cache size (Village, {filter})"),
            &t,
        );
        out.note(&format!("  per-frame series: {}", csv.display()));
    }
    out.note(
        "Paper: 16 KB hits almost as well as 32 KB; even 2 KB peaks below \
              ~4% (bilinear) / ~5% (trilinear).",
    );
    Ok(())
}

/// **Table 2** — average L1 hit rates, bilinear and trilinear (Village).
pub fn table2(scale: &Scale, out: &Outputs, store: &TraceStore) -> Result<(), RunError> {
    let village = store.village(&scale.params);
    let bl = engine_run_all(
        store,
        &village,
        FilterMode::Bilinear,
        &l1_sweep_configs(),
        false,
    )?;
    let tl = engine_run_all(
        store,
        &village,
        FilterMode::Trilinear,
        &l1_sweep_configs(),
        false,
    )?;
    let mut t = TextTable::new(&["L1 size", "BL hit rate %", "TL hit rate %"]);
    for ((b, l), kb) in bl.iter().zip(&tl).zip(L1_SIZES_KB) {
        t.row(vec![
            format!("{kb} KB"),
            pct(b.totals().l1_hit_rate()),
            pct(l.totals().l1_hit_rate()),
        ]);
    }
    out.table("table2", "Table 2 — average L1 hit rates (Village)", &t);
    Ok(())
}

/// **Fig. 10** — per-frame download bandwidth with and without L2 cache
/// (trilinear; 2/16 KB L1 alone, 2 KB L1 + 2/4/8 MB L2 of 16×16 tiles).
pub fn fig10(scale: &Scale, out: &Outputs, store: &TraceStore) -> Result<(), RunError> {
    for w in [store.village(&scale.params), store.city(&scale.params)] {
        let engines = engine_run_all(store, &w, FilterMode::Trilinear, &arch_configs(), false)?;
        let labels: Vec<String> = engines.iter().map(|e| e.config().label()).collect();
        let mut headers = vec!["frame".to_string()];
        headers.extend(labels.iter().cloned());
        let mut per_frame = TextTable::new(&headers.iter().map(String::as_str).collect::<Vec<_>>());
        for f in 0..w.frame_count as usize {
            let mut row = vec![f.to_string()];
            for e in &engines {
                row.push(format!("{:.3}", e.frames()[f].host_mb()));
            }
            per_frame.row(row);
        }
        let csv = out.artefact_path(&format!("fig10_{}_frames.csv", w.name));
        std::fs::write(&csv, per_frame.csv_string()).expect("write per-frame csv");

        let mut t = TextTable::new(&["architecture", "avg MB/frame", "MB/s @30Hz"]);
        for e in &engines {
            let avg = e.totals().host_mb() / w.frame_count as f64;
            t.row(vec![
                e.config().label(),
                format!("{avg:.2}"),
                format!("{:.0}", avg * 30.0),
            ]);
        }
        out.table(
            &format!("fig10_{}", w.name),
            &format!("Fig. 10 ({}) — download bandwidth with/without L2", w.name),
            &t,
        );
        out.note(&format!("  per-frame series: {}", csv.display()));
    }
    out.note(
        "Paper (Village): 2 KB L1 alone needs ~1.6 GB/s at 30 Hz, 16 KB alone ~475 MB/s; \
              a 2 MB L2 under a 2 KB L1 cuts it to ~92 MB/s (5x-18x saving).",
    );
    Ok(())
}

/// **Table 3** — average AGP / system-memory bandwidth (MB/frame), bilinear
/// and trilinear, with and without L2.
pub fn table3(scale: &Scale, out: &Outputs, store: &TraceStore) -> Result<(), RunError> {
    let mut t = TextTable::new(&["workload", "architecture", "BL MB/frame", "TL MB/frame"]);
    for w in [store.village(&scale.params), store.city(&scale.params)] {
        let bl = engine_run_all(store, &w, FilterMode::Bilinear, &arch_configs(), false)?;
        let tl = engine_run_all(store, &w, FilterMode::Trilinear, &arch_configs(), false)?;
        for (b, l) in bl.iter().zip(&tl) {
            t.row(vec![
                w.name.to_string(),
                b.config().label(),
                format!("{:.2}", b.totals().host_mb() / w.frame_count as f64),
                format!("{:.2}", l.totals().host_mb() / w.frame_count as f64),
            ]);
        }
    }
    out.table(
        "table3",
        "Table 3 — average download bandwidth (MB/frame)",
        &t,
    );
    Ok(())
}

/// One measured hit-rate row: workload, filter, L1 hit rate, conditional L2
/// full / partial hit rates.
pub(crate) struct HitRates {
    pub workload: &'static str,
    pub filter: FilterMode,
    pub h1: f64,
    pub h2_full: f64,
    pub h2_partial: f64,
}

pub(crate) fn measure_hit_rates(
    scale: &Scale,
    store: &TraceStore,
) -> Result<Vec<HitRates>, RunError> {
    let cfg = EngineConfig {
        l1: L1Config::kb(2),
        l2: Some(L2Config::mb(2)),
        ..EngineConfig::default()
    };
    let mut rows = Vec::new();
    for w in [store.village(&scale.params), store.city(&scale.params)] {
        for filter in [FilterMode::Bilinear, FilterMode::Trilinear] {
            let engines = engine_run_all(store, &w, filter, std::slice::from_ref(&cfg), false)?;
            let tot = engines[0].totals();
            rows.push(HitRates {
                workload: if w.name == "village" {
                    "village"
                } else {
                    "city"
                },
                filter,
                h1: tot.l1_hit_rate(),
                h2_full: tot.l2_full_hit_rate(),
                h2_partial: tot.l2_partial_hit_rate(),
            });
        }
    }
    Ok(rows)
}

/// **Tables 5–6** — measured L1 hit rate and conditional L2 full/partial
/// hit rates (2 KB L1 + 2 MB L2, 16×16 tiles).
pub fn table5_6(scale: &Scale, out: &Outputs, store: &TraceStore) -> Result<(), RunError> {
    let mut t = TextTable::new(&[
        "workload",
        "filter",
        "L1 hit %",
        "L2 full hit %",
        "L2 partial hit %",
    ]);
    for r in measure_hit_rates(scale, store)? {
        t.row(vec![
            r.workload.to_string(),
            r.filter.to_string(),
            pct(r.h1),
            pct(r.h2_full),
            pct(r.h2_partial),
        ]);
    }
    out.table(
        "table5_6",
        "Tables 5-6 — measured L1/L2 hit rates (2 KB L1, 2 MB L2)",
        &t,
    );
    out.note(
        "L2 rates are conditional on an L1 miss (paper fn. 5); inclusion is not \
              guaranteed between the levels.",
    );
    Ok(())
}

/// **Table 7** — fractional advantage `f` of L2 caching (`c = 8`), plus a
/// sensitivity sweep over `c`.
pub fn table7(scale: &Scale, out: &Outputs, store: &TraceStore) -> Result<(), RunError> {
    let rates = measure_hit_rates(scale, store)?;
    let mut t = TextTable::new(&[
        "workload", "filter", "f (c=2)", "f (c=4)", "f (c=8)", "f (c=16)",
    ]);
    for r in &rates {
        let mut row = vec![r.workload.to_string(), r.filter.to_string()];
        for c in [2.0, 4.0, 8.0, 16.0] {
            row.push(format!(
                "{:.3}",
                model::fractional_advantage(c, r.h2_full, r.h2_partial)
            ));
        }
        t.row(row);
    }
    out.table(
        "table7",
        "Table 7 — fractional advantage f of L2 caching",
        &t,
    );
    out.note(
        "f < 1 means the L2 architecture beats the pull architecture on L1 misses; \
              the paper reports f < 1 even at c = 8.",
    );
    Ok(())
}

/// **Performance model** (§5.4.2) — predicted average texel access times
/// for the pull and L2 architectures from the measured hit rates, with
/// `t1 = 1` cycle, an L1-miss download cost `t3 = 8`, and a full L2 miss
/// bounded by `c = 8` downloads (the paper's assumption).
pub fn perf_model(scale: &Scale, out: &Outputs, store: &TraceStore) -> Result<(), RunError> {
    let rates = measure_hit_rates(scale, store)?;
    let (t1, t3, c) = (1.0, 8.0, 8.0);
    let mut t = TextTable::new(&[
        "workload", "filter", "h1 %", "f (c=8)", "A_pull", "A_L2", "speedup",
    ]);
    for r in &rates {
        let f = model::fractional_advantage(c, r.h2_full, r.h2_partial);
        let a_pull = model::avg_access_time_pull(r.h1, t1, t3);
        let a_l2 = model::avg_access_time_l2(r.h1, t1, t3, f);
        t.row(vec![
            r.workload.to_string(),
            r.filter.to_string(),
            pct(r.h1),
            format!("{f:.3}"),
            format!("{a_pull:.3}"),
            format!("{a_l2:.3}"),
            format!("{:.2}x", a_pull / a_l2),
        ]);
    }
    out.table(
        "perf_model",
        "Performance model (§5.4.2) — average texel access time",
        &t,
    );
    out.note(
        "A = t1 + (1-h1)*f*t3 cycles per texel; f < 1 means the L2 architecture's \
              L1 misses are cheaper on average than the pull architecture's.",
    );
    Ok(())
}

/// Shared assertion helper for integration tests: bandwidth must shrink
/// monotonically as the architecture gains cache.
pub fn host_bytes_by_architecture(
    store: &TraceStore,
    w: &Workload,
    filter: FilterMode,
) -> Result<Vec<(String, u64)>, RunError> {
    let engines = engine_run_all(store, w, filter, &arch_configs(), false)?;
    Ok(engines
        .iter()
        .map(|e: &SimEngine| (e.config().label(), e.totals().host_bytes))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mltc_scene::WorkloadParams;

    fn tiny_scale() -> Scale {
        Scale {
            name: "tiny",
            params: WorkloadParams::tiny(),
        }
    }

    #[test]
    fn architecture_set_matches_paper() {
        let cfgs = arch_configs();
        assert_eq!(cfgs.len(), 5);
        assert!(cfgs[0].l2.is_none() && cfgs[1].l2.is_none());
        assert_eq!(cfgs[4].l2.unwrap().size_bytes, 8 << 20);
    }

    #[test]
    fn table2_runs_and_orders_hit_rates() {
        let dir = std::env::temp_dir().join(format!("mltc_cache_{}", std::process::id()));
        let out = Outputs::quiet(&dir);
        table2(&tiny_scale(), &out, &TraceStore::in_memory()).unwrap();
        let csv = std::fs::read_to_string(dir.join("table2.csv")).unwrap();
        assert_eq!(csv.lines().count(), 1 + 5);
        // Hit rates must be non-decreasing with L1 size.
        let rates: Vec<f64> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(1).unwrap().parse().unwrap())
            .collect();
        for pair in rates.windows(2) {
            assert!(
                pair[1] >= pair[0] - 0.5,
                "bigger L1 must not hit much worse: {rates:?}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hit_rate_measurement_is_sane() {
        let rows = measure_hit_rates(&tiny_scale(), &TraceStore::in_memory()).unwrap();
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.h1 > 0.5 && r.h1 <= 1.0, "{} h1 = {}", r.workload, r.h1);
            assert!(r.h2_full + r.h2_partial <= 1.0 + 1e-9);
            let f = model::fractional_advantage(8.0, r.h2_full, r.h2_partial);
            assert!(f < 8.0);
        }
    }
}
