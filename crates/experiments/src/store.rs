//! Render-once trace store: memoized + persisted frame traces shared
//! across the whole experiment suite.
//!
//! Every experiment in this crate consumes the same handful of rendered
//! animations (Village / City / future-City, with or without a z-prepass,
//! scanline or tiled traversal) and replays them through many cache
//! configurations. Pre-store, each experiment re-rasterized its workload
//! from scratch — the same animation dozens of times per suite run. The
//! [`TraceStore`] renders each unique trace **exactly once per process**
//! and, when given a directory, **once per machine**: traces persist as
//! versioned binary files (the `MLTS` container from
//! [`mltc_trace::codec`]) and later runs replay from disk without touching
//! the rasterizer at all.
//!
//! # Cache key
//!
//! A trace is identified by [`TraceKey`]: workload identity
//! ([`WorkloadKind`] + [`WorkloadParams`]), the z-prepass flag, and the
//! fragment [`Traversal`] order. The texture **filter is deliberately not
//! part of the key**: a [`FrameTrace`] records per-pixel requests whose
//! expansion into taps happens at *simulation* time
//! ([`mltc_core::SimEngine::try_run_frame_as`]), so one point-sampled
//! render serves every filter mode. This alone collapses the suite's
//! renders by another 2–3× beyond memoization.
//!
//! # Memory budget and handle states
//!
//! Traces are large (a default-scale Village animation is gigabytes of
//! requests), so the store enforces a byte budget (default 4 GiB):
//!
//! * within budget, a trace lives in memory ([`TraceHandle::Memory`]) and
//!   replays at full speed;
//! * over budget, least-recently-used traces are demoted — to their disk
//!   file when one exists ([`TraceHandle::Disk`], replayed by streaming),
//!   otherwise dropped for on-demand re-render;
//! * a trace too large to hold that also could not be persisted degrades
//!   to [`TraceHandle::Uncached`]: callers render live, which is exactly
//!   the pre-store behaviour.
//!
//! Corrupt, truncated, or wrong-version files are never fatal: the codec
//! reports a typed [`CodecError`], the store counts it and silently
//! re-renders.

use crate::runner::lock_clean;
use mltc_raster::Traversal;
use mltc_scene::{Workload, WorkloadKind, WorkloadParams};
use mltc_telemetry::Recorder;
use mltc_trace::codec::{CodecError, TraceFileReader, TraceFileWriter};
use mltc_trace::{FilterMode, FrameStatsCollector, FrameTrace, FrameWorkingSet, WorkloadSummary};
use std::collections::HashMap;
use std::fs::{self, File};
use std::io::{BufReader, BufWriter};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Instant;

/// Default in-memory budget: 4 GiB of decoded trace data.
pub const DEFAULT_MEM_BUDGET: u64 = 4 << 30;

/// Identity of one rendered animation trace.
///
/// Note the absence of a filter field — see the [module docs](self) for
/// why traces are filter-independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceKey {
    /// Which procedural workload.
    pub kind: WorkloadKind,
    /// Its scale parameters.
    pub params: WorkloadParams,
    /// Whether the §6 z-buffer-before-texture prepass was applied.
    pub zprepass: bool,
    /// Fragment traversal order (§2.3 tiled ablation).
    pub traversal: Traversal,
}

impl TraceKey {
    /// The key for a workload's trace under the given render options.
    pub fn of(w: &Workload, zprepass: bool, traversal: Traversal) -> Self {
        Self {
            kind: w.kind,
            params: w.params,
            zprepass,
            traversal,
        }
    }
}

/// A fully decoded animation: every frame behind an [`Arc`] so replay
/// workers share them without copying.
#[derive(Debug)]
pub struct TraceSet {
    /// The frames, in animation order.
    pub frames: Vec<Arc<FrameTrace>>,
    /// Approximate decoded size in bytes (for budget accounting).
    pub bytes: u64,
}

/// Where a requested trace currently lives.
#[derive(Debug, Clone)]
pub enum TraceHandle {
    /// Decoded and resident: replay directly.
    Memory(Arc<TraceSet>),
    /// Persisted but not resident: stream frames from this file.
    Disk(PathBuf),
    /// Too large to hold and not persisted: render live per use.
    Uncached,
}

/// Approximate decoded footprint of one frame (requests + fixed overhead).
fn frame_cost(t: &FrameTrace) -> u64 {
    (t.requests.len() * std::mem::size_of::<mltc_trace::PixelRequest>()) as u64 + 96
}

enum CellState {
    Empty,
    Building,
    Ready(TraceHandle),
}

/// What [`TraceStore::try_load`] found on disk.
enum LoadResult {
    /// A good file (loaded or deferred to streaming).
    Loaded(TraceHandle),
    /// No persisted file for this key.
    Missing,
    /// A file exists but is corrupt, truncated, or stale — re-rendering
    /// and re-persisting it counts as a heal.
    Damaged,
}

/// One key's slot: a tiny state machine guarded by a mutex + condvar so
/// concurrent requests for the same key render it once and the rest wait.
struct KeyCell {
    state: Mutex<CellState>,
    cv: Condvar,
    last_used: AtomicU64,
}

impl KeyCell {
    fn new() -> Self {
        Self {
            state: Mutex::new(CellState::Empty),
            cv: Condvar::new(),
            last_used: AtomicU64::new(0),
        }
    }
}

/// Restores a cell to `Empty` (and wakes waiters) if the builder panics,
/// so a failed render never wedges every other thread on the condvar.
struct BuildGuard<'a> {
    cell: &'a KeyCell,
    armed: bool,
}

impl Drop for BuildGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            *lock_clean(&self.cell.state) = CellState::Empty;
            self.cell.cv.notify_all();
        }
    }
}

/// Per-frame working-set statistics for a whole workload, memoized by the
/// store (replaces ad-hoc `stats_run` re-renders).
#[derive(Debug)]
pub struct StatsBundle {
    /// Per-frame §4 working sets, in animation order.
    pub frames: Vec<FrameWorkingSet>,
    /// The aggregate summary over those frames.
    pub summary: WorkloadSummary,
}

#[derive(Default)]
struct Counters {
    renders: AtomicU64,
    mem_hits: AtomicU64,
    disk_hits: AtomicU64,
    frames_rendered: AtomicU64,
    fragments_rasterized: AtomicU64,
    render_nanos: AtomicU64,
    taps_simulated: AtomicU64,
    sim_nanos: AtomicU64,
    bytes_written: AtomicU64,
    bytes_read: AtomicU64,
    corrupt_files: AtomicU64,
    stale_files: AtomicU64,
    io_errors: AtomicU64,
    evictions: AtomicU64,
    spills: AtomicU64,
    healed_files: AtomicU64,
}

/// A point-in-time snapshot of the store's instrumentation, cheap to copy
/// into reports ([`TraceStore::snapshot`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Animations rendered from scratch this process.
    pub renders: u64,
    /// Requests served from a resident [`TraceHandle::Memory`].
    pub mem_hits: u64,
    /// Requests served from a persisted file (loaded or streamed).
    pub disk_hits: u64,
    /// Frames rasterized (cold renders only).
    pub frames_rendered: u64,
    /// Textured fragments rasterized (cold renders only).
    pub fragments_rasterized: u64,
    /// Wall time spent rasterizing, in nanoseconds.
    pub render_nanos: u64,
    /// Texture taps replayed through cache simulations.
    pub taps_simulated: u64,
    /// Wall time spent simulating, in nanoseconds.
    pub sim_nanos: u64,
    /// Bytes persisted to trace files.
    pub bytes_written: u64,
    /// Bytes loaded back from trace files.
    pub bytes_read: u64,
    /// Files rejected by the codec (corrupt / truncated / wrong version).
    pub corrupt_files: u64,
    /// Files whose embedded key did not match (stale generator).
    pub stale_files: u64,
    /// Filesystem errors swallowed while persisting.
    pub io_errors: u64,
    /// Resident traces demoted to disk or dropped by the byte budget.
    pub evictions: u64,
    /// Renders that overflowed the budget mid-flight and kept only the
    /// on-disk copy.
    pub spills: u64,
    /// Damaged (corrupt or stale) persisted files replaced by a good copy
    /// from the re-render that followed.
    pub healed_files: u64,
    /// Decoded bytes currently resident.
    pub resident_bytes: u64,
}

impl StoreStats {
    /// Fragments rasterized per second of render wall time.
    pub fn fragments_per_sec(&self) -> f64 {
        per_sec(self.fragments_rasterized, self.render_nanos)
    }

    /// Texture taps simulated per second of simulation wall time.
    pub fn taps_per_sec(&self) -> f64 {
        per_sec(self.taps_simulated, self.sim_nanos)
    }
}

fn per_sec(count: u64, nanos: u64) -> f64 {
    if nanos == 0 {
        0.0
    } else {
        count as f64 / (nanos as f64 / 1e9)
    }
}

struct StoreInner {
    dir: Option<PathBuf>,
    budget: AtomicU64,
    clock: AtomicU64,
    mem_bytes: AtomicU64,
    entries: Mutex<HashMap<TraceKey, Arc<KeyCell>>>,
    workloads: Mutex<HashMap<(WorkloadKind, WorkloadParams), Arc<Workload>>>,
    bundles: Mutex<HashMap<(WorkloadKind, WorkloadParams), Arc<StatsBundle>>>,
    counters: Counters,
    /// Telemetry recorder shared by the store and the replay machinery
    /// riding on it (defaults to disabled). Behind a mutex only because it
    /// is set after construction; cloned out once per operation.
    recorder: Mutex<Recorder>,
}

/// The render-once trace store. Cheap to clone (shared internally); see
/// the [module docs](self) for the full design.
#[derive(Clone)]
pub struct TraceStore {
    inner: Arc<StoreInner>,
}

impl TraceStore {
    fn new(dir: Option<PathBuf>) -> Self {
        Self {
            inner: Arc::new(StoreInner {
                dir,
                budget: AtomicU64::new(DEFAULT_MEM_BUDGET),
                clock: AtomicU64::new(0),
                mem_bytes: AtomicU64::new(0),
                entries: Mutex::new(HashMap::new()),
                workloads: Mutex::new(HashMap::new()),
                bundles: Mutex::new(HashMap::new()),
                counters: Counters::default(),
                recorder: Mutex::new(Recorder::disabled()),
            }),
        }
    }

    /// A store that memoizes within this process only.
    pub fn in_memory() -> Self {
        Self::new(None)
    }

    /// A store that additionally persists traces under `dir` (created on
    /// first write). Leftover temporary files from crashed writers are
    /// swept on construction.
    pub fn persistent(dir: impl Into<PathBuf>) -> Self {
        let dir = dir.into();
        sweep_stale_tmp(&dir);
        Self::new(Some(dir))
    }

    /// Overrides the in-memory byte budget (default 4 GiB).
    pub fn with_budget(self, bytes: u64) -> Self {
        self.inner.budget.store(bytes, Relaxed);
        self
    }

    /// Attaches a telemetry recorder: store operations emit spans and
    /// hit/miss counters to it, and the replay machinery running on this
    /// store instruments its engines through it. The default (a disabled
    /// recorder) records nothing.
    pub fn with_recorder(self, recorder: Recorder) -> Self {
        *lock_clean(&self.inner.recorder) = recorder;
        self
    }

    /// The attached telemetry recorder (disabled unless
    /// [`with_recorder`](Self::with_recorder) was called).
    pub fn recorder(&self) -> Recorder {
        lock_clean(&self.inner.recorder).clone()
    }

    /// The directory traces persist to, when persistence is enabled.
    pub fn dir(&self) -> Option<&Path> {
        self.inner.dir.as_deref()
    }

    /// Current instrumentation counters.
    pub fn snapshot(&self) -> StoreStats {
        let c = &self.inner.counters;
        StoreStats {
            renders: c.renders.load(Relaxed),
            mem_hits: c.mem_hits.load(Relaxed),
            disk_hits: c.disk_hits.load(Relaxed),
            frames_rendered: c.frames_rendered.load(Relaxed),
            fragments_rasterized: c.fragments_rasterized.load(Relaxed),
            render_nanos: c.render_nanos.load(Relaxed),
            taps_simulated: c.taps_simulated.load(Relaxed),
            sim_nanos: c.sim_nanos.load(Relaxed),
            bytes_written: c.bytes_written.load(Relaxed),
            bytes_read: c.bytes_read.load(Relaxed),
            corrupt_files: c.corrupt_files.load(Relaxed),
            stale_files: c.stale_files.load(Relaxed),
            io_errors: c.io_errors.load(Relaxed),
            evictions: c.evictions.load(Relaxed),
            spills: c.spills.load(Relaxed),
            healed_files: c.healed_files.load(Relaxed),
            resident_bytes: self.inner.mem_bytes.load(Relaxed),
        }
    }

    /// Records simulation throughput (called by the run machinery after
    /// each replay).
    pub fn note_sim(&self, taps: u64, nanos: u64) {
        self.inner.counters.taps_simulated.fetch_add(taps, Relaxed);
        self.inner.counters.sim_nanos.fetch_add(nanos, Relaxed);
    }

    /// The memoized workload for `kind` at `params`: builds the scene at
    /// most once per process (scenes carry full texture pyramids, so
    /// rebuilding them per experiment was measurable).
    pub fn workload(&self, kind: WorkloadKind, params: &WorkloadParams) -> Arc<Workload> {
        if let Some(w) = lock_clean(&self.inner.workloads).get(&(kind, *params)) {
            return w.clone();
        }
        // Build outside the lock; a concurrent duplicate build loses the
        // race below and is dropped.
        let built = Arc::new(kind.build(params));
        lock_clean(&self.inner.workloads)
            .entry((kind, *params))
            .or_insert(built)
            .clone()
    }

    /// Memoized Village workload.
    pub fn village(&self, params: &WorkloadParams) -> Arc<Workload> {
        self.workload(WorkloadKind::Village, params)
    }

    /// Memoized City workload.
    pub fn city(&self, params: &WorkloadParams) -> Arc<Workload> {
        self.workload(WorkloadKind::City, params)
    }

    /// Memoized future-City workload.
    pub fn future_city(&self, params: &WorkloadParams) -> Arc<Workload> {
        self.workload(WorkloadKind::FutureCity, params)
    }

    /// The trace for `w` under the given render options: served from
    /// memory or disk when available, rendered (exactly once, however many
    /// threads ask) otherwise. Infallible — every failure mode degrades to
    /// re-rendering, which is the pre-store behaviour.
    pub fn get_or_render(&self, w: &Workload, zprepass: bool, traversal: Traversal) -> TraceHandle {
        let key = TraceKey::of(w, zprepass, traversal);
        let cell = {
            let mut entries = lock_clean(&self.inner.entries);
            entries
                .entry(key)
                .or_insert_with(|| Arc::new(KeyCell::new()))
                .clone()
        };
        cell.last_used
            .store(self.inner.clock.fetch_add(1, Relaxed) + 1, Relaxed);
        {
            let mut st = lock_clean(&cell.state);
            loop {
                match &*st {
                    CellState::Ready(h) => {
                        match h {
                            TraceHandle::Memory(_) => {
                                self.inner.counters.mem_hits.fetch_add(1, Relaxed);
                                self.recorder().counter("store/mem_hits").incr();
                            }
                            TraceHandle::Disk(_) | TraceHandle::Uncached => {
                                self.inner.counters.disk_hits.fetch_add(1, Relaxed);
                                self.recorder().counter("store/disk_hits").incr();
                            }
                        };
                        return h.clone();
                    }
                    CellState::Building => {
                        st = cell.cv.wait(st).unwrap_or_else(PoisonError::into_inner)
                    }
                    CellState::Empty => {
                        *st = CellState::Building;
                        break;
                    }
                }
            }
        }
        let mut guard = BuildGuard {
            cell: &cell,
            armed: true,
        };
        let handle = self.produce(&key, w);
        *lock_clean(&cell.state) = CellState::Ready(handle.clone());
        guard.armed = false;
        drop(guard);
        cell.cv.notify_all();
        if let TraceHandle::Memory(set) = &handle {
            self.inner.mem_bytes.fetch_add(set.bytes, Relaxed);
            self.evict_to_budget(&key);
        }
        handle
    }

    /// Starts rendering (or loading) a trace on a detached background
    /// thread so it is warm by the time an experiment asks — the overlap
    /// that keeps the rasterizer busy while replay workers drain the
    /// previous key.
    pub fn prefetch(&self, w: Arc<Workload>, zprepass: bool, traversal: Traversal) {
        let store = self.clone();
        std::thread::spawn(move || {
            let rec = store.recorder();
            let _span = rec.span(&format!("store/prefetch/{}", w.kind.name()));
            let _ = store.get_or_render(&w, zprepass, traversal);
        });
    }

    /// The memoized §4 working-set statistics for a workload (computed
    /// from the cached late-depth scanline trace, never a dedicated
    /// render).
    pub fn stats_bundle(&self, w: &Workload) -> Arc<StatsBundle> {
        let id = (w.kind, w.params);
        if let Some(b) = lock_clean(&self.inner.bundles).get(&id) {
            return b.clone();
        }
        let handle = self.get_or_render(w, false, Traversal::Scanline);
        let collector = FrameStatsCollector::new(w.registry());
        let frames = Vec::with_capacity(w.frame_count as usize);
        let mut state = (collector, frames);
        self.visit_or_rerender(
            &handle,
            w,
            false,
            Traversal::Scanline,
            |t, s: &mut (FrameStatsCollector, Vec<FrameWorkingSet>)| {
                let ws = s.0.process_frame(t);
                s.1.push(ws);
            },
            |s| {
                s.0.reset();
                s.1.clear();
            },
            &mut state,
        );
        let frames = state.1;
        let summary = WorkloadSummary::from_frames(&frames, w.width, w.height);
        let bundle = Arc::new(StatsBundle { frames, summary });
        lock_clean(&self.inner.bundles)
            .entry(id)
            .or_insert(bundle)
            .clone()
    }

    /// Mean per-frame depth complexity under the given prepass setting,
    /// derived from the cached trace (accumulated in frame order, so the
    /// result is bit-identical to the historical per-frame re-render
    /// loop).
    pub fn mean_depth_complexity(&self, w: &Workload, zprepass: bool) -> f64 {
        let handle = self.get_or_render(w, zprepass, Traversal::Scanline);
        let mut acc = (0.0f64, 0u64);
        self.visit_or_rerender(
            &handle,
            w,
            zprepass,
            Traversal::Scanline,
            |t, acc: &mut (f64, u64)| {
                acc.0 += t.depth_complexity();
                acc.1 += 1;
            },
            |acc| *acc = (0.0, 0),
            &mut acc,
        );
        if acc.1 == 0 {
            0.0
        } else {
            acc.0 / acc.1 as f64
        }
    }

    /// Visits every frame of `handle` in order, threading `state` through
    /// the visitor. A disk stream that turns out corrupt mid-flight calls
    /// `reset` and re-renders from scratch, so accumulators never see a
    /// frame twice.
    #[allow(clippy::too_many_arguments)]
    fn visit_or_rerender<S>(
        &self,
        handle: &TraceHandle,
        w: &Workload,
        zprepass: bool,
        traversal: Traversal,
        mut visit: impl FnMut(&FrameTrace, &mut S),
        reset: impl FnOnce(&mut S),
        state: &mut S,
    ) {
        match handle {
            TraceHandle::Memory(set) => {
                for t in &set.frames {
                    visit(t, state);
                }
            }
            TraceHandle::Disk(path) => {
                let rec = self.recorder();
                let span = rec.span(&format!("store/disk-stream/{}", w.kind.name()));
                let streamed = stream_trace_file(path, |t| visit(&t, state));
                span.end();
                if streamed.is_err() {
                    self.inner.counters.corrupt_files.fetch_add(1, Relaxed);
                    reset(state);
                    let _span = rec.span(&format!("store/render/{}", w.kind.name()));
                    w.render_animation_traversal(FilterMode::Point, zprepass, traversal, |t| {
                        visit(&t, state)
                    });
                }
            }
            TraceHandle::Uncached => {
                w.render_animation_traversal(FilterMode::Point, zprepass, traversal, |t| {
                    visit(&t, state)
                });
            }
        }
    }

    fn produce(&self, key: &TraceKey, w: &Workload) -> TraceHandle {
        match self.try_load(key) {
            LoadResult::Loaded(h) => h,
            LoadResult::Missing => self.render(key, w, false),
            // A damaged file exists on disk: the render below re-persists
            // over it, which is the heal.
            LoadResult::Damaged => self.render(key, w, true),
        }
    }

    /// Attempts to serve `key` from its persisted file. Any codec error —
    /// corruption, truncation, a foreign format version — is counted and
    /// answered with [`LoadResult::Damaged`] (re-render + heal), never a
    /// panic.
    fn try_load(&self, key: &TraceKey) -> LoadResult {
        let Some(path) = self.file_path(key) else {
            return LoadResult::Missing;
        };
        let Ok(file) = File::open(&path) else {
            return LoadResult::Missing;
        };
        let file_len = file.metadata().map(|m| m.len()).unwrap_or(0);
        let c = &self.inner.counters;
        let mut reader = match TraceFileReader::new(BufReader::new(file)) {
            Ok(r) => r,
            Err(_) => {
                c.corrupt_files.fetch_add(1, Relaxed);
                return LoadResult::Damaged;
            }
        };
        if reader.key() != key_string(key) {
            c.stale_files.fetch_add(1, Relaxed);
            return LoadResult::Damaged;
        }
        if file_len > self.inner.budget.load(Relaxed) {
            // Too big to decode into memory: stream it per replay.
            c.disk_hits.fetch_add(1, Relaxed);
            return LoadResult::Loaded(TraceHandle::Disk(path));
        }
        let mut frames = Vec::with_capacity(reader.frame_count() as usize);
        let mut bytes = 0u64;
        for _ in 0..reader.frame_count() {
            match reader.read_frame() {
                Ok(t) => {
                    bytes += frame_cost(&t);
                    frames.push(Arc::new(t));
                }
                Err(_) => {
                    c.corrupt_files.fetch_add(1, Relaxed);
                    return LoadResult::Damaged;
                }
            }
        }
        c.disk_hits.fetch_add(1, Relaxed);
        c.bytes_read.fetch_add(file_len, Relaxed);
        LoadResult::Loaded(TraceHandle::Memory(Arc::new(TraceSet { frames, bytes })))
    }

    /// Renders the animation once, persisting frames as they stream out
    /// (when a directory is configured) and keeping them resident while
    /// the budget allows. Returned request buffers are recycled into the
    /// rasterizer whenever a frame is not being retained. `healing` marks
    /// a render replacing a damaged persisted file: successfully
    /// re-persisting then counts as a heal.
    fn render(&self, key: &TraceKey, w: &Workload, healing: bool) -> TraceHandle {
        let rec = self.recorder();
        let _span = rec.span(&format!(
            "store/{}/{}",
            if healing { "heal" } else { "render" },
            key.kind.name()
        ));
        rec.counter("store/renders").incr();
        let c = &self.inner.counters;
        c.renders.fetch_add(1, Relaxed);
        let start = Instant::now();
        let budget = self.inner.budget.load(Relaxed);
        let mut final_path = self.file_path(key);

        let mut writer = None;
        let mut tmp_path: Option<PathBuf> = None;
        if let (Some(path), Some(dir)) = (&final_path, &self.inner.dir) {
            let _ = fs::create_dir_all(dir);
            let tmp = tmp_file_path(path);
            match File::create(&tmp) {
                Ok(f) => {
                    match TraceFileWriter::new(BufWriter::new(f), &key_string(key), w.frame_count) {
                        Ok(wr) => {
                            writer = Some(wr);
                            tmp_path = Some(tmp);
                        }
                        Err(_) => {
                            c.io_errors.fetch_add(1, Relaxed);
                            let _ = fs::remove_file(&tmp);
                        }
                    }
                }
                Err(_) => {
                    c.io_errors.fetch_add(1, Relaxed);
                }
            }
        }

        let mut frames: Vec<Arc<FrameTrace>> = Vec::with_capacity(w.frame_count as usize);
        let mut bytes = 0u64;
        let mut keep_in_memory = true;
        let mut frames_rendered = 0u64;
        let mut fragments = 0u64;
        w.render_animation_feed(FilterMode::Point, key.zprepass, key.traversal, |t| {
            frames_rendered += 1;
            fragments += t.pixels_rendered;
            let mut write_failed = false;
            if let Some(wr) = writer.as_mut() {
                if wr.write_frame(&t).is_err() {
                    write_failed = true;
                }
            }
            if write_failed {
                c.io_errors.fetch_add(1, Relaxed);
                writer = None;
            }
            let cost = frame_cost(&t);
            if keep_in_memory && bytes + cost > budget {
                keep_in_memory = false;
                frames.clear();
                frames.shrink_to_fit();
                bytes = 0;
                if writer.is_some() {
                    c.spills.fetch_add(1, Relaxed);
                }
            }
            if keep_in_memory {
                bytes += cost;
                frames.push(Arc::new(t));
                None
            } else {
                Some(t.requests)
            }
        });
        c.frames_rendered.fetch_add(frames_rendered, Relaxed);
        c.fragments_rasterized.fetch_add(fragments, Relaxed);
        c.render_nanos
            .fetch_add(start.elapsed().as_nanos() as u64, Relaxed);

        // A writer only exists alongside its tmp and final paths (set as
        // one unit above), so destructure the trio instead of unwrapping.
        let mut persisted_path = None;
        if let (Some(wr), Some(tmp), Some(path)) = (writer, tmp_path.take(), final_path.take()) {
            match wr.finish() {
                Ok(_) => {
                    if fs::rename(&tmp, &path).is_ok() {
                        if healing {
                            c.healed_files.fetch_add(1, Relaxed);
                            rec.counter("store/healed_files").incr();
                        }
                        if let Ok(meta) = fs::metadata(&path) {
                            c.bytes_written.fetch_add(meta.len(), Relaxed);
                        }
                        persisted_path = Some(path);
                    } else {
                        c.io_errors.fetch_add(1, Relaxed);
                        let _ = fs::remove_file(&tmp);
                    }
                }
                Err(_) => {
                    c.io_errors.fetch_add(1, Relaxed);
                    let _ = fs::remove_file(&tmp);
                }
            }
        }
        if let Some(tmp) = tmp_path {
            let _ = fs::remove_file(tmp);
        }

        if keep_in_memory {
            TraceHandle::Memory(Arc::new(TraceSet { frames, bytes }))
        } else if let Some(path) = persisted_path {
            TraceHandle::Disk(path)
        } else {
            // Nowhere to put it: callers render live, as before the store.
            TraceHandle::Uncached
        }
    }

    /// Demotes least-recently-used resident traces until the budget holds,
    /// sparing `keep` (the trace being returned right now). Lock order is
    /// entries map → cell, matching every other path.
    fn evict_to_budget(&self, keep: &TraceKey) {
        let budget = self.inner.budget.load(Relaxed);
        if self.inner.mem_bytes.load(Relaxed) <= budget {
            return;
        }
        let mut candidates: Vec<(u64, TraceKey, Arc<KeyCell>)> = {
            let entries = lock_clean(&self.inner.entries);
            entries
                .iter()
                .filter(|(k, _)| *k != keep)
                .map(|(k, cell)| (cell.last_used.load(Relaxed), *k, cell.clone()))
                .collect()
        };
        candidates.sort_by_key(|(stamp, _, _)| *stamp);
        for (_, key, cell) in candidates {
            if self.inner.mem_bytes.load(Relaxed) <= budget {
                break;
            }
            let mut st = lock_clean(&cell.state);
            if let CellState::Ready(TraceHandle::Memory(set)) = &*st {
                let freed = set.bytes;
                *st = match self.file_path(&key) {
                    Some(path) if path.exists() => CellState::Ready(TraceHandle::Disk(path)),
                    _ => CellState::Empty,
                };
                drop(st);
                self.inner.mem_bytes.fetch_sub(freed, Relaxed);
                self.inner.counters.evictions.fetch_add(1, Relaxed);
            }
        }
    }

    fn file_path(&self, key: &TraceKey) -> Option<PathBuf> {
        self.inner.dir.as_ref().map(|d| d.join(file_name(key)))
    }
}

/// Streams every frame of a persisted trace file through `visit`.
/// Crate-internal: the replay machinery uses this for over-budget traces.
/// One scratch buffer holds each encoded frame in turn; only the decoded
/// [`FrameTrace`] handed to `visit` is allocated per frame.
pub(crate) fn stream_trace_file(
    path: &Path,
    mut visit: impl FnMut(FrameTrace),
) -> Result<u32, CodecError> {
    let file = File::open(path).map_err(CodecError::Io)?;
    let mut reader = TraceFileReader::new(BufReader::new(file))?;
    let n = reader.frame_count();
    let mut scratch = Vec::new();
    for _ in 0..n {
        visit(reader.read_frame_into(&mut scratch)?.into_frame());
    }
    Ok(n)
}

/// [`stream_trace_file`] without materializing frames at all: `visit`
/// receives each frame's raw encoded bytes (already validated end to end),
/// to be decoded in place by [`mltc_trace::codec::frame_cursor`] wherever
/// they are consumed. Buffers are recycled through a small pool once every
/// holder of a frame's `Arc` drops it, so a replay that keeps up allocates
/// a handful of buffers total instead of one per frame.
pub(crate) fn stream_trace_file_raw(
    path: &Path,
    mut visit: impl FnMut(&Arc<Vec<u8>>),
) -> Result<u32, CodecError> {
    let file = File::open(path).map_err(CodecError::Io)?;
    let mut reader = TraceFileReader::new(BufReader::new(file))?;
    let n = reader.frame_count();
    let mut pool: Vec<Arc<Vec<u8>>> = Vec::new();
    for _ in 0..n {
        // Reclaim a buffer nobody else holds any more, if there is one.
        let mut buf = match pool.iter().position(|a| Arc::strong_count(a) == 1) {
            // A lost race on the refcount just costs one pooled buffer.
            Some(i) => Arc::try_unwrap(pool.swap_remove(i)).unwrap_or_default(),
            None => Vec::new(),
        };
        reader.read_frame_into(&mut buf)?;
        let shared = Arc::new(buf);
        visit(&shared);
        pool.push(shared);
    }
    Ok(n)
}

pub(crate) fn trav_tag(t: Traversal) -> String {
    match t {
        Traversal::Scanline => "scanline".to_string(),
        Traversal::Tiled(edge) => format!("tiled{edge}"),
    }
}

/// The canonical identity string embedded in (and verified against) every
/// persisted trace file.
pub(crate) fn key_string(key: &TraceKey) -> String {
    let p = &key.params;
    format!(
        "mltc-trace kind={} w={} h={} frames={} ts={} seed={:#x} zprepass={} traversal={}",
        key.kind.name(),
        p.width,
        p.height,
        p.frames,
        p.texture_scale,
        p.seed,
        key.zprepass,
        trav_tag(key.traversal)
    )
}

fn file_name(key: &TraceKey) -> String {
    let p = &key.params;
    format!(
        "{}-{}x{}-f{}-ts{}-s{:x}-{}-{}.mltct",
        key.kind.name(),
        p.width,
        p.height,
        p.frames,
        p.texture_scale,
        p.seed,
        if key.zprepass { "zpre" } else { "late" },
        trav_tag(key.traversal)
    )
}

fn tmp_file_path(final_path: &Path) -> PathBuf {
    let mut name = final_path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(format!(".tmp.{}", std::process::id()));
    final_path.with_file_name(name)
}

/// Deletes temporary files abandoned by a previous crashed writer.
fn sweep_stale_tmp(dir: &Path) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        if name.to_string_lossy().contains(".mltct.tmp.") {
            let _ = fs::remove_file(entry.path());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_village() -> Workload {
        Workload::village(&WorkloadParams::tiny())
    }

    fn frame_counts(h: &TraceHandle) -> usize {
        match h {
            TraceHandle::Memory(set) => set.frames.len(),
            other => panic!("expected a resident handle, got {other:?}"),
        }
    }

    #[test]
    fn second_request_is_a_memory_hit() {
        let store = TraceStore::in_memory();
        let w = tiny_village();
        let a = store.get_or_render(&w, false, Traversal::Scanline);
        let b = store.get_or_render(&w, false, Traversal::Scanline);
        assert_eq!(frame_counts(&a), w.frame_count as usize);
        let stats = store.snapshot();
        assert_eq!(stats.renders, 1);
        assert_eq!(stats.mem_hits, 1);
        assert_eq!(stats.frames_rendered, w.frame_count as u64);
        assert!(stats.fragments_rasterized > 0);
        // The two handles share the same frames.
        match (&a, &b) {
            (TraceHandle::Memory(x), TraceHandle::Memory(y)) => {
                assert!(Arc::ptr_eq(x, y));
            }
            other => panic!("expected resident handles, got {other:?}"),
        }
    }

    #[test]
    fn distinct_options_are_distinct_keys() {
        let store = TraceStore::in_memory();
        let w = tiny_village();
        store.get_or_render(&w, false, Traversal::Scanline);
        store.get_or_render(&w, true, Traversal::Scanline);
        store.get_or_render(&w, false, Traversal::Tiled(8));
        assert_eq!(store.snapshot().renders, 3);
    }

    #[test]
    fn persisted_trace_survives_a_new_store() {
        let dir = std::env::temp_dir().join(format!("mltc-store-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let w = tiny_village();
        {
            let store = TraceStore::persistent(&dir);
            store.get_or_render(&w, false, Traversal::Scanline);
            let s = store.snapshot();
            assert_eq!(s.renders, 1);
            assert!(s.bytes_written > 0, "cold run must persist");
        }
        let store = TraceStore::persistent(&dir);
        let h = store.get_or_render(&w, false, Traversal::Scanline);
        let s = store.snapshot();
        assert_eq!(s.renders, 0, "warm run must not rasterize");
        assert_eq!(s.disk_hits, 1);
        assert!(s.bytes_read > 0);
        assert_eq!(frame_counts(&h), w.frame_count as usize);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_file_is_counted_and_rerendered() {
        let dir = std::env::temp_dir().join(format!("mltc-store-corrupt-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let w = tiny_village();
        {
            let store = TraceStore::persistent(&dir);
            store.get_or_render(&w, false, Traversal::Scanline);
        }
        // Truncate the persisted file mid-body.
        let key = TraceKey::of(&w, false, Traversal::Scanline);
        let path = dir.join(file_name(&key));
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();

        let store = TraceStore::persistent(&dir);
        let h = store.get_or_render(&w, false, Traversal::Scanline);
        let s = store.snapshot();
        assert_eq!(s.corrupt_files, 1);
        assert_eq!(s.renders, 1, "corruption falls back to rendering");
        assert_eq!(s.healed_files, 1, "the re-render re-persisted the file");
        assert_eq!(frame_counts(&h), w.frame_count as usize);
        // The re-render healed the file.
        let healed = TraceStore::persistent(&dir);
        healed.get_or_render(&w, false, Traversal::Scanline);
        let hs = healed.snapshot();
        assert_eq!(hs.renders, 0);
        assert_eq!(hs.healed_files, 0, "a clean load is not a heal");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recorder_sees_store_spans_and_hit_counters() {
        let rec = Recorder::enabled();
        let store = TraceStore::in_memory().with_recorder(rec.clone());
        let w = tiny_village();
        store.get_or_render(&w, false, Traversal::Scanline);
        store.get_or_render(&w, false, Traversal::Scanline);
        let snap = rec.snapshot();
        assert_eq!(snap.counters["store/renders"], 1);
        assert_eq!(snap.counters["store/mem_hits"], 1);
        assert!(
            snap.spans.iter().any(|s| s.name == "store/render/village"),
            "render span recorded, got {:?}",
            snap.spans
        );
        // And the store's own counters agree with the recorder's.
        let stats = store.snapshot();
        assert_eq!(stats.renders, snap.counters["store/renders"]);
        assert_eq!(stats.mem_hits, snap.counters["store/mem_hits"]);
    }

    #[test]
    fn over_budget_in_memory_store_degrades_to_uncached() {
        let store = TraceStore::in_memory().with_budget(64);
        let w = tiny_village();
        let h = store.get_or_render(&w, false, Traversal::Scanline);
        assert!(matches!(h, TraceHandle::Uncached), "got {h:?}");
        // Sticky: asking again does not re-render eagerly.
        let h2 = store.get_or_render(&w, false, Traversal::Scanline);
        assert!(matches!(h2, TraceHandle::Uncached));
        assert_eq!(store.snapshot().renders, 1);
    }

    #[test]
    fn over_budget_persistent_store_streams_from_disk() {
        let dir = std::env::temp_dir().join(format!("mltc-store-budget-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = TraceStore::persistent(&dir).with_budget(64);
        let w = tiny_village();
        let h = store.get_or_render(&w, false, Traversal::Scanline);
        match &h {
            TraceHandle::Disk(path) => {
                let mut n = 0;
                stream_trace_file(path, |_| n += 1).unwrap();
                assert_eq!(n, w.frame_count);
            }
            other => panic!("expected a disk handle, got {other:?}"),
        }
        assert_eq!(store.snapshot().spills, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn eviction_demotes_the_least_recently_used_key() {
        let store = TraceStore::in_memory();
        let w = tiny_village();
        let a = store.get_or_render(&w, false, Traversal::Scanline);
        let a_bytes = match &a {
            TraceHandle::Memory(set) => set.bytes,
            other => panic!("expected resident, got {other:?}"),
        };
        // Shrink the budget so the *next* resident trace evicts this one.
        let store = store.with_budget(a_bytes);
        store.get_or_render(&w, true, Traversal::Scanline);
        let s = store.snapshot();
        assert!(s.evictions >= 1, "stats: {s:?}");
        // The evicted key re-renders on demand (no file to demote to).
        store.get_or_render(&w, false, Traversal::Scanline);
        assert_eq!(store.snapshot().renders, 3);
    }

    #[test]
    fn stats_bundle_is_memoized_and_matches_a_direct_run() {
        let store = TraceStore::in_memory();
        let w = tiny_village();
        let a = store.stats_bundle(&w);
        let b = store.stats_bundle(&w);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(store.snapshot().renders, 1);

        let mut collector = FrameStatsCollector::new(w.registry());
        let mut frames = Vec::new();
        w.render_animation(FilterMode::Point, false, |t| {
            frames.push(collector.process_frame(&t));
        });
        let direct = WorkloadSummary::from_frames(&frames, w.width, w.height);
        assert_eq!(a.frames.len(), frames.len());
        assert_eq!(
            a.summary.depth_complexity.to_bits(),
            direct.depth_complexity.to_bits()
        );
        assert_eq!(
            a.summary.expected_working_set.to_bits(),
            direct.expected_working_set.to_bits()
        );
    }

    #[test]
    fn mean_depth_complexity_matches_per_frame_rendering() {
        let store = TraceStore::in_memory();
        let w = tiny_village();
        let via_store = store.mean_depth_complexity(&w, true);
        let mut acc = 0.0;
        let mut n = 0u32;
        for f in 0..w.frame_count {
            acc += w
                .trace_frame_zprepass(f, FilterMode::Point)
                .depth_complexity();
            n += 1;
        }
        let direct = acc / n as f64;
        assert_eq!(via_store.to_bits(), direct.to_bits());
    }

    #[test]
    fn workloads_are_memoized() {
        let store = TraceStore::in_memory();
        let p = WorkloadParams::tiny();
        let a = store.village(&p);
        let b = store.village(&p);
        assert!(Arc::ptr_eq(&a, &b));
        let c = store.city(&p);
        assert_eq!(c.kind, WorkloadKind::City);
    }

    #[test]
    fn concurrent_requests_render_once() {
        let store = TraceStore::in_memory();
        let w = Arc::new(tiny_village());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let store = store.clone();
                let w = w.clone();
                scope.spawn(move || {
                    store.get_or_render(&w, false, Traversal::Scanline);
                });
            }
        });
        assert_eq!(store.snapshot().renders, 1);
    }

    #[test]
    fn key_strings_and_file_names_are_distinct_per_key() {
        let w = tiny_village();
        let keys = [
            TraceKey::of(&w, false, Traversal::Scanline),
            TraceKey::of(&w, true, Traversal::Scanline),
            TraceKey::of(&w, false, Traversal::Tiled(8)),
            TraceKey::of(&w, false, Traversal::Tiled(16)),
        ];
        let mut strings: Vec<String> = keys.iter().map(key_string).collect();
        let mut names: Vec<String> = keys.iter().map(file_name).collect();
        strings.sort();
        strings.dedup();
        names.sort();
        names.dedup();
        assert_eq!(strings.len(), keys.len());
        assert_eq!(names.len(), keys.len());
        assert!(names.iter().all(|n| n.ends_with(".mltct")));
    }
}
