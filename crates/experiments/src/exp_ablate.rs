//! Ablations: the design alternatives the paper calls out.
//!
//! * replacement policy (clock vs true LRU vs FIFO) — §6 asks for
//!   "alternative algorithms to clock … to avoid 'pesky' behaviour";
//! * z-buffering before texture retrieval — §6 future work;
//! * sector mapping on/off — §5.2's download-granularity decision.

use crate::runner::{engine_run_all, pct, stats_run, RunError};
use crate::store::TraceStore;
use crate::{Outputs, Scale, TextTable};
use mltc_core::{EngineConfig, L1Config, L2Config, ReplacementPolicy};
use mltc_trace::FilterMode;

fn ml_config() -> EngineConfig {
    EngineConfig {
        l1: L1Config::kb(2),
        l2: Some(L2Config::mb(2)),
        ..EngineConfig::default()
    }
}

/// **Ablation A** — L2 replacement policy: clock vs LRU vs FIFO, plus the
/// clock's victim-search cost ("pesky" behaviour, §5.4.2/§6).
pub fn ablate_replacement(
    scale: &Scale,
    out: &Outputs,
    store: &TraceStore,
) -> Result<(), RunError> {
    let mut t = TextTable::new(&[
        "workload",
        "policy",
        "avg MB/frame",
        "L2 full hit %",
        "clock max search",
        "max cycles @16/cycle",
    ]);
    for w in [store.village(&scale.params), store.city(&scale.params)] {
        let configs: Vec<EngineConfig> = [
            ReplacementPolicy::Clock,
            ReplacementPolicy::Lru,
            ReplacementPolicy::Fifo,
        ]
        .iter()
        .map(|&policy| EngineConfig {
            l2: Some(L2Config {
                policy,
                ..L2Config::mb(2)
            }),
            ..ml_config()
        })
        .collect();
        let engines = engine_run_all(store, &w, FilterMode::Trilinear, &configs, false)?;
        for e in &engines {
            let tot = e.totals();
            let l2 = e.l2().expect("ablation engines all have L2");
            let cs = l2.clock_stats();
            let policy = l2.config().policy;
            t.row(vec![
                w.name.to_string(),
                policy.to_string(),
                format!("{:.2}", tot.host_mb() / w.frame_count as f64),
                pct(tot.l2_full_hit_rate()),
                if policy == ReplacementPolicy::Clock {
                    cs.max_search.to_string()
                } else {
                    "-".into()
                },
                if policy == ReplacementPolicy::Clock {
                    cs.max_cycles(16).to_string()
                } else {
                    "-".into()
                },
            ]);
        }
    }
    out.table(
        "ablate_replacement",
        "Ablation A — L2 replacement policy",
        &t,
    );
    out.note(
        "Paper: clock approximates LRU well; searching active bits 16 at a time \
              always found a victim within 32 cycles on these workloads.",
    );
    Ok(())
}

/// **Ablation B** — z-buffering before texture retrieval (§6): depth
/// complexity collapses toward 1 and download traffic shrinks.
pub fn ablate_zprepass(scale: &Scale, out: &Outputs, store: &TraceStore) -> Result<(), RunError> {
    let mut t = TextTable::new(&[
        "workload",
        "mode",
        "depth complexity",
        "avg MB/frame (TL, 2KB+2MB)",
    ]);
    for w in [store.village(&scale.params), store.city(&scale.params)] {
        for (label, zpre) in [("late-Z (paper)", false), ("z-pre-pass (§6)", true)] {
            // Depth complexity straight off the cached traces — the same
            // traces the bandwidth run below replays, never a re-render.
            let d = if zpre {
                store.mean_depth_complexity(&w, true)
            } else {
                stats_run(store, &w).summary.depth_complexity
            };
            let engines = engine_run_all(store, &w, FilterMode::Trilinear, &[ml_config()], zpre)?;
            t.row(vec![
                w.name.to_string(),
                label.to_string(),
                format!("{d:.2}"),
                format!(
                    "{:.2}",
                    engines[0].totals().host_mb() / w.frame_count as f64
                ),
            ]);
        }
    }
    out.table(
        "ablate_zprepass",
        "Ablation B — z-buffer before texture retrieval",
        &t,
    );
    out.note(
        "Paper §6: z-buffering before texture fetch 'should reduce texture depth to \
              something close to one' and save memory and bandwidth.",
    );
    Ok(())
}

/// **Ablation C** — sector mapping on/off: downloading whole L2 blocks on a
/// miss vs only the missing L1 sub-block.
pub fn ablate_sector(scale: &Scale, out: &Outputs, store: &TraceStore) -> Result<(), RunError> {
    let mut t = TextTable::new(&[
        "workload",
        "sector mapping",
        "avg MB/frame",
        "L2 full hit %",
    ]);
    for w in [store.village(&scale.params), store.city(&scale.params)] {
        let configs = [
            ml_config(),
            EngineConfig {
                l2: Some(L2Config {
                    sector_mapping: false,
                    ..L2Config::mb(2)
                }),
                ..ml_config()
            },
        ];
        let engines = engine_run_all(store, &w, FilterMode::Trilinear, &configs, false)?;
        for e in &engines {
            let tot = e.totals();
            t.row(vec![
                w.name.to_string(),
                if e.l2().unwrap().config().sector_mapping {
                    "on (paper)".into()
                } else {
                    "off".into()
                },
                format!("{:.2}", tot.host_mb() / w.frame_count as f64),
                pct(tot.l2_full_hit_rate()),
            ]);
        }
    }
    out.table("ablate_sector", "Ablation C — sector mapping", &t);
    out.note(
        "Sector mapping exists 'in order not to exceed the download bandwidth of the \
              pull architecture' (§5.2): whole-block fills trade bandwidth for hit rate.",
    );
    Ok(())
}

/// **Future workloads** (paper §6, third item): "investigation with
/// 'workloads of the future' are worthy of pursuit" — a larger City with
/// double-resolution facades, swept over L2 sizes to find where the
/// inter-frame working set stops fitting.
pub fn future_workloads(scale: &Scale, out: &Outputs, store: &TraceStore) -> Result<(), RunError> {
    use mltc_trace::TileClass;

    let mut t = TextTable::new(&[
        "workload",
        "texture MB",
        "d",
        "L2 16x16 mean MB",
        "avg MB/frame 2MB L2",
        "avg MB/frame 4MB L2",
        "avg MB/frame 8MB L2",
    ]);
    for w in [store.city(&scale.params), store.future_city(&scale.params)] {
        let bundle = stats_run(store, &w);
        let s = &bundle.summary;
        let configs: Vec<EngineConfig> = [2usize, 4, 8]
            .iter()
            .map(|&mb| EngineConfig {
                l1: L1Config::kb(2),
                l2: Some(L2Config::mb(mb)),
                ..EngineConfig::default()
            })
            .collect();
        let engines = engine_run_all(store, &w, FilterMode::Trilinear, &configs, false)?;
        let mut row = vec![
            w.name.to_string(),
            format!(
                "{:.1}",
                w.registry().host_byte_size() as f64 / (1 << 20) as f64
            ),
            format!("{:.2}", s.depth_complexity),
            format!(
                "{:.2}",
                s.mean_total_bytes[TileClass::L2x16.idx()] / (1 << 20) as f64
            ),
        ];
        for e in &engines {
            row.push(format!(
                "{:.2}",
                e.totals().host_mb() / w.frame_count as f64
            ));
        }
        t.row(row);
    }
    out.table(
        "future_workloads",
        "Future workloads (§6) — the City of the future vs today",
        &t,
    );
    out.note(
        "The larger working set of the future City needs a larger L2 before \
              bandwidth stops falling — the scaling question §6 poses.",
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mltc_scene::WorkloadParams;

    #[test]
    fn replacement_ablation_produces_rows_for_all_policies() {
        let dir = std::env::temp_dir().join(format!("mltc_abl_{}", std::process::id()));
        let out = Outputs::quiet(&dir);
        let scale = Scale {
            name: "tiny",
            params: WorkloadParams::tiny(),
        };
        ablate_replacement(&scale, &out, &TraceStore::in_memory()).unwrap();
        let csv = std::fs::read_to_string(dir.join("ablate_replacement.csv")).unwrap();
        assert_eq!(csv.lines().count(), 1 + 6, "2 workloads x 3 policies");
        assert!(csv.contains("clock") && csv.contains("lru") && csv.contains("fifo"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zprepass_reduces_depth_and_bandwidth() {
        let scale = Scale {
            name: "tiny",
            params: WorkloadParams::tiny(),
        };
        let store = TraceStore::in_memory();
        let w = store.village(&scale.params);
        let late =
            engine_run_all(&store, &w, FilterMode::Trilinear, &[ml_config()], false).unwrap();
        let pre = engine_run_all(&store, &w, FilterMode::Trilinear, &[ml_config()], true).unwrap();
        assert!(pre[0].totals().l1_accesses < late[0].totals().l1_accesses);
        assert!(pre[0].totals().host_bytes <= late[0].totals().host_bytes);
    }
}
