//! Working-set statistics experiments: Table 1 and Figs. 4–6 (§4.2).

use crate::runner::{mb, mb_f, stats_run, RunError};
use crate::store::TraceStore;
use crate::{Outputs, Scale, TextTable};
use mltc_scene::Workload;
use mltc_trace::{FrameWorkingSet, TileClass, WorkloadSummary};
use std::sync::Arc;

fn each_workload(scale: &Scale, store: &TraceStore) -> Vec<Arc<Workload>> {
    vec![store.village(&scale.params), store.city(&scale.params)]
}

/// **Table 1** — per-workload statistics and expected inter-frame working
/// set (1024×768 at full scale, 16×16 L2 tiles, point sampling).
pub fn table1(scale: &Scale, out: &Outputs, store: &TraceStore) -> Result<(), RunError> {
    let mut t = TextTable::new(&[
        "workload",
        "depth complexity d",
        "block utilization (16x16)",
        "expected W (MB)",
        "paper d",
        "paper util",
        "paper W",
    ]);
    for w in each_workload(scale, store) {
        let bundle = stats_run(store, &w);
        let s = &bundle.summary;
        let (pd, pu, pw) = if w.name == "village" {
            ("3.8", "4.7", "2.43 MB")
        } else {
            ("1.9", "7.8", "0.73 MB")
        };
        t.row(vec![
            w.name.to_string(),
            format!("{:.2}", s.depth_complexity),
            format!("{:.2}", s.utilization_16),
            mb_f(s.expected_working_set),
            pd.to_string(),
            pu.to_string(),
            pw.to_string(),
        ]);
    }
    out.table(
        "table1",
        "Table 1 — statistics and expected inter-frame working set",
        &t,
    );
    Ok(())
}

/// **Fig. 4** — per-frame minimum memory: texture loaded in host memory,
/// push-architecture minimum, and L2 minimum for 32×32 / 16×16 / 8×8 tiles.
pub fn fig4(scale: &Scale, out: &Outputs, store: &TraceStore) -> Result<(), RunError> {
    for w in each_workload(scale, store) {
        let loaded = w.registry().host_byte_size() as u64;
        let bundle = stats_run(store, &w);
        let (frames, s) = (&bundle.frames[..], &bundle.summary);
        let mut t = TextTable::new(&[
            "frame",
            "loaded_MB",
            "push_min_MB",
            "l2_32x32_MB",
            "l2_16x16_MB",
            "l2_8x8_MB",
        ]);
        for f in frames {
            t.row(vec![
                f.frame.to_string(),
                mb(loaded),
                mb(f.push_min_bytes),
                mb(f.total_bytes(TileClass::L2x32)),
                mb(f.total_bytes(TileClass::L2x16)),
                mb(f.total_bytes(TileClass::L2x8)),
            ]);
        }
        out.table(
            &format!("fig4_{}", w.name),
            &format!("Fig. 4 ({}) — minimum memory per frame", w.name),
            &summarise_fig4(frames, s, loaded),
        );
        // The full per-frame series goes to its own CSV.
        let csv_path = out.artefact_path(&format!("fig4_{}_frames.csv", w.name));
        std::fs::write(&csv_path, t.csv_string()).expect("write per-frame csv");
        out.note(&format!("  per-frame series: {}", csv_path.display()));
    }
    out.note(
        "Paper: L2 (16x16) needs ~3.9 MB (Village) / ~1.5 MB (City) vs push 12 / 7.4 MB \
         — a 3x-5x saving; 16x16 tiles need little more memory than 8x8.",
    );
    Ok(())
}

fn summarise_fig4(frames: &[FrameWorkingSet], s: &WorkloadSummary, loaded: u64) -> TextTable {
    let mut t = TextTable::new(&["series", "mean MB/frame", "peak MB/frame"]);
    t.row(vec![
        "texture loaded in host".into(),
        mb(loaded),
        mb(loaded),
    ]);
    let peak_push = frames.iter().map(|f| f.push_min_bytes).max().unwrap_or(0);
    let mean_push =
        frames.iter().map(|f| f.push_min_bytes).sum::<u64>() as f64 / frames.len() as f64;
    t.row(vec!["push minimum".into(), mb_f(mean_push), mb(peak_push)]);
    for class in [TileClass::L2x32, TileClass::L2x16, TileClass::L2x8] {
        let peak = frames
            .iter()
            .map(|f| f.total_bytes(class))
            .max()
            .unwrap_or(0);
        t.row(vec![
            format!("L2 minimum ({class})"),
            mb_f(s.mean_total_bytes[class.idx()]),
            mb(peak),
        ]);
    }
    t
}

/// **Fig. 5** — total vs new L2 memory per frame (16×16 tiles).
pub fn fig5(scale: &Scale, out: &Outputs, store: &TraceStore) -> Result<(), RunError> {
    for w in each_workload(scale, store) {
        let bundle = stats_run(store, &w);
        let (frames, s) = (&bundle.frames[..], &bundle.summary);
        let mut per_frame = TextTable::new(&["frame", "total_MB", "new_MB"]);
        for f in frames {
            per_frame.row(vec![
                f.frame.to_string(),
                mb(f.total_bytes(TileClass::L2x16)),
                mb(f.new_bytes(TileClass::L2x16)),
            ]);
        }
        let csv_path = out.artefact_path(&format!("fig5_{}_frames.csv", w.name));
        std::fs::write(&csv_path, per_frame.csv_string()).expect("write per-frame csv");

        let mut t = TextTable::new(&["series", "mean per frame"]);
        t.row(vec![
            "total 16x16 memory".into(),
            format!("{} MB", mb_f(s.mean_total_bytes[TileClass::L2x16.idx()])),
        ]);
        t.row(vec![
            "new 16x16 memory".into(),
            format!(
                "{:.0} KB",
                s.mean_new_bytes[TileClass::L2x16.idx()] / 1024.0
            ),
        ]);
        out.table(
            &format!("fig5_{}", w.name),
            &format!("Fig. 5 ({}) — total vs new L2 memory", w.name),
            &t,
        );
        out.note(&format!("  per-frame series: {}", csv_path.display()));
    }
    out.note(
        "Paper: the inter-frame working set changes slowly — on average only ~150 KB \
              (Village) / ~40 KB (City) of required texture is new each frame.",
    );
    Ok(())
}

/// **Fig. 6** — minimum L1 download bandwidth per frame (total vs new, for
/// 8×8 and 4×4 L1 tiles).
pub fn fig6(scale: &Scale, out: &Outputs, store: &TraceStore) -> Result<(), RunError> {
    for w in each_workload(scale, store) {
        let bundle = stats_run(store, &w);
        let (frames, s) = (&bundle.frames[..], &bundle.summary);
        let mut per_frame = TextTable::new(&[
            "frame",
            "total_4x4_MB",
            "new_4x4_MB",
            "total_8x8_MB",
            "new_8x8_MB",
        ]);
        for f in frames {
            per_frame.row(vec![
                f.frame.to_string(),
                mb(f.total_bytes(TileClass::L1x4)),
                mb(f.new_bytes(TileClass::L1x4)),
                mb(f.total_bytes(TileClass::L1x8)),
                mb(f.new_bytes(TileClass::L1x8)),
            ]);
        }
        let csv_path = out.artefact_path(&format!("fig6_{}_frames.csv", w.name));
        std::fs::write(&csv_path, per_frame.csv_string()).expect("write per-frame csv");

        let mut t = TextTable::new(&["series", "mean per frame"]);
        for (label, class) in [("4x4", TileClass::L1x4), ("8x8", TileClass::L1x8)] {
            t.row(vec![
                format!("total downloaded ({label})"),
                format!("{} MB", mb_f(s.mean_total_bytes[class.idx()])),
            ]);
            t.row(vec![
                format!("new downloaded ({label})"),
                format!("{:.0} KB", s.mean_new_bytes[class.idx()] / 1024.0),
            ]);
        }
        out.table(
            &format!("fig6_{}", w.name),
            &format!("Fig. 6 ({}) — minimum L1 download bandwidth", w.name),
            &t,
        );
        out.note(&format!("  per-frame series: {}", csv_path.display()));
    }
    out.note(
        "Paper: ~2 MB (Village) / ~510 KB (City) of L1 tiles hit per frame, of which \
              only ~110 KB / ~23 KB are new — the bandwidth L2 caching saves.",
    );
    Ok(())
}

/// `calibrate` — workload calibration report: everything Table 1 / Fig. 4
/// rest on, plus scene inventory.
pub fn calibrate(scale: &Scale, out: &Outputs, store: &TraceStore) -> Result<(), RunError> {
    let mut t = TextTable::new(&[
        "workload",
        "objects",
        "triangles",
        "textures",
        "texture_MB",
        "d",
        "util_16x16",
        "push_min_peak_MB",
        "push_min_mean_MB",
        "l2_16_mean_MB",
    ]);
    for w in each_workload(scale, store) {
        let bundle = stats_run(store, &w);
        let (frames, s) = (&bundle.frames[..], &bundle.summary);
        let mean_push =
            frames.iter().map(|f| f.push_min_bytes).sum::<u64>() as f64 / frames.len() as f64;
        t.row(vec![
            w.name.to_string(),
            w.scene().objects().len().to_string(),
            w.scene().triangle_count().to_string(),
            w.registry().live_count().to_string(),
            mb(w.registry().host_byte_size() as u64),
            format!("{:.2}", s.depth_complexity),
            format!("{:.2}", s.utilization_16),
            mb(s.push_peak_bytes),
            mb_f(mean_push),
            mb_f(s.mean_total_bytes[TileClass::L2x16.idx()]),
        ]);
    }
    out.table("calibrate", "Workload calibration (paper targets: Village d=3.8 u=4.7 push=12MB; City d=1.9 u=7.8 push=7.4MB)", &t);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mltc_scene::WorkloadParams;

    #[test]
    fn stats_experiments_run_at_tiny_scale() {
        let dir = std::env::temp_dir().join(format!("mltc_stats_{}", std::process::id()));
        let out = Outputs::quiet(&dir);
        let scale = Scale {
            name: "tiny",
            params: WorkloadParams::tiny(),
        };
        let store = TraceStore::in_memory();
        table1(&scale, &out, &store).unwrap();
        fig5(&scale, &out, &store).unwrap();
        assert_eq!(store.snapshot().renders, 2, "one render per workload");
        let t1 = std::fs::read_to_string(dir.join("table1.csv")).unwrap();
        assert_eq!(t1.lines().count(), 3, "header + village + city");
        assert!(dir.join("fig5_village_frames.csv").exists());
        assert!(dir.join("fig5_city_frames.csv").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
