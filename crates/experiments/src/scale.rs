//! Run scales.

use mltc_scene::WorkloadParams;

/// How big a run: resolution, animation length and texture sizes.
///
/// All scales execute identical code; EXPERIMENTS.md records which scale
/// produced each published number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Scale name (`"quick"`, `"default"`, `"full"`).
    pub name: &'static str,
    /// Parameters for both workloads (frame count 0 = paper default).
    pub params: WorkloadParams,
}

impl Scale {
    /// Minimal runs for CI end-to-end checks: 64×48, 4 frames,
    /// eighth-size textures.
    pub fn tiny() -> Self {
        Self {
            name: "tiny",
            params: WorkloadParams::tiny(),
        }
    }

    /// Tiny runs for smoke tests and benches: 256×192, 24 frames,
    /// quarter-size textures.
    pub fn quick() -> Self {
        Self {
            name: "quick",
            params: WorkloadParams::quick(),
        }
    }

    /// The default experiment scale: 640×480, 120 frames, full textures.
    pub fn default_scale() -> Self {
        Self {
            name: "default",
            params: WorkloadParams::default_scale(),
        }
    }

    /// The paper's scale: 1024×768, 411/525 frames, full textures.
    pub fn full() -> Self {
        Self {
            name: "full",
            params: WorkloadParams::paper_scale(),
        }
    }

    /// Parses a scale flag (`--tiny`, `--quick`, `--default`, `--full`).
    pub fn from_flag(flag: &str) -> Option<Self> {
        match flag.trim_start_matches("--") {
            "tiny" => Some(Self::tiny()),
            "quick" => Some(Self::quick()),
            "default" => Some(Self::default_scale()),
            "full" => Some(Self::full()),
            _ => None,
        }
    }

    /// Builds the Village at this scale.
    pub fn village(&self) -> mltc_scene::Workload {
        mltc_scene::Workload::village(&self.params)
    }

    /// Builds the City at this scale.
    pub fn city(&self) -> mltc_scene::Workload {
        mltc_scene::Workload::city(&self.params)
    }
}

impl Default for Scale {
    fn default() -> Self {
        Self::default_scale()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_parse() {
        assert_eq!(Scale::from_flag("--tiny").unwrap().name, "tiny");
        assert_eq!(Scale::from_flag("--quick").unwrap().name, "quick");
        assert_eq!(Scale::from_flag("full").unwrap().name, "full");
        assert!(Scale::from_flag("--huge").is_none());
    }

    #[test]
    fn full_scale_uses_paper_resolution() {
        let s = Scale::full();
        assert_eq!((s.params.width, s.params.height), (1024, 768));
        assert_eq!(s.params.frames, 0, "0 selects the paper's frame counts");
    }

    #[test]
    fn workload_builders_respect_scale() {
        let s = Scale::quick();
        let v = s.village();
        assert_eq!(v.width, 256);
        assert_eq!(v.frame_count, 24);
    }
}
