//! Texture page-table TLB experiments: Fig. 11 and Table 8 (§5.4.3).

use crate::runner::{engine_run_all, pct, RunError};
use crate::store::TraceStore;
use crate::{Outputs, Scale, TextTable};
use mltc_core::{EngineConfig, L1Config, L2Config};
use mltc_trace::FilterMode;

/// TLB entry counts studied by the paper.
const TLB_ENTRIES: [usize; 5] = [1, 2, 4, 8, 16];

fn tlb_configs() -> Vec<EngineConfig> {
    TLB_ENTRIES
        .iter()
        .map(|&n| EngineConfig {
            l1: L1Config::kb(2),
            l2: Some(L2Config::mb(2)),
            tlb_entries: n,
            ..EngineConfig::default()
        })
        .collect()
}

/// **Fig. 11** — per-frame texture-page-table TLB hit rates for the Village
/// as a function of entry count (trilinear, 2 KB L1 + 2 MB L2, 16×16 tiles,
/// round-robin replacement).
pub fn fig11(scale: &Scale, out: &Outputs, store: &TraceStore) -> Result<(), RunError> {
    let village = store.village(&scale.params);
    let engines = engine_run_all(
        store,
        &village,
        FilterMode::Trilinear,
        &tlb_configs(),
        false,
    )?;

    let headers: Vec<String> = std::iter::once("frame".to_string())
        .chain(TLB_ENTRIES.iter().map(|n| format!("hit_{n}e")))
        .collect();
    let mut per_frame = TextTable::new(&headers.iter().map(String::as_str).collect::<Vec<_>>());
    for f in 0..village.frame_count as usize {
        let mut row = vec![f.to_string()];
        for e in &engines {
            row.push(format!("{:.4}", e.frames()[f].tlb_hit_rate()));
        }
        per_frame.row(row);
    }
    let csv = out.artefact_path("fig11_frames.csv");
    std::fs::write(&csv, per_frame.csv_string()).expect("write per-frame csv");

    let mut t = TextTable::new(&["TLB entries", "avg hit rate %"]);
    for (e, n) in engines.iter().zip(TLB_ENTRIES) {
        t.row(vec![n.to_string(), pct(e.totals().tlb_hit_rate())]);
    }
    out.table(
        "fig11",
        "Fig. 11 — texture page-table TLB hit rates (Village, trilinear)",
        &t,
    );
    out.note(&format!("  per-frame series: {}", csv.display()));
    Ok(())
}

/// **Table 8** — average TLB hit rates for the Village and City (bilinear).
pub fn table8(scale: &Scale, out: &Outputs, store: &TraceStore) -> Result<(), RunError> {
    let mut t = TextTable::new(&[
        "TLB entries",
        "village hit %",
        "city hit %",
        "paper village",
        "paper city",
    ]);
    let village = engine_run_all(
        store,
        &store.village(&scale.params),
        FilterMode::Bilinear,
        &tlb_configs(),
        false,
    )?;
    let city = engine_run_all(
        store,
        &store.city(&scale.params),
        FilterMode::Bilinear,
        &tlb_configs(),
        false,
    )?;
    let paper = [
        ("36%", "36%"),
        ("63%", "63%"),
        ("74%", "75%"),
        ("81%", "82%"),
        ("91%", "92%"),
    ];
    for (i, n) in TLB_ENTRIES.iter().enumerate() {
        t.row(vec![
            n.to_string(),
            pct(village[i].totals().tlb_hit_rate()),
            pct(city[i].totals().tlb_hit_rate()),
            paper[i].0.to_string(),
            paper[i].1.to_string(),
        ]);
    }
    out.table("table8", "Table 8 — average TLB hit rates (bilinear)", &t);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mltc_scene::WorkloadParams;

    #[test]
    fn tlb_hit_rate_grows_with_entries() {
        let scale = Scale {
            name: "tiny",
            params: WorkloadParams::tiny(),
        };
        let store = TraceStore::in_memory();
        let engines = engine_run_all(
            &store,
            &store.village(&scale.params),
            FilterMode::Bilinear,
            &tlb_configs(),
            false,
        )
        .unwrap();
        let rates: Vec<f64> = engines.iter().map(|e| e.totals().tlb_hit_rate()).collect();
        for pair in rates.windows(2) {
            assert!(
                pair[1] >= pair[0] - 0.02,
                "more entries should hit more: {rates:?}"
            );
        }
        assert!(rates[4] > rates[0], "16 entries must beat 1: {rates:?}");
        assert!(
            rates[4] > 0.5,
            "a 16-entry TLB should hit most of the time: {rates:?}"
        );
    }

    #[test]
    fn fig11_writes_series() {
        let dir = std::env::temp_dir().join(format!("mltc_tlb_{}", std::process::id()));
        let out = Outputs::quiet(&dir);
        let scale = Scale {
            name: "tiny",
            params: WorkloadParams::tiny(),
        };
        fig11(&scale, &out, &TraceStore::in_memory()).unwrap();
        let csv = std::fs::read_to_string(dir.join("fig11.csv")).unwrap();
        assert_eq!(csv.lines().count(), 1 + 5);
        assert!(dir.join("fig11_frames.csv").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
